#!/usr/bin/env python
"""Service smoke gate: the daemon must answer exactly like solve_iter.

Boots the real ``repro-mgrts serve`` daemon on localhost and holds it to
the library baseline on a seeded 40-problem grid:

* **cold equivalence** — every report streamed back over TCP must match
  the in-process ``solve_iter`` answer byte-for-byte (canonical JSON,
  elapsed zeroed — wall clock is the one sanctioned difference);
* **warm memo** — resubmitting the same grid must serve every response
  from the shared cache (``"cached": true``), computing nothing;
* **journal sharding** — splitting the grid across two daemon runs with
  separate shard journals, then ``merge_journals``-ing them, must
  reproduce the single-daemon journal modulo elapsed.

Usage: ``python scripts/serve_smoke.py`` (from the repo root; exits
non-zero on any divergence).
"""

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.batch.journal import merge_journals
from repro.generator.random_systems import GeneratorConfig, generate_instances
from repro.service.client import ServiceClient
from repro.solvers.problem import Problem, solve_iter

SOLVER = "csp2+dc"
TIME_LIMIT = 5.0
VARIABLE_LIMIT = 2_000_000  # matches the server cap: clamping is identity


def make_problems(count, seed):
    """The seeded smoke grid, budgets explicit so clamping changes nothing."""
    instances = generate_instances(
        GeneratorConfig(n=3, m=2, tmax=3), count, seed=seed
    )
    return [
        Problem.of(
            inst.system, m=inst.m, time_limit=TIME_LIMIT,
            variable_limit=VARIABLE_LIMIT, label=f"seed:{inst.seed}",
        )
        for inst in instances
    ]


def canonical(report_dict):
    """A report document with wall-clock fields zeroed, in stable bytes."""
    doc = json.loads(json.dumps(report_dict))  # deep copy
    doc["elapsed"] = 0.0
    if doc.get("stats"):
        doc["stats"]["elapsed"] = 0.0
    # matrix position in solve_iter, always 0 for per-request serving:
    # ordering bookkeeping, not solve content
    doc["index"] = 0
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def canonical_journal(path):
    """key -> canonical report bytes, plus the key order, for one journal."""
    order, content = [], {}
    for line in Path(path).read_text().splitlines():
        entry = json.loads(line)
        if entry["key"] not in content:
            order.append(entry["key"])
        content[entry["key"]] = canonical(entry["report"])
    return order, content


class Daemon:
    """One ``repro-mgrts serve`` subprocess on an ephemeral port.

    ``jobs=1`` on purpose: solves then complete in admission order, so
    the journal's key order is deterministic and the shard-merge
    comparison below can be byte-for-byte rather than set-wise.
    """

    def __init__(self, journal, cache_dir, jobs=1):
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0", "--jobs", str(jobs), "--unsupervised",
                "--cache-dir", str(cache_dir), "--journal", str(journal),
            ],
            stdout=subprocess.PIPE,
            text=True,
            cwd=str(Path(__file__).resolve().parent.parent),
            env={"PYTHONPATH": "src"},
        )
        listening = json.loads(self.proc.stdout.readline())
        assert listening["type"] == "listening", listening
        self.host, self.port = listening["host"], listening["port"]

    def client(self):
        return ServiceClient.connect(self.host, self.port)

    def shutdown(self):
        with self.client() as client:
            client.shutdown()
        return self.proc.wait(timeout=60.0)


def main(argv=None):
    """Run the service smoke gate; return a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--count", type=int, default=40)
    parser.add_argument("--seed", type=int, default=2009)
    args = parser.parse_args(argv)

    problems = make_problems(args.count, args.seed)
    baseline = [
        canonical(r.to_dict()) for r in solve_iter(problems, SOLVER)
    ]

    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)

        # -- one daemon, the whole grid: cold equivalence + warm memo -------
        daemon = Daemon(tmp / "full.jsonl", tmp / "cache-full")
        with daemon.client() as client:
            cold_flags, warm_flags = [], []
            cold = client.solve_many(
                problems, SOLVER,
                on_response=lambda i, r, c: cold_flags.append(c),
            )
            client.solve_many(
                problems, SOLVER,
                on_response=lambda i, r, c: warm_flags.append(c),
            )
            stats = client.stats()
        divergent = [
            i for i, (report, want) in enumerate(zip(cold, baseline))
            if canonical(report.to_dict()) != want
        ]
        if divergent:
            print(f"FAIL: {len(divergent)} of {len(problems)} served reports "
                  f"diverge from the solve_iter baseline (first: problem "
                  f"{divergent[0]})")
            return 1
        if any(cold_flags):
            print(f"FAIL: {sum(cold_flags)} cold responses claimed "
                  "to be cached against an empty cache")
            return 1
        if not all(warm_flags):
            print(f"FAIL: only {sum(warm_flags)} of {len(problems)} warm "
                  "responses were cache hits")
            return 1
        if stats["computed"] != len(problems):
            print(f"FAIL: server computed {stats['computed']} solves, "
                  f"expected {len(problems)}")
            return 1
        if daemon.shutdown() != 0:
            print("FAIL: daemon exited non-zero after shutdown")
            return 1

        # -- two daemons, half the grid each: shard-merge equivalence -------
        half = len(problems) // 2
        for name, part in (("a", problems[:half]), ("b", problems[half:])):
            daemon = Daemon(tmp / f"shard-{name}.jsonl", tmp / "cache-shards")
            with daemon.client() as client:
                client.solve_many(part, SOLVER)
            if daemon.shutdown() != 0:
                print(f"FAIL: shard daemon {name!r} exited non-zero")
                return 1
        merge_journals(
            [tmp / "shard-a.jsonl", tmp / "shard-b.jsonl"],
            tmp / "merged.jsonl",
        )
        if canonical_journal(tmp / "merged.jsonl") \
                != canonical_journal(tmp / "full.jsonl"):
            print("FAIL: merged shard journals diverge from the "
                  "single-daemon journal (modulo elapsed)")
            return 1

    print(
        f"serve smoke OK: {len(problems)} problems cold-equivalent to "
        f"solve_iter, {len(problems)} warm cache hits, 2-shard merge "
        "matches the single-daemon journal"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
