#!/usr/bin/env python
"""Chaos smoke gate: a seeded fault-injected campaign must lose nothing.

Runs a small (instance x solver) campaign twice under deterministic
chaos injection (``repro.batch.chaos``) and fails CI when fault
tolerance regresses:

* the campaign raises instead of completing;
* any cell is missing from the journal (neither a result nor a
  ``fault:*`` record);
* the second run's journal is not byte-identical to the first (the
  determinism bar: same seeds, same faults, same bytes).

Usage: ``python scripts/chaos_smoke.py`` (from the repo root; exits
non-zero on any lost cell or mismatch).
"""

import argparse
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.batch import ChaosConfig, cells_for_matrix, load_journal, run_batch
from repro.batch.cells import cell_key
from repro.generator.random_systems import GeneratorConfig, generate_instances


def main(argv=None):
    """Run the chaos smoke campaign; return a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--instances", type=int, default=20)
    parser.add_argument("--solvers", default="csp2+dc,csp2")
    parser.add_argument("--chaos-seed", type=int, default=2009)
    parser.add_argument("--chaos-rate", type=float, default=0.3)
    parser.add_argument("--time-limit", type=float, default=0.4)
    args = parser.parse_args(argv)

    instances = generate_instances(
        GeneratorConfig(n=3, m=2, tmax=3), args.instances, seed=2009
    )
    solvers = [s for s in args.solvers.split(",") if s]
    cells = cells_for_matrix(instances, solvers, args.time_limit)
    chaos = ChaosConfig(seed=args.chaos_seed, rate=args.chaos_rate)
    expected = {cell_key(c) for c in cells}

    with tempfile.TemporaryDirectory() as tmp:
        journals = [Path(tmp) / "first.jsonl", Path(tmp) / "second.jsonl"]
        reports = []
        for journal in journals:
            try:
                reports.append(run_batch(
                    cells, journal=journal, chaos=chaos, retries=1, grace=0.4,
                ))
            except Exception as exc:  # the one thing run_batch must not do
                print(f"FAIL: chaos campaign raised {type(exc).__name__}: {exc}")
                return 1
        report = reports[0]
        journaled = set(load_journal(journals[0]))
        lost = expected - journaled
        if lost:
            print(f"FAIL: {len(lost)} of {len(expected)} cells lost "
                  "(neither result nor fault record journaled)")
            return 1
        if journals[0].read_bytes() != journals[1].read_bytes():
            print("FAIL: re-run with identical seeds produced a different journal")
            return 1
        print(
            f"chaos smoke OK: {report.total} cells, {report.faults} faulted, "
            f"{report.retried} retried, journal deterministic "
            f"({report.elapsed:.1f}s)"
        )
        return 0


if __name__ == "__main__":
    sys.exit(main())
