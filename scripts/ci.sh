#!/bin/sh
# Minimal CI: docstring guard, then the tier-1 test suite.
# Usage: sh scripts/ci.sh   (from the repo root; no install required)
set -eu
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== docs-check: public modules and callables must be documented =="
python -m pytest -q tests/test_docstrings.py

echo "== tier-1: full test suite =="
python -m pytest -x -q
