#!/bin/sh
# Minimal CI: contract lint first (fastest, most specific), then the
# docstring guard, registry-docs drift guard, perf smokes and the
# tier-1 test suite.
# Usage: sh scripts/ci.sh   (from the repo root; no install required)
set -eu
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== lint: contract-aware static analysis must be clean =="
python -m repro.cli lint

echo "== ruff: style gate (skipped when ruff is not installed) =="
if python -m ruff --version >/dev/null 2>&1; then
    python -m ruff check src/repro scripts
else
    echo "ruff not installed; skipping (configured in pyproject.toml)"
fi

echo "== mypy: typed-core gate (skipped when mypy is not installed) =="
if python -m mypy --version >/dev/null 2>&1; then
    python -m mypy src/repro/solvers/spec.py src/repro/solvers/registry.py src/repro/solvers/problem.py
else
    echo "mypy not installed; skipping (configured in pyproject.toml)"
fi

echo "== docs-check: public modules and callables must be documented =="
python -m pytest -q tests/test_docstrings.py

echo "== solvers-check: docs/SOLVERS.md must match the solver registry =="
python scripts/solvers_md.py --check

echo "== perf-smoke: bench-engine tiny grid completes, JSON schema stable =="
python benchmarks/bench_engine.py --smoke --out "${TMPDIR:-/tmp}/bench_engine_smoke.json"
python benchmarks/bench_engine.py --check-schema "${TMPDIR:-/tmp}/bench_engine_smoke.json"
python benchmarks/bench_engine.py --check-schema benchmarks/BENCH_engine.before.json
python benchmarks/bench_engine.py --check-schema benchmarks/BENCH_engine.after.json

echo "== kernel-parity: vectorised kernels byte-identical, with and without numpy =="
python -m pytest -q tests/test_kernel_parity.py tests/test_engine_regression.py
REPRO_NO_NUMPY=1 python -m pytest -q tests/test_kernel_parity.py tests/test_engine_regression.py
python benchmarks/bench_kernels.py --smoke --out "${TMPDIR:-/tmp}/bench_kernels_smoke.json"
python benchmarks/bench_kernels.py --check-schema "${TMPDIR:-/tmp}/bench_kernels_smoke.json"
python benchmarks/bench_kernels.py --check-schema benchmarks/BENCH_kernels.json

echo "== perf-smoke: screening cascade tiny grid, zero cascade/exact disagreements =="
python benchmarks/bench_analysis.py --smoke --out "${TMPDIR:-/tmp}/bench_analysis_smoke.json"
python benchmarks/bench_analysis.py --check-schema "${TMPDIR:-/tmp}/bench_analysis_smoke.json"
python benchmarks/bench_analysis.py --check-schema benchmarks/BENCH_analysis.full.json
python benchmarks/bench_analysis.py --check-schema benchmarks/BENCH_analysis.smoke.json

echo "== perf-smoke: conflict-directed learning grid, agreement + node-ratio bar =="
python benchmarks/bench_learning.py --smoke --role before --out "${TMPDIR:-/tmp}/bench_learning_smoke_before.json"
python benchmarks/bench_learning.py --smoke --role after --out "${TMPDIR:-/tmp}/bench_learning_smoke_after.json"
python benchmarks/bench_learning.py --check-schema "${TMPDIR:-/tmp}/bench_learning_smoke_before.json"
python benchmarks/bench_learning.py --check-schema "${TMPDIR:-/tmp}/bench_learning_smoke_after.json"
python benchmarks/bench_learning.py --compare "${TMPDIR:-/tmp}/bench_learning_smoke_before.json" "${TMPDIR:-/tmp}/bench_learning_smoke_after.json"
python benchmarks/bench_learning.py --check-schema benchmarks/BENCH_learning.before.json
python benchmarks/bench_learning.py --check-schema benchmarks/BENCH_learning.after.json
python benchmarks/bench_learning.py --compare benchmarks/BENCH_learning.before.json benchmarks/BENCH_learning.after.json
python benchmarks/bench_learning.py --check-trajectory benchmarks/BENCH_trajectory.json

echo "== perf-smoke: service throughput tiny grid, warm pass all cache hits =="
python benchmarks/bench_service.py --smoke --out "${TMPDIR:-/tmp}/bench_service_smoke.json"
python benchmarks/bench_service.py --check-schema "${TMPDIR:-/tmp}/bench_service_smoke.json"
python benchmarks/bench_service.py --check-schema benchmarks/BENCH_service.json

echo "== difftest-smoke: solvers must agree on the seeded grid (exact oracle cross-check) =="
python -m repro.cli difftest --seed 0 --instances 15 --time-limit 5 --quiet

echo "== chaos-smoke: fault-injected campaign must lose no cell, deterministically =="
python scripts/chaos_smoke.py

echo "== serve-smoke: daemon byte-equivalent to solve_iter, warm cache hits, shard merge canonical =="
python scripts/serve_smoke.py

echo "== tier-1: full test suite =="
python -m pytest -x -q
