#!/usr/bin/env python
"""Generate (or drift-check) docs/SOLVERS.md from the solver registry.

Usage (from the repo root)::

    python scripts/solvers_md.py --write   # regenerate the file
    python scripts/solvers_md.py --check   # exit 1 if the file drifted
    python scripts/solvers_md.py           # print the rendering to stdout

``make solvers-check`` and scripts/ci.sh run the ``--check`` mode, so a
change to any ``@register_solver`` declaration fails CI until the
checked-in document is regenerated.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.solvers.docs import render_solvers_md  # noqa: E402

TARGET = REPO / "docs" / "SOLVERS.md"


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--write", action="store_true", help="rewrite docs/SOLVERS.md")
    mode.add_argument("--check", action="store_true", help="fail if the file drifted")
    args = parser.parse_args(argv)

    rendered = render_solvers_md()
    if args.write:
        TARGET.write_text(rendered)
        print(f"wrote {TARGET.relative_to(REPO)}")
        return 0
    if args.check:
        on_disk = TARGET.read_text() if TARGET.exists() else ""
        if on_disk != rendered:
            print(
                "docs/SOLVERS.md is out of date with the solver registry;\n"
                "regenerate it with: python scripts/solvers_md.py --write",
                file=sys.stderr,
            )
            return 1
        print("docs/SOLVERS.md matches the registry")
        return 0
    print(rendered, end="")
    return 0


if __name__ == "__main__":
    sys.exit(main())
