# Developer entry points.  Everything runs from the repo root with the
# in-tree sources on PYTHONPATH (no install needed).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test docs-check bench ci

## tier-1 test suite (the bar every PR must keep green)
test:
	$(PYTHON) -m pytest -x -q

## fail if any public module/callable lacks a docstring
docs-check:
	$(PYTHON) -m pytest -q tests/test_docstrings.py

## pytest-benchmark suite (REPRO_JOBS=N parallelizes the run matrices)
bench:
	$(PYTHON) -m pytest benchmarks -q

## what CI runs: docs guard first (fast), then the full suite
ci: docs-check test
