# Developer entry points.  Everything runs from the repo root with the
# in-tree sources on PYTHONPATH (no install needed).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test lint docs-check solvers-check solvers-md bench bench-portfolio bench-engine bench-analysis bench-kernels bench-learning bench-trajectory bench-difftest bench-service difftest difftest-smoke chaos-smoke serve-smoke ci

## tier-1 test suite (the bar every PR must keep green)
test:
	$(PYTHON) -m pytest -x -q

## contract-aware static analysis (determinism, explain contract,
## registry coherence, pickle and trail safety); suppressions with
## justifications live in lint-baseline.txt
lint:
	$(PYTHON) -m repro.cli lint

## fail if any public module/callable lacks a docstring
docs-check:
	$(PYTHON) -m pytest -q tests/test_docstrings.py

## fail if docs/SOLVERS.md drifted from the solver registry
solvers-check:
	$(PYTHON) scripts/solvers_md.py --check

## regenerate docs/SOLVERS.md from the registry
solvers-md:
	$(PYTHON) scripts/solvers_md.py --write

## pytest-benchmark suite (REPRO_JOBS=N parallelizes the run matrices)
bench:
	$(PYTHON) -m pytest benchmarks -q

## portfolio-vs-best-single wall-clock comparison
bench-portfolio:
	$(PYTHON) -m pytest benchmarks/bench_portfolio.py -q

## CSP engine perf baseline: fixed deterministic grid -> BENCH_engine.json
## (compare against benchmarks/BENCH_engine.{before,after}.json)
bench-engine:
	$(PYTHON) benchmarks/bench_engine.py --out BENCH_engine.json

## screening-cascade benchmark: decided fraction + plain-vs-screened wall
## time on the d-first grid (compare against benchmarks/BENCH_analysis.full.json)
bench-analysis:
	$(PYTHON) benchmarks/bench_analysis.py --out BENCH_analysis.json

## vectorised-kernel benchmark: block-stepping simulator and demand
## table vs the scalar paths they replaced; asserts result parity and
## reports the speedups (compare against benchmarks/BENCH_kernels.json)
bench-kernels:
	$(PYTHON) benchmarks/bench_kernels.py --out BENCH_kernels.json

## conflict-directed learning benchmark: before/after node + wall-time
## comparison on the UNSAT-heavy boundary grid.  Writes fresh snapshots
## to the repo root (compare against the checked-in
## benchmarks/BENCH_learning.{before,after}.json; copy them over and run
## bench-trajectory when updating the baselines)
bench-learning:
	$(PYTHON) benchmarks/bench_learning.py --role before --out BENCH_learning.before.json
	$(PYTHON) benchmarks/bench_learning.py --role after --out BENCH_learning.after.json
	$(PYTHON) benchmarks/bench_learning.py --compare BENCH_learning.before.json BENCH_learning.after.json

## regenerate benchmarks/BENCH_trajectory.json from the checked-in
## engine/analysis/learning snapshots
bench-trajectory:
	$(PYTHON) benchmarks/bench_learning.py --trajectory benchmarks/BENCH_trajectory.json

## differential-testing campaign: cross-check every complete solver
## (+ the edf-exact oracle) on the seeded grid; non-zero exit on any
## disagreement, JSONL trail in difftest-artifacts.jsonl
difftest:
	$(PYTHON) -m repro.cli difftest --seed 0 --instances 200 \
	  --artifacts difftest-artifacts.jsonl

## small seeded difftest (what CI runs); fails CI on any disagreement
difftest-smoke:
	$(PYTHON) -m repro.cli difftest --seed 0 --instances 15 \
	  --time-limit 5 --quiet

## difftest throughput + edf-exact state-space statistics snapshot
bench-difftest:
	$(PYTHON) benchmarks/bench_difftest.py --out BENCH_difftest.json

## seeded chaos campaign: fault-injected run must lose no cell and
## journal byte-identically on re-run; non-zero exit otherwise
chaos-smoke:
	$(PYTHON) scripts/chaos_smoke.py

## solver-service gate: daemon answers byte-equivalent to solve_iter
## (modulo elapsed), warm re-run all cache hits, shard merge canonical
serve-smoke:
	$(PYTHON) scripts/serve_smoke.py

## service throughput snapshot: cold vs warm problems/s at jobs 1 and 4
bench-service:
	$(PYTHON) benchmarks/bench_service.py --out BENCH_service.json

## what CI runs: static analysis + doc guards first (fast), then the
## full suite
ci: lint docs-check solvers-check test difftest-smoke chaos-smoke serve-smoke
