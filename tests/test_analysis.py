"""Tests for feasibility analysis (filters and necessary conditions)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    demand_over_capacity_witness,
    necessary_conditions,
    passes_utilization_filter,
)
from repro.model import Platform, Task, TaskSystem
from repro.solvers import create_solver

from tests.helpers import running_example


class TestUtilizationFilter:
    def test_running_example_passes_m2(self):
        assert passes_utilization_filter(running_example(), 2)

    def test_running_example_fails_m1(self):
        # U = 23/12 > 1
        assert not passes_utilization_filter(running_example(), 1)

    def test_boundary_exact_one(self):
        s = TaskSystem.from_tuples([(0, 1, 1, 1)])
        assert passes_utilization_filter(s, 1)


class TestDemandWitness:
    def test_clean_system_no_witness(self):
        assert demand_over_capacity_witness(running_example(), 2) is None

    def test_full_cycle_witness(self):
        s = TaskSystem.from_tuples([(0, 2, 2, 2), (0, 2, 2, 2)])
        w = demand_over_capacity_witness(s, 1)
        assert w is not None
        a, b, demand = w
        assert demand > (b - a + 1)

    def test_local_witness_with_global_slack(self):
        """U <= m but a short interval is over-demanded: the interval check
        catches what the utilization filter misses."""
        # two tasks with D=1 at the same slot on m=1: demand 2 in 1 slot,
        # but long periods keep U = 2/8 <= 1
        s = TaskSystem.from_tuples([(0, 1, 1, 8), (0, 1, 1, 8)])
        assert passes_utilization_filter(s, 1)
        w = demand_over_capacity_witness(s, 1)
        assert w is not None
        assert w[0] == 0 and w[1] == 0 and w[2] == 2

    def test_rejects_bad_m(self):
        with pytest.raises(ValueError):
            demand_over_capacity_witness(running_example(), 0)

    def test_zero_wcet_ignored(self):
        s = TaskSystem.from_tuples([(0, 0, 1, 1)])
        assert demand_over_capacity_witness(s, 1) is None


class TestNecessaryConditions:
    def test_all_pass_on_feasible(self):
        checks = necessary_conditions(running_example(), 2)
        assert all(c.ok for c in checks)
        assert {c.name for c in checks} == {
            "utilization", "wcet-within-deadline", "interval-demand",
        }

    def test_utilization_fail(self):
        checks = necessary_conditions(running_example(), 1)
        by_name = {c.name: c for c in checks}
        assert not by_name["utilization"].ok

    def test_cd_fail(self):
        s = TaskSystem.from_tuples([(0, 3, 2, 4)])
        by_name = {c.name: c for c in necessary_conditions(s, 1)}
        assert not by_name["wcet-within-deadline"].ok
        assert "C > D" in by_name["wcet-within-deadline"].detail

    def test_str_format(self):
        checks = necessary_conditions(running_example(), 2)
        assert all(str(c).startswith("[pass]") for c in checks)


def small_systems():
    def build(params):
        tasks = []
        for o, t, d, c in params:
            d = min(d, t)
            tasks.append(Task(o % t, min(c, d), d, t))
        return TaskSystem(tasks)

    period = st.sampled_from([1, 2, 3, 4, 6])
    return st.builds(
        build,
        st.lists(
            st.tuples(st.integers(0, 5), period, st.integers(1, 6), st.integers(0, 4)),
            min_size=1,
            max_size=4,
        ),
    )


@settings(deadline=None, max_examples=40)
@given(small_systems(), st.integers(1, 3))
def test_necessary_conditions_are_necessary(system, m):
    """If any check fails, the exact solver must agree the instance is
    infeasible (soundness of the necessary conditions)."""
    checks = necessary_conditions(system, m)
    if all(c.ok for c in checks):
        return
    r = create_solver("csp2+dc", system, Platform.identical(m)).solve(time_limit=20)
    assert not r.is_feasible, (system, m, [str(c) for c in checks])


@settings(deadline=None, max_examples=40)
@given(small_systems(), st.integers(1, 3))
def test_certificates_never_contradict_exact(system, m):
    """Certificate soundness both ways: an infeasibility certificate
    must match an exact INFEASIBLE, a feasibility certificate an exact
    FEASIBLE (the cascade may abstain, never lie)."""
    from repro.analysis import prove_feasible, prove_infeasible
    from repro.solvers import Feasibility

    infeasible_cert = prove_infeasible(system, m)
    feasible_cert = prove_feasible(system, m)
    if infeasible_cert is None and feasible_cert is None:
        return
    assert infeasible_cert is None or feasible_cert is None, (
        "contradictory certificates",
        str(infeasible_cert),
        str(feasible_cert),
    )
    r = create_solver("csp2+dc", system, Platform.identical(m)).solve(
        time_limit=20
    )
    assert r.status is not Feasibility.UNKNOWN
    if infeasible_cert is not None:
        assert r.status is Feasibility.INFEASIBLE, (
            system, m, str(infeasible_cert),
        )
    else:
        assert r.status is Feasibility.FEASIBLE, (
            system, m, str(feasible_cert),
        )
