"""The exact global-EDF oracle: state-space decision, witnesses, the
feasibility mapping, registry/composition wiring, and the seeded
agreement grid against every complete solver."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.edf_exact import (
    EDF_MISS,
    EDF_OVERRUN,
    EDF_SCHEDULABLE,
    EdfExactSolver,
    edf_exact_certificate,
    edf_exact_test,
)
from repro.baselines.priorities import global_edf
from repro.generator import GeneratorConfig, generate_instances
from repro.model import Platform, Task, TaskSystem
from repro.schedule import validate
from repro.solvers import (
    Feasibility,
    Problem,
    SolveReport,
    create_solver,
    solve,
    solve_problem,
    solver_info,
)

from tests.helpers import running_example


def tri_edf_anomaly() -> TaskSystem:
    """Three (C=2, D=3, T=3) tasks: feasible on m=2, yet global EDF misses
    (the classic multiprocessor EDF non-optimality example)."""
    return TaskSystem.from_tuples([(0, 2, 3, 3)] * 3)


class TestEdfExactTest:
    def test_single_task_cycles(self):
        out = edf_exact_test(TaskSystem.from_tuples([(0, 1, 2, 2)]), 1)
        assert out.verdict == EDF_SCHEDULABLE
        assert out.schedulable is True
        assert out.cycle_length >= 1
        assert validate(out.schedule).ok

    def test_uniprocessor_overload_misses(self):
        out = edf_exact_test(
            TaskSystem.from_tuples([(0, 2, 2, 2), (0, 2, 2, 2)]), 1
        )
        assert out.verdict == EDF_MISS
        assert out.schedulable is False
        assert out.schedule is None
        miss = out.miss
        assert miss["m"] == 1
        assert miss["remaining"] >= 1
        assert miss["time"] >= miss["release"]
        assert len(miss["configuration"]) == 2

    def test_running_example_misses_under_edf(self):
        """The paper's running example is feasible on m=2 (the CSP finds a
        schedule) but deterministic global EDF misses on it."""
        out = edf_exact_test(running_example(), 2)
        assert out.verdict == EDF_MISS

    def test_edf_anomaly_instance_misses(self):
        out = edf_exact_test(tri_edf_anomaly(), 2)
        assert out.verdict == EDF_MISS

    def test_offset_delays_cycle_start(self):
        s = TaskSystem.from_tuples([(5, 1, 2, 2), (0, 1, 3, 3)])
        out = edf_exact_test(s, 1)
        assert out.verdict == EDF_SCHEDULABLE
        # the first release pattern repeats only after the largest offset
        assert out.cycle_start >= 1
        assert validate(out.schedule).ok

    def test_zero_wcet_tasks(self):
        out = edf_exact_test(
            TaskSystem.from_tuples([(0, 0, 1, 1), (0, 1, 2, 2)]), 1
        )
        assert out.verdict == EDF_SCHEDULABLE
        assert 0 not in out.schedule.table  # a 0-wcet task never runs

    def test_rejects_arbitrary_deadlines(self):
        with pytest.raises(ValueError, match="constrained"):
            edf_exact_test(TaskSystem.from_tuples([(0, 1, 5, 3)]), 1)

    def test_rejects_bad_m(self):
        with pytest.raises(ValueError, match="m must be"):
            edf_exact_test(running_example(), 0)

    def test_node_budget_overrun(self):
        out = edf_exact_test(running_example(), 1, node_limit=1)
        assert out.verdict == EDF_OVERRUN
        assert out.schedulable is None

    def test_config_budget_overrun(self):
        # a schedulable system forced to give up after one hashed config
        s = TaskSystem.from_tuples([(1, 1, 2, 2), (0, 1, 3, 3)])
        out = edf_exact_test(s, 2, config_limit=0)
        assert out.verdict == EDF_OVERRUN


class TestEdfExactAgainstSimulator:
    """The independent ``global_edf`` simulator (different loop, same
    deterministic policy) must agree on every decided grid instance."""

    def test_seeded_grid_agreement(self):
        instances = generate_instances(
            GeneratorConfig(n=4, tmax=4), 30, seed=0
        )
        for inst in instances:
            out = edf_exact_test(inst.system, inst.m)
            sim = global_edf(inst.system, inst.m, max_cycles=256)
            assert out.schedulable is not None, inst.seed
            if sim.schedulable is not None:
                assert out.schedulable == sim.schedulable, inst.seed
            if out.verdict == EDF_SCHEDULABLE:
                assert validate(out.schedule).ok, inst.seed


def small_systems():
    """Constrained-deadline systems small enough for exhaustive search."""
    tasks = st.builds(
        lambda offset, wcet, deadline, slack: Task(
            offset, min(wcet, deadline), deadline, deadline + slack
        ),
        offset=st.integers(0, 3),
        wcet=st.integers(0, 3),
        deadline=st.integers(1, 4),
        slack=st.integers(0, 2),
    )
    return st.builds(TaskSystem, st.lists(tasks, min_size=1, max_size=4))


class TestEdfExactProperties:
    @settings(max_examples=60, deadline=None)
    @given(system=small_systems(), m=st.integers(1, 3))
    def test_always_terminates_with_a_verdict(self, system, m):
        """No budgets ⇒ the finite state space always decides."""
        out = edf_exact_test(system, m)
        assert out.schedulable in (True, False)
        assert out.slots >= 1

    @settings(max_examples=60, deadline=None)
    @given(system=small_systems(), m=st.integers(1, 3))
    def test_schedulable_witness_validates(self, system, m):
        out = edf_exact_test(system, m)
        if out.verdict == EDF_SCHEDULABLE:
            assert out.schedule.horizon == out.cycle_length * system.hyperperiod
            assert validate(out.schedule).ok
        else:
            assert out.miss is not None
            config = out.miss["configuration"]
            rem, laxity = config[out.miss["task"]]
            assert rem == out.miss["remaining"] >= 1
            assert laxity <= 0

    @settings(max_examples=30, deadline=None)
    @given(system=small_systems(), m=st.integers(1, 2))
    def test_report_roundtrips_through_jsonl(self, system, m):
        report = solve_problem(
            Problem.of(system, m=m, time_limit=5.0), "edf-exact", check=False
        )
        back = SolveReport.from_dict(report.to_dict())
        assert back.status is report.status
        assert back.decided_by == report.decided_by
        assert back.stats.extra["edf_exact"] == report.stats.extra["edf_exact"]
        if report.schedule is not None:
            assert (back.schedule.table == report.schedule.table).all()


class TestEdfExactCertificate:
    def test_feasible_certificate(self):
        cert = edf_exact_certificate(TaskSystem.from_tuples([(0, 1, 2, 2)]), 1)
        assert cert.verdict is Feasibility.FEASIBLE
        assert cert.test_name == "edf-exact:cycle"
        assert cert.witness["cycle_length"] >= 1
        assert validate(cert.schedule).ok

    def test_uniprocessor_miss_is_infeasibility_proof(self):
        cert = edf_exact_certificate(
            TaskSystem.from_tuples([(0, 2, 2, 2), (0, 2, 2, 2)]), 1
        )
        assert cert.verdict is Feasibility.INFEASIBLE
        assert cert.test_name == "edf-exact:miss"
        assert cert.witness["task"] in (0, 1)

    def test_multiprocessor_miss_abstains(self):
        """EDF is not optimal on m>=2: a miss must not claim INFEASIBLE."""
        cert = edf_exact_certificate(tri_edf_anomaly(), 2)
        assert cert.verdict is Feasibility.UNKNOWN
        assert cert.test_name == "edf-exact:miss"
        assert cert.witness["task"] is not None

    def test_overrun_abstains(self):
        cert = edf_exact_certificate(running_example(), 1, node_limit=1)
        assert cert.verdict is Feasibility.UNKNOWN
        assert cert.test_name == "edf-exact:overrun"


class TestEdfExactSolverWiring:
    def test_registry_metadata(self):
        info = solver_info("edf-exact")
        assert info.proves_infeasibility
        assert not info.is_exact  # complete for EDF, not for feasibility
        assert info.platforms == ("identical",)
        assert "config_limit" in info.options

    def test_front_door_feasible(self):
        report = solve(TaskSystem.from_tuples([(0, 1, 2, 2)]), m=1,
                       solver="edf-exact")
        assert report.status is Feasibility.FEASIBLE
        assert report.decided_by == "edf-exact:cycle"
        assert validate(report.schedule).ok
        assert report.stats.extra["edf_exact"]["verdict"] == "feasible"

    def test_front_door_uniprocessor_infeasible(self):
        report = solve(
            TaskSystem.from_tuples([(0, 2, 2, 2), (0, 2, 2, 2)]), m=1,
            solver="edf-exact",
        )
        assert report.status is Feasibility.INFEASIBLE
        assert report.decided_by == "edf-exact:miss"

    def test_multiprocessor_miss_reports_unknown_not_infeasible(self):
        """The anomaly instance: csp2+dc proves FEASIBLE, so edf-exact
        claiming INFEASIBLE here would be the exact soundness bug the
        capability mapping exists to prevent."""
        exact = solve(tri_edf_anomaly(), m=2, solver="csp2+dc", time_limit=20)
        assert exact.status is Feasibility.FEASIBLE
        oracle = solve(tri_edf_anomaly(), m=2, solver="edf-exact")
        assert oracle.status is Feasibility.UNKNOWN
        assert oracle.stats.extra["edf_exact"]["test"] == "edf-exact:miss"

    def test_arbitrary_deadlines_cloned_by_front_door(self):
        report = solve(TaskSystem.from_tuples([(0, 1, 6, 3)]), m=1,
                       solver="edf-exact")
        assert report.status is Feasibility.FEASIBLE

    def test_rejects_non_identical_platform(self):
        with pytest.raises(ValueError, match="identical"):
            EdfExactSolver(
                running_example(), Platform.uniform([2, 1])
            )

    def test_composes_with_screen(self):
        report = solve(TaskSystem.from_tuples([(0, 1, 2, 2)]), m=1,
                       solver="screen+edf-exact")
        assert report.status is Feasibility.FEASIBLE

    def test_composes_with_portfolio(self):
        report = solve(
            TaskSystem.from_tuples([(0, 2, 2, 2), (0, 2, 2, 2)]), m=1,
            solver="portfolio:edf-exact,csp2+dc", time_limit=20, jobs=1,
        )
        assert report.status is Feasibility.INFEASIBLE
        assert report.winner == "edf-exact"  # the oracle answers first

    def test_solver_name_listed(self):
        engine = create_solver(
            "edf-exact", running_example(), Platform.identical(2)
        )
        assert engine.name == "edf-exact"


class TestAgreementGrid:
    """Seeded agreement grid: the oracle must never contradict a complete
    solver — the in-suite miniature of ``repro-mgrts difftest``."""

    SOLVERS = ("csp2+dc", "csp2+learn", "sat", "screen+csp2+dc")

    def test_oracle_agrees_with_every_complete_solver(self):
        instances = generate_instances(
            GeneratorConfig(n=4, tmax=4), 10, seed=2009
        )
        for inst in instances:
            oracle = solve(inst.system, m=inst.m, solver="edf-exact",
                           time_limit=10)
            for name in self.SOLVERS:
                other = solve(inst.system, m=inst.m, solver=name,
                              time_limit=10)
                if oracle.status is Feasibility.FEASIBLE:
                    assert other.status is not Feasibility.INFEASIBLE, (
                        inst.seed, name)
                if oracle.status is Feasibility.INFEASIBLE:
                    assert other.status is not Feasibility.FEASIBLE, (
                        inst.seed, name)
