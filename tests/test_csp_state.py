"""Tests for the trail-based domain state and its typed event log."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.csp import Model
from repro.csp.state import EVT_ASSIGN, EVT_BOUNDS, EVT_REMOVE, DomainState


@pytest.fixture
def setup():
    m = Model()
    x = m.int_var(2, 5, "x")
    y = m.int_var_from([1, 3, 7], "y")
    b = m.bool_var("b")
    return m, x, y, b


class TestQueries:
    def test_initial_domains(self, setup):
        m, x, y, b = setup
        s = DomainState(m)
        assert s.values(x) == [2, 3, 4, 5]
        assert s.values(y) == [1, 3, 7]
        assert s.values(b) == [0, 1]
        assert s.size(x) == 4
        assert s.min_value(y) == 1 and s.max_value(y) == 7

    def test_contains(self, setup):
        m, x, y, b = setup
        s = DomainState(m)
        assert s.contains(y, 3)
        assert not s.contains(y, 2)
        assert not s.contains(y, -5)

    def test_value_requires_assignment(self, setup):
        m, x, *_ = setup
        s = DomainState(m)
        with pytest.raises(ValueError):
            s.value(x)
        s.assign(x, 3)
        assert s.value(x) == 3
        assert s.is_assigned(x)

    def test_solution_requires_all_assigned(self, setup):
        m, x, y, b = setup
        s = DomainState(m)
        for v, val in ((x, 2), (y, 7), (b, 0)):
            assert s.assign(v, val)
        assert s.solution() == {x: 2, y: 7, b: 0}


class TestMutations:
    def test_assign_missing_value_fails(self, setup):
        m, x, y, b = setup
        s = DomainState(m)
        assert not s.assign(y, 2)
        assert s.values(y) == [1, 3, 7]  # untouched

    def test_remove_value(self, setup):
        m, x, *_ = setup
        s = DomainState(m)
        assert s.remove_value(x, 3)
        assert s.values(x) == [2, 4, 5]

    def test_remove_absent_value_is_noop(self, setup):
        m, x, *_ = setup
        s = DomainState(m)
        assert s.remove_value(x, 99)
        assert s.remove_value(x, -99)
        assert s.values(x) == [2, 3, 4, 5]

    def test_remove_last_value_fails(self, setup):
        m, x, *_ = setup
        s = DomainState(m)
        s.assign(x, 2)
        assert not s.remove_value(x, 2)
        assert s.values(x) == [2]  # wipe-out refused, domain kept

    def test_remove_above_below(self, setup):
        m, x, *_ = setup
        s = DomainState(m)
        assert s.remove_above(x, 4)
        assert s.remove_below(x, 3)
        assert s.values(x) == [3, 4]
        assert not s.remove_above(x, 1)  # would wipe out

    def test_changed_log(self, setup):
        m, x, y, b = setup
        s = DomainState(m)
        s.assign(x, 3)
        s.remove_value(y, 7)
        assert s.drain_changed() == [x.index, y.index]
        assert s.drain_changed() == []


class TestTrail:
    def test_push_pop_restores(self, setup):
        m, x, y, b = setup
        s = DomainState(m)
        s.remove_value(x, 5)  # root-level change: permanent
        s.push_level()
        s.assign(x, 2)
        s.assign(y, 3)
        s.push_level()
        s.assign(b, 1)
        assert s.level == 2
        s.pop_level()
        assert s.values(b) == [0, 1]
        assert s.value(x) == 2  # level-1 changes survive
        s.pop_level()
        assert s.values(x) == [2, 3, 4]  # root change survives
        assert s.values(y) == [1, 3, 7]
        assert s.level == 0

    def test_pop_without_push_raises(self, setup):
        m, *_ = setup
        s = DomainState(m)
        with pytest.raises(RuntimeError):
            s.pop_level()

    def test_pop_clears_changed(self, setup):
        m, x, *_ = setup
        s = DomainState(m)
        s.push_level()
        s.assign(x, 2)
        s.pop_level()
        assert s.drain_changed() == []

    def test_pop_keeps_pending_events_from_before_the_push(self, setup):
        """The event log is level-aware: events recorded before a
        push_level survive the pop (the old engine dropped them)."""
        m, x, y, b = setup
        s = DomainState(m)
        s.remove_value(x, 5)  # pending, not yet drained
        s.push_level()
        s.assign(y, 3)  # level-local: discarded by the pop
        s.pop_level()
        assert s.drain_changed() == [x.index]

    def test_pop_discards_only_the_popped_level(self, setup):
        m, x, y, b = setup
        s = DomainState(m)
        s.push_level()
        s.assign(x, 2)  # level 1: survives
        s.push_level()
        s.assign(y, 3)  # level 2: discarded
        s.pop_level()
        assert s.drain_changed() == [x.index]

    def test_dispatched_cursor_clamped_on_pop(self, setup):
        m, x, y, b = setup
        s = DomainState(m)
        s.push_level()
        s.assign(x, 2)
        assert s.drain_changed() == [x.index]  # cursor now past the event
        s.pop_level()
        s.assign(y, 3)
        assert s.drain_changed() == [y.index]  # clamp: new event not skipped


class TestTypedEvents:
    def test_event_masks(self, setup):
        m, x, y, b = setup
        s = DomainState(m)
        s.remove_value(x, 3)  # interior: REMOVE only
        s.remove_value(x, 2)  # min moves: REMOVE|BOUNDS
        s.assign(x, 4)  # singleton: REMOVE|BOUNDS|ASSIGN
        kinds = [e[3] for e in s.events]
        assert kinds == [
            EVT_REMOVE,
            EVT_REMOVE | EVT_BOUNDS,
            EVT_REMOVE | EVT_BOUNDS | EVT_ASSIGN,
        ]

    def test_events_carry_old_and_new_masks(self, setup):
        m, x, *_ = setup
        s = DomainState(m)
        old = s.mask(x)
        s.remove_value(x, 4)
        idx, got_old, got_new, _ = s.events[-1]
        assert idx == x.index
        assert got_old == old and got_new == s.mask(x)

    def test_noop_mutations_record_no_event(self, setup):
        m, x, *_ = setup
        s = DomainState(m)
        s.remove_value(x, 99)  # absent value
        s.intersect_mask(x, s.mask(x))  # no change
        assert s.events == []


class TestGenericTrail:
    def test_save_restores_slot(self, setup):
        m, x, *_ = setup
        s = DomainState(m)
        counters = [7, 9]
        s.push_level()
        s.save(counters, 0)
        counters[0] = 42
        s.pop_level()
        assert counters == [7, 9]

    def test_save_all_restores_snapshot(self, setup):
        m, x, *_ = setup
        s = DomainState(m)
        counters = [1, 2, 3]
        s.push_level()
        s.save_all(counters)
        counters[:] = [9, 9, 9]
        s.pop_level()
        assert counters == [1, 2, 3]

    def test_root_saves_are_permanent(self, setup):
        m, x, *_ = setup
        s = DomainState(m)
        counters = [5]
        s.save(counters, 0)  # root level: never popped
        counters[0] = 6
        assert s.level == 0

    def test_stamp_is_never_reused(self, setup):
        m, *_ = setup
        s = DomainState(m)
        s.push_level()
        first = s.stamp
        s.pop_level()
        s.push_level()
        assert s.stamp != first  # a sibling node gets a fresh stamp


@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 9)),  # (var, value) ops
        max_size=30,
    ),
    st.lists(st.booleans(), max_size=10),  # push/pop pattern
)
def test_trail_restores_exactly(ops, pattern):
    """Random remove ops bracketed by levels always restore exactly."""
    m = Model()
    vars = [m.int_var(0, 9, f"v{i}") for i in range(4)]
    s = DomainState(m)
    snapshots = []
    op_iter = iter(ops)
    for do_push in pattern:
        if do_push or not snapshots:
            snapshots.append(list(s.masks))
            s.push_level()
            for _ in range(3):
                op = next(op_iter, None)
                if op is None:
                    break
                vi, val = op
                s.remove_value(vars[vi], val)
        else:
            s.pop_level()
            assert s.masks == snapshots.pop()
    while snapshots:
        s.pop_level()
        assert s.masks == snapshots.pop()
