"""SAT substrate tests: CNF container, cardinality encodings, CDCL solver."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import (
    CNF,
    CdclSolver,
    SatStatus,
    at_least_one,
    at_most_one_pairwise,
    at_most_one_sequential,
    exactly_k,
)
from repro.sat.encode import at_most_k_sequential
from repro.sat.solver import _luby


class TestCnf:
    def test_new_vars(self):
        cnf = CNF()
        assert cnf.new_var() == 1
        assert cnf.new_vars(3) == [2, 3, 4]
        assert cnf.n_vars == 4

    def test_add_clause_checks_vars(self):
        cnf = CNF(2)
        cnf.add_clause([1, -2])
        with pytest.raises(ValueError):
            cnf.add_clause([3])
        with pytest.raises(ValueError):
            cnf.add_clause([0])

    def test_evaluate(self):
        cnf = CNF(2)
        cnf.add_clause([1, 2])
        cnf.add_clause([-1, 2])
        assert cnf.evaluate([False, True])
        assert not cnf.evaluate([True, False])
        with pytest.raises(ValueError):
            cnf.evaluate([True])

    def test_dimacs_roundtrip(self):
        cnf = CNF(3)
        cnf.add_clause([1, -2])
        cnf.add_clause([2, 3, -1])
        text = cnf.to_dimacs()
        assert text.startswith("p cnf 3 2")
        back = CNF.from_dimacs(text)
        assert back.n_vars == 3
        assert back.clauses == cnf.clauses

    def test_dimacs_parse_comments_and_split_lines(self):
        text = "c a comment\np cnf 2 2\n1 -2 0\n2\n1 0\n"
        cnf = CNF.from_dimacs(text)
        assert cnf.clauses == [(1, -2), (2, 1)]

    def test_dimacs_bad_header(self):
        with pytest.raises(ValueError):
            CNF.from_dimacs("p wcnf 2 1\n1 0\n")


def models(cnf: CNF):
    """Brute-force all models (for small n)."""
    out = []
    for combo in itertools.product([False, True], repeat=cnf.n_vars):
        if cnf.evaluate(list(combo)):
            out.append(list(combo))
    return out


class TestEncodings:
    @pytest.mark.parametrize("encoder", [at_most_one_pairwise, at_most_one_sequential])
    @pytest.mark.parametrize("k", [0, 1, 2, 4, 5])
    def test_amo_semantics(self, encoder, k):
        cnf = CNF()
        lits = cnf.new_vars(k)
        encoder(cnf, lits)
        for m in models(cnf):
            assert sum(m[:k]) <= 1  # projection onto problem vars
        # and every <=1 assignment of problem vars extends to a model
        seen = {tuple(m[:k]) for m in models(cnf)}
        for combo in itertools.product([False, True], repeat=k):
            if sum(combo) <= 1:
                assert tuple(combo) in seen

    @pytest.mark.parametrize("n,k", [(1, 0), (3, 1), (4, 2), (5, 3), (4, 4)])
    def test_at_most_k_semantics(self, n, k):
        cnf = CNF()
        lits = cnf.new_vars(n)
        at_most_k_sequential(cnf, lits, k)
        seen = {tuple(m[:n]) for m in models(cnf)}
        for combo in itertools.product([False, True], repeat=n):
            assert (tuple(combo) in seen) == (sum(combo) <= k)

    @pytest.mark.parametrize("n,k", [(1, 1), (3, 0), (3, 2), (4, 2), (5, 5)])
    def test_exactly_k_semantics(self, n, k):
        cnf = CNF()
        lits = cnf.new_vars(n)
        exactly_k(cnf, lits, k)
        seen = {tuple(m[:n]) for m in models(cnf)}
        for combo in itertools.product([False, True], repeat=n):
            assert (tuple(combo) in seen) == (sum(combo) == k)

    def test_exactly_k_out_of_range_unsat(self):
        cnf = CNF()
        lits = cnf.new_vars(2)
        exactly_k(cnf, lits, 5)
        assert models(cnf) == []

    def test_at_least_one(self):
        cnf = CNF()
        lits = cnf.new_vars(2)
        at_least_one(cnf, lits)
        assert all(any(m) for m in models(cnf))


class TestLuby:
    def test_prefix(self):
        assert [_luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]


class TestCdclBasics:
    def test_trivial_sat(self):
        cnf = CNF(1)
        cnf.add_clause([1])
        r = CdclSolver(cnf).solve()
        assert r.status is SatStatus.SAT
        assert r.value(1) is True

    def test_trivial_unsat(self):
        cnf = CNF(1)
        cnf.add_clause([1])
        cnf.add_clause([-1])
        assert CdclSolver(cnf).solve().status is SatStatus.UNSAT

    def test_empty_clause_unsat(self):
        cnf = CNF(1)
        cnf.add_clause([])
        assert CdclSolver(cnf).solve().status is SatStatus.UNSAT

    def test_no_clauses_sat(self):
        cnf = CNF(3)
        r = CdclSolver(cnf).solve()
        assert r.status is SatStatus.SAT

    def test_tautology_dropped(self):
        cnf = CNF(2)
        cnf.add_clause([1, -1])
        cnf.add_clause([2])
        r = CdclSolver(cnf).solve()
        assert r.status is SatStatus.SAT and r.value(2)

    def test_duplicate_literals_collapse(self):
        cnf = CNF(1)
        cnf.add_clause([1, 1, 1])
        r = CdclSolver(cnf).solve()
        assert r.status is SatStatus.SAT and r.value(1)

    def test_value_requires_model(self):
        cnf = CNF(1)
        cnf.add_clause([1])
        cnf.add_clause([-1])
        r = CdclSolver(cnf).solve()
        with pytest.raises(ValueError):
            r.value(1)

    def test_time_limit(self):
        # pigeonhole PHP(6,5): hard for CDCL at tiny time budgets
        cnf = php(7, 6)
        r = CdclSolver(cnf).solve(time_limit=0.0)
        assert r.status is SatStatus.UNKNOWN

    def test_conflict_limit(self):
        cnf = php(6, 5)
        r = CdclSolver(cnf).solve(conflict_limit=2)
        assert r.status in (SatStatus.UNKNOWN, SatStatus.UNSAT)

    def test_stats_populated(self):
        cnf = php(4, 3)
        r = CdclSolver(cnf).solve()
        assert r.status is SatStatus.UNSAT
        assert r.stats.conflicts > 0
        assert r.stats.propagations > 0


def php(pigeons: int, holes: int) -> CNF:
    """Pigeonhole principle CNF: UNSAT iff pigeons > holes."""
    cnf = CNF()
    var = [[cnf.new_var() for _ in range(holes)] for _ in range(pigeons)]
    for p in range(pigeons):
        cnf.add_clause(var[p])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                cnf.add_clause([-var[p1][h], -var[p2][h]])
    return cnf


class TestPigeonhole:
    @pytest.mark.parametrize("p,h", [(2, 2), (3, 3), (3, 2), (5, 4), (6, 6)])
    def test_php(self, p, h):
        r = CdclSolver(php(p, h)).solve()
        expected = SatStatus.SAT if p <= h else SatStatus.UNSAT
        assert r.status is expected


@settings(deadline=None, max_examples=120)
@given(st.data())
def test_cdcl_matches_brute_force(data):
    """Random 3-ish-CNFs: CDCL agrees with exhaustive enumeration."""
    n = data.draw(st.integers(1, 6))
    n_clauses = data.draw(st.integers(0, 18))
    cnf = CNF(n)
    for _ in range(n_clauses):
        width = data.draw(st.integers(1, 3))
        clause = [
            data.draw(st.integers(1, n)) * data.draw(st.sampled_from([1, -1]))
            for _ in range(width)
        ]
        cnf.add_clause(clause)
    expected_sat = bool(models(cnf))
    r = CdclSolver(cnf).solve(time_limit=10)
    assert r.status is not SatStatus.UNKNOWN
    assert r.is_sat == expected_sat
    if r.is_sat:
        assert cnf.evaluate(r.model)
