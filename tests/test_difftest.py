"""The differential-testing subsystem: capability-aware cross-checking,
deterministic shrinking to 1-minimal counterexamples, JSONL artifacts,
the campaign driver, and the ``difftest`` CLI subcommand."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.difftest import (
    DEFAULT_SOLVERS,
    DiffTestConfig,
    Finding,
    cross_check,
    iter_artifacts,
    run_difftest,
    shrink_problem,
    write_artifacts,
)
from repro.difftest.core import (
    INVALID_WITNESS,
    MISSING_WITNESS,
    UNSOUND_INFEASIBLE,
    VERDICT_DISAGREEMENT,
)
from repro.difftest.shrink import shrink_candidates
from repro.model import Platform, TaskSystem
from repro.schedule.schedule import IDLE, Schedule
from repro.solvers import (
    Feasibility,
    Problem,
    register_solver,
    solve_problem,
)
from repro.solvers.base import SolveResult, SolverStats
from repro.solvers.registry import PROVES_INFEASIBILITY

from tests.helpers import running_example


class _Canned:
    """Test-only engine returning a canned result."""

    def __init__(self, name, status, schedule=None, decided_by=None):
        self.name = name
        self._result = SolveResult(
            status=status,
            schedule=schedule,
            stats=SolverStats(),
            solver_name=name,
            decided_by=decided_by or name,
        )

    def solve(self, time_limit=None, node_limit=None):
        return self._result


def _register_canned(name, make_result, capabilities=()):
    """Register a canned solver; caller must pop it from the registry."""

    @register_solver(
        name, description=f"test-only canned solver {name}",
        capabilities=capabilities, advertise=False,
    )
    def _build(system, platform, spec, seed, **options):
        return make_result(system, platform)

    return name


@pytest.fixture
def liar():
    """A trusted (proves_infeasibility) family that always lies INFEASIBLE."""
    from repro.solvers import registry as reg

    name = _register_canned(
        "dt-liar",
        lambda s, p: _Canned("dt-liar", Feasibility.INFEASIBLE),
        capabilities=(PROVES_INFEASIBILITY,),
    )
    yield name
    reg._REGISTRY.pop(name, None)


@pytest.fixture
def bogus_witness():
    """Claims FEASIBLE with an all-idle (C1-violating) schedule."""
    from repro.solvers import registry as reg

    def make(system, platform):
        table = np.full((platform.m, system.hyperperiod), IDLE, dtype=np.int32)
        return _Canned(
            "dt-bogus", Feasibility.FEASIBLE,
            schedule=Schedule(system, platform, table),
        )

    name = _register_canned("dt-bogus", make)
    yield name
    reg._REGISTRY.pop(name, None)


@pytest.fixture
def hollow():
    """Claims FEASIBLE with neither a schedule nor a certified bound."""
    from repro.solvers import registry as reg

    name = _register_canned(
        "dt-hollow", lambda s, p: _Canned("dt-hollow", Feasibility.FEASIBLE)
    )
    yield name
    reg._REGISTRY.pop(name, None)


@pytest.fixture
def weak():
    """Reports INFEASIBLE without the proves_infeasibility capability."""
    from repro.solvers import registry as reg

    name = _register_canned(
        "dt-weak", lambda s, p: _Canned("dt-weak", Feasibility.INFEASIBLE)
    )
    yield name
    reg._REGISTRY.pop(name, None)


def feasible_problem() -> Problem:
    """The running example on m=2: provably feasible (csp2+dc finds it)."""
    return Problem.of(running_example(), m=2, time_limit=20.0, label="unit")


class TestDiffTestConfig:
    def test_defaults_are_registered_solvers(self):
        cfg = DiffTestConfig()
        assert cfg.solvers == DEFAULT_SOLVERS

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            DiffTestConfig(solvers=())

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            DiffTestConfig(solvers=("sat", "sat"))

    def test_rejects_unknown_solver(self):
        with pytest.raises(ValueError, match="unknown solver"):
            DiffTestConfig(solvers=("sat", "not-a-solver"))

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            DiffTestConfig(jobs=0)

    def test_to_dict_round_trips_the_grid(self):
        cfg = DiffTestConfig(instances=7, seed=3, n=4, tmax=4)
        d = cfg.to_dict()
        assert d["instances"] == 7 and d["seed"] == 3
        assert DiffTestConfig(**d).to_dict() == d


class TestCrossCheck:
    def test_agreeing_reports_are_clean(self):
        problem = feasible_problem()
        reports = [
            solve_problem(problem, s, check=False)
            for s in ("csp2+dc", "sat")
        ]
        assert cross_check(problem, reports) == []

    def test_trusted_disagreement_is_found(self, liar):
        problem = feasible_problem()
        reports = [
            solve_problem(problem, s, check=False) for s in (liar, "csp2+dc")
        ]
        findings = cross_check(problem, reports)
        assert [f.kind for f in findings] == [VERDICT_DISAGREEMENT]
        assert "dt-liar" in findings[0].detail
        assert findings[0].solvers == (liar, "csp2+dc")

    def test_invalid_feasible_witness_is_found(self, bogus_witness):
        problem = feasible_problem()
        report = solve_problem(problem, bogus_witness, check=False)
        findings = cross_check(problem, [report])
        assert [f.kind for f in findings] == [INVALID_WITNESS]

    def test_schedule_free_feasible_needs_certified_bound(self, hollow):
        problem = feasible_problem()
        report = solve_problem(problem, hollow, check=False)
        findings = cross_check(problem, [report])
        assert [f.kind for f in findings] == [MISSING_WITNESS]

    def test_screen_sufficient_bound_is_trusted(self):
        """A screen-decided FEASIBLE with no schedule is not a finding."""
        s = TaskSystem.from_tuples([(0, 1, 4, 4)])
        problem = Problem.of(s, m=2, time_limit=10.0)
        report = solve_problem(problem, "screen+csp2+dc", check=False)
        assert report.status is Feasibility.FEASIBLE
        assert cross_check(problem, [report]) == []

    def test_untrusted_infeasible_is_unsound_not_disagreement(self, weak):
        problem = feasible_problem()
        reports = [
            solve_problem(problem, s, check=False) for s in (weak, "csp2+dc")
        ]
        kinds = [f.kind for f in cross_check(problem, reports)]
        assert UNSOUND_INFEASIBLE in kinds
        assert VERDICT_DISAGREEMENT not in kinds

    def test_unknown_never_disagrees(self):
        problem = Problem.of(running_example(), m=2, node_limit=1,
                             time_limit=5.0)
        reports = [
            solve_problem(problem, s, check=False)
            for s in ("csp2+dc", "edf-exact")
        ]
        # edf-exact overruns on node_limit=1; csp2+dc overruns too: no
        # verdicts, hence nothing to disagree about
        assert cross_check(problem, reports) == []


class TestShrinkCandidates:
    def test_structural_reductions_come_first(self):
        problem = feasible_problem()
        cands = list(shrink_candidates(problem))
        assert cands[0].system.n == problem.system.n - 1  # drop task 0
        assert all(c.system.is_constrained for c in cands)

    def test_single_task_m1_still_shrinks_parameters(self):
        problem = Problem.of(TaskSystem.from_tuples([(2, 2, 3, 4)]), m=1)
        cands = list(shrink_candidates(problem))
        assert cands, "parameter reductions expected"
        assert all(c.system.n == 1 and c.platform.m == 1 for c in cands)

    def test_fully_minimal_has_no_candidates(self):
        problem = Problem.of(TaskSystem.from_tuples([(0, 0, 1, 1)]), m=1)
        assert list(shrink_candidates(problem)) == []

    def test_budget_and_seed_preserved(self):
        problem = Problem.of(running_example(), m=2, time_limit=3.0, seed=9)
        for c in shrink_candidates(problem):
            assert c.time_limit == 3.0 and c.seed == 9


class TestShrinkProblem:
    def test_planted_disagreement_shrinks_to_trivial(self, liar):
        """The liar disagrees with csp2+dc on every feasible instance, so
        the 1-minimal counterexample is a single do-nothing task."""
        problem = feasible_problem()
        solvers = (liar, "csp2+dc")

        def still_fails(candidate):
            reports = [
                solve_problem(candidate, s, check=False) for s in solvers
            ]
            return any(
                f.kind == VERDICT_DISAGREEMENT
                for f in cross_check(candidate, reports)
            )

        small = shrink_problem(problem, still_fails, budget=300)
        assert small.system.n <= 3
        assert small.platform.m == 1
        assert [t.as_tuple() for t in small.system] == [(0, 0, 1, 1)]
        # deterministic: a second run lands on the identical minimum
        again = shrink_problem(problem, still_fails, budget=300)
        assert [t.as_tuple() for t in again.system] == [(0, 0, 1, 1)]
        assert again.platform.m == small.platform.m

    def test_budget_zero_returns_input(self):
        problem = feasible_problem()
        assert shrink_problem(problem, lambda c: True, budget=0) is problem

    def test_result_still_fails(self):
        """Whatever the predicate, the returned instance satisfies it."""
        problem = feasible_problem()

        def wide(candidate):
            return candidate.system.n >= 2

        small = shrink_problem(problem, wide, budget=100)
        assert wide(small)
        assert small.system.n == 2


class TestRunDifftest:
    def test_clean_campaign(self):
        cfg = DiffTestConfig(instances=6, n=4, tmax=4, time_limit=10.0)
        report = run_difftest(cfg)
        assert report.ok
        assert report.instances == 6
        assert report.cells == 6 * len(DEFAULT_SOLVERS)
        for solver in DEFAULT_SOLVERS:
            assert sum(report.verdicts[solver].values()) == 6
        assert "no disagreements" in report.summary()

    def test_campaign_with_planted_liar(self, liar):
        cfg = DiffTestConfig(
            solvers=(liar, "csp2+dc"), instances=4, n=3, tmax=3,
            time_limit=10.0, shrink_budget=120,
        )
        report = run_difftest(cfg)
        assert not report.ok
        finding = next(
            f for f in report.findings if f.kind == VERDICT_DISAGREEMENT
        )
        assert finding.shrunk_problem is not None
        assert finding.shrunk_problem.system.n <= finding.problem.system.n
        assert len(finding.shrunk_reports) == 2
        assert "FINDING" in report.summary()

    def test_progress_ticks_every_cell(self):
        ticks = []
        cfg = DiffTestConfig(
            solvers=("edf-exact",), instances=3, n=3, tmax=3
        )
        run_difftest(cfg, progress=lambda done, total: ticks.append((done, total)))
        assert ticks == [(1, 3), (2, 3), (3, 3)]


@pytest.fixture
def bomb():
    """A solver whose build always raises — a faulting campaign member."""
    from repro.solvers import registry as reg

    def make_result(system, platform):
        raise RuntimeError("deliberate solver explosion")

    name = _register_canned("test-bomb", make_result)
    yield name
    reg._REGISTRY.pop(name)


class TestFaultTolerantCampaign:
    """One crashing solver must not abort the differential campaign."""

    def test_faulting_solver_becomes_unknown_census(self, bomb):
        cfg = DiffTestConfig(
            solvers=(bomb, "csp2+dc"), instances=3, n=3, tmax=3,
            time_limit=10.0,
        )
        report = run_difftest(cfg)
        # the campaign completed; the bomb's cells are fault:error and,
        # being UNKNOWN underneath, can never disagree with anyone
        assert report.ok
        assert report.verdicts[bomb] == {"fault:error": 3}
        assert sum(report.verdicts["csp2+dc"].values()) == 3

    def test_solve_iter_on_fault_record_yields_fault_reports(self, bomb):
        from repro.solvers.problem import solve_iter

        problem = feasible_problem()
        reports = list(solve_iter(problem, [bomb], on_fault="record"))
        assert len(reports) == 1
        assert reports[0].status_label == "fault:error"
        assert reports[0].decided_by == "supervisor:error"
        assert "deliberate solver explosion" in reports[0].fault["detail"]

    def test_solve_iter_on_fault_raise_still_propagates(self, bomb):
        from repro.solvers.problem import solve_iter

        with pytest.raises(RuntimeError, match="deliberate solver explosion"):
            list(solve_iter(feasible_problem(), [bomb]))

    def test_solve_iter_rejects_unknown_policy(self):
        from repro.solvers.problem import solve_iter

        with pytest.raises(ValueError, match="on_fault"):
            list(solve_iter(feasible_problem(), ["csp2"], on_fault="ignore"))


class TestArtifacts:
    def test_round_trip(self, tmp_path, liar):
        cfg = DiffTestConfig(
            solvers=(liar, "csp2+dc"), instances=2, n=3, tmax=3,
            time_limit=10.0, shrink=False,
        )
        report = run_difftest(cfg)
        path = tmp_path / "findings.jsonl"
        write_artifacts(str(path), report)
        header, findings = iter_artifacts(str(path))
        assert header["config"]["solvers"] == [liar, "csp2+dc"]
        assert header["summary"]["ok"] == report.ok
        assert len(findings) == len(report.findings)
        for got, want in zip(findings, report.findings):
            assert got.kind == want.kind
            assert got.problem.to_dict() == want.problem.to_dict()
            assert [r.to_dict() for r in got.reports] == [
                r.to_dict() for r in want.reports
            ]

    def test_clean_run_writes_header_only(self, tmp_path):
        cfg = DiffTestConfig(solvers=("edf-exact",), instances=2, n=3, tmax=3)
        path = tmp_path / "clean.jsonl"
        write_artifacts(str(path), run_difftest(cfg))
        header, findings = iter_artifacts(str(path))
        assert findings == []
        assert header["summary"]["ok"] is True

    def test_rejects_foreign_jsonl(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text(json.dumps({"kind": "something-else"}) + "\n")
        with pytest.raises(ValueError, match="not a difftest artifact"):
            iter_artifacts(str(path))

    def test_finding_dict_round_trip(self, liar):
        problem = feasible_problem()
        reports = [
            solve_problem(problem, s, check=False) for s in (liar, "csp2+dc")
        ]
        finding = cross_check(problem, reports)[0]
        back = Finding.from_dict(finding.to_dict())
        assert back.kind == finding.kind
        assert back.detail == finding.detail
        assert back.problem.to_dict() == finding.problem.to_dict()
        assert back.reports[1].status is finding.reports[1].status


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestDifftestCli:
    def test_smoke_run_is_clean(self, capsys):
        code, out, _ = run_cli(
            capsys, "difftest", "--instances", "4", "-n", "4", "--tmax", "4",
            "--seed", "0", "--quiet",
        )
        assert code == 0
        assert "no disagreements" in out

    def test_json_output(self, capsys):
        code, out, _ = run_cli(
            capsys, "difftest", "--instances", "2", "-n", "3", "--tmax", "3",
            "--solvers", "edf-exact,csp2+dc", "--quiet", "--json",
        )
        assert code == 0
        data = json.loads(out)
        assert data["ok"] is True
        assert data["cells"] == 4

    def test_artifacts_written(self, capsys, tmp_path):
        path = tmp_path / "trail.jsonl"
        code, out, _ = run_cli(
            capsys, "difftest", "--instances", "2", "-n", "3", "--tmax", "3",
            "--solvers", "edf-exact", "--quiet", "--artifacts", str(path),
        )
        assert code == 0
        header, findings = iter_artifacts(str(path))
        assert findings == [] and header["summary"]["instances"] == 2

    def test_unknown_solver_exits_2(self, capsys):
        code, _, err = run_cli(
            capsys, "difftest", "--solvers", "no-such-solver", "--quiet",
        )
        assert code == 2
        assert "unknown solver" in err

    def test_bad_jobs_exits_2(self, capsys):
        code, _, err = run_cli(capsys, "difftest", "--jobs", "0", "--quiet")
        assert code == 2
