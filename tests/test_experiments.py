"""Tests for the experiment harness (runner, tables, reports, paper data)."""

import json

import pytest

from repro.experiments import (
    ExperimentRun,
    RunRecord,
    Table1Config,
    Table4Config,
    estimate_csp1_variables,
    figure1,
    run_instances,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
)
from repro.experiments.report import (
    format_table1,
    format_table2,
    format_table3,
    format_table4,
)
from repro.experiments.table3 import PAPER_BINS
from repro.generator import GeneratorConfig, generate_instances
from repro.generator.random_systems import Instance
from repro.model import TaskSystem


@pytest.fixture(scope="module")
def small_table1():
    """A tiny but real Table I run shared by the aggregation tests."""
    cfg = Table1Config(n_instances=8, time_limit=0.2, seed=7)
    return run_table1(cfg)


class TestRunner:
    def test_records_have_all_solvers(self, small_table1):
        run = small_table1.run
        per_instance = run.by_instance()
        assert len(per_instance) == 8
        for records in per_instance.values():
            assert [r.solver for r in records] == list(small_table1.config.solvers)

    def test_statuses_legal(self, small_table1):
        legal = {"feasible", "infeasible", "unknown", "skipped-memory"}
        assert {r.status for r in small_table1.run.records} <= legal

    def test_elapsed_capped_by_budget(self, small_table1):
        limit = small_table1.config.time_limit
        # generous tolerance: budget checks happen between nodes
        assert all(r.elapsed <= limit * 3 + 0.2 for r in small_table1.run.records)

    def test_overrun_semantics(self):
        r = RunRecord(1, 2, 1, 4, 0.5, "x", "unknown", 1.0, 5)
        assert r.overrun and not r.solved
        r2 = RunRecord(1, 2, 1, 4, 0.5, "x", "skipped-memory", 1.0, 0)
        assert r2.overrun
        r3 = RunRecord(1, 2, 1, 4, 0.5, "x", "feasible", 0.1, 5)
        assert r3.solved and not r3.overrun

    def test_json_roundtrip(self, small_table1):
        text = small_table1.run.to_json()
        back = ExperimentRun.from_json(text)
        assert back.records == small_table1.run.records
        assert back.time_limit == small_table1.run.time_limit

    def test_memory_guard(self):
        # n=2 tasks with long periods -> big T; force a tiny limit
        s = TaskSystem.from_tuples([(0, 1, 13, 13), (0, 1, 11, 11)])
        inst = Instance(system=s, m=1, seed=1)
        # T = lcm(13,11) = 143: each task contributes (T/T_i) * D_i = 143
        assert estimate_csp1_variables(inst) == 286
        run = run_instances([inst], ["csp1"], time_limit=0.5, csp1_variable_limit=10)
        assert run.records[0].status == "skipped-memory"
        # dedicated csp2 is never guarded
        run2 = run_instances([inst], ["csp2+dc"], time_limit=5.0, csp1_variable_limit=10)
        assert run2.records[0].status in ("feasible", "infeasible")


class TestTable1:
    def test_groups_partition_instances(self, small_table1):
        assert (
            small_table1.n_solved_instances + small_table1.n_unsolved_instances == 8
        )

    def test_overruns_bounded_by_group_size(self, small_table1):
        for group, per_solver in small_table1.overruns.items():
            size = (
                small_table1.n_solved_instances
                if group == "solved"
                else small_table1.n_unsolved_instances
            )
            assert all(0 <= v <= size for v in per_solver.values())

    def test_rows_shape(self, small_table1):
        rows = small_table1.rows()
        assert [r[0] for r in rows] == ["solved", "unsolved"]
        assert all(len(r[1]) == len(small_table1.config.solvers) for r in rows)

    def test_paper_scale_config(self):
        cfg = Table1Config.paper_scale()
        assert cfg.n_instances == 500 and cfg.time_limit == 30.0

    def test_format(self, small_table1):
        text = format_table1(small_table1)
        assert "Table I" in text
        assert "CSP1" in text and "+(D-C)" in text
        assert "paper" in text
        text_bare = format_table1(small_table1, with_paper=False)
        assert "paper" not in text_bare


class TestTable2:
    def test_reuses_table1_records(self, small_table1):
        t2 = run_table2(table1=small_table1)
        assert t2.run is small_table1.run
        assert t2.n_filtered + t2.n_unfiltered == small_table1.n_unsolved_instances

    def test_filtered_instances_really_overloaded(self, small_table1):
        t2 = run_table2(table1=small_table1)
        for records in small_table1.run.by_instance().values():
            if any(r.solved for r in records):
                continue
            r = records[0].utilization_ratio
            if r > 1:
                # a filtered instance can never be feasible
                assert not any(rec.status == "feasible" for rec in records)

    def test_format(self, small_table1):
        t2 = run_table2(table1=small_table1)
        text = format_table2(t2)
        assert "Table II" in text and "provably unsolvable" in text


class TestTable3:
    def test_bins_cover_all_instances(self, small_table1):
        t3 = run_table3(table1=small_table1)
        assert sum(b[2] for b in t3.bins) == 8

    def test_bin_edges_match_paper(self):
        assert PAPER_BINS[0] == (0.0, 0.4)
        assert PAPER_BINS[1] == (0.4, 0.5)
        assert PAPER_BINS[-1] == (1.7, 2.0)
        # contiguous
        for (a, b), (c, d) in zip(PAPER_BINS, PAPER_BINS[1:]):
            assert b == c

    def test_mean_time_none_for_empty_bins(self, small_table1):
        t3 = run_table3(table1=small_table1)
        for lo, hi, count, mean_t in t3.bins:
            assert (mean_t is None) == (count == 0)

    def test_format(self, small_table1):
        text = format_table3(run_table3(table1=small_table1))
        assert "Table III" in text and "rmin-rmax" in text


class TestTable4:
    @pytest.fixture(scope="class")
    def t4(self):
        cfg = Table4Config(task_counts=(4, 8), instances_per_n=3, time_limit=0.2)
        return run_table4(cfg)

    def test_rows_per_n(self, t4):
        assert [row.n for row in t4.rows] == [4, 8]

    def test_min_processors_rule(self, t4):
        for run in t4.runs.values():
            assert all(r.utilization_ratio <= 1.0 + 1e-9 for r in run.records)

    def test_csp1_skipped_beyond_max_n(self):
        cfg = Table4Config(
            task_counts=(4, 8), instances_per_n=2, time_limit=0.2, csp1_max_n=4
        )
        t4 = run_table4(cfg)
        assert t4.rows[0].per_solver["csp1"] is not None
        assert t4.rows[1].per_solver["csp1"] is None

    def test_solved_fraction_range(self, t4):
        for row in t4.rows:
            for entry in row.per_solver.values():
                if entry is not None:
                    assert 0.0 <= entry[0] <= 1.0

    def test_format(self, t4):
        text = format_table4(t4)
        assert "Table IV" in text
        assert "(paper)" in text

    def test_paper_scale(self):
        cfg = Table4Config.paper_scale()
        assert cfg.task_counts == (4, 8, 16, 32, 64, 128, 256)
        assert cfg.instances_per_n == 100


class TestFigure1:
    def test_default_is_running_example(self):
        text = figure1()
        assert "hyperperiod T = 12" in text
        assert "tau1" in text and "tau3" in text

    def test_custom_system(self):
        s = TaskSystem.from_tuples([(0, 1, 2, 2)])
        assert "hyperperiod T = 2" in figure1(s)


class TestPaperData:
    def test_table1_totals_consistent(self):
        from repro.experiments.paperdata import PAPER_TABLE1

        assert PAPER_TABLE1["solved"]["total"] == 295
        assert PAPER_TABLE1["unsolved"]["total"] == 205
        # 500 instances in total
        assert 295 + 205 == 500

    def test_table2_partitions_table1_unsolved(self):
        from repro.experiments.paperdata import PAPER_TABLE2

        assert PAPER_TABLE2["filtered"]["total"] + PAPER_TABLE2["unfiltered"]["total"] == 205
        # per-solver overruns add up across the split (paper consistency)
        for s in ("csp1", "csp2", "csp2+dc"):
            total = PAPER_TABLE2["filtered"][s] + PAPER_TABLE2["unfiltered"][s]
            from repro.experiments.paperdata import PAPER_TABLE1

            assert total == PAPER_TABLE1["unsolved"][s]

    def test_table3_instance_count(self):
        from repro.experiments.paperdata import PAPER_TABLE3

        assert sum(cnt for _, _, cnt, _ in PAPER_TABLE3) == 500
