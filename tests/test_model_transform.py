"""Tests for the arbitrary-deadline clone transformation (paper Section VI-B)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model import Task, TaskSystem, clone_for_arbitrary_deadlines
from repro.util.math import ceil_div


def arbitrary_systems(max_n=4, max_period=8, max_deadline=20):
    def build(params):
        tasks = []
        for o, t, d, c in params:
            tasks.append(Task(o, min(c, d), d, t))
        return TaskSystem(tasks)

    return st.builds(
        build,
        st.lists(
            st.tuples(
                st.integers(0, 6),
                st.integers(1, max_period),
                st.integers(1, max_deadline),
                st.integers(0, 8),
            ),
            min_size=1,
            max_size=max_n,
        ),
    )


class TestConstrainedPassThrough:
    def test_identity_on_constrained(self):
        s = TaskSystem.from_tuples([(0, 1, 2, 2), (1, 3, 4, 4)])
        cloned, cmap = clone_for_arbitrary_deadlines(s)
        assert cloned == s
        assert cmap.is_identity
        assert cmap.origin_of == (0, 1)
        assert cmap.clones_of == ((0,), (1,))


class TestPaperFormulas:
    def test_clone_parameters(self):
        # D=5, T=2 -> k = ceil(5/2) = 3 clones
        s = TaskSystem.from_tuples([(1, 2, 5, 2)])
        cloned, cmap = clone_for_arbitrary_deadlines(s)
        assert len(cloned) == 3
        assert [c.as_tuple() for c in cloned] == [
            (1, 2, 5, 6),  # O + 0*T, C, D, k*T
            (3, 2, 5, 6),  # O + 1*T
            (5, 2, 5, 6),  # O + 2*T
        ]
        assert cmap.origin_of == (0, 0, 0)
        assert cmap.clone_index_of == (1, 2, 3)
        assert not cmap.is_identity

    def test_clone_names(self):
        s = TaskSystem.from_tuples([(0, 1, 3, 2)], names=["a"])
        cloned, _ = clone_for_arbitrary_deadlines(s)
        assert [c.name for c in cloned] == ["a.1", "a.2"]

    def test_mixed_system(self):
        s = TaskSystem.from_tuples([(0, 1, 2, 2), (0, 1, 3, 2)])
        cloned, cmap = clone_for_arbitrary_deadlines(s)
        assert len(cloned) == 3
        assert cmap.clones_of == ((0,), (1, 2))
        assert cloned[0].as_tuple() == (0, 1, 2, 2)


@given(arbitrary_systems())
def test_clones_are_constrained(s):
    cloned, _ = clone_for_arbitrary_deadlines(s)
    assert cloned.is_constrained


@given(arbitrary_systems())
def test_clone_count_is_ceil_d_over_t(s):
    cloned, cmap = clone_for_arbitrary_deadlines(s)
    for i, task in enumerate(s):
        assert len(cmap.clones_of[i]) == ceil_div(task.deadline, task.period)
    assert len(cloned) == sum(len(c) for c in cmap.clones_of)


@given(arbitrary_systems())
def test_clone_utilization_preserved(s):
    """Each task's k clones with period kT contribute the same utilization."""
    cloned, _ = clone_for_arbitrary_deadlines(s)
    assert cloned.utilization == s.utilization


@given(arbitrary_systems())
def test_clone_releases_partition_original_releases(s):
    """Within one original hyperperiod multiple, the union of clone releases
    equals the original task's releases, with no duplicates."""
    cloned, cmap = clone_for_arbitrary_deadlines(s)
    horizon = cloned.hyperperiod
    for i, task in enumerate(s):
        n_rel = horizon // task.period + 1
        original = {task.offset + k * task.period for k in range(n_rel)}
        original = {r for r in original if r < task.offset + horizon}
        clone_rel = set()
        for c in cmap.clones_of[i]:
            ct = cloned[c]
            for k in range(n_rel):
                r = ct.offset + k * ct.period
                if r < task.offset + horizon:
                    assert r not in clone_rel, "double release"
                    clone_rel.add(r)
        assert clone_rel == original


@given(arbitrary_systems())
def test_origin_map_consistent(s):
    cloned, cmap = clone_for_arbitrary_deadlines(s)
    for i, clones in enumerate(cmap.clones_of):
        for rank, c in enumerate(clones, start=1):
            assert cmap.origin_of[c] == i
            assert cmap.clone_index_of[c] == rank
            assert cloned[c].wcet == s[i].wcet
            assert cloned[c].deadline == s[i].deadline
