"""Solver-level tests: every solver agrees with ground truth and each other."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import Platform, Task, TaskSystem
from repro.schedule import IDLE, Schedule, validate
from repro.solvers import Feasibility, available_solvers, create_solver, solve

from tests.helpers import running_example


def brute_force_feasible(system: TaskSystem, m: int) -> bool:
    """Ground truth on tiny instances: try every (n+1)^(m*T) table."""
    T = system.hyperperiod
    n = system.n
    cells = m * T
    assert (n + 1) ** cells <= 200_000, "instance too big for brute force"
    for combo in itertools.product(range(-1, n), repeat=cells):
        table = np.array(combo, dtype=np.int32).reshape(m, T)
        if validate(Schedule(system, Platform.identical(m), table)).ok:
            return True
    return False


def tiny_systems():
    """Constrained systems with hyperperiod <= 4 and n <= 2 (brute-forceable)."""

    def build(params):
        tasks = []
        for o, t, d, c in params:
            d = min(d, t)
            tasks.append(Task(o % t, min(c, d), d, t))
        return TaskSystem(tasks)

    period = st.sampled_from([1, 2, 4])
    return st.builds(
        build,
        st.lists(
            st.tuples(st.integers(0, 3), period, st.integers(1, 4), st.integers(0, 3)),
            min_size=1,
            max_size=2,
        ),
    )


ALL_SOLVERS = [
    "csp1",
    "csp2",
    "csp2+rm",
    "csp2+dm",
    "csp2+tc",
    "csp2+dc",
    "csp2-generic",
    "csp2-generic+dc",
    "sat",
    "sat+pairwise",
]


@settings(deadline=None, max_examples=40)
@given(tiny_systems(), st.integers(1, 2))
def test_all_solvers_match_brute_force(system, m):
    expected = brute_force_feasible(system, m)
    platform = Platform.identical(m)
    for name in ALL_SOLVERS:
        r = create_solver(name, system, platform).solve(time_limit=20)
        assert r.status is not Feasibility.UNKNOWN, (name, system)
        assert r.is_feasible == expected, (name, system, m)
        if r.is_feasible:
            assert validate(r.schedule).ok, (name, system, m)


def medium_systems():
    """Constrained systems small enough for all solvers but non-trivial."""

    def build(params):
        tasks = []
        for o, t, d, c in params:
            d = min(d, t)
            tasks.append(Task(o % t, min(c, d), d, t))
        return TaskSystem(tasks)

    period = st.sampled_from([1, 2, 3, 6])
    return st.builds(
        build,
        st.lists(
            st.tuples(st.integers(0, 5), period, st.integers(1, 6), st.integers(0, 4)),
            min_size=2,
            max_size=4,
        ),
    )


@settings(deadline=None, max_examples=25)
@given(medium_systems(), st.integers(1, 3))
def test_solver_agreement_medium(system, m):
    """All solver families agree on feasibility (no ground truth needed)."""
    platform = Platform.identical(m)
    answers = {}
    for name in ["csp1", "csp2", "csp2+dc", "csp2-generic", "sat"]:
        r = create_solver(name, system, platform).solve(time_limit=20)
        assert r.status is not Feasibility.UNKNOWN, (name, system)
        answers[name] = r.is_feasible
        if r.schedule is not None:
            assert validate(r.schedule).ok
    assert len(set(answers.values())) == 1, (answers, system, m)


@settings(deadline=None, max_examples=20)
@given(medium_systems())
def test_dedicated_flag_ablations_agree(system):
    """idle rule / symmetry / prunings change effort, never the answer."""
    platform = Platform.identical(2)
    reference = None
    for symmetry in (True, False):
        for idle in (True, False):
            for demand in (True, False):
                for energetic in (True, False):
                    r = create_solver(
                        "csp2+dc",
                        system,
                        platform,
                        symmetry_breaking=symmetry,
                        idle_rule=idle,
                        demand_pruning=demand,
                        energetic_pruning=energetic,
                    ).solve(time_limit=20)
                    assert r.status is not Feasibility.UNKNOWN
                    if reference is None:
                        reference = r.is_feasible
                    assert r.is_feasible == reference, (
                        symmetry, idle, demand, energetic, system,
                    )
                    if r.schedule is not None:
                        assert validate(r.schedule).ok


def het_systems():
    def build(params):
        return TaskSystem(
            [Task(o % t, c, min(d, t), t) for o, t, d, c in params]
        )

    period = st.sampled_from([1, 2, 4])
    return st.builds(
        build,
        st.lists(
            st.tuples(st.integers(0, 3), period, st.integers(1, 4), st.integers(0, 5)),
            min_size=1,
            max_size=3,
        ),
    )


@settings(deadline=None, max_examples=25)
@given(het_systems(), st.data())
def test_heterogeneous_solver_agreement(system, data):
    """CSP1, generic CSP2 and dedicated CSP2 agree on heterogeneous rates."""
    n = system.n
    m = data.draw(st.integers(1, 2))
    rates = [
        [data.draw(st.integers(0, 2)) for _ in range(m)] for _ in range(n)
    ]
    for row in rates:
        if all(r == 0 for r in row):
            row[0] = 1
    platform = Platform.heterogeneous(rates)
    answers = {}
    for name in ["csp1", "csp2", "csp2+dc", "csp2-generic"]:
        r = create_solver(name, system, platform).solve(time_limit=20)
        assert r.status is not Feasibility.UNKNOWN, (name, system, rates)
        answers[name] = r.is_feasible
        if r.schedule is not None:
            assert validate(r.schedule).ok, (name, rates)
    assert len(set(answers.values())) == 1, (answers, system, rates)


class TestRegistry:
    def test_all_registered_names_construct(self):
        s = running_example()
        p = Platform.identical(2)
        for name in available_solvers():
            solver = create_solver(name, s, p)
            assert hasattr(solver, "solve")

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown solver"):
            create_solver("magic", running_example(), Platform.identical(2))

    def test_unknown_heuristic(self):
        with pytest.raises(ValueError, match="unknown suffix"):
            create_solver("csp2+xyz", running_example(), Platform.identical(2))

    def test_paper_solver_names(self):
        from repro.solvers.registry import PAPER_SOLVERS

        assert PAPER_SOLVERS == ["csp1", "csp2", "csp2+rm", "csp2+dm", "csp2+tc", "csp2+dc"]


class TestApi:
    def test_solve_with_m(self):
        res = solve(running_example(), m=2, time_limit=20)
        assert res.is_feasible
        assert validate(res.schedule).ok
        assert res.original_schedule is res.schedule  # no clones

    def test_solve_requires_platform_or_m(self):
        with pytest.raises(ValueError, match="platform"):
            solve(running_example())

    def test_solve_conflicting_m(self):
        with pytest.raises(ValueError, match="conflicting"):
            solve(running_example(), platform=Platform.identical(2), m=3)

    def test_arbitrary_deadline_roundtrip(self):
        arb = TaskSystem.from_tuples([(0, 2, 5, 2), (0, 1, 3, 3)])
        res = solve(arb, m=2, time_limit=20)
        assert res.is_feasible
        assert not res.clone_map.is_identity
        # cloned schedule is the validated one
        assert validate(res.schedule).ok
        orig = res.original_schedule
        assert orig.system == arb
        # merged table busy-count matches: relabeling preserves busy slots
        assert orig.busy_slots() == res.schedule.busy_slots()

    def test_arbitrary_deadline_parallel_clones(self):
        # one task with D=2T: both clones must overlap at some slot
        arb = TaskSystem.from_tuples([(0, 4, 4, 2)])
        res = solve(arb, m=2, time_limit=20)
        assert res.is_feasible
        orig = res.original_schedule
        both = [
            t for t in range(orig.horizon)
            if orig.entry(0, t) == 0 and orig.entry(1, t) == 0
        ]
        assert both, "clones of the saturated task must run in parallel somewhere"

    def test_heterogeneous_arbitrary_rejected(self):
        arb = TaskSystem.from_tuples([(0, 1, 5, 3)])
        with pytest.raises(ValueError, match="cloned"):
            solve(arb, platform=Platform.heterogeneous([[1]]))

    def test_infeasible_reported(self):
        s = TaskSystem.from_tuples([(0, 2, 2, 2), (0, 2, 2, 2)])
        res = solve(s, m=1, time_limit=20)
        assert res.status is Feasibility.INFEASIBLE
        assert res.schedule is None
        assert res.original_schedule is None

    def test_timeout_reported(self):
        s = running_example()
        res = solve(s, m=2, solver="csp1", time_limit=0.0)
        assert res.status is Feasibility.UNKNOWN

    def test_seed_reproducibility(self):
        s = running_example()
        a = solve(s, m=2, solver="csp1", seed=42, time_limit=20)
        b = solve(s, m=2, solver="csp1", seed=42, time_limit=20)
        assert a.is_feasible and b.is_feasible
        assert a.schedule == b.schedule
