"""Unit tests for each propagator, plus a brute-force semantics oracle.

Propagators are incremental: the engine calls ``reset(state)`` once per
search and keeps owned counters current by feeding ``on_event`` deltas.
Direct (engine-less) use must therefore rebuild the counters after any
out-of-band domain mutation — the :func:`run` helper below is that
contract in one place, and :class:`TestIncrementalCounters` checks that
delta-fed counters always agree with a fresh ``reset``.
"""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.csp import (
    EVT_ASSIGN,
    EVT_BOUNDS,
    EVT_REMOVE,
    PROP_ENTAILED,
    PROP_FAIL,
    PROP_OK,
    AllDifferentExceptValue,
    AtMostOneTrue,
    CountEq,
    ExactSumBool,
    Model,
    NonDecreasing,
    Table,
    WeightedCountEq,
    WeightedExactSumBool,
)
from repro.csp.state import DomainState


def run(constraint, state):
    """Direct-use contract: rebuild owned counters, then propagate."""
    constraint.reset(state)
    return constraint.propagate(state)


def satisfies(constraint, values: dict) -> bool:
    """Ground-truth semantics of every propagator (used across test files)."""
    vals = [values[v] for v in constraint.vars]
    if isinstance(constraint, AtMostOneTrue):
        return sum(vals) <= 1
    if isinstance(constraint, WeightedExactSumBool):
        return sum(c * x for c, x in zip(constraint.coefs, vals)) == constraint.total
    if isinstance(constraint, ExactSumBool):
        return sum(vals) == constraint.total
    if isinstance(constraint, WeightedCountEq):
        return (
            sum(c for c, x in zip(constraint.coefs, vals) if x == constraint.value)
            == constraint.total
        )
    if isinstance(constraint, CountEq):
        return vals.count(constraint.value) == constraint.total
    if isinstance(constraint, AllDifferentExceptValue):
        seen = set()
        for x in vals:
            if x == constraint.except_value:
                continue
            if x in seen:
                return False
            seen.add(x)
        return True
    if isinstance(constraint, NonDecreasing):
        return all(a <= b for a, b in zip(vals, vals[1:]))
    if isinstance(constraint, Table):
        return tuple(vals) in constraint.tuples
    raise TypeError(f"no oracle for {type(constraint).__name__}")


class TestAtMostOneTrue:
    def test_second_true_fails(self):
        m = Model()
        a, b = m.bool_var("a"), m.bool_var("b")
        p = AtMostOneTrue([a, b])
        s = DomainState(m)
        s.assign(a, 1)
        s.assign(b, 1)
        assert not run(p, s)

    def test_one_true_forces_zeros(self):
        m = Model()
        a, b, c = (m.bool_var(x) for x in "abc")
        p = AtMostOneTrue([a, b, c])
        s = DomainState(m)
        s.assign(b, 1)
        assert run(p, s)
        assert s.value(a) == 0 and s.value(c) == 0

    def test_no_true_no_pruning(self):
        m = Model()
        a, b = m.bool_var("a"), m.bool_var("b")
        s = DomainState(m)
        assert run(AtMostOneTrue([a, b]), s)
        assert s.size(a) == 2 and s.size(b) == 2

    def test_rejects_non_bool(self):
        m = Model()
        with pytest.raises(ValueError):
            AtMostOneTrue([m.int_var(0, 2)])

    def test_entailed_after_forcing(self):
        m = Model()
        a, b, c = (m.bool_var(x) for x in "abc")
        p = AtMostOneTrue([a, b, c])
        s = DomainState(m)
        s.assign(b, 1)
        assert run(p, s) == PROP_ENTAILED

    def test_entailed_with_one_open_var(self):
        m = Model()
        a, b = m.bool_var("a"), m.bool_var("b")
        p = AtMostOneTrue([a, b])
        s = DomainState(m)
        s.assign(a, 0)
        assert run(p, s) == PROP_ENTAILED  # a single free bool can't violate


class TestExactSumBool:
    def test_saturated_forces_zeros(self):
        m = Model()
        vs = [m.bool_var() for _ in range(4)]
        s = DomainState(m)
        s.assign(vs[0], 1)
        s.assign(vs[1], 1)
        assert run(ExactSumBool(vs, 2), s)
        assert s.value(vs[2]) == 0 and s.value(vs[3]) == 0

    def test_tight_forces_ones(self):
        m = Model()
        vs = [m.bool_var() for _ in range(3)]
        s = DomainState(m)
        s.assign(vs[0], 0)
        assert run(ExactSumBool(vs, 2), s)
        assert s.value(vs[1]) == 1 and s.value(vs[2]) == 1

    def test_overshoot_fails(self):
        m = Model()
        vs = [m.bool_var() for _ in range(2)]
        s = DomainState(m)
        s.assign(vs[0], 1)
        s.assign(vs[1], 1)
        assert not run(ExactSumBool(vs, 1), s)

    def test_undershoot_fails(self):
        m = Model()
        vs = [m.bool_var() for _ in range(2)]
        s = DomainState(m)
        s.assign(vs[0], 0)
        s.assign(vs[1], 0)
        assert not run(ExactSumBool(vs, 1), s)

    def test_rejects_negative_total(self):
        m = Model()
        with pytest.raises(ValueError):
            ExactSumBool([m.bool_var()], -1)

    def test_entailed_when_forced(self):
        m = Model()
        vs = [m.bool_var() for _ in range(3)]
        s = DomainState(m)
        s.assign(vs[0], 1)
        assert run(ExactSumBool(vs, 1), s) == PROP_ENTAILED
        assert s.value(vs[1]) == 0 and s.value(vs[2]) == 0

    def test_open_returns_ok(self):
        m = Model()
        vs = [m.bool_var() for _ in range(3)]
        s = DomainState(m)
        assert run(ExactSumBool(vs, 1), s) == PROP_OK


class TestWeightedExactSumBool:
    def test_coefficient_overshoot_pruned(self):
        # 3a + 2b == 2  ->  a must be 0, b must be 1
        m = Model()
        a, b = m.bool_var("a"), m.bool_var("b")
        s = DomainState(m)
        assert run(WeightedExactSumBool([a, b], [3, 2], 2), s)
        assert s.value(a) == 0 and s.value(b) == 1

    def test_needed_var_forced(self):
        # 2a + 1b == 3 -> both required
        m = Model()
        a, b = m.bool_var("a"), m.bool_var("b")
        s = DomainState(m)
        assert run(WeightedExactSumBool([a, b], [2, 1], 3), s)
        assert s.value(a) == 1 and s.value(b) == 1

    def test_unreachable_total_fails(self):
        m = Model()
        a = m.bool_var("a")
        s = DomainState(m)
        assert not run(WeightedExactSumBool([a], [2], 3), s)

    def test_validation(self):
        m = Model()
        a = m.bool_var()
        with pytest.raises(ValueError):
            WeightedExactSumBool([a], [0], 1)
        with pytest.raises(ValueError):
            WeightedExactSumBool([a], [1, 2], 1)
        with pytest.raises(ValueError):
            WeightedExactSumBool([a], [1], -2)

    def test_rejects_duplicate_variables(self):
        m = Model()
        a = m.bool_var("a")
        with pytest.raises(ValueError):
            WeightedExactSumBool([a, a], [1, 2], 2)

    def test_fully_decided_entailed(self):
        m = Model()
        a, b = m.bool_var("a"), m.bool_var("b")
        s = DomainState(m)
        assert run(WeightedExactSumBool([a, b], [3, 2], 2), s) == PROP_ENTAILED

    def test_no_forcing_possible_returns_ok(self):
        # 2a + 2b + 2c == 4: every coefficient fits both slacks
        m = Model()
        vs = [m.bool_var() for _ in range(3)]
        s = DomainState(m)
        assert run(WeightedExactSumBool(vs, [2, 2, 2], 4), s) == PROP_OK


class TestCountEq:
    def test_saturated_removes_value(self):
        m = Model()
        vs = [m.int_var(0, 2) for _ in range(3)]
        s = DomainState(m)
        s.assign(vs[0], 1)
        assert run(CountEq(vs, 1, 1), s)
        assert s.values(vs[1]) == [0, 2]
        assert s.values(vs[2]) == [0, 2]

    def test_tight_assigns_value(self):
        m = Model()
        vs = [m.int_var(0, 2) for _ in range(3)]
        s = DomainState(m)
        s.remove_value(vs[0], 1)
        assert run(CountEq(vs, 1, 2), s)
        assert s.value(vs[1]) == 1 and s.value(vs[2]) == 1

    def test_value_not_in_any_domain_with_positive_total_fails(self):
        m = Model()
        vs = [m.int_var(0, 2) for _ in range(2)]
        s = DomainState(m)
        assert not run(CountEq(vs, 7, 1), s)

    def test_total_zero_removes_everywhere(self):
        m = Model()
        vs = [m.int_var(0, 2) for _ in range(2)]
        s = DomainState(m)
        assert run(CountEq(vs, 1, 0), s)
        assert s.values(vs[0]) == [0, 2]

    def test_offset_domains(self):
        m = Model()
        vs = [m.int_var(5, 7), m.int_var(3, 5)]
        s = DomainState(m)
        s.assign(vs[0], 5)
        assert run(CountEq(vs, 5, 1), s)
        assert s.values(vs[1]) == [3, 4]

    def test_saturation_entails(self):
        m = Model()
        vs = [m.int_var(0, 2) for _ in range(3)]
        s = DomainState(m)
        s.assign(vs[0], 1)
        assert run(CountEq(vs, 1, 1), s) == PROP_ENTAILED

    def test_open_returns_ok(self):
        m = Model()
        vs = [m.int_var(0, 2) for _ in range(3)]
        s = DomainState(m)
        assert run(CountEq(vs, 1, 1), s) == PROP_OK


class TestWeightedCountEq:
    def test_weights_respected(self):
        # coef 2 on v0: if v0==value it contributes 2
        m = Model()
        vs = [m.int_var(0, 1), m.int_var(0, 1)]
        s = DomainState(m)
        s.assign(vs[0], 1)
        # total=2 already reached: remove value 1 from v1
        assert run(WeightedCountEq(vs, [2, 1], 1, 2), s)
        assert s.value(vs[1]) == 0

    def test_overshooting_candidate_loses_value(self):
        # total 1 cannot absorb the coef-2 candidate
        m = Model()
        vs = [m.int_var(0, 1), m.int_var(0, 1)]
        s = DomainState(m)
        assert run(WeightedCountEq(vs, [2, 1], 1, 1), s)
        assert s.values(vs[0]) == [0]
        assert s.value(vs[1]) == 1  # forced: only way to reach 1

    def test_unreachable_fails(self):
        m = Model()
        vs = [m.int_var(0, 1)]
        s = DomainState(m)
        assert not run(WeightedCountEq(vs, [2], 1, 3), s)

    def test_rejects_duplicate_variables(self):
        m = Model()
        v = m.int_var(0, 1)
        with pytest.raises(ValueError):
            WeightedCountEq([v, v], [1, 1], 1, 1)


class TestAllDifferentExceptValue:
    def test_duplicate_fails(self):
        m = Model()
        a, b = m.int_var(0, 3), m.int_var(0, 3)
        s = DomainState(m)
        s.assign(a, 2)
        s.assign(b, 2)
        assert not run(AllDifferentExceptValue([a, b], None), s)

    def test_exception_value_may_repeat(self):
        m = Model()
        a, b = m.int_var(0, 3), m.int_var(0, 3)
        s = DomainState(m)
        s.assign(a, 3)
        s.assign(b, 3)
        assert run(AllDifferentExceptValue([a, b], 3), s)

    def test_assigned_value_removed_from_others(self):
        m = Model()
        a, b, c = (m.int_var(0, 3) for _ in range(3))
        s = DomainState(m)
        s.assign(a, 1)
        assert run(AllDifferentExceptValue([a, b, c], 3), s)
        assert 1 not in s.values(b) and 1 not in s.values(c)

    def test_needs_two_vars(self):
        m = Model()
        with pytest.raises(ValueError):
            AllDifferentExceptValue([m.int_var(0, 1)], None)

    def test_entailed_when_one_var_open_and_clean(self):
        m = Model()
        a, b = m.int_var(0, 3), m.int_var(0, 3)
        p = AllDifferentExceptValue([a, b], None)
        s = DomainState(m)
        s.assign(a, 1)
        assert run(p, s) == PROP_OK  # pruning call: removed 1 from b
        assert run(p, s) == PROP_ENTAILED  # clean call: one open var left


class TestNonDecreasing:
    def test_bounds_ripple(self):
        m = Model()
        a, b, c = m.int_var(0, 9), m.int_var(3, 5), m.int_var(0, 9)
        s = DomainState(m)
        assert run(NonDecreasing([a, b, c]), s)
        assert s.max_value(a) == 5  # a <= max(b)
        assert s.min_value(c) == 3  # c >= min(b)

    def test_conflict(self):
        m = Model()
        a, b = m.int_var(5, 9), m.int_var(0, 3)
        s = DomainState(m)
        assert not run(NonDecreasing([a, b]), s)

    def test_chain_transitive(self):
        m = Model()
        vs = [m.int_var(0, 9) for _ in range(4)]
        s = DomainState(m)
        s.assign(vs[0], 6)
        s.assign(vs[3], 7)
        assert run(NonDecreasing(vs), s)
        assert s.min_value(vs[1]) == 6 and s.max_value(vs[1]) == 7
        assert s.min_value(vs[2]) == 6 and s.max_value(vs[2]) == 7

    def test_entailed_when_bounds_separate(self):
        m = Model()
        a, b = m.int_var(0, 2), m.int_var(2, 5)
        s = DomainState(m)
        assert run(NonDecreasing([a, b]), s) == PROP_ENTAILED

    def test_overlapping_bounds_stay_active(self):
        m = Model()
        a, b = m.int_var(0, 5), m.int_var(0, 5)
        s = DomainState(m)
        assert run(NonDecreasing([a, b]), s) == PROP_OK


class TestTable:
    def test_filters_to_supports(self):
        m = Model()
        a, b = m.int_var(0, 2), m.int_var(0, 2)
        s = DomainState(m)
        t = Table([a, b], [(0, 1), (1, 2)])
        assert run(t, s)
        assert s.values(a) == [0, 1]
        assert s.values(b) == [1, 2]

    def test_no_support_fails(self):
        m = Model()
        a, b = m.int_var(0, 1), m.int_var(0, 1)
        s = DomainState(m)
        s.assign(a, 1)
        s.assign(b, 1)
        assert not run(Table([a, b], [(0, 0), (0, 1)]), s)

    def test_arity_checked(self):
        m = Model()
        with pytest.raises(ValueError):
            Table([m.int_var(0, 1)], [(0, 1)])

    def test_single_tuple_assigns_and_entails(self):
        m = Model()
        a, b = m.int_var(0, 2), m.int_var(0, 2)
        s = DomainState(m)
        assert run(Table([a, b], [(2, 1)]), s) == PROP_ENTAILED
        assert s.value(a) == 2 and s.value(b) == 1

    def test_incremental_validity_tracks_removals(self):
        m = Model()
        a, b = m.int_var(0, 2), m.int_var(0, 2)
        t = Table([a, b], [(0, 1), (1, 2), (2, 0)])
        s = DomainState(m)
        t.reset(s)
        assert t.propagate(s) == PROP_OK
        # engine contract: feed the delta, then re-propagate
        old = s.mask(a)
        s.remove_value(a, 0)
        t.on_event(s, a.index, old, s.mask(a))
        assert t.propagate(s) == PROP_OK
        assert s.values(b) == [0, 2]  # tuple (0,1) no longer supports b=1


class TestIncrementalCounters:
    """Delta-fed counters must always agree with a from-scratch reset."""

    def _drive(self, constraint, state, ops):
        """Apply (var, value) removals, feeding deltas like the engine."""
        constraint.incremental = True  # force delta mode below the threshold
        constraint.reset(state)
        for var, value in ops:
            old = state.mask(var)
            if not state.remove_value(var, value):
                return False
            new = state.mask(var)
            if old != new:
                constraint.on_event(state, var.index, old, new)
        return True

    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=12))
    def test_counteq_counters_match_reset(self, ops):
        m = Model()
        vs = [m.int_var(0, 3) for _ in range(4)]
        inc = CountEq(vs, 2, 2)
        ref = CountEq(vs, 2, 2)
        s = DomainState(m)
        if not self._drive(inc, s, [(vs[i], val) for i, val in ops]):
            return  # a removal wiped a domain; search would backtrack here
        ref.reset(s)
        assert inc._c == ref._c

    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 1)), max_size=8))
    def test_weighted_sum_counters_match_reset(self, ops):
        m = Model()
        vs = [m.bool_var() for _ in range(4)]
        inc = WeightedExactSumBool(vs, [1, 2, 3, 4], 5)
        ref = WeightedExactSumBool(vs, [1, 2, 3, 4], 5)
        s = DomainState(m)
        if not self._drive(inc, s, [(vs[i], val) for i, val in ops]):
            return
        ref.reset(s)
        assert inc._c == ref._c


def test_pruning_never_removes_solutions():
    """Propagator soundness: any full assignment satisfying the constraint
    survives one propagate() call from any sub-domain containing it."""
    m = Model()
    vs = [m.int_var(0, 2) for _ in range(3)]
    constraints = [
        CountEq(vs, 1, 2),
        AllDifferentExceptValue(vs, 2),
        NonDecreasing(vs),
        WeightedCountEq(vs, [2, 1, 1], 0, 2),
        Table(vs, [(0, 1, 2), (2, 2, 2), (1, 1, 0)]),
    ]
    for constraint in constraints:
        for full in itertools.product([0, 1, 2], repeat=3):
            values = dict(zip(vs, full))
            if not satisfies(constraint, values):
                continue
            s = DomainState(m)
            # restrict each var to {value, value+something} supersets
            for v, val in values.items():
                s.intersect_mask(v, (1 << (val - v.offset)) | s.mask(v))
            assert run(constraint, s), (constraint, full)
            for v, val in values.items():
                assert s.contains(v, val), (constraint, full, v.name)


def test_event_masks_classify_mutations():
    """The typed event log tags ASSIGN / BOUNDS / REMOVE correctly."""
    m = Model()
    x = m.int_var(0, 5, "x")
    s = DomainState(m)
    s.remove_value(x, 3)  # interior removal: REMOVE only
    s.remove_value(x, 5)  # upper bound moves: REMOVE|BOUNDS
    s.assign(x, 1)  # singleton: all three
    kinds = [e[3] for e in s.events]
    assert kinds[0] == EVT_REMOVE
    assert kinds[1] == EVT_REMOVE | EVT_BOUNDS
    assert kinds[2] == EVT_REMOVE | EVT_BOUNDS | EVT_ASSIGN


def test_propagate_verdict_constants_are_truthy_consistent():
    """Legacy bool returns and the tri-state verdicts must agree."""
    assert not PROP_FAIL
    assert PROP_OK and PROP_ENTAILED
    assert PROP_FAIL == False  # noqa: E712 - the legacy contract, spelled out
    assert PROP_OK == True  # noqa: E712
