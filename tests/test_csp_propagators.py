"""Unit tests for each propagator, plus a brute-force semantics oracle."""

import itertools

import pytest

from repro.csp import (
    AllDifferentExceptValue,
    AtMostOneTrue,
    CountEq,
    ExactSumBool,
    Model,
    NonDecreasing,
    Table,
    WeightedCountEq,
    WeightedExactSumBool,
)
from repro.csp.state import DomainState


def satisfies(constraint, values: dict) -> bool:
    """Ground-truth semantics of every propagator (used across test files)."""
    vals = [values[v] for v in constraint.vars]
    if isinstance(constraint, AtMostOneTrue):
        return sum(vals) <= 1
    if isinstance(constraint, WeightedExactSumBool):
        return sum(c * x for c, x in zip(constraint.coefs, vals)) == constraint.total
    if isinstance(constraint, ExactSumBool):
        return sum(vals) == constraint.total
    if isinstance(constraint, WeightedCountEq):
        return (
            sum(c for c, x in zip(constraint.coefs, vals) if x == constraint.value)
            == constraint.total
        )
    if isinstance(constraint, CountEq):
        return vals.count(constraint.value) == constraint.total
    if isinstance(constraint, AllDifferentExceptValue):
        seen = set()
        for x in vals:
            if x == constraint.except_value:
                continue
            if x in seen:
                return False
            seen.add(x)
        return True
    if isinstance(constraint, NonDecreasing):
        return all(a <= b for a, b in zip(vals, vals[1:]))
    if isinstance(constraint, Table):
        return tuple(vals) in constraint.tuples
    raise TypeError(f"no oracle for {type(constraint).__name__}")


class TestAtMostOneTrue:
    def test_second_true_fails(self):
        m = Model()
        a, b = m.bool_var("a"), m.bool_var("b")
        p = AtMostOneTrue([a, b])
        s = DomainState(m)
        s.assign(a, 1)
        s.assign(b, 1)
        assert not p.propagate(s)

    def test_one_true_forces_zeros(self):
        m = Model()
        a, b, c = (m.bool_var(x) for x in "abc")
        p = AtMostOneTrue([a, b, c])
        s = DomainState(m)
        s.assign(b, 1)
        assert p.propagate(s)
        assert s.value(a) == 0 and s.value(c) == 0

    def test_no_true_no_pruning(self):
        m = Model()
        a, b = m.bool_var("a"), m.bool_var("b")
        s = DomainState(m)
        assert AtMostOneTrue([a, b]).propagate(s)
        assert s.size(a) == 2 and s.size(b) == 2

    def test_rejects_non_bool(self):
        m = Model()
        with pytest.raises(ValueError):
            AtMostOneTrue([m.int_var(0, 2)])


class TestExactSumBool:
    def test_saturated_forces_zeros(self):
        m = Model()
        vs = [m.bool_var() for _ in range(4)]
        s = DomainState(m)
        s.assign(vs[0], 1)
        s.assign(vs[1], 1)
        assert ExactSumBool(vs, 2).propagate(s)
        assert s.value(vs[2]) == 0 and s.value(vs[3]) == 0

    def test_tight_forces_ones(self):
        m = Model()
        vs = [m.bool_var() for _ in range(3)]
        s = DomainState(m)
        s.assign(vs[0], 0)
        assert ExactSumBool(vs, 2).propagate(s)
        assert s.value(vs[1]) == 1 and s.value(vs[2]) == 1

    def test_overshoot_fails(self):
        m = Model()
        vs = [m.bool_var() for _ in range(2)]
        s = DomainState(m)
        s.assign(vs[0], 1)
        s.assign(vs[1], 1)
        assert not ExactSumBool(vs, 1).propagate(s)

    def test_undershoot_fails(self):
        m = Model()
        vs = [m.bool_var() for _ in range(2)]
        s = DomainState(m)
        s.assign(vs[0], 0)
        s.assign(vs[1], 0)
        assert not ExactSumBool(vs, 1).propagate(s)

    def test_rejects_negative_total(self):
        m = Model()
        with pytest.raises(ValueError):
            ExactSumBool([m.bool_var()], -1)


class TestWeightedExactSumBool:
    def test_coefficient_overshoot_pruned(self):
        # 3a + 2b == 2  ->  a must be 0, b must be 1
        m = Model()
        a, b = m.bool_var("a"), m.bool_var("b")
        s = DomainState(m)
        assert WeightedExactSumBool([a, b], [3, 2], 2).propagate(s)
        assert s.value(a) == 0 and s.value(b) == 1

    def test_needed_var_forced(self):
        # 2a + 1b == 3 -> both required
        m = Model()
        a, b = m.bool_var("a"), m.bool_var("b")
        s = DomainState(m)
        assert WeightedExactSumBool([a, b], [2, 1], 3).propagate(s)
        assert s.value(a) == 1 and s.value(b) == 1

    def test_unreachable_total_fails(self):
        m = Model()
        a = m.bool_var("a")
        s = DomainState(m)
        assert not WeightedExactSumBool([a], [2], 3).propagate(s)

    def test_validation(self):
        m = Model()
        a = m.bool_var()
        with pytest.raises(ValueError):
            WeightedExactSumBool([a], [0], 1)
        with pytest.raises(ValueError):
            WeightedExactSumBool([a], [1, 2], 1)
        with pytest.raises(ValueError):
            WeightedExactSumBool([a], [1], -2)


class TestCountEq:
    def test_saturated_removes_value(self):
        m = Model()
        vs = [m.int_var(0, 2) for _ in range(3)]
        s = DomainState(m)
        s.assign(vs[0], 1)
        assert CountEq(vs, 1, 1).propagate(s)
        assert s.values(vs[1]) == [0, 2]
        assert s.values(vs[2]) == [0, 2]

    def test_tight_assigns_value(self):
        m = Model()
        vs = [m.int_var(0, 2) for _ in range(3)]
        s = DomainState(m)
        s.remove_value(vs[0], 1)
        assert CountEq(vs, 1, 2).propagate(s)
        assert s.value(vs[1]) == 1 and s.value(vs[2]) == 1

    def test_value_not_in_any_domain_with_positive_total_fails(self):
        m = Model()
        vs = [m.int_var(0, 2) for _ in range(2)]
        s = DomainState(m)
        assert not CountEq(vs, 7, 1).propagate(s)

    def test_total_zero_removes_everywhere(self):
        m = Model()
        vs = [m.int_var(0, 2) for _ in range(2)]
        s = DomainState(m)
        assert CountEq(vs, 1, 0).propagate(s)
        assert s.values(vs[0]) == [0, 2]

    def test_offset_domains(self):
        m = Model()
        vs = [m.int_var(5, 7), m.int_var(3, 5)]
        s = DomainState(m)
        s.assign(vs[0], 5)
        assert CountEq(vs, 5, 1).propagate(s)
        assert s.values(vs[1]) == [3, 4]


class TestWeightedCountEq:
    def test_weights_respected(self):
        # coef 2 on v0: if v0==value it contributes 2
        m = Model()
        vs = [m.int_var(0, 1), m.int_var(0, 1)]
        s = DomainState(m)
        s.assign(vs[0], 1)
        # total=2 already reached: remove value 1 from v1
        assert WeightedCountEq(vs, [2, 1], 1, 2).propagate(s)
        assert s.value(vs[1]) == 0

    def test_overshooting_candidate_loses_value(self):
        # total 1 cannot absorb the coef-2 candidate
        m = Model()
        vs = [m.int_var(0, 1), m.int_var(0, 1)]
        s = DomainState(m)
        assert WeightedCountEq(vs, [2, 1], 1, 1).propagate(s)
        assert s.values(vs[0]) == [0]
        assert s.value(vs[1]) == 1  # forced: only way to reach 1

    def test_unreachable_fails(self):
        m = Model()
        vs = [m.int_var(0, 1)]
        s = DomainState(m)
        assert not WeightedCountEq(vs, [2], 1, 3).propagate(s)


class TestAllDifferentExceptValue:
    def test_duplicate_fails(self):
        m = Model()
        a, b = m.int_var(0, 3), m.int_var(0, 3)
        s = DomainState(m)
        s.assign(a, 2)
        s.assign(b, 2)
        assert not AllDifferentExceptValue([a, b], None).propagate(s)

    def test_exception_value_may_repeat(self):
        m = Model()
        a, b = m.int_var(0, 3), m.int_var(0, 3)
        s = DomainState(m)
        s.assign(a, 3)
        s.assign(b, 3)
        assert AllDifferentExceptValue([a, b], 3).propagate(s)

    def test_assigned_value_removed_from_others(self):
        m = Model()
        a, b, c = (m.int_var(0, 3) for _ in range(3))
        s = DomainState(m)
        s.assign(a, 1)
        assert AllDifferentExceptValue([a, b, c], 3).propagate(s)
        assert 1 not in s.values(b) and 1 not in s.values(c)

    def test_needs_two_vars(self):
        m = Model()
        with pytest.raises(ValueError):
            AllDifferentExceptValue([m.int_var(0, 1)], None)


class TestNonDecreasing:
    def test_bounds_ripple(self):
        m = Model()
        a, b, c = m.int_var(0, 9), m.int_var(3, 5), m.int_var(0, 9)
        s = DomainState(m)
        assert NonDecreasing([a, b, c]).propagate(s)
        assert s.max_value(a) == 5  # a <= max(b)
        assert s.min_value(c) == 3  # c >= min(b)

    def test_conflict(self):
        m = Model()
        a, b = m.int_var(5, 9), m.int_var(0, 3)
        s = DomainState(m)
        assert not NonDecreasing([a, b]).propagate(s)

    def test_chain_transitive(self):
        m = Model()
        vs = [m.int_var(0, 9) for _ in range(4)]
        s = DomainState(m)
        s.assign(vs[0], 6)
        s.assign(vs[3], 7)
        assert NonDecreasing(vs).propagate(s)
        assert s.min_value(vs[1]) == 6 and s.max_value(vs[1]) == 7
        assert s.min_value(vs[2]) == 6 and s.max_value(vs[2]) == 7


class TestTable:
    def test_filters_to_supports(self):
        m = Model()
        a, b = m.int_var(0, 2), m.int_var(0, 2)
        s = DomainState(m)
        t = Table([a, b], [(0, 1), (1, 2)])
        assert t.propagate(s)
        assert s.values(a) == [0, 1]
        assert s.values(b) == [1, 2]

    def test_no_support_fails(self):
        m = Model()
        a, b = m.int_var(0, 1), m.int_var(0, 1)
        s = DomainState(m)
        s.assign(a, 1)
        s.assign(b, 1)
        assert not Table([a, b], [(0, 0), (0, 1)]).propagate(s)

    def test_arity_checked(self):
        m = Model()
        with pytest.raises(ValueError):
            Table([m.int_var(0, 1)], [(0, 1)])


def test_pruning_never_removes_solutions():
    """Propagator soundness: any full assignment satisfying the constraint
    survives one propagate() call from any sub-domain containing it."""
    m = Model()
    vs = [m.int_var(0, 2) for _ in range(3)]
    constraints = [
        CountEq(vs, 1, 2),
        AllDifferentExceptValue(vs, 2),
        NonDecreasing(vs),
        WeightedCountEq(vs, [2, 1, 1], 0, 2),
        Table(vs, [(0, 1, 2), (2, 2, 2), (1, 1, 0)]),
    ]
    for constraint in constraints:
        for full in itertools.product([0, 1, 2], repeat=3):
            values = dict(zip(vs, full))
            if not satisfies(constraint, values):
                continue
            s = DomainState(m)
            # restrict each var to {value, value+something} supersets
            for v, val in values.items():
                s.intersect_mask(v, (1 << (val - v.offset)) | s.mask(v))
            assert constraint.propagate(s), (constraint, full)
            for v, val in values.items():
                assert s.contains(v, val), (constraint, full, v.name)
