"""Shared fixtures for the test suite."""

from repro.model import Platform, TaskSystem

__all__ = [
    "running_example",
    "RUNNING_EXAMPLE_TABLE",
    "running_example_platform",
]


def running_example() -> TaskSystem:
    """The paper's running example (Example 1): m=2, n=3, T=12."""
    return TaskSystem.from_tuples([(0, 1, 2, 2), (1, 3, 4, 4), (0, 2, 2, 3)])


def running_example_platform() -> Platform:
    return Platform.identical(2)


# A hand-verified feasible schedule for the running example (0-based task
# ids: tau1=0, tau2=1, tau3=2; -1 = idle).  Utilization is 23/12, so exactly
# one of the 24 processor-slots idles.
#   tau1 @ slots 0,2,5,6,8,11 (one per window)
#   tau2 @ 1,3,4 | 5,7,8 | 9,10,11 (three per window)
#   tau3 @ 0,1 | 3,4 | 6,7 | 9,10 (both slots of each window)
RUNNING_EXAMPLE_TABLE = [
    [2, 2, 0, 2, 2, 0, 2, 2, 0, 2, 2, 0],
    [0, 1, -1, 1, 1, 1, 0, 1, 1, 1, 1, 1],
]
