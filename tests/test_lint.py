"""Tests for the contract lint engine (``src/repro/lint``).

Fixture-driven: every rule family must fire on its checked-in bad
example (``tests/lint_fixtures/*_bad.py``) with the exact documented
counts, stay silent on the good counterpart, and — the tier-1 bar —
the repo itself must lint clean.  Baseline semantics (justifications
required, stale entries reported), engine errors and the CLI exit-code
contract (0 clean / 1 findings / 2 engine error) are pinned here too.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import Baseline, LintError, iter_rules, rule_info, run_lint
from repro.lint.baseline import STALE_RULE
from repro.lint.engine import Rule, register_rule

ROOT = Path(__file__).resolve().parent.parent

#: family -> (fixture stem, expected finding counts on the bad file)
EXPECTED = {
    "determinism": {
        "R1.unseeded-random": 1,
        "R1.module-random": 1,
        "R1.wall-clock": 1,
        "R1.set-iteration": 2,
    },
    "explain": {
        "R2.explain-pair": 1,
        "R2.literal-shape": 2,
    },
    "registry": {
        "R3.exact-implies-proof": 1,
        "R3.registry-metadata": 2,
        "R3.options-signature": 3,
    },
    "pickle": {
        "R4.process-callable": 3,
        "R4.process-payload": 1,
    },
    "trail": {
        "R5.unregistered-mutation": 3,
        "R5.on-event-domain-write": 1,
    },
    # the service package inherits the determinism + pickle contracts
    "service": {
        "R1.wall-clock": 1,
        "R1.module-random": 1,
        "R4.process-callable": 1,
    },
    # the vectorised kernels inherit determinism + trail safety
    "kernels": {
        "R1.unseeded-random": 1,
        "R1.set-iteration": 1,
        "R5.unregistered-mutation": 2,
    },
}

#: every per-module rule -> the fixture stem demonstrating it
RULE_TO_STEM = {
    rule: stem for stem, counts in EXPECTED.items() for rule in counts
}


def lint_fixture(stem: str, kind: str, rules=None):
    """Lint one fixture file against an empty baseline."""
    return run_lint(
        ROOT,
        targets=[f"tests/lint_fixtures/{stem}_{kind}.py"],
        baseline=Baseline(),
        rules=rules,
    )


def counts(report) -> dict[str, int]:
    """Finding counts by rule id."""
    return dict(Counter(f.rule for f in report.findings))


# ---------------------------------------------------------------------------
# fixtures: every family fires on bad, is silent on good


@pytest.mark.parametrize("stem", sorted(EXPECTED))
def test_bad_fixture_fires_exactly_as_documented(stem):
    """The bad fixture produces the documented findings, nothing else."""
    report = lint_fixture(stem, "bad")
    assert counts(report) == EXPECTED[stem]
    assert not report.ok


@pytest.mark.parametrize("stem", sorted(EXPECTED))
def test_good_fixture_is_clean_under_every_rule(stem):
    """The good counterpart is clean under ALL rules, not just its family."""
    report = lint_fixture(stem, "good")
    assert report.ok, [f.render() for f in report.findings]


@pytest.mark.parametrize("rule", sorted(RULE_TO_STEM))
def test_each_rule_fires_alone_and_only_on_bad(rule):
    """Running a single rule reproduces its slice of the bad fixture."""
    stem = RULE_TO_STEM[rule]
    bad = lint_fixture(stem, "bad", rules=[rule])
    assert counts(bad) == {rule: EXPECTED[stem][rule]}
    good = lint_fixture(stem, "good", rules=[rule])
    assert good.ok


def test_findings_carry_anchors_and_symbols():
    """Findings point at real lines and resolve enclosing symbols."""
    report = lint_fixture("trail", "bad")
    f = next(f for f in report.findings if f.rule == "R5.on-event-domain-write")
    assert f.path == "tests/lint_fixtures/trail_bad.py"
    assert f.symbol == "LeakyCounter.on_event"
    assert f.line > 1 and f.render().startswith(f.path)


# ---------------------------------------------------------------------------
# the tier-1 bar: the repo itself lints clean


def test_repo_lints_clean():
    """`repro-mgrts lint` on the repo: zero unbaselined findings."""
    report = run_lint(ROOT)
    assert report.ok, [f.render() for f in report.findings]
    # the baseline is real: it suppresses at least the edf-exact entry
    assert any(f.rule == "R3.registry-metadata" for f in report.suppressed)


def test_default_targets_exclude_fixtures():
    """The bad fixtures must not pollute the repo-wide run."""
    report = run_lint(ROOT)
    assert not any(f.startswith("tests/") for f in report.files)


# ---------------------------------------------------------------------------
# baseline semantics


def test_baseline_requires_justification():
    """An entry without an inline '# why' comment refuses to parse."""
    with pytest.raises(LintError, match="justification"):
        Baseline.parse("a.py: R1.wall-clock: f\n")
    with pytest.raises(LintError, match="justification"):
        Baseline.parse("a.py: R1.wall-clock: f  #   \n")


def test_baseline_rejects_malformed_entries():
    """Entries must have the three ':'-separated fields."""
    with pytest.raises(LintError, match="malformed"):
        Baseline.parse("a.py R1.wall-clock f  # why\n")


def test_baseline_suppresses_by_symbol_and_wildcard():
    """Matching findings move to `suppressed`; '*' covers the file."""
    path = "tests/lint_fixtures/determinism_bad.py"
    by_symbol = Baseline.parse(
        f"{path}: R1.wall-clock: pick_processor  # fixture demo\n"
    )
    report = run_lint(ROOT, targets=[path], baseline=by_symbol)
    assert "R1.wall-clock" not in counts(report)
    assert [f.rule for f in report.suppressed] == ["R1.wall-clock"]

    wildcard = Baseline.parse(f"{path}: R1.set-iteration: *  # fixture demo\n")
    report = run_lint(ROOT, targets=[path], baseline=wildcard)
    assert "R1.set-iteration" not in counts(report)
    assert len(report.suppressed) == 2


def test_stale_baseline_entry_is_a_finding():
    """An unused entry for a scanned file becomes baseline.stale."""
    path = "tests/lint_fixtures/determinism_good.py"
    stale = Baseline.parse(f"{path}: R1.wall-clock: nope  # long gone\n")
    report = run_lint(ROOT, targets=[path], baseline=stale)
    assert [f.rule for f in report.findings] == [STALE_RULE]
    assert not report.ok


def test_baseline_entries_for_unscanned_files_are_left_alone():
    """A partial run must not declare the rest of the baseline rotten."""
    stale = Baseline.parse("src/repro/cli.py: R1.wall-clock: x  # elsewhere\n")
    report = run_lint(
        ROOT,
        targets=["tests/lint_fixtures/determinism_good.py"],
        baseline=stale,
    )
    assert report.ok


def test_checked_in_baseline_has_no_stale_entries():
    """Every line of lint-baseline.txt still suppresses something."""
    report = run_lint(ROOT)
    assert not any(f.rule == STALE_RULE for f in report.findings)


# ---------------------------------------------------------------------------
# engine errors and the rule registry


def test_engine_errors(tmp_path):
    """Missing targets, unparseable files and unknown rules are LintError."""
    with pytest.raises(LintError, match="no such lint target"):
        run_lint(ROOT, targets=["no/such/dir"])
    with pytest.raises(LintError, match="unknown rule"):
        run_lint(ROOT, targets=["tests/lint_fixtures"], rules=["R9.bogus"])
    (tmp_path / "broken.py").write_text("def f(:\n")
    with pytest.raises(LintError, match="cannot parse"):
        run_lint(tmp_path, targets=["broken.py"], baseline=Baseline())
    with pytest.raises(LintError, match="baseline file not found"):
        run_lint(ROOT, targets=["scripts"], baseline=tmp_path / "none.txt")


def test_rule_registry_is_stable_and_described():
    """iter_rules: sorted ids, both hooks' families present, metadata set."""
    rules = iter_rules()
    ids = [r.id for r in rules]
    assert ids == sorted(ids) and len(ids) == len(set(ids))
    assert set(RULE_TO_STEM) <= set(ids)
    for r in rules:
        assert r.family and r.description
    assert rule_info("R1.wall-clock").family == "determinism"
    with pytest.raises(LintError, match="unknown rule"):
        rule_info("R0.nope")


def test_register_rule_validates():
    """The decorator rejects non-Rule classes and empty descriptions."""
    with pytest.raises(TypeError):
        register_rule("Rx.t", family="t", description="d")(object)
    with pytest.raises(ValueError):
        register_rule("Rx.t", family="t", description="")(
            type("R", (Rule,), {})
        )


# ---------------------------------------------------------------------------
# project-level registry rules (need a synthetic repo tree)


def _write_mini_repo(tmp_path: Path, *, list_plugin: bool, document: bool):
    solvers = tmp_path / "src" / "repro" / "solvers"
    solvers.mkdir(parents=True)
    listed = '("repro.solvers.rogue",)' if list_plugin else "()"
    (solvers / "registry.py").write_text(
        f'"""Mini registry."""\n_BUILTIN_PLUGINS = {listed}\n'
    )
    (solvers / "rogue.py").write_text(
        '"""Mini plugin."""\n'
        "def register_solver(base, **kw):\n"
        '    """Stub."""\n'
        "    def deco(fn):\n"
        "        return fn\n"
        "    return deco\n"
        '@register_solver("rogue", description="d", paper_section="s",\n'
        "                 capabilities=())\n"
        "def make(system, platform, spec, seed):\n"
        '    """Stub factory."""\n'
        "    return None\n"
    )
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "SOLVERS.md").write_text(
        "# solvers\n\nrogue\n" if document else "# solvers\n"
    )


def test_plugin_unreachable_fires_on_unlisted_module(tmp_path):
    """Registering outside _BUILTIN_PLUGINS is flagged project-wide."""
    _write_mini_repo(tmp_path, list_plugin=False, document=True)
    report = run_lint(tmp_path, targets=["src/repro"], baseline=Baseline())
    assert counts(report) == {"R3.plugin-unreachable": 1}


def test_docs_coverage_fires_on_undocumented_base(tmp_path):
    """A base name absent from docs/SOLVERS.md is flagged project-wide."""
    _write_mini_repo(tmp_path, list_plugin=True, document=False)
    report = run_lint(tmp_path, targets=["src/repro"], baseline=Baseline())
    assert counts(report) == {"R3.docs-coverage": 1}


def test_mini_repo_clean_when_listed_and_documented(tmp_path):
    """The synthetic tree is clean once both project contracts hold."""
    _write_mini_repo(tmp_path, list_plugin=True, document=True)
    report = run_lint(tmp_path, targets=["src/repro"], baseline=Baseline())
    assert report.ok


# ---------------------------------------------------------------------------
# report shape and the CLI contract


def run_cli(capsys, *argv):
    """Invoke the CLI in-process; returns (exit_code, stdout, stderr)."""
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_report_json_shape():
    """to_dict: versioned, machine-stable keys for findings."""
    report = lint_fixture("trail", "bad")
    d = report.to_dict()
    assert d["version"] == 1 and d["ok"] is False
    assert d["files_scanned"] == 1
    assert "R5.unregistered-mutation" in d["rules_run"]
    f = d["findings"][0]
    assert set(f) >= {"rule", "path", "line", "col", "message", "symbol"}


def test_cli_lint_clean_repo_exits_zero(capsys):
    """Exit 0 + 'clean' summary on the repo (baseline applied)."""
    code, out, _ = run_cli(capsys, "lint", "--root", str(ROOT))
    assert code == 0
    assert "clean" in out


def test_cli_lint_findings_exit_one(capsys):
    """Exit 1 and rendered findings when a bad fixture is targeted."""
    code, out, _ = run_cli(
        capsys, "lint", "--root", str(ROOT),
        "tests/lint_fixtures/determinism_bad.py",
    )
    assert code == 1
    assert "R1.unseeded-random" in out


def test_cli_lint_engine_error_exits_two(capsys):
    """Exit 2 + stderr diagnostic on an unusable run."""
    code, _, err = run_cli(
        capsys, "lint", "--root", str(ROOT), "no/such/dir"
    )
    assert code == 2
    assert "no such lint target" in err


def test_cli_lint_json_output(capsys):
    """--json emits the versioned report."""
    code, out, _ = run_cli(capsys, "lint", "--root", str(ROOT), "--json")
    assert code == 0
    payload = json.loads(out)
    assert payload["version"] == 1 and payload["ok"] is True


def test_cli_lint_list_rules(capsys):
    """--list-rules prints every registered id and exits 0."""
    code, out, _ = run_cli(capsys, "lint", "--list-rules")
    assert code == 0
    for rule in RULE_TO_STEM:
        assert rule in out
    code, out, _ = run_cli(capsys, "lint", "--list-rules", "--json")
    assert code == 0
    ids = {r["id"] for r in json.loads(out)}
    assert set(RULE_TO_STEM) <= ids
