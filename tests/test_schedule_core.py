"""Tests for the Schedule table type."""

import numpy as np
import pytest

from repro.model import Platform, TaskSystem
from repro.schedule import IDLE, Schedule

from tests.helpers import RUNNING_EXAMPLE_TABLE, running_example


@pytest.fixture
def sched():
    return Schedule(running_example(), Platform.identical(2), RUNNING_EXAMPLE_TABLE)


class TestConstruction:
    def test_shape_checked(self):
        s = running_example()
        with pytest.raises(ValueError, match="slots"):
            Schedule(s, Platform.identical(2), np.full((2, 10), IDLE))
        with pytest.raises(ValueError, match="processor rows"):
            Schedule(s, Platform.identical(3), np.full((2, 12), IDLE))
        with pytest.raises(ValueError, match="2-D"):
            Schedule(s, Platform.identical(2), np.full(12, IDLE))

    def test_entry_range_checked(self):
        s = running_example()
        bad = np.full((2, 12), IDLE)
        bad[0, 0] = 3  # only tasks 0..2 exist
        with pytest.raises(ValueError, match="task indices"):
            Schedule(s, Platform.identical(2), bad)
        bad[0, 0] = -2
        with pytest.raises(ValueError, match="task indices"):
            Schedule(s, Platform.identical(2), bad)

    def test_table_defensively_copied_and_readonly(self, sched):
        src = np.array(RUNNING_EXAMPLE_TABLE, dtype=np.int32)
        s2 = Schedule(running_example(), Platform.identical(2), src)
        src[0, 0] = IDLE
        assert s2.entry(0, 0) == 2
        with pytest.raises(ValueError):
            sched.table[0, 0] = 1

    def test_empty(self):
        e = Schedule.empty(running_example(), Platform.identical(2))
        assert e.busy_slots() == 0

    def test_from_assignment(self):
        sys_ = running_example()
        s = Schedule.from_assignment(sys_, Platform.identical(2), {(0, 0): 2, (1, 3): 1})
        assert s.entry(0, 0) == 2
        assert s.entry(1, 3) == 1
        assert s.busy_slots() == 2


class TestAccessors:
    def test_m_and_horizon(self, sched):
        assert sched.m == 2 and sched.horizon == 12

    def test_entry_periodic_extension(self, sched):
        # Theorem 1: sigma(t) = sigma(t + kT)
        for t in range(12):
            assert sched.entry(0, t) == sched.entry(0, t + 12) == sched.entry(0, t + 120)

    def test_tasks_at(self, sched):
        assert sched.tasks_at(0) == [0, 2]
        assert sched.tasks_at(2) == [0]

    def test_processor_of(self, sched):
        assert sched.processor_of(2, 0) == 0
        assert sched.processor_of(0, 0) == 1
        assert sched.processor_of(1, 0) is None

    def test_task_assignments_slot_major(self, sched):
        a = sched.task_assignments(0)
        assert a == [(1, 0), (0, 2), (0, 5), (1, 6), (0, 8), (0, 11)]

    def test_busy_slots(self, sched):
        assert sched.busy_slots() == 23

    def test_unroll(self, sched):
        u = sched.unroll(3)
        assert u.shape == (2, 36)
        assert np.array_equal(u[:, :12], sched.table)
        assert np.array_equal(u[:, 12:24], sched.table)
        with pytest.raises(ValueError):
            sched.unroll(0)

    def test_eq(self, sched):
        same = Schedule(running_example(), Platform.identical(2), RUNNING_EXAMPLE_TABLE)
        assert sched == same
        assert sched != Schedule.empty(running_example(), Platform.identical(2))

    def test_repr(self, sched):
        assert "m=2" in repr(sched) and "T=12" in repr(sched)
