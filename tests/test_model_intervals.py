"""Tests for the cyclic availability-window machinery.

The paper's Figure 1 (running example, hyperperiod 12) pins down the
expected windows; hypothesis checks the O(1) formulas against brute force.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model import Task, active_job, job_release, slots_after, window_slots
from repro.model.intervals import n_jobs
from repro.util.math import lcm_all


def constrained_tasks(max_period=12):
    """Constrained-deadline tasks (D <= T) with small parameters."""

    def build(o, t, d, c):
        d = min(d, t)
        return Task(offset=o, wcet=min(c, d), deadline=d, period=t)

    return st.builds(
        build,
        st.integers(0, 15),
        st.integers(1, max_period),
        st.integers(1, max_period),
        st.integers(1, max_period),
    )


class TestRunningExample:
    """Figure 1: tau1=(0,1,2,2), tau2=(1,3,4,4), tau3=(0,2,2,3), T=12."""

    T = 12

    def test_tau1_windows(self):
        t1 = Task(0, 1, 2, 2)
        assert n_jobs(t1, self.T) == 6
        assert [window_slots(t1, self.T, k) for k in range(6)] == [
            [0, 1], [2, 3], [4, 5], [6, 7], [8, 9], [10, 11],
        ]

    def test_tau2_windows(self):
        t2 = Task(1, 3, 4, 4)
        assert n_jobs(t2, self.T) == 3
        assert [window_slots(t2, self.T, k) for k in range(3)] == [
            [1, 2, 3, 4], [5, 6, 7, 8], [9, 10, 11, 0],
        ]

    def test_tau3_windows(self):
        t3 = Task(0, 2, 2, 3)
        assert n_jobs(t3, self.T) == 4
        assert [window_slots(t3, self.T, k) for k in range(4)] == [
            [0, 1], [3, 4], [6, 7], [9, 10],
        ]

    def test_tau3_idle_slots(self):
        t3 = Task(0, 2, 2, 3)
        actives = [active_job(t3, self.T, s) for s in range(self.T)]
        assert actives == [0, 0, None, 1, 1, None, 2, 2, None, 3, 3, None]

    def test_tau2_wrap(self):
        # tau2's third window [9..12] wraps: slot 0 belongs to job 2
        t2 = Task(1, 3, 4, 4)
        assert active_job(t2, self.T, 0) == 2
        assert active_job(t2, self.T, 1) == 0


class TestJobRelease:
    def test_release_uses_phase(self):
        t = Task(7, 1, 2, 3)  # phase 1
        assert [job_release(t, k) for k in range(4)] == [1, 4, 7, 10]

    def test_rejects_negative_job(self):
        with pytest.raises(ValueError):
            job_release(Task(0, 1, 2, 2), -1)


class TestActiveJobValidation:
    def test_rejects_arbitrary_deadline(self):
        with pytest.raises(ValueError):
            active_job(Task(0, 1, 5, 3), 12, 0)

    def test_rejects_bad_hyperperiod(self):
        with pytest.raises(ValueError):
            n_jobs(Task(0, 1, 2, 5), 12)

    def test_rejects_out_of_range_slot(self):
        with pytest.raises(ValueError):
            active_job(Task(0, 1, 2, 2), 12, 12)


@given(constrained_tasks(), st.integers(1, 4))
def test_active_job_matches_windows(task, mult):
    """active_job(t) == the unique job whose window contains t (brute force)."""
    T = lcm_all([task.period]) * mult
    by_slot = {}
    for k in range(n_jobs(task, T)):
        for s in window_slots(task, T, k):
            assert s not in by_slot, "windows of one constrained task must be disjoint"
            by_slot[s] = k
    for s in range(T):
        assert active_job(task, T, s) == by_slot.get(s)


@given(constrained_tasks(), st.integers(1, 4))
def test_window_sizes(task, mult):
    T = task.period * mult
    for k in range(n_jobs(task, T)):
        slots = window_slots(task, T, k)
        assert len(slots) == task.deadline
        assert len(set(slots)) == task.deadline
        assert all(0 <= s < T for s in slots)


@given(constrained_tasks(), st.integers(1, 4), st.integers(-1, 47))
def test_slots_after_matches_bruteforce(task, mult, slot):
    T = task.period * mult
    slot = min(slot, T - 1)
    for k in range(n_jobs(task, T)):
        slots = window_slots(task, T, k)
        expected = sum(1 for s in slots if s > slot)
        assert slots_after(task, T, k, slot) == expected, (
            f"task={task.as_tuple()} T={T} job={k} slot={slot}"
        )


@given(constrained_tasks(), st.integers(1, 3))
def test_slots_after_full_before_scan(task, mult):
    """Before the scan starts (slot=-1) every window has all D slots left."""
    T = task.period * mult
    for k in range(n_jobs(task, T)):
        assert slots_after(task, T, k, -1) == task.deadline
