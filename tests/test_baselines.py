"""Tests for the priority-driven simulator and priority-assignment search."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    audsley_priority_search,
    exhaustive_priority_search,
    global_edf,
    global_fixed_priority,
    heuristic_priority_search,
    priority_order_from_heuristic,
    simulate_priority_policy,
)
from repro.model import Platform, Task, TaskSystem
from repro.schedule import validate
from repro.solvers import create_solver

from tests.helpers import running_example


class TestSimulatorBasics:
    def test_single_task_schedulable(self):
        s = TaskSystem.from_tuples([(0, 1, 2, 2)])
        sim = global_edf(s, 1)
        assert sim.schedulable is True
        assert sim.missed is None
        assert validate(sim.schedule).ok

    def test_overload_misses(self):
        s = TaskSystem.from_tuples([(0, 2, 2, 2), (0, 2, 2, 2)])
        sim = global_edf(s, 1)
        assert sim.schedulable is False
        assert sim.missed is not None
        assert sim.schedule is None

    def test_miss_identifies_task(self):
        # tau2 (low EDF priority at t=0) must miss on m=1
        s = TaskSystem.from_tuples([(0, 1, 1, 2), (0, 2, 2, 2)])
        sim = global_edf(s, 1)
        assert sim.schedulable is False
        task, rel, dl = sim.missed
        assert task == 1

    def test_rejects_arbitrary_deadlines(self):
        s = TaskSystem.from_tuples([(0, 1, 5, 3)])
        with pytest.raises(ValueError, match="constrained"):
            global_edf(s, 1)

    def test_rejects_bad_m(self):
        with pytest.raises(ValueError):
            global_edf(running_example(), 0)

    def test_zero_wcet_tasks_never_run(self):
        s = TaskSystem.from_tuples([(0, 0, 1, 1), (0, 1, 2, 2)])
        sim = global_edf(s, 1)
        assert sim.schedulable is True
        assert all(e in (-1, 1) for e in sim.schedule.table.flatten())

    def test_offsets_respected(self):
        s = TaskSystem.from_tuples([(1, 1, 4, 4), (0, 1, 2, 2)])
        sim = global_edf(s, 1)
        assert sim.schedulable is True
        assert validate(sim.schedule).ok
        # the offset task never runs before its first release pattern slot
        assert sim.schedule.entry(0, 0) != 0 or sim.schedule.entry(0, 1) == 0


class TestDhallEffect:
    """The classic global-RM anomaly: m-1 light tasks + 1 heavy task."""

    def test_dhall_instance(self):
        # two light (C=1, T=D=5... classic: C=2eps) and one heavy C=T
        # tasks: 2 x (0,1,5,5) + (0,5,6,6)? keep integers small:
        s = TaskSystem.from_tuples([(0, 1, 4, 4), (0, 1, 4, 4), (0, 4, 4, 4)])
        # RM order: light tasks first -> heavy task starves on m=2
        rm = priority_order_from_heuristic(s, "rm")
        sim_rm = global_fixed_priority(s, 2, rm)
        # whichever order RM picked, the CSP solver knows it's feasible:
        exact = create_solver("csp2+dc", s, Platform.identical(2)).solve(time_limit=20)
        assert exact.is_feasible
        # and some fixed-priority order does schedule it
        search = exhaustive_priority_search(s, 2)
        assert search.found
        assert validate(search.simulation.schedule).ok


class TestFixedPriority:
    def test_validates_permutation(self):
        with pytest.raises(ValueError, match="permutation"):
            global_fixed_priority(running_example(), 2, [0, 0, 1])

    def test_priority_order_matters(self):
        # heavy (0,2,4,4) + light (0,1,2,2) on m=1: the light task's tight
        # window needs priority; heavy-first starves it at slot 0-1
        s = TaskSystem.from_tuples([(0, 2, 4, 4), (0, 1, 2, 2)])
        good = global_fixed_priority(s, 1, [1, 0])
        bad = global_fixed_priority(s, 1, [0, 1])
        assert good.schedulable is True
        assert validate(good.schedule).ok
        assert bad.schedulable is False

    def test_heuristic_orders(self):
        s = running_example()
        assert priority_order_from_heuristic(s, "rm") == [0, 2, 1]
        assert priority_order_from_heuristic(s, "dm") == [0, 2, 1]
        assert priority_order_from_heuristic(s, "dc") == [2, 0, 1]
        assert priority_order_from_heuristic(s, None) == [0, 1, 2]


class TestSimulatedSchedulesAreFeasible:
    """Any schedulable simulation provides a valid cyclic schedule, hence a
    feasibility certificate the CSP solvers must agree with."""

    @settings(deadline=None, max_examples=30)
    @given(st.data())
    def test_edf_cross_check(self, data):
        n = data.draw(st.integers(1, 4))
        tasks = []
        for _ in range(n):
            t = data.draw(st.sampled_from([1, 2, 3, 4, 6]))
            d = data.draw(st.integers(1, t))
            c = data.draw(st.integers(0, d))
            o = data.draw(st.integers(0, t - 1))
            tasks.append(Task(o, c, d, t))
        system = TaskSystem(tasks)
        m = data.draw(st.integers(1, 3))
        sim = global_edf(system, m)
        if sim.schedulable:
            assert validate(sim.schedule).ok
            exact = create_solver("csp2+dc", system, Platform.identical(m)).solve(
                time_limit=20
            )
            assert exact.is_feasible


#: FP-schedulable on m=1 with the right order (light task first)
FP_FRIENDLY = [(0, 2, 4, 4), (0, 1, 2, 2)]


class TestCspBeatsPriorityPolicies:
    """The running example is CSP-feasible (Theorem 1 / Section VII) but NO
    task-level fixed-priority order — and not even global EDF — schedules
    it.  This is the gap that motivates exact CSP search."""

    def test_running_example_not_fp_schedulable(self):
        res = exhaustive_priority_search(running_example(), 2)
        assert not res.found
        assert res.exhausted
        assert res.orders_tried == 6  # 3! orders, all refuted

    def test_running_example_not_edf_schedulable(self):
        sim = global_edf(running_example(), 2)
        assert sim.schedulable is False

    def test_but_csp_schedules_it(self):
        r = create_solver("csp2+dc", running_example(), Platform.identical(2)).solve(
            time_limit=20
        )
        assert r.is_feasible


class TestPrioritySearch:
    def test_exhaustive_finds_friendly(self):
        res = exhaustive_priority_search(TaskSystem.from_tuples(FP_FRIENDLY), 1)
        assert res.found
        assert res.order == [1, 0]
        assert validate(res.simulation.schedule).ok

    def test_exhaustive_refutes(self):
        s = TaskSystem.from_tuples([(0, 2, 2, 2), (0, 2, 2, 2)])
        res = exhaustive_priority_search(s, 1)
        assert not res.found
        assert res.exhausted
        assert res.orders_tried == 2

    def test_exhaustive_time_limit(self):
        res = exhaustive_priority_search(running_example(), 2, time_limit=0.0)
        assert not res.found and not res.exhausted

    def test_heuristic_search_tries_few(self):
        res = heuristic_priority_search(TaskSystem.from_tuples(FP_FRIENDLY), 1)
        assert res.found
        assert res.orders_tried <= 5

    def test_heuristic_no_fallback(self):
        s = TaskSystem.from_tuples([(0, 2, 2, 2), (0, 2, 2, 2)])
        res = heuristic_priority_search(s, 1, fall_back=False)
        assert not res.found and not res.exhausted

    def test_audsley_on_friendly(self):
        res = audsley_priority_search(TaskSystem.from_tuples(FP_FRIENDLY), 1)
        assert res.found
        assert validate(res.simulation.schedule).ok

    def test_audsley_fails_cleanly(self):
        s = TaskSystem.from_tuples([(0, 2, 2, 2), (0, 2, 2, 2)])
        res = audsley_priority_search(s, 1)
        assert not res.found

    @settings(deadline=None, max_examples=15)
    @given(st.data())
    def test_priority_schedulable_implies_csp_feasible(self, data):
        n = data.draw(st.integers(2, 3))
        tasks = []
        for _ in range(n):
            t = data.draw(st.sampled_from([2, 3, 4]))
            d = data.draw(st.integers(1, t))
            c = data.draw(st.integers(1, d))
            tasks.append(Task(0, c, d, t))
        system = TaskSystem(tasks)
        m = data.draw(st.integers(1, 2))
        res = exhaustive_priority_search(system, m)
        if res.found:
            exact = create_solver("csp2+dc", system, Platform.identical(m)).solve(
                time_limit=20
            )
            assert exact.is_feasible
