"""Documentation guard: public code must say what it is.

Two levels, matching what the docs promise:

* every public module under ``src/repro/`` carries a module docstring
  (the architecture tour in docs/ARCHITECTURE.md leans on them);
* every public function, class and method in the user-facing layers —
  ``solvers/``, ``experiments/``, ``batch/`` and the CLI — carries a
  docstring.

Run standalone via ``make docs-check``.
"""

import ast
import pathlib

import pytest

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

#: packages whose public callables must all be documented
DOCUMENTED_LAYERS = ("solvers", "experiments", "batch", "cli.py")


def public_modules():
    """All non-private module paths under src/repro."""
    return sorted(
        p for p in SRC.rglob("*.py") if not p.name.startswith("_") or p.name == "__init__.py"
    )


def _callables(tree: ast.Module):
    """(node, qualname) for module-level defs and methods of public classes."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, node.name
        elif isinstance(node, ast.ClassDef):
            yield node, node.name
            if not node.name.startswith("_"):
                for sub in node.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        yield sub, f"{node.name}.{sub.name}"


@pytest.mark.parametrize("path", public_modules(), ids=lambda p: str(p.relative_to(SRC)))
def test_module_has_docstring(path):
    tree = ast.parse(path.read_text())
    assert ast.get_docstring(tree), f"{path.relative_to(SRC)} lacks a module docstring"


def test_public_callables_documented():
    missing = []
    for path in public_modules():
        rel = path.relative_to(SRC)
        if not str(rel).startswith(DOCUMENTED_LAYERS):
            continue
        tree = ast.parse(path.read_text())
        for node, qualname in _callables(tree):
            name = qualname.rsplit(".", 1)[-1]
            if name.startswith("_"):
                continue
            if not ast.get_docstring(node):
                missing.append(f"{rel}:{node.lineno} {qualname}")
    assert not missing, "public callables lacking docstrings:\n  " + "\n  ".join(missing)
