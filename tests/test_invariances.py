"""Model-level invariance properties of MGRTS feasibility.

These are theorems about the *problem*, used as end-to-end oracles for the
solver stack: a bug anywhere (intervals, encodings, search, decode) will
almost surely break one of them.

1. **Task permutation**: feasibility does not depend on task order.
2. **Offset shift**: shifting every offset by the same constant preserves
   feasibility (the schedule shifts along).
3. **Offset modulo period**: only ``O_i mod T_i`` matters for the cyclic
   pattern.
4. **Time scaling**: multiplying all of O, C, D, T by a constant k
   preserves feasibility (each slot stretches into k).
5. **Processor monotonicity**: adding processors never breaks feasibility.
6. **WCET monotonicity**: decreasing a WCET never breaks feasibility.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import Platform, Task, TaskSystem
from repro.solvers import Feasibility, create_solver


def small_systems():
    def build(params):
        out = []
        for o, t, d, c in params:
            d = min(d, t)
            out.append(Task(o % t, min(c, d), d, t))
        return TaskSystem(out)

    return st.builds(
        build,
        st.lists(
            st.tuples(
                st.integers(0, 5),
                st.sampled_from([1, 2, 3, 4]),
                st.integers(1, 4),
                st.integers(0, 4),
            ),
            min_size=1,
            max_size=3,
        ),
    )


def feasible(system: TaskSystem, m: int) -> bool:
    r = create_solver("csp2+dc", system, Platform.identical(m)).solve(time_limit=20)
    assert r.status is not Feasibility.UNKNOWN
    return r.is_feasible


@settings(deadline=None, max_examples=30)
@given(small_systems(), st.integers(1, 2), st.randoms(use_true_random=False))
def test_task_permutation_invariance(system, m, rng):
    tasks = list(system.tasks)
    rng.shuffle(tasks)
    permuted = TaskSystem(tasks)
    assert feasible(system, m) == feasible(permuted, m)


@settings(deadline=None, max_examples=30)
@given(small_systems(), st.integers(1, 2), st.integers(1, 7))
def test_offset_shift_invariance(system, m, shift):
    shifted = TaskSystem(
        Task(t.offset + shift, t.wcet, t.deadline, t.period) for t in system
    )
    assert feasible(system, m) == feasible(shifted, m)


@settings(deadline=None, max_examples=30)
@given(small_systems(), st.integers(1, 2), st.integers(1, 3))
def test_offset_mod_period_invariance(system, m, k):
    reduced = TaskSystem(
        Task(t.offset % t.period, t.wcet, t.deadline, t.period) for t in system
    )
    bloated = TaskSystem(
        Task(t.offset % t.period + k * t.period, t.wcet, t.deadline, t.period)
        for t in system
    )
    assert feasible(reduced, m) == feasible(bloated, m)


@settings(deadline=None, max_examples=20)
@given(small_systems(), st.integers(1, 2), st.sampled_from([2, 3]))
def test_time_scaling_invariance(system, m, k):
    scaled = TaskSystem(
        Task(t.offset * k, t.wcet * k, t.deadline * k, t.period * k) for t in system
    )
    assert feasible(system, m) == feasible(scaled, m)


@settings(deadline=None, max_examples=25)
@given(small_systems(), st.integers(1, 2))
def test_processor_monotonicity(system, m):
    if feasible(system, m):
        assert feasible(system, m + 1)


@settings(deadline=None, max_examples=25)
@given(small_systems(), st.integers(1, 2), st.data())
def test_wcet_monotonicity(system, m, data):
    if not feasible(system, m):
        return
    i = data.draw(st.integers(0, system.n - 1))
    t = system[i]
    if t.wcet == 0:
        return
    new_c = data.draw(st.integers(0, t.wcet - 1))
    reduced = TaskSystem(
        Task(x.offset, new_c if j == i else x.wcet, x.deadline, x.period)
        for j, x in enumerate(system)
    )
    assert feasible(reduced, m), (system.tasks, i, new_c)
