"""Unit and property tests for repro.util (math, bitset, timer)."""

import math
import time

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import (
    Deadline,
    bit_indices,
    ceil_div,
    first_bit,
    gcd_all,
    lcm_all,
    lcm_pair,
    mask_of,
    popcount,
    values_from_mask,
)


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(12, 4) == 3

    def test_rounds_up(self):
        assert ceil_div(13, 4) == 4

    def test_one(self):
        assert ceil_div(1, 7) == 1

    def test_zero_numerator(self):
        assert ceil_div(0, 5) == 0

    def test_negative_numerator(self):
        # ceil(-3/2) == -1
        assert ceil_div(-3, 2) == -1

    def test_rejects_nonpositive_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(3, 0)
        with pytest.raises(ValueError):
            ceil_div(3, -1)

    @given(st.integers(-10_000, 10_000), st.integers(1, 500))
    def test_matches_math_ceil(self, a, b):
        assert ceil_div(a, b) == math.ceil(a / b)


class TestLcmGcd:
    def test_lcm_pair(self):
        assert lcm_pair(4, 6) == 12

    def test_lcm_all_example(self):
        # the paper's running example: periods 2, 4, 3 -> hyperperiod 12
        assert lcm_all([2, 4, 3]) == 12

    def test_lcm_all_single(self):
        assert lcm_all([7]) == 7

    def test_lcm_all_table4_periods(self):
        # Table IV: Tmax = 15 -> hyperperiod converges to lcm(1..15) = 360360
        assert lcm_all(range(1, 16)) == 360360

    def test_lcm_rejects_empty(self):
        with pytest.raises(ValueError):
            lcm_all([])

    def test_lcm_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            lcm_pair(0, 3)

    def test_gcd_all(self):
        assert gcd_all([12, 18, 24]) == 6

    def test_gcd_rejects_empty(self):
        with pytest.raises(ValueError):
            gcd_all([])

    @given(st.lists(st.integers(1, 50), min_size=1, max_size=6))
    def test_lcm_divisible_by_all(self, values):
        ell = lcm_all(values)
        assert all(ell % v == 0 for v in values)

    @given(st.lists(st.integers(1, 50), min_size=1, max_size=6))
    def test_gcd_divides_all(self, values):
        g = gcd_all(values)
        assert all(v % g == 0 for v in values)


class TestBitset:
    def test_mask_of(self):
        assert mask_of([0, 2, 5]) == 0b100101

    def test_mask_of_empty(self):
        assert mask_of([]) == 0

    def test_mask_of_rejects_negative(self):
        with pytest.raises(ValueError):
            mask_of([-1])

    def test_bit_indices_order(self):
        assert list(bit_indices(0b101100)) == [2, 3, 5]

    def test_first_bit(self):
        assert first_bit(0b1000) == 3

    def test_first_bit_empty(self):
        assert first_bit(0) == -1

    def test_popcount(self):
        assert popcount(0b10110111) == 6

    @given(st.sets(st.integers(0, 200), max_size=40))
    def test_roundtrip(self, values):
        mask = mask_of(values)
        assert set(bit_indices(mask)) == values
        assert popcount(mask) == len(values)
        if values:
            assert first_bit(mask) == min(values)

    def test_values_from_mask(self):
        assert values_from_mask(0b101100) == [2, 3, 5]

    def test_values_from_mask_empty(self):
        assert values_from_mask(0) == []

    def test_values_from_mask_offset(self):
        # bit b represents value offset + b — the domain decoding used by
        # DomainState.values and Variable.initial_values
        assert values_from_mask(0b101, offset=7) == [7, 9]
        assert values_from_mask(0b11, offset=-3) == [-3, -2]

    @given(st.sets(st.integers(0, 120), max_size=30), st.integers(-50, 50))
    def test_values_from_mask_matches_bit_indices(self, bits, offset):
        mask = mask_of(bits)
        assert values_from_mask(mask, offset) == [
            offset + b for b in bit_indices(mask)
        ]


class TestDeadline:
    def test_unlimited_never_expires(self):
        d = Deadline(None)
        assert not d.expired()
        assert d.remaining() == float("inf")

    def test_zero_expires_immediately(self):
        d = Deadline(0.0)
        assert d.expired()
        assert d.remaining() == 0.0

    def test_elapsed_grows(self):
        d = Deadline(10.0)
        a = d.elapsed()
        time.sleep(0.01)
        assert d.elapsed() > a

    def test_short_budget_expires(self):
        d = Deadline(0.005)
        time.sleep(0.02)
        assert d.expired()

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Deadline(-1.0)
