"""The racing portfolio meta-solver: first definitive answer wins,
losers are cancelled, incomplete members never decide INFEASIBLE."""

import pytest

from repro.model import Platform, TaskSystem
from repro.schedule import validate
from repro.solvers import Feasibility, create_solver, solve

from tests.helpers import running_example


def infeasible_system() -> TaskSystem:
    """3 saturating tasks on 2 processors: demand 5 in 4 processor-slots."""
    return TaskSystem.from_tuples([(0, 2, 2, 2), (0, 2, 2, 2), (0, 1, 2, 2)])


class TestPortfolioRacing:
    def test_feasible_race_matches_single_solver(self):
        single = solve(running_example(), m=2, solver="csp2+dc", time_limit=20)
        report = solve(
            running_example(), m=2, solver="portfolio:csp2+dc,sat", time_limit=20
        )
        assert report.status is single.status is Feasibility.FEASIBLE
        assert validate(report.schedule).ok
        meta = report.stats.extra["portfolio"]
        assert meta["winner"] in ("csp2+dc", "sat")
        assert report.winner == meta["winner"]

    def test_infeasible_race_and_cancellation(self):
        """csp2-local runs its whole 30 s budget on an infeasible instance;
        the portfolio must answer as soon as csp2+dc proves INFEASIBLE and
        cancel the local search — a sub-10 s wall clock is the proof."""
        report = solve(
            infeasible_system(), m=2,
            solver="portfolio:csp2-local,csp2+dc", time_limit=30,
        )
        assert report.status is Feasibility.INFEASIBLE
        assert report.winner == "csp2+dc"
        assert report.elapsed < 10, "losers were not cancelled"
        meta = report.stats.extra["portfolio"]
        assert meta["winner"] == "csp2+dc"

    def test_winner_deterministic_when_unique_decider(self):
        """With one capable member, the reported winner cannot vary."""
        winners = set()
        for _ in range(2):
            report = solve(
                infeasible_system(), m=2, seed=7,
                solver="portfolio:csp2-local,csp2+dc", time_limit=30,
            )
            winners.add(report.winner)
            assert report.status is Feasibility.INFEASIBLE
        assert winners == {"csp2+dc"}

    def test_incomplete_members_never_decide_infeasible(self):
        report = solve(
            infeasible_system(), m=2,
            solver="portfolio:csp2-local,edf", time_limit=0.4,
        )
        assert report.status is Feasibility.UNKNOWN
        assert report.schedule is None

    def test_local_search_can_win_feasible_race(self):
        report = solve(
            TaskSystem.from_tuples([(0, 1, 2, 2)]), m=1,
            solver="portfolio:csp2-local", time_limit=20,
        )
        assert report.status is Feasibility.FEASIBLE
        assert report.winner == "csp2-local"
        assert validate(report.schedule).ok


class TestPortfolioSequential:
    def test_jobs1_is_deterministic_first_decider(self):
        report = solve(
            running_example(), m=2,
            solver="portfolio:csp2+dc,sat", time_limit=20, jobs=1,
        )
        assert report.status is Feasibility.FEASIBLE
        assert report.winner == "csp2+dc"  # first member answers first
        meta = report.stats.extra["portfolio"]
        assert meta["mode"] == "sequential"

    def test_jobs1_skips_incapable_decider(self):
        report = solve(
            infeasible_system(), m=2,
            solver="portfolio:edf,csp2+dc", time_limit=20, jobs=1,
        )
        assert report.status is Feasibility.INFEASIBLE
        assert report.winner == "csp2+dc"


class TestPortfolioVerdictsAgree:
    """Acceptance smoke: on a mixed feasible/infeasible set, the portfolio
    verdict equals the single-solver verdict on every instance."""

    def test_mixed_set(self):
        from repro.generator import GeneratorConfig, generate_instances

        instances = generate_instances(
            GeneratorConfig(n=4, m=2, tmax=4), 4, seed=11
        )
        for inst in instances:
            single = solve(
                inst.system, m=inst.m, solver="csp2+dc", time_limit=20
            )
            raced = solve(
                inst.system, m=inst.m,
                solver="portfolio:csp2+dc,sat", time_limit=20,
            )
            assert raced.status is single.status, inst.seed
            assert raced.elapsed <= 20 + 1e-6


class TestPortfolioMemoryGuard:
    def test_memory_bound_members_dropped(self):
        from repro.solvers import Problem, solve_problem

        p = Problem.of(running_example(), m=2, time_limit=5.0, variable_limit=1)
        report = solve_problem(p, "portfolio:csp1,csp2+dc", check=False)
        assert report.skipped is None and report.is_feasible
        assert report.stats.extra["portfolio"]["members"] == ["csp2+dc"]
        assert report.solver == "portfolio:csp1,csp2+dc"  # requested name kept

    def test_all_members_over_limit_skips(self):
        from repro.solvers import Problem, solve_problem

        p = Problem.of(running_example(), m=2, time_limit=5.0, variable_limit=1)
        report = solve_problem(p, "portfolio:csp1,sat", check=False)
        assert report.skipped == "memory"
        assert report.status_label == "skipped-memory"


class TestPortfolioAccounting:
    def test_sequential_reports_not_started_members(self):
        report = solve(
            running_example(), m=2,
            solver="portfolio:csp2+dc,sat,csp2-generic", time_limit=20, jobs=1,
        )
        meta = report.stats.extra["portfolio"]
        assert meta["not_started"] == ["sat", "csp2-generic"]

    def test_race_meta_accounts_for_every_member(self):
        report = solve(
            infeasible_system(), m=2,
            solver="portfolio:csp2-local,csp2+dc", time_limit=30,
        )
        meta = report.stats.extra["portfolio"]
        accounted = (
            set(meta["statuses"]) | set(meta["cancelled"]) | set(meta["not_started"])
        )
        assert accounted == set(meta["members"])


class TestPortfolioCapabilityCoherence:
    """EXACT ⟹ PROVES_INFEASIBILITY: a member claiming a complete search
    must be able to prove infeasibility, or its INFEASIBLE answers would
    be silently downgraded while the metadata promises proofs."""

    def test_rejects_exact_member_without_infeasibility_proofs(self):
        from repro.solvers import register_solver
        from repro.solvers import registry as reg
        from repro.solvers.registry import EXACT

        @register_solver(
            "test-incoherent",
            description="test-only: exact without proves_infeasibility",
            capabilities=(EXACT,),
            advertise=False,
        )
        def _build(system, platform, spec, seed, **options):  # pragma: no cover
            raise AssertionError("must fail at portfolio construction")

        try:
            with pytest.raises(ValueError, match="proves_infeasibility"):
                create_solver(
                    "portfolio:test-incoherent,csp2+dc",
                    running_example(), Platform.identical(2),
                )
        finally:
            reg._REGISTRY.pop("test-incoherent", None)

    def test_registry_wide_coherence(self):
        """No registered family may claim EXACT without the proof bit
        (edf-exact is the deliberate converse: proofs without EXACT)."""
        from repro.solvers import iter_solver_info

        for info in iter_solver_info():
            if info.is_exact:
                assert info.proves_infeasibility, info.base

    def test_edf_exact_infeasible_is_definitive(self):
        """An edf-exact uniprocessor miss proof ends the race."""
        report = solve(
            TaskSystem.from_tuples([(0, 2, 2, 2), (0, 2, 2, 2)]), m=1,
            solver="portfolio:edf-exact,csp2+dc", time_limit=20, jobs=1,
        )
        assert report.status is Feasibility.INFEASIBLE
        assert report.winner == "edf-exact"
        assert report.decided_by == "edf-exact:miss"


class TestPortfolioConstruction:
    def test_unknown_member_fails_fast(self):
        with pytest.raises(ValueError, match="unknown solver"):
            create_solver(
                "portfolio:csp2+dc,magic", running_example(), Platform.identical(2)
            )

    def test_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            create_solver(
                "portfolio:csp2+dc", running_example(), Platform.identical(2),
                jobs=0,
            )

    def test_name(self):
        engine = create_solver(
            "portfolio:csp2+dc,sat", running_example(), Platform.identical(2)
        )
        assert engine.name == "portfolio:csp2+dc,sat"

    def test_through_batch_layer(self):
        """Portfolio names flow through cells/run_batch unchanged."""
        from repro.batch import cells_for_matrix, run_batch
        from repro.generator.random_systems import Instance

        inst = Instance(system=running_example(), m=2, seed=0)
        cells = cells_for_matrix([inst], ["portfolio:csp2+dc,sat"], 20.0)
        report = run_batch(cells)
        assert report.records[0].status == "feasible"
        assert report.records[0].solver == "portfolio:csp2+dc,sat"
