"""Tests for the execution-transport seam (``repro.batch.transport``)."""

import os

import pytest

from repro.batch import (
    LocalPoolTransport,
    Transport,
    WorkItem,
    WorkResult,
    cells_for_matrix,
    run_batch,
)
from repro.batch.supervise import FAULT_ERROR
from repro.batch.transport import backoff_delay
from repro.generator.random_systems import GeneratorConfig, generate_instances

# -- module-level workers (pickled by name into children: R4 contract) ------


def _double(payload, attempt):
    return payload * 2


def _echo_attempt(payload, attempt):
    return (payload, attempt)


def _always_raises(payload, attempt):
    raise ValueError(f"deliberate failure on {payload!r}")


def _fails_in_pid(payload, attempt):
    """Raise only inside the process whose pid rides in the payload.

    Lets a test fail deterministically in the parent (serial path) while
    succeeding in any supervised child, which necessarily has a
    different pid — the attempt counter restarts at 0 in children, so
    attempt-based flakiness cannot model escalation.
    """
    if os.getpid() == payload:
        raise RuntimeError("failing in the original process")
    return "recovered"


class TestBackoffDelay:
    def test_deterministic_per_key_and_attempt(self):
        assert backoff_delay(0.5, "cell-a", 1) == backoff_delay(0.5, "cell-a", 1)
        assert backoff_delay(0.5, "cell-a", 1) != backoff_delay(0.5, "cell-b", 1)
        assert backoff_delay(0.5, "cell-a", 1) != backoff_delay(0.5, "cell-a", 2)

    def test_zero_backoff_is_free(self):
        assert backoff_delay(0.0, "k", 1) == 0.0
        assert backoff_delay(-1.0, "k", 3) == 0.0

    def test_exponential_base_with_bounded_jitter(self):
        # jitter is in [0.5, 1.5): attempt 1 of base 1.0 lands there
        d1 = backoff_delay(1.0, "k", 1)
        assert 0.5 <= d1 < 1.5
        # attempt 3 doubles twice; jitter is re-drawn but stays bounded
        d3 = backoff_delay(1.0, "k", 3)
        assert 2.0 <= d3 < 6.0


class TestConstruction:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="jobs"):
            LocalPoolTransport(jobs=0)
        with pytest.raises(ValueError, match="retries"):
            LocalPoolTransport(retries=-1)

    def test_satisfies_the_protocol(self):
        assert isinstance(LocalPoolTransport(), Transport)

    def test_empty_batch_yields_nothing(self):
        assert list(LocalPoolTransport().execute([])) == []


class TestSerialPath:
    def test_in_process_success(self):
        items = [WorkItem(f"k{i}", _double, i) for i in range(4)]
        results = list(LocalPoolTransport(jobs=1).execute(items))
        assert [r.key for r in results] == [f"k{i}" for i in range(4)]
        assert [r.value for r in results] == [0, 2, 4, 6]
        assert all(r.ok and r.attempts == 1 for r in results)

    def test_first_attempt_is_zero(self):
        (res,) = LocalPoolTransport(jobs=1).execute([WorkItem("k", _echo_attempt, "p")])
        assert res.value == ("p", 0)

    def test_raise_escalates_to_supervised_child(self):
        item = WorkItem("k", _fails_in_pid, os.getpid())
        (res,) = LocalPoolTransport(jobs=1, retries=1).execute([item])
        assert res.ok and res.value == "recovered"
        # one burned in-process attempt + one successful child
        assert res.attempts == 2

    def test_exhausted_retries_classify_a_fault(self):
        item = WorkItem("k", _always_raises, "p")
        (res,) = LocalPoolTransport(jobs=1, retries=2).execute([item])
        assert not res.ok and res.value is None
        assert res.fault.kind == FAULT_ERROR
        assert "deliberate failure" in res.fault.detail
        # the fault records the supervised loop's own count; the result
        # additionally counts the burned in-process attempt
        assert res.fault.attempts == 3
        assert res.attempts == 4


class TestSupervisedPath:
    def test_single_job(self):
        items = [WorkItem(f"k{i}", _double, i) for i in range(3)]
        results = list(LocalPoolTransport(supervised=True).execute(items))
        assert sorted((r.key, r.value) for r in results) == [
            ("k0", 0), ("k1", 2), ("k2", 4),
        ]
        assert all(r.ok and r.attempts == 1 for r in results)

    def test_parallel_watchers_return_every_item(self):
        items = [WorkItem(f"k{i}", _double, i) for i in range(5)]
        results = list(
            LocalPoolTransport(jobs=3, supervised=True).execute(items)
        )
        # completion order is free; coverage and values are not
        assert {r.key: r.value for r in results} == {
            f"k{i}": i * 2 for i in range(5)
        }

    def test_fault_attempt_accounting(self):
        item = WorkItem("k", _always_raises, "p")
        (res,) = LocalPoolTransport(supervised=True, retries=1).execute([item])
        assert not res.ok
        assert res.fault.attempts == 2 and res.attempts == 2


class TestPoolPath:
    def test_pool_success(self):
        items = [WorkItem(f"k{i}", _double, i) for i in range(6)]
        results = list(LocalPoolTransport(jobs=2).execute(items))
        assert {r.key: r.value for r in results} == {
            f"k{i}": i * 2 for i in range(6)
        }
        assert all(r.ok and r.attempts == 1 for r in results)

    def test_pool_failure_escalates_then_classifies(self):
        items = [
            WorkItem("good", _double, 5),
            WorkItem("bad", _always_raises, "p"),
        ]
        results = {
            r.key: r
            for r in LocalPoolTransport(jobs=2, retries=0).execute(items)
        }
        assert results["good"].ok and results["good"].value == 10
        bad = results["bad"]
        assert not bad.ok and bad.fault.kind == FAULT_ERROR
        # one pool attempt + one supervised recovery attempt
        assert bad.attempts == 2 and bad.fault.attempts == 1


class _RecordingTransport:
    """Delegates to the real local transport, remembering what it saw."""

    def __init__(self):
        self.inner = LocalPoolTransport(jobs=1)
        self.items = []

    def execute(self, items):
        self.items.extend(items)
        yield from self.inner.execute(items)


class TestRunBatchSeam:
    def test_custom_transport_receives_the_pending_cells(self, tmp_path):
        instances = generate_instances(
            GeneratorConfig(n=3, m=2, tmax=3), 3, seed=11
        )
        cells = cells_for_matrix(instances, ["csp2+dc"], 5.0)
        transport = _RecordingTransport()
        report = run_batch(
            cells, journal=tmp_path / "j.jsonl", transport=transport
        )
        assert report.computed == len(cells)
        assert len(transport.items) == len(cells)
        assert all(isinstance(it, WorkItem) for it in transport.items)
        assert all(it.wall_limit == 5.0 for it in transport.items)
        # the injected transport's results are what the campaign recorded
        assert {r.status for r in report.records} <= {"feasible", "infeasible"}

    def test_work_result_ok_property(self):
        assert WorkResult(key="k", value=1).ok
        assert not WorkResult(key="k", fault=object()).ok
