"""Tests for repro.model.task."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model import Task


def small_tasks():
    """Strategy producing valid tasks with modest parameters."""
    return st.builds(
        lambda o, t, d, c: Task(offset=o, wcet=min(c, d), deadline=d, period=t),
        st.integers(0, 10),
        st.integers(1, 12),
        st.integers(1, 12),
        st.integers(0, 12),
    )


class TestValidation:
    def test_valid(self):
        t = Task(0, 1, 2, 2)
        assert t.as_tuple() == (0, 1, 2, 2)

    def test_rejects_negative_offset(self):
        with pytest.raises(ValueError):
            Task(-1, 1, 2, 2)

    def test_rejects_negative_wcet(self):
        with pytest.raises(ValueError):
            Task(0, -1, 2, 2)

    def test_rejects_zero_deadline(self):
        with pytest.raises(ValueError):
            Task(0, 1, 0, 2)

    def test_rejects_zero_period(self):
        with pytest.raises(ValueError):
            Task(0, 1, 2, 0)

    def test_rejects_non_int(self):
        with pytest.raises(TypeError):
            Task(0.5, 1, 2, 2)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            Task(True, 1, 2, 2)

    def test_allows_wcet_above_deadline(self):
        # feasible on heterogeneous platforms with rates > 1 (DESIGN.md)
        t = Task(0, 5, 3, 6)
        assert t.wcet == 5

    def test_zero_wcet_allowed(self):
        assert Task(0, 0, 1, 1).wcet == 0


class TestPaperAliases:
    def test_aliases(self):
        t = Task(1, 3, 4, 4)
        assert (t.O, t.C, t.D, t.T) == (1, 3, 4, 4)


class TestDerived:
    def test_utilization_exact(self):
        assert Task(0, 1, 2, 3).utilization == Fraction(1, 3)

    def test_density_uses_min_d_t(self):
        assert Task(0, 2, 6, 4).density == Fraction(1, 2)

    def test_laxity(self):
        assert Task(0, 2, 5, 7).laxity == 3

    def test_slack(self):
        assert Task(0, 2, 5, 7).slack == 5

    def test_constrained(self):
        assert Task(0, 1, 2, 2).is_constrained
        assert not Task(0, 1, 5, 3).is_constrained

    def test_phase(self):
        assert Task(7, 1, 2, 3).phase == 1

    @given(small_tasks())
    def test_phase_below_period(self, t):
        assert 0 <= t.phase < t.period

    @given(small_tasks())
    def test_utilization_positive_when_work(self, t):
        assert (t.utilization > 0) == (t.wcet > 0)


class TestMisc:
    def test_with_name(self):
        t = Task(0, 1, 2, 2).with_name("alpha")
        assert t.name == "alpha"
        assert t.as_tuple() == (0, 1, 2, 2)

    def test_name_not_compared(self):
        assert Task(0, 1, 2, 2, "a") == Task(0, 1, 2, 2, "b")

    def test_str_contains_params(self):
        s = str(Task(1, 3, 4, 4, "tau2"))
        assert "tau2" in s and "O=1" in s and "C=3" in s

    def test_frozen(self):
        t = Task(0, 1, 2, 2)
        with pytest.raises(AttributeError):
            t.wcet = 5
