"""Good examples for the R4 pickle-safety rules (lint fixture, never imported).

Module-level worker, plain-data payloads: clean under every rule.
"""

from concurrent.futures import ProcessPoolExecutor
from multiprocessing import Process


def solve_one(payload):
    """Module-level worker: pickles by qualified name."""
    return payload


def run_good(items):
    """Ship only module-level callables and plain data to workers."""
    with ProcessPoolExecutor() as pool:
        results = list(pool.map(solve_one, items))
    proc = Process(target=solve_one, args=(items,))
    return results, proc
