"""Bad examples for the service-scoped rules (lint fixture, never imported).

A miniature solver daemon that breaks the contracts the real
``src/repro/service/`` package is held to: wall-clock stats stamps,
ambient-RNG retry jitter, and a lambda shipped into a worker process.

Expected findings: 1x R1.wall-clock, 1x R1.module-random,
1x R4.process-callable.
"""

import random
import time
from concurrent.futures import ProcessPoolExecutor


def serve_request(entry):
    """Every service decision here leaks ambient nondeterminism."""
    stamp = time.time()  # R1.wall-clock
    jitter = random.uniform(0.5, 1.5)  # R1.module-random
    with ProcessPoolExecutor() as pool:
        handle = pool.submit(lambda e: e, entry)  # R4.process-callable
    return stamp, jitter, handle
