"""Bad examples for the R5 trail-safety rules (lint fixture, never imported).

Expected findings: 3x R5.unregistered-mutation (self._seen augassign,
alias dict write, self._hits.append) and 1x R5.on-event-domain-write.
"""


class Propagator:
    """Local stand-in base so the hierarchy resolves inside this file."""

    _trail_safe = ()


class LeakyCounter(Propagator):
    """Mutates search-time state it never declared (or trailed)."""

    _trail_safe = ("_c",)

    def on_event(self, state, idx, old, new):
        """One declared mutation, two violations."""
        self._c[0] += 1  # declared: fine
        self._seen += 1  # R5.unregistered-mutation
        state.remove_value(idx, old)  # R5.on-event-domain-write
        return None

    def propagate(self, state):
        """Mutates an undeclared cache through a local alias."""
        cache = self._cache
        cache["hits"] = 1  # R5.unregistered-mutation (alias write)
        self._hits.append(1)  # R5.unregistered-mutation (method call)
        return 1
