"""Good examples for the R3 registry rules (lint fixture, never imported).

Coherent capabilities, non-empty metadata, options that match the
factory: clean under every rule.
"""

EXACT = "exact"
PROVES_INFEASIBILITY = "proves_infeasibility"


def register_solver(base, **metadata):
    """Stand-in decorator so this fixture parses standalone."""

    def deco(fn):
        return fn

    return deco


@register_solver(
    "fixture-good",
    description="a fully-declared fixture solver",
    paper_section="VII",
    capabilities=(EXACT, PROVES_INFEASIBILITY),
    options=("budget",),
)
def make_good(system, platform, spec, seed, **options):
    """Reads exactly the options it declares."""
    budget = options.get("budget", 1.0)
    return (system, platform, spec, seed, budget)
