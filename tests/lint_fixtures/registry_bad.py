"""Bad examples for the R3 registry rules (lint fixture, never imported).

Expected findings: 1x R3.exact-implies-proof, 2x R3.registry-metadata
(empty description + missing paper_section), 3x R3.options-signature
(undeclared parameter 'budget', unreceivable declared option 'gamma' is
absent here -- instead: undeclared body read of 'beta'; plus the
declared-but-not-a-parameter case in make_rigid).
"""

EXACT = "exact"
PROVES_INFEASIBILITY = "proves_infeasibility"


def register_solver(base, **metadata):
    """Stand-in decorator so this fixture parses standalone."""

    def deco(fn):
        return fn

    return deco


@register_solver(
    "fixture-bad",
    description="",  # R3.registry-metadata (empty description)
    # paper_section missing entirely: R3.registry-metadata
    capabilities=(EXACT,),  # R3.exact-implies-proof
    options=("alpha",),
)
def make_bad(system, platform, spec, seed, budget=None, **options):
    """Factory whose signature and body disagree with the declaration."""
    # 'budget' is a 5th parameter not in options: R3.options-signature
    level = options["beta"]  # undeclared read: R3.options-signature
    return (system, platform, spec, seed, budget, level)


@register_solver(
    "fixture-rigid",
    description="declares an option its factory cannot receive",
    paper_section="VII",
    capabilities=(EXACT, PROVES_INFEASIBILITY),
    options=("gamma",),
)
def make_rigid(system, platform, spec, seed):
    """No **options and no 'gamma' parameter: R3.options-signature."""
    return (system, platform, spec, seed)
