"""Good examples for the R2 explain-contract rules (lint fixture, never imported).

Both explanations implemented, every literal a (var, value, sign)
3-tuple: clean under every rule.
"""


class Propagator:
    """Local stand-in base so the hierarchy resolves inside this file."""


class WellExplained(Propagator):
    """Explains both its forcings and its failures, with 3-tuple literals."""

    def propagate(self, state):
        """Prune nothing."""
        return 1

    def explain_event(self, state, trail, pos):
        """One correctly-shaped literal."""
        return [(pos, 0, True)]

    def explain_failure(self, state, trail):
        """Two correctly-shaped literals."""
        return [(0, 1, False), (2, 3, True)]
