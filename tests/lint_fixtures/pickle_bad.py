"""Bad examples for the R4 pickle-safety rules (lint fixture, never imported).

Expected findings: 3x R4.process-callable (submit lambda, map local
function, Process target lambda), 1x R4.process-payload (lambda inside
Process args).
"""

from concurrent.futures import ProcessPoolExecutor
from multiprocessing import Process


def run_bad(items):
    """Everything shipped to a worker here fails to pickle."""
    with ProcessPoolExecutor() as pool:
        handles = [pool.submit(lambda x: x + 1, item) for item in items]

    def local_worker(payload):
        return payload

    with ProcessPoolExecutor() as pool:
        results = list(pool.map(local_worker, items))
    proc = Process(target=lambda: None, args=(items, lambda x: x))
    return handles, results, proc
