"""Good examples for the R5 trail-safety rules (lint fixture, never imported).

Counters trailed through the DomainState helpers and declared in
``_trail_safe``; domains untouched in ``on_event``: clean under every
rule.
"""


class Propagator:
    """Local stand-in base so the hierarchy resolves inside this file."""

    _trail_safe = ()


class TidyCounter(Propagator):
    """Declares (and trails) exactly what it mutates during search."""

    _trail_safe = ("_c", "_stamp")

    def on_event(self, state, idx, old, new):
        """Trail the counters once per node, then update the delta."""
        c = self._c
        if self._stamp != state.stamp:
            self._stamp = state.stamp
            state.save_all(c)
        c[0] += 1
        return None

    def propagate(self, state):
        """Prune nothing."""
        return 1
