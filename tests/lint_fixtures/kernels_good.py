"""Good examples for the kernel-scoped rules (lint fixture, never imported).

Seeded RNG, sorted iteration over touched rows, and a kernel cache whose
search-time mutations are declared (and trailed once per node): clean
under every rule.
"""

import numpy as np


class Propagator:
    """Local stand-in base so the hierarchy resolves inside this file."""

    _trail_safe = ()


class TidyRowKernel(Propagator):
    """Declares (and trails) exactly the aggregates it maintains."""

    _trail_safe = ("_agg", "_stamp")

    def on_event(self, state, idx, old, new):
        """Trail the aggregate row once per node, then apply the delta."""
        agg = self._agg
        if self._stamp != state.stamp:
            self._stamp = state.stamp
            state.save_all(agg)
        agg[0] += 1
        return None

    def propagate(self, state):
        """Prune nothing."""
        return 1


def jitter_rows(matrix, touched, seed):
    """Deterministic function of (inputs, seed): fine everywhere."""
    rng = np.random.default_rng(seed)  # seeded: fine
    for r in sorted({r for r in touched}):  # sorted(): deterministic
        matrix[r] += rng.integers(1, 3)
    return matrix
