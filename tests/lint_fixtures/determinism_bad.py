"""Bad examples for the R1 determinism rules (lint fixture, never imported).

Expected findings: 1x R1.unseeded-random, 1x R1.module-random,
1x R1.wall-clock, 2x R1.set-iteration.
"""

import random
import time


def pick_processor(candidates):
    """Every decision here is ambient-nondeterministic."""
    rng = random.Random()  # R1.unseeded-random
    random.shuffle(candidates)  # R1.module-random
    if time.time() > 1e9:  # R1.wall-clock
        candidates.reverse()
    order = []
    for c in {3, 1, 2}:  # R1.set-iteration (for loop)
        order.append(c)
    doubled = [c * 2 for c in set(candidates)]  # R1.set-iteration (comprehension)
    return rng, order, doubled
