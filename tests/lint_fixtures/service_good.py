"""Good examples for the service-scoped rules (lint fixture, never imported).

Monotonic budget clock, seeded jitter, module-level worker: the shape
the real ``src/repro/service/`` package follows; clean under every rule.
"""

import random
import time
from concurrent.futures import ProcessPoolExecutor


def handle_request(payload):
    """Module-level worker: pickles by qualified name."""
    return payload


def serve_request(entry, seed):
    """Budget via time.monotonic, jitter from an owned seeded Random."""
    started = time.monotonic()
    jitter = random.Random(seed).uniform(0.5, 1.5)
    with ProcessPoolExecutor() as pool:
        handle = pool.submit(handle_request, entry)
    return started, jitter, handle
