"""Bad examples for the kernel-scoped rules (lint fixture, never imported).

The vectorised kernels (``src/repro/kernels/``) inherit the determinism
contract (their results are pinned byte-identical to the scalar paths
they replace — an ambient RNG or set-order dependence breaks the pin)
and the trail-safety contract (a kernel that caches per-search arrays
on a propagator must declare and trail every search-time mutation).

Expected findings: 1x R1.unseeded-random, 1x R1.set-iteration,
2x R5.unregistered-mutation.
"""

import numpy as np


class Propagator:
    """Local stand-in base so the hierarchy resolves inside this file."""

    _trail_safe = ()


class CachedRowKernel(Propagator):
    """Batched counting rows with an untrailed aggregate cache."""

    _trail_safe = ("_agg",)

    def on_event(self, state, idx, old, new):
        """One declared mutation, one silent cache write."""
        self._agg[0] += 1  # declared: fine
        self._stale[idx] = True  # R5.unregistered-mutation
        return None

    def propagate(self, state):
        """Mutates the cached row matrix through a local alias."""
        rows = self._rows
        rows[0] += 1  # R5.unregistered-mutation (alias write)
        return 1


def jitter_rows(matrix, touched):
    """Kernel helper whose output depends on ambient nondeterminism."""
    rng = np.random.default_rng()  # R1.unseeded-random
    for r in {r for r in touched}:  # R1.set-iteration
        matrix[r] += rng.integers(1, 3)
    return matrix
