"""Good examples for the R1 determinism rules (lint fixture, never imported).

Seeded RNG, monotonic budget clock, sorted set iteration: clean under
every rule.
"""

import random
import time


def pick_processor(candidates, seed):
    """Every decision is a deterministic function of (inputs, seed)."""
    rng = random.Random(seed)  # seeded: fine
    rng.shuffle(candidates)  # owned RNG, not the module global
    deadline = time.monotonic() + 1.0  # the sanctioned budget clock
    order = []
    for c in sorted({3, 1, 2}):  # sorted(): deterministic order
        order.append(c)
    return rng, order, deadline
