"""Bad examples for the R2 explain-contract rules (lint fixture, never imported).

Expected findings: 1x R2.explain-pair (LoneExplain), 2x R2.literal-shape
(WrongArity: one 2-tuple, one 4-tuple).
"""


class Propagator:
    """Local stand-in base so the hierarchy resolves inside this file."""


class LoneExplain(Propagator):
    """Implements explain_failure but not explain_event: R2.explain-pair."""

    def propagate(self, state):
        """Prune nothing."""
        return 1

    def explain_failure(self, state, trail):
        """A correctly-shaped literal list (the *pairing* is what is wrong)."""
        return [(1, 0, True)]


class WrongArity(Propagator):
    """Both explains present, but the literals are mis-shaped."""

    def propagate(self, state):
        """Prune nothing."""
        return 1

    def explain_event(self, state, trail, pos):
        """Builds a 2-tuple literal: R2.literal-shape."""
        out = []
        out.append((1, 2))  # R2.literal-shape (2-tuple)
        return out

    def explain_failure(self, state, trail):
        """Builds a 4-tuple literal: R2.literal-shape."""
        return [(1, 2, True, False)]  # R2.literal-shape (4-tuple)
