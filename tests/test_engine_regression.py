"""Deterministic search-counter regression grid for the CSP engine.

The incremental-propagation refactor must not change *search behaviour*:
for every pinned instance × solver cell, the final status and the
``SearchStats.nodes`` / ``SearchStats.fails`` counters must stay
byte-identical to the stateless-rescan engine that preceded it.
Propagation *counts* are deliberately not pinned — the whole point of
the refactor is to run fewer/cheaper propagator executions — but the
fixpoints reached (and therefore every branching decision) must match.

The expected values below were captured from the pre-refactor engine at
commit "PR 2" with the exact seeds/limits used here.  If a future PR
changes them on purpose (e.g. a stronger propagator), re-capture and
say so in the PR: a silent diff here means the engine's decisions moved.
"""

import pytest

from repro.generator import GeneratorConfig, generate_instance
from repro.generator.named import running_example, running_example_platform
from repro.model.platform import Platform
from repro.solvers.registry import create_solver

NODE_LIMIT = 20_000
SEED = 2009

#: instance grid: None = the paper's running example, else (n, tmax, m, seed)
SPECS = [None, (4, 4, 2, 11), (4, 4, 2, 12), (5, 4, 2, 23), (5, 5, 2, 31)]

#: (solver, spec) -> (status, nodes, fails) on the pre-refactor engine
EXPECTED = {
    ("csp1", None): ("feasible", 4850, 2413),
    ("csp1", (4, 4, 2, 11)): ("infeasible", 414, 208),
    ("csp1", (4, 4, 2, 12)): ("feasible", 7, 1),
    ("csp1", (5, 4, 2, 23)): ("feasible", 29, 0),
    ("csp1", (5, 5, 2, 31)): ("unknown", 20000, 9998),
    ("csp2-generic", None): ("feasible", 20, 3),
    ("csp2-generic", (4, 4, 2, 11)): ("infeasible", 49, 35),
    ("csp2-generic", (4, 4, 2, 12)): ("feasible", 7, 1),
    ("csp2-generic", (5, 4, 2, 23)): ("feasible", 15, 1),
    ("csp2-generic", (5, 5, 2, 31)): ("infeasible", 31, 26),
    ("csp2-generic+dc", None): ("feasible", 34, 15),
    ("csp2-generic+dc", (4, 4, 2, 11)): ("infeasible", 49, 35),
    ("csp2-generic+dc", (4, 4, 2, 12)): ("feasible", 12, 5),
    ("csp2-generic+dc", (5, 4, 2, 23)): ("feasible", 1224, 886),
    ("csp2-generic+dc", (5, 5, 2, 31)): ("infeasible", 31, 26),
}


def _instance(spec):
    if spec is None:
        return running_example(), running_example_platform()
    n, tmax, m, seed = spec
    inst = generate_instance(GeneratorConfig(n=n, tmax=tmax, m=m), seed)
    return inst.system, Platform.identical(inst.m)


@pytest.mark.parametrize(
    "solver_name,spec", sorted(EXPECTED, key=str), ids=lambda x: str(x)
)
def test_pinned_search_counters(solver_name, spec):
    """Status / nodes / fails are byte-identical to the recorded engine."""
    system, plat = _instance(spec)
    solver = create_solver(solver_name, system, plat, seed=SEED)
    result = solver.solve(node_limit=NODE_LIMIT)
    got = (result.status.value, result.stats.nodes, result.stats.fails)
    assert got == EXPECTED[(solver_name, spec)]


def test_grid_covers_all_verdicts():
    """The pinned grid keeps exercising SAT, UNSAT and budget-limited
    cells (otherwise a shrunk grid would weaken the regression guard)."""
    statuses = {status for status, _, _ in EXPECTED.values()}
    assert statuses == {"feasible", "infeasible", "unknown"}
