"""Unit tests for the task value-ordering heuristics (solvers.ordering)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model import Task, TaskSystem
from repro.solvers.ordering import HEURISTICS, heuristic_key, task_order

from tests.helpers import running_example


class TestHeuristicKey:
    def test_canonical_names(self):
        for name in ("rm", "dm", "tc", "dc"):
            assert heuristic_key(name) is HEURISTICS[name]

    def test_paper_aliases(self):
        assert heuristic_key("(D-C)") is HEURISTICS["dc"]
        assert heuristic_key("T-C") is HEURISTICS["tc"]
        assert heuristic_key("D-C") is HEURISTICS["dc"]

    def test_case_and_whitespace(self):
        assert heuristic_key(" RM ") is HEURISTICS["rm"]
        assert heuristic_key("DM") is HEURISTICS["dm"]

    def test_none_passthrough(self):
        assert heuristic_key(None) is None
        assert heuristic_key("none") is None

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown task heuristic"):
            heuristic_key("edf")


class TestKeys:
    def test_key_values_on_example(self):
        t = Task(1, 3, 4, 6)
        assert HEURISTICS["rm"](t) == 6
        assert HEURISTICS["dm"](t) == 4
        assert HEURISTICS["tc"](t) == 3
        assert HEURISTICS["dc"](t) == 1


class TestTaskOrder:
    def test_none_is_index_order(self):
        assert task_order(running_example(), None) == [0, 1, 2]

    def test_rm_order(self):
        # periods 2, 4, 3 -> tau1, tau3, tau2
        assert task_order(running_example(), "rm") == [0, 2, 1]

    def test_dm_order(self):
        # deadlines 2, 4, 2 -> tie between tau1/tau3 broken by index
        assert task_order(running_example(), "dm") == [0, 2, 1]

    def test_tc_order(self):
        # T-C: 1, 1, 1 -> all ties -> index order
        assert task_order(running_example(), "tc") == [0, 1, 2]

    def test_dc_order(self):
        # D-C: 1, 1, 0 -> tau3 first
        assert task_order(running_example(), "dc") == [2, 0, 1]

    @given(
        st.lists(
            st.tuples(st.integers(1, 9), st.integers(1, 9), st.integers(1, 9)),
            min_size=1,
            max_size=6,
        ),
        st.sampled_from(["rm", "dm", "tc", "dc"]),
    )
    def test_order_is_permutation_sorted_by_key(self, params, heuristic):
        tasks = [Task(0, min(c, d), d, max(d, t)) for c, d, t in params]
        system = TaskSystem(tasks)
        order = task_order(system, heuristic)
        assert sorted(order) == list(range(system.n))
        key = HEURISTICS[heuristic]
        keys = [key(system[i]) for i in order]
        assert keys == sorted(keys)

    @given(st.lists(st.integers(1, 9), min_size=1, max_size=5))
    def test_deterministic_tie_break(self, periods):
        tasks = [Task(0, 1, p, p) for p in periods]
        system = TaskSystem(tasks)
        a = task_order(system, "rm")
        b = task_order(system, "rm")
        assert a == b
        # ties resolve to ascending index
        for x, y in zip(a, a[1:]):
            kx, ky = periods[x], periods[y]
            assert kx < ky or (kx == ky and x < y)
