"""End-to-end CLI tests (all through main(), no subprocesses)."""

import json

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestGenerate:
    def test_single_to_stdout(self, capsys):
        code, out, _ = run_cli(capsys, "generate", "--count", "1", "-n", "4", "--seed", "1")
        assert code == 0
        data = json.loads(out)
        assert len(data["tasks"]) == 4
        assert 1 <= data["m"] <= 3

    def test_many_to_file(self, capsys, tmp_path):
        path = tmp_path / "batch.json"
        code, out, _ = run_cli(
            capsys, "generate", "--count", "3", "-n", "3", "-o", str(path)
        )
        assert code == 0
        data = json.loads(path.read_text())
        assert len(data) == 3

    def test_fixed_m(self, capsys):
        code, out, _ = run_cli(capsys, "generate", "-n", "5", "-m", "2", "--seed", "4")
        assert json.loads(out)["m"] == 2

    def test_deterministic(self, capsys):
        _, out1, _ = run_cli(capsys, "generate", "--seed", "9")
        _, out2, _ = run_cli(capsys, "generate", "--seed", "9")
        assert out1 == out2


class TestSolveValidate:
    @pytest.fixture
    def instance_file(self, tmp_path):
        path = tmp_path / "inst.json"
        path.write_text(
            json.dumps({"tasks": [[0, 1, 2, 2], [1, 3, 4, 4], [0, 2, 2, 3]], "m": 2})
        )
        return str(path)

    def test_solve_feasible(self, capsys, instance_file):
        code, out, _ = run_cli(capsys, "solve", instance_file, "--time-limit", "20")
        assert code == 0
        assert "status: feasible" in out
        assert "P1" in out  # gantt printed

    def test_solve_writes_schedule(self, capsys, instance_file, tmp_path):
        sched_path = tmp_path / "sched.json"
        code, out, _ = run_cli(
            capsys, "solve", instance_file, "--time-limit", "20", "-o", str(sched_path)
        )
        assert code == 0
        data = json.loads(sched_path.read_text())
        assert len(data["table"]) == 2
        assert len(data["table"][0]) == 12

    def test_solve_then_validate(self, capsys, instance_file, tmp_path):
        sched_path = tmp_path / "sched.json"
        run_cli(capsys, "solve", instance_file, "--time-limit", "20", "-o", str(sched_path))
        code, out, _ = run_cli(capsys, "validate", str(sched_path))
        assert code == 0
        assert "feasible" in out

    def test_validate_catches_corruption(self, capsys, instance_file, tmp_path):
        sched_path = tmp_path / "sched.json"
        run_cli(capsys, "solve", instance_file, "--time-limit", "20", "-o", str(sched_path))
        data = json.loads(sched_path.read_text())
        data["table"][0][0] = -1  # drop one unit
        sched_path.write_text(json.dumps(data))
        code, out, _ = run_cli(capsys, "validate", str(sched_path))
        assert code == 1
        assert "violates" in out

    def test_solve_infeasible_exit_zero(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"tasks": [[0, 2, 2, 2], [0, 2, 2, 2]], "m": 1}))
        code, out, _ = run_cli(capsys, "solve", str(path), "--time-limit", "20")
        assert code == 0
        assert "status: infeasible" in out

    def test_solve_timeout_exit_two(self, capsys, instance_file):
        code, out, _ = run_cli(
            capsys, "solve", instance_file, "--solver", "csp1", "--time-limit", "0.0"
        )
        assert code == 2

    def test_alternative_solver(self, capsys, instance_file):
        code, out, _ = run_cli(
            capsys, "solve", instance_file, "--solver", "sat", "--time-limit", "20"
        )
        assert code == 0 and "feasible" in out

    def test_min_processors_mode(self, capsys, instance_file):
        code, out, _ = run_cli(
            capsys, "solve", instance_file, "--min-processors", "--time-limit", "20"
        )
        assert code == 0
        assert "smallest sufficient m = 2 (exact minimum)" in out

    def test_platform_instance_format(self, capsys, tmp_path):
        path = tmp_path / "het.json"
        path.write_text(
            json.dumps(
                {
                    "tasks": [[0, 4, 2, 4], [0, 1, 2, 2]],
                    "platform": {"kind": "heterogeneous", "rates": [[2, 0], [1, 1]]},
                }
            )
        )
        code, out, _ = run_cli(capsys, "solve", str(path), "--time-limit", "20")
        assert code == 0 and "status: feasible" in out


class TestFigure1:
    def test_default(self, capsys):
        code, out, _ = run_cli(capsys, "figure1")
        assert code == 0
        assert "hyperperiod T = 12" in out

    def test_custom_instance(self, capsys, tmp_path):
        path = tmp_path / "inst.json"
        path.write_text(json.dumps({"tasks": [[0, 1, 2, 2]], "m": 1}))
        code, out, _ = run_cli(capsys, "figure1", "--instance", str(path))
        assert "hyperperiod T = 2" in out


class TestExperiment:
    def test_table1_tiny(self, capsys):
        code, out, _ = run_cli(
            capsys, "experiment", "table1",
            "--instances", "4", "--time-limit", "0.1", "--quiet",
        )
        assert code == 0
        assert "Table I" in out

    def test_table2_tiny_with_records(self, capsys, tmp_path):
        rec = tmp_path / "records.json"
        code, out, _ = run_cli(
            capsys, "experiment", "table2",
            "--instances", "4", "--time-limit", "0.1", "--quiet",
            "--records", str(rec),
        )
        assert code == 0
        assert "Table II" in out
        assert json.loads(rec.read_text())["records"]

    def test_table3_tiny(self, capsys):
        code, out, _ = run_cli(
            capsys, "experiment", "table3",
            "--instances", "4", "--time-limit", "0.1", "--quiet",
        )
        assert "Table III" in out

    def test_table4_tiny(self, capsys):
        code, out, _ = run_cli(
            capsys, "experiment", "table4",
            "--instances", "8", "--time-limit", "0.1", "--quiet",
        )
        assert "Table IV" in out

    def test_unknown_table_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["experiment", "table9"])
