"""White-box tests for the priority-driven simulator's edge behavior."""

import pytest

from repro.baselines import simulate_priority_policy
from repro.model import TaskSystem
from repro.schedule import validate

from tests.helpers import running_example


def edf_key(i, rel, dl, rem):
    return (dl, i)


class TestPeriodicityDetection:
    def test_synchronous_converges_in_one_cycle(self):
        s = TaskSystem.from_tuples([(0, 1, 2, 2), (0, 1, 4, 4)])
        sim = simulate_priority_policy(s, 1, edf_key)
        assert sim.schedulable is True
        # state at T equals state at 0 here: convergence after 1-2 cycles
        assert sim.cycles_simulated <= 2

    def test_offset_system_converges(self):
        s = TaskSystem.from_tuples([(3, 1, 2, 4), (0, 1, 2, 2)])
        sim = simulate_priority_policy(s, 1, edf_key)
        assert sim.schedulable is True
        assert validate(sim.schedule).ok

    def test_max_cycles_inconclusive_path(self):
        # max_cycles=0 gives the loop no aligned pair to compare
        s = TaskSystem.from_tuples([(0, 1, 2, 2)])
        sim = simulate_priority_policy(s, 1, edf_key, max_cycles=0)
        assert sim.schedulable is None
        assert sim.verdict == "inconclusive"

    def test_verdicts(self):
        s_ok = TaskSystem.from_tuples([(0, 1, 2, 2)])
        assert simulate_priority_policy(s_ok, 1, edf_key).verdict == "schedulable"
        s_bad = TaskSystem.from_tuples([(0, 2, 2, 2), (0, 2, 2, 2)])
        assert simulate_priority_policy(s_bad, 1, edf_key).verdict == "miss"


class TestExtractedSchedule:
    def test_extracted_cycle_is_validated_feasible(self):
        s = TaskSystem.from_tuples([(1, 1, 3, 4), (0, 2, 4, 4), (0, 1, 2, 2)])
        sim = simulate_priority_policy(s, 2, edf_key)
        assert sim.schedulable is True
        result = validate(sim.schedule)
        assert result.ok, [str(v) for v in result.violations]

    def test_priority_rank_assigns_low_processors_first(self):
        # single task runs on P1 (index 0) whenever it runs
        s = TaskSystem.from_tuples([(0, 1, 2, 2)])
        sim = simulate_priority_policy(s, 3, edf_key)
        table = sim.schedule.table
        assert set(table[1]) == {-1} and set(table[2]) == {-1}


class TestMissSemantics:
    def test_miss_at_exact_deadline_boundary(self):
        # job needs 2 units in a 2-slot window; block it with a higher task
        s = TaskSystem.from_tuples([(0, 1, 1, 2), (0, 2, 2, 2)])

        def fixed(i, rel, dl, rem):
            return (i,)  # task 0 always wins

        sim = simulate_priority_policy(s, 1, fixed)
        assert sim.schedulable is False
        task, rel, dl = sim.missed
        assert task == 1 and rel == 0 and dl == 2

    def test_wcet_zero_tasks_never_active(self):
        s = TaskSystem.from_tuples([(0, 0, 2, 2), (0, 1, 2, 2)])
        sim = simulate_priority_policy(s, 1, edf_key)
        assert sim.schedulable is True
        assert 0 not in set(sim.schedule.table.flatten().tolist())

    def test_running_example_edf_miss_details(self):
        """EDF's failure on the running example (documented in the
        priority_vs_csp example) is deterministic."""
        sim = simulate_priority_policy(running_example(), 2, edf_key)
        assert sim.schedulable is False
        assert sim.missed is not None
