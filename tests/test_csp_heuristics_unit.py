"""Direct unit tests for the CSP search heuristics."""

import random

import pytest

from repro.csp import Model
from repro.csp.heuristics import (
    SearchContext,
    make_value_order_phase_saving,
    make_value_order_random,
    make_var_order_last_conflict,
    value_order_ascending,
    value_order_custom,
    value_order_descending,
    var_order_dom_deg,
    var_order_dom_wdeg,
    var_order_input,
    var_order_min_domain,
)
from repro.csp.state import DomainState


@pytest.fixture
def setup():
    m = Model()
    a = m.int_var(0, 4, "a")          # size 5
    b = m.int_var(0, 1, "b")          # size 2
    c = m.int_var_from([1, 3, 9], "c")  # size 3
    m.add_non_decreasing([a, b])
    m.add_non_decreasing([a, c])
    ctx = SearchContext(degrees=m.degrees())
    return m, (a, b, c), ctx


class TestVarOrders:
    def test_input_order(self, setup):
        m, (a, b, c), ctx = setup
        s = DomainState(m)
        assert var_order_input(s, ctx) is a
        s.assign(a, 0)
        assert var_order_input(s, ctx) is b

    def test_input_none_when_done(self, setup):
        m, (a, b, c), ctx = setup
        s = DomainState(m)
        for v, val in ((a, 1), (b, 1), (c, 3)):
            s.assign(v, val)
        assert var_order_input(s, ctx) is None

    def test_min_domain(self, setup):
        m, (a, b, c), ctx = setup
        s = DomainState(m)
        assert var_order_min_domain(s, ctx) is b  # size 2
        s.assign(b, 0)
        assert var_order_min_domain(s, ctx) is c  # size 3

    def test_min_domain_random_tiebreak_seeded(self, setup):
        m, (a, b, c), ctx = setup
        s = DomainState(m)
        s.remove_value(c, 9)  # now b and c both size 2
        ctx.rng = random.Random(0)
        picks = {var_order_min_domain(s, ctx).name for _ in range(20)}
        assert picks == {"b", "c"}  # both get picked across draws

    def test_dom_deg(self, setup):
        m, (a, b, c), ctx = setup
        s = DomainState(m)
        # a: 5/2 = 2.5, b: 2/1 = 2.0, c: 3/1 = 3.0 -> b
        assert var_order_dom_deg(s, ctx) is b
        s.assign(b, 1)
        # a: 2.5 vs c: 3.0 -> a
        assert var_order_dom_deg(s, ctx) is a

    def test_dom_deg_handles_degree_zero(self):
        m = Model()
        x = m.int_var(0, 1, "x")  # no constraints at all
        ctx = SearchContext(degrees=m.degrees())
        assert var_order_dom_deg(DomainState(m), ctx) is x


class TestAdaptiveOrders:
    def test_dom_wdeg_matches_dom_deg_before_conflicts(self, setup):
        m, (a, b, c), ctx = setup
        s = DomainState(m)
        assert var_order_dom_wdeg(s, ctx) is var_order_dom_deg(s, ctx)
        assert ctx.weights is not None  # lazily initialized

    def test_dom_wdeg_prefers_conflict_heavy_vars(self, setup):
        m, (a, b, c), ctx = setup
        s = DomainState(m)
        ctx.weights = [0.0] * m.n_variables
        ctx.weights[c.index] = 50.0  # c keeps conflicting
        assert var_order_dom_wdeg(s, ctx) is c

    def test_last_conflict_retries_culprit_first(self, setup):
        m, (a, b, c), ctx = setup
        s = DomainState(m)
        order = make_var_order_last_conflict(var_order_min_domain)
        assert order(s, ctx) is b  # no conflicts yet: base order
        ctx.last_conflicts[:] = [c.index]
        assert order(s, ctx) is c
        s.assign(c, 3)  # culprit assigned: fall back to base
        assert order(s, ctx) is b

    def test_phase_saving_reorders_to_saved_value(self, setup):
        m, (a, b, c), _ = setup
        s = DomainState(m)
        phases = {}
        order = make_value_order_phase_saving(value_order_ascending, phases)
        assert order(s, c) == [1, 3, 9]  # nothing saved: base order
        phases[c.index] = 3
        assert order(s, c) == [3, 1, 9]
        s.remove_value(c, 3)  # saved value gone: base order again
        assert order(s, c) == [1, 9]


class TestValueOrders:
    def test_ascending_descending(self, setup):
        m, (a, b, c), _ = setup
        s = DomainState(m)
        assert value_order_ascending(s, c) == [1, 3, 9]
        assert value_order_descending(s, c) == [9, 3, 1]

    def test_random_covers_domain(self, setup):
        m, (a, b, c), _ = setup
        s = DomainState(m)
        order = make_value_order_random(random.Random(1))
        vals = order(s, c)
        assert sorted(vals) == [1, 3, 9]

    def test_custom_per_var(self, setup):
        m, (a, b, c), _ = setup
        s = DomainState(m)
        order = value_order_custom({c.index: [9, 1]})
        assert order(s, c) == [9, 1, 3]  # leftovers appended ascending
        assert order(s, a) == [0, 1, 2, 3, 4]  # unmapped var: ascending

    def test_custom_global(self, setup):
        m, (a, b, c), _ = setup
        s = DomainState(m)
        order = value_order_custom([3, 0])
        assert order(s, a) == [3, 0, 1, 2, 4]
        assert order(s, c) == [3, 1, 9]

    def test_custom_ignores_absent_values(self, setup):
        m, (a, b, c), _ = setup
        s = DomainState(m)
        s.remove_value(c, 9)
        order = value_order_custom([9, 3])
        assert order(s, c) == [3, 1]
