"""Tests for the C1/C3/C4 schedule validator."""

import numpy as np
import pytest

from repro.model import Platform, TaskSystem
from repro.schedule import IDLE, Schedule, validate

from tests.helpers import RUNNING_EXAMPLE_TABLE, running_example


def make(table, system=None, platform=None):
    return Schedule(
        system or running_example(), platform or Platform.identical(2), table
    )


class TestFeasible:
    def test_hand_verified_schedule_ok(self):
        result = validate(make(RUNNING_EXAMPLE_TABLE))
        assert result.ok
        assert result.violations == ()
        result.raise_if_invalid()  # must not raise

    def test_empty_schedule_of_zero_wcet_system(self):
        s = TaskSystem.from_tuples([(0, 0, 2, 2)])
        sched = Schedule.empty(s, Platform.identical(1))
        assert validate(sched).ok


class TestC1:
    def test_outside_window_flagged(self):
        table = [row[:] for row in RUNNING_EXAMPLE_TABLE]
        # tau3 (idx 2) is never available at slot 2
        table[1][2] = 2
        result = validate(make(table))
        c1 = result.by_kind("C1")
        assert len(c1) == 1
        assert c1[0].task == 2 and c1[0].slot == 2
        # placing it there also breaks no C4 count (outside-window units are
        # not credited), so the schedule stays broken only via C1
        assert not result.by_kind("C4")

    def test_raise_if_invalid(self):
        table = [row[:] for row in RUNNING_EXAMPLE_TABLE]
        table[1][2] = 2
        with pytest.raises(ValueError, match="C1"):
            validate(make(table)).raise_if_invalid()


class TestC3:
    def test_parallel_execution_flagged(self):
        table = [row[:] for row in RUNNING_EXAMPLE_TABLE]
        # tau2 (idx 1) already runs on P2 at slot 3; duplicate it on P1
        table[0][3] = 1
        result = validate(make(table))
        c3 = result.by_kind("C3")
        assert len(c3) == 1
        assert c3[0].task == 1 and c3[0].slot == 3
        # the duplicated unit also overfills the job -> C4
        c4 = result.by_kind("C4")
        assert len(c4) == 2  # tau2 job over, tau3 job under (it lost P1@3)


class TestC4:
    def test_underfilled_job(self):
        table = [row[:] for row in RUNNING_EXAMPLE_TABLE]
        table[1][0] = IDLE  # tau1's only unit in window 0
        result = validate(make(table))
        c4 = result.by_kind("C4")
        assert len(c4) == 1
        assert c4[0].task == 0 and c4[0].job == 0
        assert "0 units" in c4[0].message and "exactly 1" in c4[0].message

    def test_overfilled_job(self):
        table = [row[:] for row in RUNNING_EXAMPLE_TABLE]
        table[0][2] = IDLE  # remove tau1 from (P1,2) ...
        table[0][5] = IDLE  # ... and (P1,5)
        table[1][2] = 0     # put tau1 at (P2,2) and (P2,3)? no — both in window 1
        table[1][3] = 0
        result = validate(make(table))
        kinds = {v.kind for v in result.violations}
        assert "C4" in kinds
        # tau1 window 1 got 2 units (slots 2,3), window 2 got 0,
        # and tau2 lost units at slots 3 -> several C4s
        tasks_flagged = {v.task for v in result.by_kind("C4")}
        assert 0 in tasks_flagged and 1 in tasks_flagged

    def test_exactly_c_is_strict(self):
        # paper: processors idle through unused WCET; a job must get exactly C
        s = TaskSystem.from_tuples([(0, 1, 2, 2)])
        table = np.full((1, 2), IDLE)
        table[0, 0] = 0
        table[0, 1] = 0  # 2 units for a C=1 job
        result = validate(Schedule(s, Platform.identical(1), table))
        assert not result.ok
        assert result.by_kind("C4")[0].message.startswith("job 0")


class TestHeterogeneous:
    def test_rates_scale_execution(self):
        # one task, C=4, D=2: impossible on identical, fine at rate 2
        s = TaskSystem.from_tuples([(0, 4, 2, 4)])
        p = Platform.heterogeneous([[2]])
        table = np.full((1, 4), IDLE)
        table[0, 0] = 0
        table[0, 1] = 0
        assert validate(Schedule(s, p, table)).ok

    def test_zero_rate_processor_flagged(self):
        s = TaskSystem.from_tuples([(0, 1, 2, 2), (0, 1, 2, 2)])
        p = Platform.heterogeneous([[1, 0], [1, 1]])
        table = np.full((2, 2), IDLE)
        table[1, 0] = 0  # tau1 on P2 where s=0
        table[0, 0] = 1
        table[0, 1] = 1  # overfills tau2? no: two windows? T=2,D=2 -> 1 window
        # tau2 has one window [0,1] needing 1 unit; it got 2 -> C4 too.
        table[0, 1] = IDLE
        result = validate(Schedule(s, p, table))
        msgs = [v.message for v in result.by_kind("C4")]
        assert any("rate 0" in m for m in msgs)

    def test_partial_rate_accumulation(self):
        # C=3 at rate 2 can never hit exactly 3 -> infeasible however placed
        s = TaskSystem.from_tuples([(0, 3, 4, 4)])
        p = Platform.heterogeneous([[2]])
        table = np.full((1, 4), IDLE)
        table[0, 0] = 0
        table[0, 1] = 0
        result = validate(Schedule(s, p, table))
        assert not result.ok
        assert "received 4" in result.by_kind("C4")[0].message


class TestValidationPreconditions:
    def test_rejects_arbitrary_deadline_systems(self):
        s = TaskSystem.from_tuples([(0, 1, 5, 3)])
        sched = Schedule.empty(s, Platform.identical(1))
        with pytest.raises(ValueError, match="clone"):
            validate(sched)


class TestViolationDataclass:
    def test_str(self):
        from repro.schedule import Violation

        v = Violation("C1", "boom", task=1, slot=2)
        assert str(v) == "[C1] boom"
