"""Direct tests for the race() primitive's fault tolerance.

The portfolio tests exercise race() end-to-end through solvers; these
tests target the primitive itself, especially the regression the
supervision PR fixed: a worker that dies without reporting used to hang
a no-``time_limit`` race forever on the result queue.
"""

import os
import signal
import time

from repro.batch.racing import RaceError, race


def _identity(payload):
    return payload


def _die_by_sigkill(_payload):
    os.kill(os.getpid(), signal.SIGKILL)


def _sleep_then_return(seconds):
    time.sleep(seconds)
    return seconds


def _any_result(_index, result):
    return not isinstance(result, RaceError)


def _never(_index, _result):
    return False


class TestDeadWorkers:
    def test_dead_worker_without_time_limit_does_not_hang(self):
        """The regression: no deadline + a SIGKILLed worker must resolve
        to a RaceError promptly instead of blocking on the queue."""
        t0 = time.monotonic()
        outcome = race([None], _die_by_sigkill, _never, time_limit=None)
        assert time.monotonic() - t0 < 30.0
        assert outcome.winner is None
        assert isinstance(outcome.results[0], RaceError)
        assert "exitcode -9" in outcome.results[0].message

    def test_race_survives_a_dead_member(self):
        """One member dies, the other still wins."""
        outcome = race(
            [0.2, None],
            _sleep_or_die,
            _any_result,
            time_limit=None,
        )
        assert outcome.winner == 0
        assert outcome.results[0] == 0.2
        assert isinstance(outcome.results.get(1, RaceError("")), RaceError)

    def test_all_dead_members_all_reported(self):
        outcome = race([None, None, None], _die_by_sigkill, _never)
        assert outcome.winner is None
        assert len(outcome.results) == 3
        assert all(isinstance(r, RaceError) for r in outcome.results.values())


def _sleep_or_die(payload):
    if payload is None:
        os.kill(os.getpid(), signal.SIGKILL)
    time.sleep(payload)
    return payload


class TestGraceKnob:
    def test_grace_extends_the_deadline(self):
        """A worker needing ~0.5s reports in time under time_limit=0.1
        only because grace covers the overshoot."""
        outcome = race(
            [0.5], _sleep_then_return, _any_result,
            time_limit=0.1, grace=30.0,
        )
        assert outcome.winner == 0

    def test_tight_grace_cancels_the_laggard(self):
        outcome = race(
            [30.0], _sleep_then_return, _any_result,
            time_limit=0.1, grace=0.2,
        )
        assert outcome.winner is None
        assert outcome.cancelled == [0]


class TestBasics:
    def test_first_decisive_wins_and_losers_cancelled(self):
        outcome = race(
            [0.05, 60.0], _sleep_then_return, _any_result, time_limit=None,
        )
        assert outcome.winner == 0
        assert 1 in outcome.cancelled or outcome.results.get(1) == 60.0

    def test_results_recorded_for_indecisive_entries(self):
        outcome = race([1, 2], _identity, _never, time_limit=5.0)
        assert outcome.winner is None
        assert outcome.results == {0: 1, 1: 2}
