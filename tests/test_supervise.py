"""Tests for supervised execution: watchdog, rlimit, fault classification."""

import os
import signal
import time

import pytest

from repro.batch.supervise import (
    FAULT_CRASH,
    FAULT_ERROR,
    FAULT_OOM,
    FAULT_TIMEOUT,
    FaultRecord,
    run_supervised,
)

# -- module-level worker functions (pickled by name into children) ---------


def _double(x):
    return x * 2


def _raise_value_error(_):
    raise ValueError("deliberate failure")


def _raise_memory_error(_):
    raise MemoryError("simulated exhaustion")


def _die_by_signal(sig):
    os.kill(os.getpid(), sig)


def _exit_silently(code):
    os._exit(code)


def _sleep_forever(_):
    time.sleep(3600.0)


def _allocate_3gb(_):
    return len(bytearray(3 << 30))


class TestCleanRuns:
    def test_result_comes_back(self):
        result, fault = run_supervised(_double, 21)
        assert result == 42 and fault is None

    def test_picklable_payloads_roundtrip(self):
        result, fault = run_supervised(_double, [1, 2])
        assert result == [1, 2, 1, 2] and fault is None


class TestClassification:
    def test_python_error_carries_traceback(self):
        result, fault = run_supervised(_raise_value_error, None)
        assert result is None
        assert fault.kind == FAULT_ERROR
        assert "ValueError" in fault.detail and "deliberate failure" in fault.detail
        assert fault.exitcode == 0  # the child reported, then exited cleanly

    def test_memory_error_classifies_as_oom(self):
        _, fault = run_supervised(_raise_memory_error, None)
        assert fault.kind == FAULT_OOM
        assert "MemoryError" in fault.detail

    def test_sigkill_death_reads_as_oom(self):
        """SIGKILL without a report is the OOM-killer's signature."""
        _, fault = run_supervised(_die_by_signal, signal.SIGKILL)
        assert fault.kind == FAULT_OOM
        assert fault.exitcode == -signal.SIGKILL
        assert "SIGKILL" in fault.detail

    def test_other_signal_death_is_a_crash(self):
        _, fault = run_supervised(_die_by_signal, signal.SIGABRT)
        assert fault.kind == FAULT_CRASH
        assert fault.exitcode == -signal.SIGABRT
        assert "SIGABRT" in fault.detail

    def test_silent_exit_is_a_crash(self):
        _, fault = run_supervised(_exit_silently, 7)
        assert fault.kind == FAULT_CRASH
        assert fault.exitcode == 7
        assert "without reporting" in fault.detail


class TestWatchdog:
    def test_hang_is_reaped_at_the_deadline(self):
        t0 = time.monotonic()
        result, fault = run_supervised(_sleep_forever, None, wall_limit=0.5)
        assert result is None
        assert fault.kind == FAULT_TIMEOUT
        assert time.monotonic() - t0 < 10.0  # reaped, not waited out

    def test_fast_work_beats_the_deadline(self):
        result, fault = run_supervised(_double, 3, wall_limit=30.0)
        assert result == 6 and fault is None


class TestMemoryLimit:
    def test_rlimit_turns_a_balloon_into_oom(self):
        _, fault = run_supervised(
            _allocate_3gb, None, wall_limit=30.0, memory_limit=2 << 30
        )
        assert fault is not None
        # MemoryError under the rlimit, or a kernel kill — both are OOM
        assert fault.kind == FAULT_OOM

    def test_modest_work_fits_under_the_limit(self):
        result, fault = run_supervised(_double, 5, memory_limit=8 << 30)
        assert result == 10 and fault is None


class TestFaultRecord:
    def test_to_dict_roundtrips_the_fields(self):
        rec = FaultRecord(kind="crash", detail="d", exitcode=-9, attempts=3)
        assert rec.to_dict() == {
            "kind": "crash", "detail": "d", "exitcode": -9, "attempts": 3,
        }
