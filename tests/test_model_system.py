"""Tests for TaskSystem aggregates."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model import Task, TaskSystem

EXAMPLE = [(0, 1, 2, 2), (1, 3, 4, 4), (0, 2, 2, 3)]


@pytest.fixture
def example():
    return TaskSystem.from_tuples(EXAMPLE)


def systems(max_n=5, max_period=10):
    def build(params):
        tasks = []
        for o, t, d, c in params:
            d = min(d, t)
            tasks.append(Task(o, min(c, d), d, t))
        return TaskSystem(tasks)

    return st.builds(
        build,
        st.lists(
            st.tuples(
                st.integers(0, 8),
                st.integers(1, max_period),
                st.integers(1, max_period),
                st.integers(0, max_period),
            ),
            min_size=1,
            max_size=max_n,
        ),
    )


class TestConstruction:
    def test_from_tuples(self, example):
        assert example.n == 3
        assert example[1].as_tuple() == (1, 3, 4, 4)

    def test_default_names_one_based(self, example):
        assert [t.name for t in example] == ["tau1", "tau2", "tau3"]

    def test_explicit_names(self):
        s = TaskSystem.from_tuples(EXAMPLE, names=["a", "b", "c"])
        assert [t.name for t in s] == ["a", "b", "c"]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            TaskSystem([])

    def test_rejects_non_task(self):
        with pytest.raises(TypeError):
            TaskSystem([(0, 1, 2, 2)])

    def test_equality_and_hash(self, example):
        other = TaskSystem.from_tuples(EXAMPLE)
        assert example == other
        assert hash(example) == hash(other)

    def test_rename(self, example):
        renamed = example.rename(["x", "y", "z"])
        assert [t.name for t in renamed] == ["x", "y", "z"]
        with pytest.raises(ValueError):
            example.rename(["only-one"])


class TestAggregates:
    def test_hyperperiod(self, example):
        assert example.hyperperiod == 12

    def test_max_period(self, example):
        assert example.max_period == 4

    def test_utilization_exact(self, example):
        # 1/2 + 3/4 + 2/3 = 23/12
        assert example.utilization == Fraction(23, 12)

    def test_utilization_ratio(self, example):
        assert example.utilization_ratio(2) == Fraction(23, 24)

    def test_ratio_rejects_bad_m(self, example):
        with pytest.raises(ValueError):
            example.utilization_ratio(0)

    def test_density_example(self, example):
        # 1/2 + 3/4 + 2/2 = 9/4
        assert example.density == Fraction(9, 4)

    def test_min_processors(self, example):
        # ceil(23/12) = 2, the paper's m_min rule (Table IV)
        assert example.min_processors == 2

    def test_min_processors_at_least_one(self):
        s = TaskSystem.from_tuples([(0, 0, 1, 1)])
        assert s.min_processors == 1

    def test_is_constrained(self, example):
        assert example.is_constrained
        s = TaskSystem.from_tuples([(0, 1, 5, 3)])
        assert not s.is_constrained

    def test_total_jobs(self, example):
        # 6 + 3 + 4 jobs per hyperperiod
        assert example.total_jobs() == 13

    def test_total_demand(self, example):
        # 6*1 + 3*3 + 4*2 = 23 units per hyperperiod
        assert example.total_demand() == 23

    def test_task_slots(self, example):
        # tau3 can never run at slots 2, 5, 8, 11
        assert example.task_slots(2) == [0, 1, 3, 4, 6, 7, 9, 10]


@given(systems())
def test_total_demand_equals_utilization_times_T(s):
    """sum (T/T_i) C_i == U * T — exact identity linking the two load views."""
    assert s.total_demand() == s.utilization * s.hyperperiod


@given(systems())
def test_hyperperiod_multiple_of_every_period(s):
    assert all(s.hyperperiod % t.period == 0 for t in s)


@given(systems())
def test_min_processors_bounds(s):
    m = s.min_processors
    assert m >= 1
    assert s.utilization <= m
    if s.utilization > 0:
        assert m - 1 < s.utilization


@given(systems())
def test_task_slots_union_sizes(s):
    for i in range(s.n):
        slots = s.task_slots(i)
        assert len(slots) == s.n_jobs(i) * s[i].deadline
        assert all(0 <= x < s.hyperperiod for x in slots)
