"""Tests for the incremental minimum-m search (paper future work)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import Platform, Task, TaskSystem
from repro.solvers import Feasibility, find_min_processors, create_solver

from tests.helpers import running_example


class TestBasics:
    def test_running_example_needs_two(self):
        res = find_min_processors(running_example(), time_limit_per_m=20)
        assert res.found and res.m == 2
        assert res.exact
        assert res.result.is_feasible
        # the search started at ceil(U) = 2, so only one attempt
        assert list(res.attempts) == [2]

    def test_single_light_task(self):
        s = TaskSystem.from_tuples([(0, 1, 4, 4)])
        res = find_min_processors(s, time_limit_per_m=20)
        assert res.m == 1 and res.exact

    def test_utilization_bound_not_always_tight(self):
        # two D=1 tasks colliding at slot 0: U = 2/8 -> start at m=1,
        # but only m=2 works; the m=1 INFEASIBLE proof keeps it exact
        s = TaskSystem.from_tuples([(0, 1, 1, 8), (0, 1, 1, 8)])
        res = find_min_processors(s, time_limit_per_m=20)
        assert res.m == 2
        assert res.exact
        assert res.attempts[1] is Feasibility.INFEASIBLE

    def test_impossible_task_never_fits(self):
        # C > D: no processor count helps
        s = TaskSystem.from_tuples([(0, 3, 2, 4)])
        res = find_min_processors(s, time_limit_per_m=5, max_m=4)
        assert not res.found
        assert all(v is Feasibility.INFEASIBLE for v in res.attempts.values())

    def test_budget_exhaustion_reported(self):
        res = find_min_processors(
            running_example(), solver="csp1", total_time_limit=0.0
        )
        assert not res.found
        assert not res.exact or res.attempts == {}

    def test_unknown_attempt_breaks_exactness(self):
        # csp1 with a tiny per-m budget will overrun on m=2... then a
        # bigger m may still be found by the same solver; exactness drops
        s = running_example()
        res = find_min_processors(
            s, solver="csp1", time_limit_per_m=0.01, max_m=3
        )
        if res.found:
            assert not res.exact


@settings(deadline=None, max_examples=20)
@given(st.data())
def test_min_m_is_minimal_and_feasible(data):
    n = data.draw(st.integers(1, 4))
    tasks = []
    for _ in range(n):
        t = data.draw(st.sampled_from([1, 2, 4]))
        d = data.draw(st.integers(1, t))
        c = data.draw(st.integers(1, d))
        tasks.append(Task(0, c, d, t))
    system = TaskSystem(tasks)
    res = find_min_processors(system, time_limit_per_m=20)
    assert res.found, "every C<=D<=T system fits on n processors"
    assert res.exact
    # feasible at m
    check = create_solver("csp2+dc", system, Platform.identical(res.m)).solve(
        time_limit=20
    )
    assert check.is_feasible
    # infeasible at m-1 (when m-1 >= 1)
    if res.m > 1:
        below = create_solver(
            "csp2+dc", system, Platform.identical(res.m - 1)
        ).solve(time_limit=20)
        assert below.status is Feasibility.INFEASIBLE
