"""Tests for the Section VII-A random generator and named instances."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generator import (
    GeneratorConfig,
    generate_instance,
    generate_instances,
    generate_system,
    generate_task,
    harmonic_system,
    running_example,
    running_example_platform,
    saturated_pair,
)


class TestConfig:
    def test_defaults_are_table1(self):
        cfg = GeneratorConfig()
        assert (cfg.n, cfg.m, cfg.tmax) == (10, 5, 7)

    def test_validation(self):
        with pytest.raises(ValueError):
            GeneratorConfig(n=0)
        with pytest.raises(ValueError):
            GeneratorConfig(tmax=0)
        with pytest.raises(ValueError):
            GeneratorConfig(order="xyz")
        with pytest.raises(ValueError):
            GeneratorConfig(offsets="sometimes")
        with pytest.raises(ValueError):
            GeneratorConfig(m=0)
        with pytest.raises(ValueError):
            GeneratorConfig(m="median")


@settings(max_examples=60)
@given(st.integers(0, 10_000), st.integers(1, 12), st.sampled_from(["d-first", "cdt", "tdc"]))
def test_task_constraint_chain(seed, tmax, order):
    """Every sampled task satisfies 1 <= C <= D <= T <= Tmax (paper VII-A)."""
    t = generate_task(random.Random(seed), tmax, order)
    assert 1 <= t.wcet <= t.deadline <= t.period <= tmax


def test_bad_order_rejected():
    with pytest.raises(ValueError):
        generate_task(random.Random(0), 5, "dct")


@settings(max_examples=30)
@given(st.integers(0, 10_000))
def test_system_shape(seed):
    s = generate_system(random.Random(seed), n=6, tmax=7)
    assert s.n == 6
    assert s.is_constrained
    assert all(0 <= t.offset < t.period for t in s)


def test_zero_offsets_mode():
    s = generate_system(random.Random(1), n=5, tmax=7, offsets="zero")
    assert all(t.offset == 0 for t in s)


class TestInstances:
    def test_deterministic_by_seed(self):
        cfg = GeneratorConfig()
        a = generate_instance(cfg, 123)
        b = generate_instance(cfg, 123)
        assert a.system == b.system and a.m == b.m

    def test_fixed_m(self):
        inst = generate_instance(GeneratorConfig(m=5), 7)
        assert inst.m == 5

    def test_uniform_m_range(self):
        cfg = GeneratorConfig(n=10, m="uniform")
        ms = {generate_instance(cfg, s).m for s in range(200)}
        assert ms <= set(range(1, 10))
        assert len(ms) > 3  # actually varies

    def test_min_m_rule(self):
        """Table IV: m = max(1, ceil(U)) makes every instance pass the filter."""
        cfg = GeneratorConfig(n=8, tmax=15, m="min")
        for s in range(50):
            inst = generate_instance(cfg, s)
            assert inst.m == inst.system.min_processors
            assert inst.utilization_ratio <= 1

    def test_generate_many(self):
        batch = generate_instances(GeneratorConfig(n=4, tmax=5), 20, seed=1)
        assert len(batch) == 20
        # all reproducible
        again = generate_instances(GeneratorConfig(n=4, tmax=5), 20, seed=1)
        assert [i.system for i in batch] == [i.system for i in again]
        # different seeds differ
        other = generate_instances(GeneratorConfig(n=4, tmax=5), 20, seed=2)
        assert [i.system for i in batch] != [i.system for i in other]

    def test_negative_count(self):
        with pytest.raises(ValueError):
            generate_instances(GeneratorConfig(), -1)

    def test_utilization_ratio(self):
        inst = generate_instance(GeneratorConfig(), 5)
        assert inst.utilization_ratio == inst.system.utilization / inst.m


class TestOrderBias:
    """The paper: C->D->T favors large periods, T->D->C favors short WCETs."""

    def test_distribution_shift(self):
        rng = random.Random(0)
        n = 3000
        cdt = [generate_task(rng, 10, "cdt") for _ in range(n)]
        tdc = [generate_task(rng, 10, "tdc") for _ in range(n)]
        mean_period_cdt = sum(t.period for t in cdt) / n
        mean_period_tdc = sum(t.period for t in tdc) / n
        assert mean_period_cdt > mean_period_tdc
        mean_wcet_cdt = sum(t.wcet for t in cdt) / n
        mean_wcet_tdc = sum(t.wcet for t in tdc) / n
        assert mean_wcet_tdc < mean_wcet_cdt


class TestNamed:
    def test_running_example_matches_paper(self):
        s = running_example()
        assert [t.as_tuple() for t in s] == [(0, 1, 2, 2), (1, 3, 4, 4), (0, 2, 2, 3)]
        assert s.hyperperiod == 12
        assert running_example_platform().m == 2

    def test_saturated_pair(self):
        s = saturated_pair()
        assert s.utilization == 1

    def test_harmonic(self):
        s = harmonic_system(levels=3, base=2)
        assert [t.period for t in s] == [2, 4, 8]
        assert s.hyperperiod == 8
        with pytest.raises(ValueError):
            harmonic_system(levels=0)
