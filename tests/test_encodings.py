"""Tests for the CSP1/CSP2/SAT encodings: structure, decode, Theorem 2."""

import itertools

import pytest

from repro.csp import Solver, Status
from repro.encodings import encode_csp1, encode_csp2
from repro.encodings.sat1 import encode_sat1
from repro.model import Platform, Task, TaskSystem
from repro.schedule import IDLE, validate

from tests.helpers import running_example


class TestCsp1Structure:
    def test_variable_count_reduction(self):
        """Paper Section IV-B: real variables are sum_i m*(T/T_i)*D_i."""
        s = running_example()
        enc = encode_csp1(s, Platform.identical(2))
        expected = sum(2 * s.n_jobs(i) * s[i].deadline for i in range(3))
        assert enc.n_variables == expected
        # versus the naive n*m*T = 3*2*12 = 72
        assert enc.n_variables < 3 * 2 * 12

    def test_heterogeneous_zero_rate_vars_not_created(self):
        s = TaskSystem.from_tuples([(0, 1, 2, 2), (0, 1, 2, 2)])
        p = Platform.heterogeneous([[1, 0], [1, 1]])
        enc = encode_csp1(s, p)
        assert not any(i == 0 and j == 1 for (i, j, t) in enc.vars)

    def test_rejects_arbitrary_deadlines(self):
        s = TaskSystem.from_tuples([(0, 1, 5, 3)])
        with pytest.raises(ValueError, match="clone"):
            encode_csp1(s, Platform.identical(1))

    def test_decode_roundtrip(self):
        s = running_example()
        enc = encode_csp1(s, Platform.identical(2))
        out = Solver(enc.model).solve()
        assert out.status is Status.SAT
        sched = enc.decode(out.solution)
        assert validate(sched).ok

    def test_decode_rejects_conflicting_solution(self):
        s = TaskSystem.from_tuples([(0, 1, 2, 2), (0, 1, 2, 2)])
        enc = encode_csp1(s, Platform.identical(1))
        # forge a "solution" that puts both tasks on P1 at slot 0
        bogus = {v: 0 for v in enc.model.variables}
        bogus[enc.vars[(0, 0, 0)]] = 1
        bogus[enc.vars[(1, 0, 0)]] = 1
        with pytest.raises(ValueError, match="both"):
            enc.decode(bogus)


class TestCsp2Structure:
    def test_variable_count_is_m_times_T(self):
        s = running_example()
        enc = encode_csp2(s, Platform.identical(2))
        assert enc.n_variables == 2 * 12

    def test_idle_value_is_n(self):
        s = running_example()
        enc = encode_csp2(s, Platform.identical(2))
        assert enc.idle_value == 3

    def test_domains_respect_windows(self):
        """Condition (7) folded into domains: tau3 unavailable at slot 2."""
        s = running_example()
        enc = encode_csp2(s, Platform.identical(2))
        v = enc.vars[(0, 2)]
        assert 2 not in v.initial_values()
        assert enc.idle_value in v.initial_values()

    def test_heterogeneous_domains_drop_zero_rate_tasks(self):
        s = TaskSystem.from_tuples([(0, 1, 2, 2), (0, 1, 2, 2)])
        p = Platform.heterogeneous([[1, 0], [1, 1]])
        enc = encode_csp2(s, p)
        assert 0 not in enc.vars[(1, 0)].initial_values()
        assert 0 in enc.vars[(0, 0)].initial_values()

    def test_decode_roundtrip(self):
        s = running_example()
        enc = encode_csp2(s, Platform.identical(2))
        out = Solver(enc.model).solve()
        assert out.status is Status.SAT
        assert validate(enc.decode(out.solution)).ok

    def test_rejects_arbitrary_deadlines(self):
        s = TaskSystem.from_tuples([(0, 1, 5, 3)])
        with pytest.raises(ValueError, match="clone"):
            encode_csp2(s, Platform.identical(1))


def count_solutions(model):
    out = Solver(model).solve_all()
    assert out.status in (Status.SAT, Status.UNSAT)
    return len(out.solutions)


TINY_SYSTEMS = [
    TaskSystem.from_tuples([(0, 1, 2, 2)]),
    TaskSystem.from_tuples([(0, 1, 2, 2), (0, 1, 2, 2)]),
    TaskSystem.from_tuples([(0, 1, 2, 2), (1, 1, 2, 4)]),
    TaskSystem.from_tuples([(0, 2, 2, 3), (0, 1, 3, 3)]),
    TaskSystem.from_tuples([(0, 2, 2, 2), (0, 1, 2, 2), (0, 1, 2, 2)]),  # infeasible on m=2
    TaskSystem.from_tuples([(1, 1, 2, 2), (0, 1, 1, 1)]),
]


class TestTheorem2:
    """CSP1 and CSP2 are equivalent (paper Theorem 2) — and because the
    paper's proof is a bijection of solutions, the solution *counts* match
    (symmetry breaking off, which removes solutions by design)."""

    @pytest.mark.parametrize("m", [1, 2])
    @pytest.mark.parametrize("sys_idx", range(len(TINY_SYSTEMS)))
    def test_solution_counts_match(self, sys_idx, m):
        s = TINY_SYSTEMS[sys_idx]
        p = Platform.identical(m)
        c1 = count_solutions(encode_csp1(s, p).model)
        c2 = count_solutions(encode_csp2(s, p, symmetry_breaking=False).model)
        assert c1 == c2

    @pytest.mark.parametrize("sys_idx", range(len(TINY_SYSTEMS)))
    def test_symmetry_breaking_preserves_feasibility(self, sys_idx):
        s = TINY_SYSTEMS[sys_idx]
        p = Platform.identical(2)
        full = count_solutions(encode_csp2(s, p, symmetry_breaking=False).model)
        sym = count_solutions(encode_csp2(s, p, symmetry_breaking=True).model)
        assert sym <= full
        assert (sym > 0) == (full > 0)

    def test_symmetry_breaking_divides_by_permutations(self):
        """With m=2 and >= 2 tasks runnable, rule (10) halves some slots."""
        s = TaskSystem.from_tuples([(0, 1, 2, 2), (0, 1, 2, 2)])
        p = Platform.identical(2)
        full = count_solutions(encode_csp2(s, p, symmetry_breaking=False).model)
        sym = count_solutions(encode_csp2(s, p, symmetry_breaking=True).model)
        assert sym < full


class TestSat1:
    def test_rejects_non_identical(self):
        s = TaskSystem.from_tuples([(0, 1, 2, 2)])
        with pytest.raises(ValueError, match="identical"):
            encode_sat1(s, Platform.uniform([2, 1]))

    def test_rejects_arbitrary(self):
        s = TaskSystem.from_tuples([(0, 1, 5, 3)])
        with pytest.raises(ValueError, match="clone"):
            encode_sat1(s, Platform.identical(1))

    def test_rejects_bad_amo(self):
        s = running_example()
        with pytest.raises(ValueError, match="amo"):
            encode_sat1(s, Platform.identical(2), amo="magic")

    def test_pairwise_has_no_aux_for_amo(self):
        s = TaskSystem.from_tuples([(0, 1, 2, 2)])
        enc_p = encode_sat1(s, Platform.identical(2), amo="pairwise")
        # problem vars: T=2 window slots x 2 procs x 1 window per hyperperiod
        assert len(enc_p.vars) == 4
        # auxiliaries (from the exactly_k counters) come after problem vars
        assert enc_p.cnf.n_vars >= len(enc_p.vars)

    def test_feasibility_matches_csp(self):
        for s in TINY_SYSTEMS:
            for m in (1, 2):
                p = Platform.identical(m)
                from repro.sat.solver import CdclSolver

                for amo in ("pairwise", "sequential"):
                    enc = encode_sat1(s, p, amo=amo)
                    sat_out = CdclSolver(enc.cnf).solve()
                    csp_feasible = count_solutions(encode_csp1(s, p).model) > 0
                    assert sat_out.is_sat == csp_feasible, (s, m, amo)
                    if sat_out.is_sat:
                        assert validate(enc.decode(sat_out.model)).ok
