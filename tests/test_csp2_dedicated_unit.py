"""White-box unit tests for the dedicated CSP2 solver's internals."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import Platform, Task, TaskSystem, slots_after
from repro.solvers.csp2_dedicated import Csp2DedicatedSolver

from tests.helpers import running_example


def make_solver(system, m=2, **kw):
    return Csp2DedicatedSolver(system, Platform.identical(m), **kw)


class TestWindowHelpers:
    @given(
        st.integers(0, 8),
        st.sampled_from([1, 2, 3, 4, 6]),
        st.integers(1, 6),
        st.integers(1, 4),
        st.integers(0, 23),
    )
    def test_slots_left_matches_intervals_module(self, o, t, d, mult, slot):
        d = min(d, t)
        task = Task(o % t, min(1, d), d, t)
        system = TaskSystem([task])
        solver = make_solver(system, m=1)
        T = system.hyperperiod * 1  # the solver's own T
        slot = slot % solver._T
        for job in range(solver._T // t):
            # solver counts slots >= t; intervals counts strictly > t
            expected = slots_after(task, solver._T, job, slot - 1)
            assert solver._slots_left(0, job, slot) == expected

    def test_active_job_consistency(self):
        system = running_example()
        solver = make_solver(system)
        for i in range(system.n):
            for t in range(system.hyperperiod):
                assert solver._active_job(i, t) == system.active_job(i, t)


class TestSlotCandidates:
    def test_required_vs_optional(self):
        # tau3 = (0,2,2,3): C == D -> required at every window slot
        system = running_example()
        solver = make_solver(system)
        required, optional = solver._slot_candidates(0, {})
        assert required == [2]          # tau3 must run at slot 0
        assert 0 in optional            # tau1 has slack 1
        # tau2's *wrapped* third window [9..12] covers slot 0 (Figure 1),
        # so tau2 is also a (slack-3) candidate there
        assert 1 in optional

    def test_unreleased_task_not_candidate(self):
        # give tau2 no wrap: O=1, D=3 < T=4 -> windows [1..3],[5..7],[9..11]
        system = TaskSystem.from_tuples([(0, 1, 2, 2), (1, 3, 3, 4)])
        solver = make_solver(system)
        required, optional = solver._slot_candidates(0, {})
        assert 1 not in required and 1 not in optional
        # required: tau2 has C == D, so inside its window it is forced
        required1, _ = solver._slot_candidates(1, {})
        assert 1 in required1

    def test_dead_end_detected(self):
        # demand 2 left with 1 slot left -> None
        system = TaskSystem.from_tuples([(0, 2, 2, 2)])
        solver = make_solver(system, m=1)
        # at slot 1 with untouched demand (2 units, 1 slot left)
        assert solver._slot_candidates(1, {}) is None

    def test_completed_tasks_skipped(self):
        system = running_example()
        solver = make_solver(system)
        dem = {(2, 0): 0}  # tau3's first window already complete
        required, optional = solver._slot_candidates(0, dem)
        assert 2 not in required and 2 not in optional

    def test_without_demand_pruning_only_window_end(self):
        system = TaskSystem.from_tuples([(0, 2, 3, 3)])
        solver = make_solver(system, m=1, demand_pruning=False)
        # slot 0: 3 slots left, C=2: without pruning it's optional
        required, optional = solver._slot_candidates(0, {})
        assert required == [] and optional == [0]
        # slot 2 (last window slot), demand still 2 -> dead end even here
        assert solver._slot_candidates(2, {}) is None


class TestSlotChoices:
    def test_idle_rule_fixes_size(self):
        system = running_example()
        solver = make_solver(system, m=2)
        choices = list(solver._slot_choices([2], [0]))
        # k = min(2, 2 candidates) = 2: single maximal set {0, 2}
        assert choices == [(0, 2)]

    def test_without_idle_rule_smaller_sets_enumerated(self):
        system = running_example()
        solver = make_solver(system, m=2, idle_rule=False)
        choices = list(solver._slot_choices([2], [0]))
        # sizes 1..0 of optionals, required always kept
        assert (0, 2) in choices and (2,) in choices
        assert choices.index((0, 2)) < choices.index((2,))  # busier first

    def test_without_symmetry_permutations(self):
        system = running_example()
        solver = make_solver(system, m=2, symmetry_breaking=False)
        choices = list(solver._slot_choices([2], [0]))
        assert (0, 2) in choices and (2, 0) in choices

    def test_too_many_required_is_dead(self):
        system = running_example()
        solver = make_solver(system, m=1)
        assert list(solver._slot_choices([0, 2], [])) == []

    def test_heuristic_orders_optionals(self):
        # dc ranks tau3 (laxity 0) before tau1 (laxity 1) before tau2
        system = running_example()
        solver = make_solver(system, m=1, heuristic="dc")
        choices = list(solver._slot_choices([], [0, 1, 2]))
        assert choices[0] == (2,)  # tau3 tried first


class TestEndToEndFlags:
    @pytest.mark.parametrize("heuristic", [None, "rm", "dm", "tc", "dc"])
    def test_solver_name(self, heuristic):
        s = make_solver(running_example(), heuristic=heuristic)
        expected = "csp2" if heuristic is None else f"csp2+{heuristic}"
        assert s.name == expected

    def test_rejects_arbitrary(self):
        with pytest.raises(ValueError, match="clone"):
            make_solver(TaskSystem.from_tuples([(0, 1, 5, 3)]))

    def test_node_limit_unknown(self):
        # force many nodes: infeasible-ish instance with tiny limit
        s = TaskSystem.from_tuples([(0, 1, 2, 2)] * 5)
        solver = make_solver(s, m=2)
        r = solver.solve(node_limit=1)
        assert r.status.value in ("unknown", "infeasible")

    def test_cd_precheck_instant(self):
        s = TaskSystem.from_tuples([(0, 3, 2, 4)])
        r = make_solver(s, m=3).solve(time_limit=10)
        assert r.status.value == "infeasible"
        assert r.stats.nodes == 0

    def test_het_cd_precheck_uses_rates(self):
        # C=3 at rate 2: passes the C <= D*rate pre-check (3 <= 4), so the
        # search actually runs — and then *proves* infeasibility, because
        # rate-2 slots can only accumulate 2 or 4 units, never exactly 3
        # (the paper's equality constraint (12))
        s = TaskSystem.from_tuples([(0, 3, 2, 4)])
        p = Platform.heterogeneous([[2]])
        r = Csp2DedicatedSolver(s, p).solve(time_limit=10)
        assert r.status.value == "infeasible"
        assert r.stats.nodes > 0  # not the pre-check: real search ran

    def test_het_exact_hit_feasible(self):
        # C=4 at rate 2 in a D=2 window: exactly reachable
        s = TaskSystem.from_tuples([(0, 4, 2, 4)])
        p = Platform.heterogeneous([[2]])
        r = Csp2DedicatedSolver(s, p).solve(time_limit=10)
        assert r.status.value == "feasible"


class TestGeneralModeInternals:
    def test_proc_order_least_capable_first(self):
        s = TaskSystem.from_tuples([(0, 1, 2, 2), (0, 1, 2, 2)])
        p = Platform.heterogeneous([[2, 1], [2, 1]])
        solver = Csp2DedicatedSolver(s, p)
        assert solver._proc_order == [1, 0]

    def test_same_as_prev_grouping(self):
        s = TaskSystem.from_tuples([(0, 1, 2, 2)])
        p = Platform.heterogeneous([[1, 1, 2]])
        solver = Csp2DedicatedSolver(s, p)
        order = solver._proc_order
        # two identical columns must be adjacent with the flag set
        flags = [solver._same_as_prev[j] for j in order]
        assert flags.count(True) == 1

    def test_uniform_overshoot_excluded(self):
        # rate 2 > remaining 1: candidate excluded (exactness)
        s = TaskSystem.from_tuples([(0, 1, 2, 2)])
        p = Platform.uniform([2, 1])
        solver = Csp2DedicatedSolver(s, p)
        j_fast = solver._proc_order.index(0)
        cands = solver._proc_candidates(0, 0, {}, set(), None)
        assert 0 not in cands[:-1]  # only idle available on the fast proc
        cands_slow = solver._proc_candidates(0, 1, {}, set(), None)
        assert 0 in cands_slow
