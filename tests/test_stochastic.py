"""Tests for the probabilistic execution-time extension."""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import Platform
from repro.schedule import Schedule
from repro.solvers import solve
from repro.stochastic import (
    ExecTimeDistribution,
    expected_utilization,
    simulate_actual_usage,
)

from tests.helpers import RUNNING_EXAMPLE_TABLE, running_example


@pytest.fixture
def sched():
    return Schedule(running_example(), Platform.identical(2), RUNNING_EXAMPLE_TABLE)


class TestDistribution:
    def test_deterministic(self):
        d = ExecTimeDistribution.deterministic(3)
        assert d.mean == 3 and d.variance == 0
        assert d.wcet == 3
        assert d.sample(random.Random(0)) == 3

    def test_uniform(self):
        d = ExecTimeDistribution.uniform(1, 3)
        assert d.mean == 2
        assert d.support == (1, 2, 3)
        assert d.probability(2) == Fraction(1, 3)
        assert d.probability(9) == 0

    def test_custom_pmf(self):
        d = ExecTimeDistribution({0: Fraction(1, 4), 2: Fraction(3, 4)})
        assert d.mean == Fraction(3, 2)
        assert d.wcet == 2

    def test_zero_mass_dropped(self):
        d = ExecTimeDistribution({1: Fraction(1), 5: Fraction(0)})
        assert d.wcet == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="sum to 1"):
            ExecTimeDistribution({1: Fraction(1, 2)})
        with pytest.raises(ValueError, match=">= 0"):
            ExecTimeDistribution({-1: Fraction(1)})
        with pytest.raises(ValueError, match=">= 0"):
            ExecTimeDistribution({1: Fraction(3, 2), 2: Fraction(-1, 2)})
        with pytest.raises(ValueError):
            ExecTimeDistribution({})
        with pytest.raises(ValueError):
            ExecTimeDistribution.uniform(3, 1)

    def test_sampling_respects_support(self):
        d = ExecTimeDistribution.uniform(2, 4)
        rng = random.Random(7)
        draws = {d.sample(rng) for _ in range(200)}
        assert draws <= {2, 3, 4}
        assert len(draws) == 3  # all values show up

    @given(st.integers(0, 6), st.integers(0, 6), st.integers(0, 1000))
    def test_uniform_mean_formula(self, a, b, seed):
        lo, hi = min(a, b), max(a, b)
        d = ExecTimeDistribution.uniform(lo, hi)
        assert d.mean == Fraction(lo + hi, 2)


class TestExpectedUtilization:
    def test_wcet_distributions_match_schedule_busy(self, sched):
        """Deterministic-at-WCET distributions recover the WCET busy rate."""
        dists = [
            ExecTimeDistribution.deterministic(t.wcet) for t in sched.system
        ]
        expected = expected_utilization(sched, dists)
        assert expected == Fraction(sched.busy_slots(), sched.m * sched.horizon)

    def test_halved_demand(self, sched):
        # tau1 always uses 0 of its 1 slot -> lose 6 slots of 23
        dists = [
            ExecTimeDistribution.deterministic(0),
            ExecTimeDistribution.deterministic(3),
            ExecTimeDistribution.deterministic(2),
        ]
        assert expected_utilization(sched, dists) == Fraction(23 - 6, 24)

    def test_validates_length(self, sched):
        with pytest.raises(ValueError, match="one distribution per task"):
            expected_utilization(sched, [])

    def test_validates_support(self, sched):
        dists = [
            ExecTimeDistribution.deterministic(5),  # > tau1's WCET of 1
            ExecTimeDistribution.deterministic(3),
            ExecTimeDistribution.deterministic(2),
        ]
        with pytest.raises(ValueError, match="support"):
            expected_utilization(sched, dists)


class TestSimulation:
    def test_deterministic_wcet_uses_everything(self, sched):
        dists = [ExecTimeDistribution.deterministic(t.wcet) for t in sched.system]
        stats = simulate_actual_usage(sched, dists, samples=50, seed=1)
        assert stats.p_full_usage == 1.0
        assert stats.mean_busy_fraction == pytest.approx(23 / 24)
        assert stats.min_busy_fraction == stats.max_busy_fraction

    def test_reproducible(self, sched):
        dists = [ExecTimeDistribution.uniform(0, t.wcet) for t in sched.system]
        a = simulate_actual_usage(sched, dists, samples=100, seed=9)
        b = simulate_actual_usage(sched, dists, samples=100, seed=9)
        assert a == b

    def test_monte_carlo_converges_to_closed_form(self, sched):
        dists = [ExecTimeDistribution.uniform(0, t.wcet) for t in sched.system]
        expected = float(expected_utilization(sched, dists))
        stats = simulate_actual_usage(sched, dists, samples=4000, seed=3)
        assert stats.mean_busy_fraction == pytest.approx(expected, abs=0.02)

    def test_unused_accounting(self, sched):
        # tau2 always uses 1 of its 3 reserved slots
        dists = [
            ExecTimeDistribution.deterministic(1),
            ExecTimeDistribution.deterministic(1),
            ExecTimeDistribution.deterministic(2),
        ]
        stats = simulate_actual_usage(sched, dists, samples=10, seed=0)
        assert stats.mean_unused_per_job[0] == 0.0
        assert stats.mean_unused_per_job[1] == 2.0
        assert stats.mean_unused_per_job[2] == 0.0
        assert stats.p_full_usage == 0.0

    def test_validates_samples(self, sched):
        dists = [ExecTimeDistribution.deterministic(t.wcet) for t in sched.system]
        with pytest.raises(ValueError):
            simulate_actual_usage(sched, dists, samples=0)


@settings(deadline=None, max_examples=10)
@given(st.integers(0, 10_000))
def test_end_to_end_with_solver(seed):
    """Solve an instance, then analyze it stochastically — full pipeline."""
    system = running_example()
    res = solve(system, m=2, time_limit=20)
    assert res.is_feasible
    rng = random.Random(seed)
    dists = []
    for t in system:
        lo = rng.randint(0, t.wcet)
        dists.append(ExecTimeDistribution.uniform(lo, t.wcet))
    exp = expected_utilization(res.schedule, dists)
    stats = simulate_actual_usage(res.schedule, dists, samples=300, seed=seed)
    eps = 1e-9  # float accumulation slack in the mean
    assert 0 <= stats.min_busy_fraction <= stats.mean_busy_fraction + eps
    assert stats.mean_busy_fraction <= stats.max_busy_fraction + eps
    assert stats.max_busy_fraction <= 1
    assert stats.mean_busy_fraction == pytest.approx(float(exp), abs=0.05)
