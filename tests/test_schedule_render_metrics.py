"""Tests for ASCII rendering (Figure 1) and schedule metrics."""

import pytest

from repro.model import Platform, TaskSystem
from repro.schedule import (
    Schedule,
    compute_metrics,
    render_gantt,
    render_intervals,
)

from tests.helpers import RUNNING_EXAMPLE_TABLE, running_example


@pytest.fixture
def sched():
    return Schedule(running_example(), Platform.identical(2), RUNNING_EXAMPLE_TABLE)


class TestRenderIntervals:
    def test_figure1_structure(self):
        out = render_intervals(running_example())
        lines = out.splitlines()
        assert lines[0] == "hyperperiod T = 12"
        assert len(lines) == 2 + 3  # header + ruler + 3 task rows

    def test_figure1_tau3_pattern(self):
        """tau3=(0,2,2,3): windows [0,1],[3,4],[6,7],[9,10] -> gaps at 2,5,8,11."""
        out = render_intervals(running_example())
        tau3 = next(l for l in out.splitlines() if l.startswith("tau3"))
        cells = tau3.split()[1:13]
        assert cells == ["[", "#", ".", "[", "#", ".", "[", "#", ".", "[", "#", "."]

    def test_figure1_tau2_wraps(self):
        """tau2's third window [9..12] wraps onto slot 0."""
        out = render_intervals(running_example())
        tau2 = next(l for l in out.splitlines() if l.startswith("tau2"))
        cells = tau2.split()[1:13]
        assert cells[0] == "#"  # wrapped tail of window 3
        assert cells[1] == "["  # release of window 1
        assert cells[9] == "["  # release of window 3

    def test_parameters_shown(self):
        out = render_intervals(running_example())
        assert "O=1 C=3 D=4 T=4" in out

    def test_rejects_multichar_mark(self):
        with pytest.raises(ValueError):
            render_intervals(running_example(), mark="##")


class TestRenderGantt:
    def test_shape(self, sched):
        lines = render_gantt(sched).splitlines()
        assert len(lines) == 3  # ruler + 2 processors
        assert lines[1].startswith("P1")
        assert lines[2].startswith("P2")

    def test_one_based_task_numbers(self, sched):
        p1 = render_gantt(sched).splitlines()[1].split()
        # P1 row: tau3 tau3 tau1 ... -> rendered as 3 3 1 ...
        assert p1[1:4] == ["3", "3", "1"]

    def test_idle_marker(self, sched):
        p2 = render_gantt(sched).splitlines()[2].split()
        assert p2[3] == "."  # (P2, slot 2) idles

    def test_rejects_multichar_idle(self, sched):
        with pytest.raises(ValueError):
            render_gantt(sched, idle="..")


class TestMetrics:
    def test_busy_idle(self, sched):
        m = compute_metrics(sched)
        assert m.busy_slots == 23
        assert m.idle_slots == 1
        assert m.total_slots == 24
        assert m.utilization_achieved == pytest.approx(23 / 24)

    def test_processor_load(self, sched):
        m = compute_metrics(sched)
        assert m.processor_load == (1.0, pytest.approx(11 / 12))

    def test_jobs_counted(self, sched):
        assert compute_metrics(sched).jobs == 13  # 6 + 3 + 4

    def test_no_migrations_in_example(self, sched):
        # every job of the fixture runs on a single processor
        assert compute_metrics(sched).migrations == 0

    def test_preemption_detected(self):
        # one task C=2 D=4: run at slots 0 and 2 -> one preemption
        s = TaskSystem.from_tuples([(0, 2, 4, 4)])
        sched = Schedule.from_assignment(s, Platform.identical(1), {(0, 0): 0, (0, 2): 0})
        m = compute_metrics(sched)
        assert m.preemptions == 1
        assert m.migrations == 0

    def test_migration_detected(self):
        # job runs slot 0 on P1 and slot 1 on P2 -> one migration, no preemption
        s = TaskSystem.from_tuples([(0, 2, 4, 4)])
        sched = Schedule.from_assignment(s, Platform.identical(2), {(0, 0): 0, (1, 1): 0})
        m = compute_metrics(sched)
        assert m.migrations == 1
        assert m.preemptions == 0

    def test_migration_after_gap_counts_both(self):
        # run P1@0, idle@1, P2@2 -> preemption AND migration
        s = TaskSystem.from_tuples([(0, 2, 4, 4)])
        sched = Schedule.from_assignment(s, Platform.identical(2), {(0, 0): 0, (1, 2): 0})
        m = compute_metrics(sched)
        assert m.migrations == 1
        assert m.preemptions == 1

    def test_wrapped_window_measured_in_window_order(self):
        # task (O=1, C=2, D=4, T=4), T_hyper=4: window [1,2,3,0(wrap)]
        # run at slot 3 and wrapped slot 0: consecutive in window order
        s = TaskSystem.from_tuples([(1, 2, 4, 4)])
        sched = Schedule.from_assignment(s, Platform.identical(1), {(0, 3): 0, (0, 0): 0})
        m = compute_metrics(sched)
        assert m.preemptions == 0
        assert m.migrations == 0
