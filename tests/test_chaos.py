"""Tests for deterministic chaos injection and fault-tolerant campaigns.

The acceptance bar (ISSUE 8): with a 0.3 injection rate on a seeded
100-cell grid, ``run_batch`` completes with zero raised exceptions, every
cell is journaled (a result or a ``fault:*`` record), and a re-run with
the same seeds produces a byte-identical journal.
"""

import json

import pytest

from repro.batch import cells_for_matrix, load_journal, run_batch
from repro.batch.chaos import (
    CHAOS_KINDS,
    ChaosConfig,
    ChaosError,
    chaos_draw,
    inject_worker_fault,
    torn_write_prefix,
)
from repro.batch.cells import cell_key
from repro.generator.random_systems import GeneratorConfig, generate_instances

#: small budgets keep injected hangs cheap: a hang costs wall_limit =
#: time_limit + grace before the watchdog reaps it
TIME_LIMIT = 0.4
GRACE = 0.4


@pytest.fixture(scope="module")
def grid_cells():
    """The acceptance grid: 100 tiny cells (50 instances x 2 solvers)."""
    instances = generate_instances(GeneratorConfig(n=3, m=2, tmax=3), 50, seed=2009)
    return cells_for_matrix(instances, ["csp2+dc", "csp2"], TIME_LIMIT)


class TestChaosConfig:
    def test_rate_bounds_enforced(self):
        with pytest.raises(ValueError):
            ChaosConfig(rate=1.5)
        with pytest.raises(ValueError):
            ChaosConfig(rate=-0.1)

    def test_kinds_validated(self):
        with pytest.raises(ValueError):
            ChaosConfig(kinds=())
        with pytest.raises(ValueError):
            ChaosConfig(kinds=("crash", "meteor"))

    def test_to_dict_is_json_able(self):
        cfg = ChaosConfig(seed=7, rate=0.25, kinds=("error",))
        assert json.loads(json.dumps(cfg.to_dict())) == cfg.to_dict()


class TestChaosDraw:
    def test_pure_function_of_seed_site_key(self):
        cfg = ChaosConfig(seed=13, rate=0.5)
        draws = [chaos_draw(cfg, "worker", f"k{i}") for i in range(64)]
        again = [chaos_draw(cfg, "worker", f"k{i}") for i in range(64)]
        assert draws == again

    def test_seed_and_site_change_the_draws(self):
        a = ChaosConfig(seed=1, rate=0.5)
        b = ChaosConfig(seed=2, rate=0.5)
        keys = [f"k{i}" for i in range(128)]
        assert [chaos_draw(a, "worker", k) for k in keys] != [
            chaos_draw(b, "worker", k) for k in keys
        ]
        assert [chaos_draw(a, "worker", k) for k in keys] != [
            chaos_draw(a, "journal", k) for k in keys
        ]

    def test_rate_zero_never_draws(self):
        cfg = ChaosConfig(rate=0.0)
        assert all(chaos_draw(cfg, "worker", f"k{i}") is None for i in range(100))
        assert chaos_draw(None, "worker", "k") is None

    def test_rate_one_always_draws_a_known_kind(self):
        cfg = ChaosConfig(rate=1.0)
        for i in range(100):
            assert chaos_draw(cfg, "worker", f"k{i}") in CHAOS_KINDS

    def test_rate_is_roughly_respected(self):
        cfg = ChaosConfig(seed=5, rate=0.3)
        hits = sum(
            chaos_draw(cfg, "worker", f"k{i}") is not None for i in range(1000)
        )
        assert 200 <= hits <= 400  # ~0.3 within generous tolerance

    def test_error_kind_raises_chaos_error(self):
        cfg = ChaosConfig(rate=1.0, kinds=("error",))
        with pytest.raises(ChaosError):
            inject_worker_fault(cfg, "some-cell")
        inject_worker_fault(None, "some-cell")  # no config: no-op


class TestTornWrites:
    def test_prefix_is_a_truncated_newline_terminated_copy(self):
        cfg = ChaosConfig(rate=1.0)
        line = json.dumps({"key": "k", "record": {"a": 1}})
        torn = torn_write_prefix(cfg, "k", line)
        assert torn is not None and torn.endswith("\n")
        body = torn[:-1]
        assert line.startswith(body) and len(body) < len(line)

    def test_disabled_by_flag_or_config(self):
        line = "x" * 50
        assert torn_write_prefix(None, "k", line) is None
        cfg = ChaosConfig(rate=1.0, torn_writes=False)
        assert torn_write_prefix(cfg, "k", line) is None


class TestChaosCampaign:
    """The acceptance bar: chaos campaigns always complete, reproducibly."""

    CHAOS = ChaosConfig(seed=42, rate=0.3)

    def run(self, cells, journal, **kw):
        return run_batch(
            cells, journal=journal, chaos=self.CHAOS, retries=1,
            grace=GRACE, **kw,
        )

    def test_campaign_completes_and_reruns_byte_identically(
        self, tmp_path, grid_cells
    ):
        j1, j2 = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        report = self.run(grid_cells, j1)

        # zero raised exceptions (we got here) and every cell journaled
        assert report.total == 100
        assert all(r is not None for r in report.records)
        entries = load_journal(j1)
        assert set(entries) == {cell_key(c) for c in grid_cells}
        for rec in entries.values():
            assert rec["status"].startswith("fault:") or rec["status"] in (
                "feasible", "infeasible", "unknown", "skipped-memory",
            )

        # the chaos actually did something on this seed
        assert report.retried > 0
        statuses = {r.status for r in report.records}
        assert any(s.startswith("fault:") for s in statuses) or report.retried

        # byte-identical journal on re-run with the same seeds
        self.run(grid_cells, j2)
        assert j1.read_bytes() == j2.read_bytes()

    def test_resume_equivalence_after_a_crash(self, tmp_path, grid_cells):
        """Fresh run vs crash-at-arbitrary-byte + resume: same journal."""
        fresh = tmp_path / "fresh.jsonl"
        self.run(grid_cells, fresh)
        data = fresh.read_bytes()

        crashed = tmp_path / "crashed.jsonl"
        crashed.write_bytes(data[: int(len(data) * 0.6)])  # torn mid-line
        report = self.run(grid_cells, crashed, resume=True)
        assert report.resumed > 0 and report.computed > 0
        assert crashed.read_bytes() == data

    def test_fault_records_carry_provenance(self, tmp_path, grid_cells):
        chaos = ChaosConfig(seed=42, rate=1.0, kinds=("error",))
        cells = grid_cells[:3]
        report = run_batch(
            cells, journal=tmp_path / "f.jsonl", chaos=chaos, retries=1,
            grace=GRACE,
        )
        assert report.faults == 3
        for r in report.records:
            assert r.status == "fault:error"
            assert r.decided_by == "supervisor:error"
            assert r.elapsed == TIME_LIMIT and r.nodes == 0
            assert r.fault["kind"] == "error"
            assert r.fault["attempts"] == 2  # retries=1 -> two attempts
            assert "ChaosError" in r.fault["detail"]

    def test_retry_can_rescue_a_cell(self, tmp_path, grid_cells):
        """Attempt-salted draws: cells that fault once succeed on retry."""
        no_retry = run_batch(
            grid_cells[:40], chaos=self.CHAOS, retries=0, grace=GRACE,
        )
        with_retry = run_batch(
            grid_cells[:40], chaos=self.CHAOS, retries=2, grace=GRACE,
        )
        assert with_retry.faults < no_retry.faults
        assert with_retry.retried > 0
