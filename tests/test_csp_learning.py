"""Tests for conflict-directed search: implication trail, explanations,
1-UIP learning, backjumping, the bounded nogood store, and the registry
``+learn`` variants."""

import itertools
import json
import random

import pytest

from repro.csp import Model, Solver, Status
from repro.csp.learning import (
    NogoodStore,
    Trail,
    apply_negation,
    lit_is_false,
    lit_is_true,
)
from repro.csp.propagators import (
    AllDifferentExceptValue,
    AtMostOneTrue,
    CountEq,
    ExactSumBool,
    NonDecreasing,
    Table,
    WeightedCountEq,
    WeightedExactSumBool,
)
from repro.csp.search import SearchStats, _merge_restart_stats
from repro.csp.state import CAUSE_DECISION, DomainState
from repro.generator import GeneratorConfig, generate_instance
from repro.model.platform import Platform
from repro.solvers.problem import Problem, SolveReport, solve_problem
from repro.solvers.registry import available_solvers, create_solver


def pigeonhole(n_pigeons, n_holes):
    m = Model()
    vs = [m.int_var(0, n_holes - 1, f"p{i}") for i in range(n_pigeons)]
    m.add_all_different_except(vs, None)
    return m, vs


# -- state layer: the implication trail --------------------------------------

class TestImplicationTrail:
    def test_causes_off_by_default(self):
        m = Model()
        x = m.int_var(0, 3, "x")
        s = DomainState(m)
        s.assign(x, 1)
        assert s.causes is None

    def test_causes_recorded_and_truncated(self):
        m = Model()
        x = m.int_var(0, 3, "x")
        y = m.int_var(0, 3, "y")
        s = DomainState(m, record_causes=True)
        s.cause = CAUSE_DECISION
        s.remove_value(x, 0)
        s.push_level()
        s.cause = 7  # pretend propagator 7 wrote the next events
        s.remove_value(y, 2)
        s.assign(x, 1)
        assert s.causes == [CAUSE_DECISION, 7, 7]
        s.pop_level()
        assert s.causes == [CAUSE_DECISION]
        assert len(s.causes) == len(s.events)

    def test_refresh_stamp_monotone(self):
        m = Model()
        m.int_var(0, 1, "x")
        s = DomainState(m)
        s.push_level()
        before = s.stamp
        s.pop_level()
        assert s.stamp == before  # pop never reuses
        s.refresh_stamp()
        assert s.stamp == before + 1

    def test_trail_positions_levels_truncation(self):
        m = Model()
        x = m.int_var(0, 2, "x")
        y = m.int_var(0, 2, "y")
        s = DomainState(m, record_causes=True)
        t = Trail(s)
        s.push_level()
        t.push_mark()
        s.assign(x, 1)
        t.sync()
        assert t.pos_of[(x.index, 1, True)] == 0
        assert t.pos_of[(x.index, 0, False)] == 0
        assert t.level_of(0) == 1
        s.push_level()
        t.push_mark()
        s.remove_value(y, 2)
        t.sync()
        p = t.pos_of[(y.index, 2, False)]
        assert t.level_of(p) == 2
        s.pop_level()
        t.pop_marks(1)
        t.truncate()
        assert (y.index, 2, False) not in t.pos_of
        assert (x.index, 1, True) in t.pos_of


# -- literal helpers ---------------------------------------------------------

class TestLiterals:
    def test_truth_and_falsity(self):
        m = Model()
        x = m.int_var(0, 2, "x")
        s = DomainState(m)
        eq1 = (x.index, 1, True)
        ne1 = (x.index, 1, False)
        assert not lit_is_true(s, eq1) and not lit_is_false(s, eq1)
        assert not lit_is_true(s, ne1) and not lit_is_false(s, ne1)
        s.assign(x, 1)
        assert lit_is_true(s, eq1) and lit_is_false(s, ne1)
        s2 = DomainState(m)
        s2.remove_value(x, 1)
        assert lit_is_false(s2, eq1) and lit_is_true(s2, ne1)

    def test_apply_negation(self):
        m = Model()
        x = m.int_var(0, 2, "x")
        s = DomainState(m)
        assert apply_negation(s, (x.index, 1, True))  # remove 1
        assert not s.contains(x, 1)
        assert apply_negation(s, (x.index, 2, False))  # assign 2
        assert s.value(x) == 2


# -- propagator explanations -------------------------------------------------

def _trailed(model):
    """A cause-recording state with a synced trail and one open level."""
    s = DomainState(model, record_causes=True)
    t = Trail(s)
    s.push_level()
    t.push_mark()
    return s, t


class TestExplanations:
    def test_at_most_one_blames_the_true_var(self):
        m = Model()
        a, b, c = (m.bool_var(n) for n in "abc")
        prop = AtMostOneTrue([a, b, c])
        m.add(prop)
        s, t = _trailed(m)
        s.assign(a, 1)
        t.sync()
        s.cause = 0
        prop.reset(s)
        assert prop.propagate(s)
        t.sync()
        pos = t.pos_of[(b.index, 0, True)]
        assert prop.explain_event(s, t, pos) == [(a.index, 1, True)]

    def test_exact_sum_tight_blames_false_set(self):
        m = Model()
        bools = [m.bool_var(f"b{i}") for i in range(4)]
        prop = ExactSumBool(bools, 2)
        m.add(prop)
        s, t = _trailed(m)
        s.assign(bools[0], 0)
        s.assign(bools[1], 0)
        t.sync()
        prop.reset(s)
        s.cause = 0
        assert prop.propagate(s)  # tight: b2, b3 forced to 1
        t.sync()
        pos = t.pos_of[(bools[2].index, 1, True)]
        reason = prop.explain_event(s, t, pos)
        assert sorted(reason) == sorted(
            [(bools[0].index, 0, True), (bools[1].index, 0, True)]
        )
        for lit in reason:
            assert t.pos_of[lit] < pos

    def test_exact_sum_failure_blames_true_set(self):
        m = Model()
        bools = [m.bool_var(f"b{i}") for i in range(4)]
        prop = ExactSumBool(bools, 1)
        m.add(prop)
        s, t = _trailed(m)
        s.assign(bools[0], 1)
        s.assign(bools[1], 1)
        t.sync()
        prop.reset(s)
        reason = prop.explain_failure(s, t)
        assert sorted(reason) == sorted(
            [(bools[0].index, 1, True), (bools[1].index, 1, True)]
        )

    def test_weighted_sum_explanations(self):
        m = Model()
        bools = [m.bool_var(f"b{i}") for i in range(3)]
        prop = WeightedExactSumBool(bools, [2, 3, 4], 6)
        m.add(prop)
        s, t = _trailed(m)
        s.assign(bools[2], 1)  # lb=4; b1 (coef 3) would overshoot
        t.sync()
        prop.reset(s)
        s.cause = 0
        assert prop.propagate(s)
        t.sync()
        pos = t.pos_of[(bools[1].index, 0, True)]
        assert prop.explain_event(s, t, pos) == [(bools[2].index, 1, True)]

    def test_count_eq_saturated_blames_fixed_set(self):
        m = Model()
        vs = [m.int_var(0, 2, f"x{i}") for i in range(3)]
        prop = CountEq(vs, 1, 1)
        m.add(prop)
        s, t = _trailed(m)
        s.assign(vs[0], 1)
        t.sync()
        prop.reset(s)
        s.cause = 0
        assert prop.propagate(s)  # saturated: value 1 removed elsewhere
        t.sync()
        pos = t.pos_of[(vs[1].index, 1, False)]
        assert prop.explain_event(s, t, pos) == [(vs[0].index, 1, True)]

    def test_count_eq_tight_blames_lost_set(self):
        m = Model()
        vs = [m.int_var(0, 2, f"x{i}") for i in range(3)]
        prop = CountEq(vs, 2, 2)
        m.add(prop)
        s, t = _trailed(m)
        s.remove_value(vs[0], 2)
        t.sync()
        prop.reset(s)
        s.cause = 0
        assert prop.propagate(s)  # tight: vs[1], vs[2] forced to 2
        t.sync()
        pos = t.pos_of[(vs[1].index, 2, True)]
        assert prop.explain_event(s, t, pos) == [(vs[0].index, 2, False)]

    def test_weighted_count_explanations(self):
        m = Model()
        vs = [m.int_var(0, 2, f"x{i}") for i in range(3)]
        prop = WeightedCountEq(vs, [2, 2, 3], 1, 4)
        m.add(prop)
        s, t = _trailed(m)
        s.assign(vs[0], 1)  # lb=2; x2 (coef 3) would overshoot
        t.sync()
        prop.reset(s)
        s.cause = 0
        assert prop.propagate(s)
        t.sync()
        pos = t.pos_of[(vs[2].index, 1, False)]
        assert prop.explain_event(s, t, pos) == [(vs[0].index, 1, True)]

    def test_alldifferent_blames_the_taker(self):
        m = Model()
        vs = [m.int_var(0, 2, f"x{i}") for i in range(3)]
        prop = AllDifferentExceptValue(vs, None)
        m.add(prop)
        s, t = _trailed(m)
        s.assign(vs[0], 1)
        t.sync()
        s.cause = 0
        assert prop.propagate(s)
        t.sync()
        pos = t.pos_of[(vs[1].index, 1, False)]
        assert prop.explain_event(s, t, pos) == [(vs[0].index, 1, True)]

    def test_alldifferent_failure_blames_the_pair(self):
        m = Model()
        vs = [m.int_var(0, 2, f"x{i}") for i in range(2)]
        prop = AllDifferentExceptValue(vs, None)
        m.add(prop)
        s, t = _trailed(m)
        s.assign(vs[0], 1)
        s.assign(vs[1], 1)
        t.sync()
        reason = prop.explain_failure(s, t)
        assert sorted(reason) == sorted(
            [(vs[0].index, 1, True), (vs[1].index, 1, True)]
        )

    def test_nondecreasing_blames_left_neighbour_removals(self):
        m = Model()
        a = m.int_var(0, 3, "a")
        b = m.int_var(0, 3, "b")
        prop = NonDecreasing([a, b])
        m.add(prop)
        s, t = _trailed(m)
        s.remove_value(a, 0)
        s.remove_value(a, 1)  # min(a) = 2
        t.sync()
        s.cause = 0
        assert prop.propagate(s)  # b loses 0 and 1
        t.sync()
        pos = t.pos_of[(b.index, 0, False)]
        reason = prop.explain_event(s, t, pos)
        assert sorted(reason) == sorted(
            [(a.index, 0, False), (a.index, 1, False)]
        )

    def test_table_blames_mentioned_removals(self):
        m = Model()
        x = m.int_var(0, 2, "x")
        y = m.int_var(0, 2, "y")
        prop = Table([x, y], [(0, 0), (1, 1), (2, 2)])
        m.add(prop)
        s, t = _trailed(m)
        s.remove_value(x, 0)
        t.sync()
        prop.reset(s)
        prop.on_event(s, x.index, 0b111, 0b110)
        s.cause = 0
        assert prop.propagate(s)  # y loses 0
        t.sync()
        pos = t.pos_of[(y.index, 0, False)]
        assert prop.explain_event(s, t, pos) == [(x.index, 0, False)]

    def test_explanations_default_to_none(self):
        m = Model()
        vs = [m.int_var(0, 2, f"x{i}") for i in range(2)]
        prop = NonDecreasing(vs)
        s, t = _trailed(m)
        # an event this propagator did not cause yields no explanation
        s.assign(vs[0], 1)
        t.sync()
        base = super(NonDecreasing, prop)
        assert base.explain_event(s, t, 0) is None
        assert base.explain_failure(s, t) is None


# -- the learning search ------------------------------------------------------

class TestLearningSearch:
    def test_pigeonhole_sat(self):
        m, vs = pigeonhole(5, 5)
        out = Solver(m, learn=True).solve()
        assert out.status is Status.SAT
        assert len({out.value(v) for v in vs}) == 5

    def test_pigeonhole_unsat_with_fewer_nodes(self):
        m, _ = pigeonhole(7, 6)
        plain = Solver(m).solve()
        m2, _ = pigeonhole(7, 6)
        learned = Solver(m2, learn=True).solve()
        assert plain.status is Status.UNSAT
        assert learned.status is Status.UNSAT
        assert learned.stats.nodes < plain.stats.nodes
        assert learned.stats.conflicts > 0
        assert learned.stats.learned > 0

    def test_learning_counters_zero_without_learning(self):
        m, _ = pigeonhole(5, 4)
        out = Solver(m).solve()
        assert out.stats.conflicts == 0
        assert out.stats.learned == 0
        assert out.stats.forgotten == 0
        assert out.stats.backjumps == 0

    def test_budget_unknown(self):
        m, _ = pigeonhole(9, 8)
        out = Solver(m, learn=True).solve(node_limit=5)
        assert out.status is Status.UNKNOWN

    def test_time_limit(self):
        m, _ = pigeonhole(9, 8)
        out = Solver(m, learn=True).solve(time_limit=0.0)
        assert out.status is Status.UNKNOWN

    def test_solve_all_rejected(self):
        m, _ = pigeonhole(3, 3)
        with pytest.raises(ValueError, match="solve_all"):
            Solver(m, learn=True).solve_all()

    def test_bad_nogood_limit(self):
        m, _ = pigeonhole(3, 3)
        with pytest.raises(ValueError, match="nogood_limit"):
            Solver(m, learn=True, nogood_limit=0)

    def test_forgetting_is_bounded_and_counted(self):
        from repro.csp.heuristics import value_order_custom, var_order_input
        from repro.encodings.csp2 import encode_csp2
        from repro.solvers.ordering import task_order

        inst = generate_instance(GeneratorConfig(n=5, tmax=5, m=2), 14)
        enc = encode_csp2(inst.system, Platform.identical(inst.m), True)
        order = task_order(inst.system, "dc")
        order.append(enc.idle_value)
        solver = Solver(
            enc.model,
            var_order=var_order_input,
            value_order=value_order_custom(order),
            learn=True,
            nogood_limit=30,
        )
        out = solver.solve(node_limit=100_000)
        assert out.status is Status.UNSAT
        assert out.stats.forgotten > 0
        # the store stays bounded near its capacity (short and locked
        # nogoods are exempt, so a small overhang is expected)
        assert len(solver._store) <= 60

    def test_restarts_keep_the_store(self):
        m, _ = pigeonhole(7, 6)
        solver = Solver(m, learn=True, restart_nodes=8)
        out = solver.solve()
        assert out.status is Status.UNSAT
        assert out.stats.restarts > 0
        # nogoods survived at least one restart: total learned exceeds
        # what the final run alone could have produced only if the store
        # was never cleared — and the store still holds them
        assert len(solver._store) > 0

    def test_seeded_learning_deterministic(self):
        results = []
        for _ in range(2):
            m, _ = pigeonhole(6, 5)
            out = Solver(m, learn=True, seed=11).solve()
            results.append((out.status, out.stats.nodes, out.stats.conflicts))
        assert results[0] == results[1]


# -- randomized soundness vs brute force --------------------------------------

def _semantics(c, vals):
    if isinstance(c, AtMostOneTrue):
        return sum(vals[v.index] for v in c.vars) <= 1
    if isinstance(c, WeightedExactSumBool):
        return sum(k * vals[v.index] for v, k in zip(c.vars, c.coefs)) == c.total
    if isinstance(c, ExactSumBool):
        return sum(vals[v.index] for v in c.vars) == c.total
    if isinstance(c, WeightedCountEq):
        return sum(
            k for v, k in zip(c.vars, c.coefs) if vals[v.index] == c.value
        ) == c.total
    if isinstance(c, CountEq):
        return sum(1 for v in c.vars if vals[v.index] == c.value) == c.total
    if isinstance(c, AllDifferentExceptValue):
        seen = set()
        for v in c.vars:
            x = vals[v.index]
            if x == c.except_value:
                continue
            if x in seen:
                return False
            seen.add(x)
        return True
    if isinstance(c, NonDecreasing):
        xs = [vals[v.index] for v in c.vars]
        return all(a <= b for a, b in zip(xs, xs[1:]))
    if isinstance(c, Table):
        return tuple(vals[v.index] for v in c.vars) in set(c.tuples)
    raise AssertionError(type(c))


def _random_model(rng):
    m = Model()
    nv = rng.randint(2, 5)
    vs = [m.int_var(0, rng.randint(1, 3), f"x{i}") for i in range(nv)]
    for _ in range(rng.randint(1, 4)):
        kind = rng.choice(
            ["amo", "sum", "count", "alldiff", "nondec", "table"]
        )
        sub = rng.sample(vs, rng.randint(2, nv))
        bools = [v for v in sub if v.initial_mask == 0b11]
        try:
            if kind == "amo" and len(bools) >= 2:
                m.add_at_most_one_true(bools)
            elif kind == "sum" and len(bools) >= 2:
                m.add_exact_sum_bool(bools, rng.randint(0, len(bools)))
            elif kind == "count":
                m.add_count_eq(sub, rng.randint(0, 3), rng.randint(0, len(sub)))
            elif kind == "alldiff":
                m.add_all_different_except(sub, rng.choice([None, 0]))
            elif kind == "nondec":
                m.add_non_decreasing(sub)
            elif kind == "table":
                doms = [v.initial_values() for v in sub]
                m.add_table(
                    sub,
                    [tuple(rng.choice(d) for d in doms)
                     for _ in range(rng.randint(1, 6))],
                )
        except ValueError:
            continue
    return m


def test_learning_agrees_with_brute_force():
    """300 random models: learning statuses match brute-force truth and
    every reported solution satisfies every constraint — with a tiny
    store too, so forgetting is exercised."""
    rng = random.Random(7)
    for _ in range(300):
        m = _random_model(rng)
        doms = [v.initial_values() for v in m.variables]
        expect = any(
            all(_semantics(c, dict(enumerate(combo))) for c in m.constraints)
            for combo in itertools.product(*doms)
        )
        out = Solver(m, learn=True, nogood_limit=rng.choice([2, 5000])).solve(
            node_limit=50_000
        )
        assert out.status is not Status.UNKNOWN
        assert (out.status is Status.SAT) == expect
        if out.status is Status.SAT:
            vals = {v.index: val for v, val in out.solution.items()}
            assert all(_semantics(c, vals) for c in m.constraints)


# -- multi-valued soundness: singleton-collapse resolution --------------------

class TestMultiValuedResolution:
    """1-UIP resolution on multi-valued domains: a removal that collapses
    a domain to a singleton is canonicalized into the assignment literal,
    whose reason must include *every* earlier removal on the variable —
    not just the collapsing event's own explanation."""

    def test_pinned_collapse_model_stays_sat(self):
        """Regression: this SAT model (alldifferent + nondecreasing over
        mixed-width domains) was reported UNSAT when assignment literals
        were resolved through the collapsing event's explanation alone."""

        def build():
            m = Model()
            x0 = m.int_var(0, 2, "x0")
            x1 = m.int_var(0, 2, "x1")
            x2 = m.int_var(0, 3, "x2")
            x3 = m.int_var(0, 2, "x3")
            x4 = m.int_var(0, 3, "x4")
            m.add_all_different_except([x2, x1, x3, x4], None)
            m.add_all_different_except([x0, x4, x1, x2], None)
            m.add_non_decreasing([x2, x3, x1])
            return m

        assert Solver(build()).solve().status is Status.SAT
        out = Solver(build(), learn=True).solve()
        assert out.status is Status.SAT
        vals = {v.index: val for v, val in out.solution.items()}
        assert all(_semantics(c, vals) for c in build().constraints)

    def test_differential_learn_vs_plain_multivalued(self):
        """Randomized differential: learn=True and learn=False must agree
        on small all-multi-valued models (CountEq, AllDifferentExceptValue,
        NonDecreasing, Table) — the shape that exposed the unsound
        collapse resolution, which Boolean-heavy grids never catch."""
        rng = random.Random(84)
        checked = 0
        for _ in range(150):
            m = Model()
            vs = [m.int_var(0, rng.randint(2, 4), f"x{i}") for i in range(5)]
            for _ in range(rng.randint(2, 4)):
                kind = rng.choice(["count", "alldiff", "nondec", "table"])
                sub = rng.sample(vs, rng.randint(2, 5))
                try:
                    if kind == "count":
                        m.add_count_eq(
                            sub, rng.randint(0, 4), rng.randint(0, len(sub))
                        )
                    elif kind == "alldiff":
                        m.add_all_different_except(sub, rng.choice([None, 0]))
                    elif kind == "nondec":
                        m.add_non_decreasing(sub)
                    else:
                        doms = [v.initial_values() for v in sub]
                        m.add_table(
                            sub,
                            [tuple(rng.choice(d) for d in doms)
                             for _ in range(rng.randint(1, 6))],
                        )
                except ValueError:
                    continue
            plain = Solver(m).solve(node_limit=50_000)
            learned = Solver(
                m, learn=True, nogood_limit=rng.choice([2, 5000])
            ).solve(node_limit=50_000)
            if Status.UNKNOWN in (plain.status, learned.status):
                continue
            assert learned.status is plain.status
            if learned.status is Status.SAT:
                vals = {v.index: val for v, val in learned.solution.items()}
                assert all(_semantics(c, vals) for c in m.constraints)
            checked += 1
        assert checked > 100  # the grid genuinely exercises both engines


# -- agreement with the non-learning engine on paper encodings ----------------

@pytest.mark.parametrize("learner,reference", [
    ("csp1+learn", "csp1"),
    ("csp2+learn", "csp2-generic+dc"),
    ("csp2-generic+learn", "csp2-generic"),
])
def test_seeded_agreement_grid(learner, reference):
    """Learning variants never flip a SAT/UNSAT verdict vs the
    chronological engine on a seeded instance grid (UNKNOWN cells — a
    budget artifact — may be *decided* by the stronger search)."""
    for seed in range(8):
        inst = generate_instance(GeneratorConfig(n=4, tmax=4, m=2), seed)
        problem = Problem.of(inst.system, m=inst.m, node_limit=30_000, seed=1)
        a = solve_problem(problem, reference)
        b = solve_problem(problem, learner)
        if "unknown" in (a.status_label, b.status_label):
            continue
        assert a.status_label == b.status_label, (learner, seed)


# -- restart stats merging (satellite) ----------------------------------------

class TestRestartStatsMerge:
    def test_every_field_covered(self):
        """The merge groups partition SearchStats — adding a counter
        without classifying it fails here (and at runtime)."""
        _merge_restart_stats(SearchStats(), SearchStats())  # no raise

    def test_uncovered_field_raises(self, monkeypatch):
        import repro.csp.search as search_mod

        monkeypatch.setattr(
            search_mod, "_MERGE_SUM", tuple(search_mod._MERGE_SUM[:-1])
        )
        with pytest.raises(AssertionError, match="not covered"):
            _merge_restart_stats(SearchStats(), SearchStats())

    def test_pre_restart_counters_accumulate(self):
        """events/entailments/propagations of pre-restart attempts land
        in the final stats: the total equals the sum over every attempt."""
        from repro.csp import var_order_random

        m, _ = pigeonhole(6, 5)
        solver = Solver(m, var_order=var_order_random, seed=3, restart_nodes=2)
        per_run = []
        orig = type(solver)._search

        def spy(self, *args, **kwargs):
            out = orig(self, *args, **kwargs)
            per_run.append(out.stats)
            return out

        type(solver)._search = spy
        try:
            final = solver.solve()
        finally:
            type(solver)._search = orig
        assert final.stats.restarts == len(per_run) - 1 > 0
        for field in ("nodes", "fails", "propagations", "events",
                      "entailments", "conflicts", "learned"):
            assert getattr(final.stats, field) == sum(
                getattr(s, field) for s in per_run
            ), field
        assert final.stats.max_depth == max(s.max_depth for s in per_run)


# -- registry / front-door integration ---------------------------------------

class TestLearnRegistry:
    def test_names_advertised(self):
        names = available_solvers()
        for name in ("csp1+learn", "csp2+learn", "csp2-generic+learn"):
            assert name in names

    def test_counters_round_trip_jsonl(self):
        inst = generate_instance(GeneratorConfig(n=5, tmax=5, m=2), 14)
        problem = Problem.of(inst.system, m=inst.m, node_limit=30_000)
        report = solve_problem(problem, "csp2+learn")
        assert report.status_label == "infeasible"
        extra = report.stats.extra
        assert extra["conflicts"] > 0 and extra["learned"] > 0
        assert "backjumps" in extra and "forgotten" in extra
        back = SolveReport.from_dict(json.loads(json.dumps(report.to_dict())))
        assert back.stats.extra == extra
        assert back.winner == "csp2+learn"

    def test_composes_with_screen_and_portfolio(self):
        inst = generate_instance(GeneratorConfig(n=4, tmax=4, m=2), 12)
        problem = Problem.of(inst.system, m=inst.m, node_limit=30_000)
        screened = solve_problem(problem, "screen+csp2+learn")
        assert screened.status_label in ("feasible", "infeasible")
        raced = solve_problem(problem, "portfolio:csp2+learn,csp2+dc")
        assert raced.status_label in ("feasible", "infeasible")

    def test_nogood_limit_option_validated(self):
        inst = generate_instance(GeneratorConfig(n=4, tmax=4, m=2), 11)
        plat = Platform.identical(inst.m)
        engine = create_solver(
            "csp2+learn", inst.system, plat, nogood_limit=64
        )
        assert engine.solve(node_limit=10_000).status is not None
        with pytest.raises(ValueError, match="learn"):
            create_solver("csp2", inst.system, plat, nogood_limit=64)
        with pytest.raises(ValueError, match="learn"):
            create_solver("csp1", inst.system, plat, nogood_limit=64)
        with pytest.raises(ValueError, match="dedicated"):
            create_solver("csp2+learn", inst.system, plat, idle_rule=False)

    def test_learn_solution_validates(self):
        inst = generate_instance(GeneratorConfig(n=4, tmax=4, m=2), 12)
        problem = Problem.of(inst.system, m=inst.m, node_limit=30_000)
        report = solve_problem(problem, "csp2+learn")  # check=True validates
        assert report.status_label == "feasible"
        assert report.schedule is not None


# -- store internals ----------------------------------------------------------

class TestNogoodStore:
    def test_reduce_keeps_short_and_locked(self):
        m = Model()
        vs = [m.int_var(0, 3, f"x{i}") for i in range(4)]
        s = DomainState(m, record_causes=True)
        t = Trail(s)
        store = NogoodStore(capacity=2)
        short = store.add(
            [(0, 0, True), (1, 1, True)], s, t
        )
        long_ones = [
            store.add([(0, i % 4, True), (1, 2, True), (2, 3, True)], s, t)
            for i in range(4)
        ]
        long_ones[0].activity = 99.0
        dropped = store.reduce(s)
        assert dropped > 0
        assert short.id in store.by_id  # <= 2 literals: never forgotten
        assert long_ones[0].id in store.by_id  # highest activity survives

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            NogoodStore(capacity=0)

    def test_reexamine_forces_violates_or_stays_inert(self):
        """Post-backjump re-examination: all-but-one-true forces the open
        literal (attributed to the nogood), all-true reports violation,
        a false or second open literal leaves the state untouched."""
        m = Model()
        x = m.int_var(0, 2, "x")
        y = m.int_var(0, 2, "y")
        z = m.int_var(0, 2, "z")
        s = DomainState(m, record_causes=True)
        t = Trail(s)
        store = NogoodStore()
        ng = store.add(
            [(x.index, 1, True), (y.index, 1, True), (z.index, 2, False)],
            s, t,
        )
        # two open literals: nothing to do
        s.assign(x, 1)
        assert store.reexamine(ng, s) is None
        assert s.contains(z, 2)
        # all but one true: the open literal's negation is forced
        s.assign(y, 1)
        assert store.reexamine(ng, s) is None
        assert s.contains(z, 2)  # forced ¬(z!=2) i.e. z := 2
        assert s.value(z) == 2
        assert s.causes[-1] == -2 - ng.id
        # a false literal makes it inert
        s2 = DomainState(m, record_causes=True)
        s2.assign(x, 1)
        s2.assign(y, 2)  # falsifies (y, 1, True)
        s2.remove_value(z, 2)
        assert store.reexamine(ng, s2) is None
        # every literal true: violated
        s3 = DomainState(m, record_causes=True)
        s3.assign(x, 1)
        s3.assign(y, 1)
        s3.remove_value(z, 2)
        assert store.reexamine(ng, s3) is ng

    def test_violated_nogoods_get_bumped(self):
        """A nogood reported violated by watched-literal propagation is
        bumped on the spot, so frequent culprits are not forgotten first."""

        class SpyStore(NogoodStore):
            def __init__(self):
                super().__init__()
                self.log = []

            def on_true(self, lit, state):
                out = super().on_true(lit, state)
                if out is not None:
                    self.log.append(("violated", out.id))
                return out

            def bump(self, ng):
                self.log.append(("bumped", ng.id))
                super().bump(ng)

        from repro.csp.heuristics import value_order_custom, var_order_input
        from repro.encodings.csp2 import encode_csp2
        from repro.solvers.ordering import task_order

        inst = generate_instance(GeneratorConfig(n=5, tmax=5, m=2), 14)
        enc = encode_csp2(inst.system, Platform.identical(inst.m), True)
        order = task_order(inst.system, "dc")
        order.append(enc.idle_value)
        solver = Solver(
            enc.model,
            var_order=var_order_input,
            value_order=value_order_custom(order),
            learn=True,
        )
        solver._store = store = SpyStore()
        out = solver._search(None, None, max_solutions=1)
        assert out.status is Status.UNSAT
        hits = [i for i, (kind, _) in enumerate(store.log)
                if kind == "violated"]
        assert hits  # the run exercised direct watched-literal conflicts
        for i in hits:  # ... and each one was bumped immediately
            assert store.log[i + 1] == ("bumped", store.log[i][1])
