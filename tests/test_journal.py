"""Tests for JSONL journal semantics (``repro.batch.journal``).

Last-line-wins, torn-line tolerance and shard merging are load-bearing
for crash-safe resume and for reassembling split campaigns / service
shards, so they get standalone coverage here, independent of the
campaign machinery in ``tests/test_batch.py``.
"""

import json

import pytest

from repro.batch import (
    MergeReport,
    cells_for_matrix,
    load_journal,
    merge_journals,
    run_batch,
    trim_torn_tail,
)
from repro.cli import main
from repro.generator.random_systems import GeneratorConfig, generate_instances


def record(key, **extra):
    """A minimal well-formed campaign record line for ``key``."""
    doc = {
        "instance_seed": 1, "n": 2, "m": 1, "hyperperiod": 6,
        "utilization_ratio": 0.5, "solver": "csp2", "status": "feasible",
        "elapsed": 0.1, "nodes": 3,
    }
    doc.update(extra)
    return json.dumps({"key": key, "record": doc})


def write_lines(path, lines):
    path.write_text("".join(line + "\n" for line in lines))
    return path


class TestLoadJournal:
    def test_missing_file_is_empty(self, tmp_path):
        assert load_journal(tmp_path / "nope.jsonl") == {}

    def test_last_line_wins(self, tmp_path):
        path = write_lines(
            tmp_path / "j.jsonl",
            [record("a", nodes=1), record("b"), record("a", nodes=99)],
        )
        journal = load_journal(path)
        assert set(journal) == {"a", "b"}
        assert journal["a"]["nodes"] == 99

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(record("a") + "\n" + record("b")[:17])
        assert set(load_journal(path)) == {"a"}

    def test_corrupt_and_foreign_lines_are_skipped(self, tmp_path):
        path = write_lines(
            tmp_path / "j.jsonl",
            [
                record("a"),
                "not json at all",
                '{"key": "x"}',  # keyed but recordless
                '{"key": "y", "record": {"bogus": 1}}',  # wrong shape
                "",
            ],
        )
        assert set(load_journal(path)) == {"a"}


class TestTrimTornTail:
    def test_missing_and_empty_files_left_alone(self, tmp_path):
        assert trim_torn_tail(tmp_path / "nope.jsonl") is False
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert trim_torn_tail(empty) is False

    def test_complete_journal_untouched(self, tmp_path):
        path = write_lines(tmp_path / "j.jsonl", [record("a"), record("b")])
        before = path.read_bytes()
        assert trim_torn_tail(path) is False
        assert path.read_bytes() == before

    def test_torn_tail_cut_back_to_last_newline(self, tmp_path):
        path = tmp_path / "j.jsonl"
        intact = record("a") + "\n"
        path.write_text(intact + record("b")[:23])
        assert trim_torn_tail(path) is True
        assert path.read_text() == intact

    def test_fully_torn_single_line_leaves_empty_file(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(record("a")[:10])
        assert trim_torn_tail(path) is True
        assert path.read_bytes() == b""


class TestMergeJournals:
    def test_first_appearance_order_last_occurrence_content(self, tmp_path):
        s1 = write_lines(
            tmp_path / "s1.jsonl", [record("a", nodes=1), record("b", nodes=2)]
        )
        s2 = write_lines(
            tmp_path / "s2.jsonl", [record("c", nodes=3), record("a", nodes=9)]
        )
        out = tmp_path / "merged.jsonl"
        report = merge_journals([s1, s2], out)
        entries = [json.loads(x) for x in out.read_text().splitlines()]
        assert [e["key"] for e in entries] == ["a", "b", "c"]
        assert entries[0]["record"]["nodes"] == 9  # s2's later line won
        assert isinstance(report, MergeReport)
        assert (report.lines, report.records, report.duplicates, report.torn) \
            == (4, 3, 1, 0)

    def test_winning_lines_are_copied_verbatim(self, tmp_path):
        # idiosyncratic spacing would not survive a reserialization
        raw = '{"key":   "a",  "weird": [1,    2]}'
        shard = write_lines(tmp_path / "s.jsonl", [raw])
        out = tmp_path / "merged.jsonl"
        merge_journals([shard], out)
        assert out.read_text() == raw + "\n"

    def test_single_complete_shard_merges_to_identity(self, tmp_path):
        shard = write_lines(
            tmp_path / "s.jsonl", [record("a"), record("b"), record("c")]
        )
        out = tmp_path / "merged.jsonl"
        merge_journals([shard], out)
        assert out.read_bytes() == shard.read_bytes()

    def test_missing_shard_merges_as_empty(self, tmp_path):
        shard = write_lines(tmp_path / "s.jsonl", [record("a")])
        out = tmp_path / "merged.jsonl"
        report = merge_journals([tmp_path / "ghost.jsonl", shard], out)
        assert report.records == 1
        assert [json.loads(x)["key"] for x in out.read_text().splitlines()] \
            == ["a"]

    def test_torn_and_keyless_lines_counted_and_dropped(self, tmp_path):
        shard = write_lines(
            tmp_path / "s.jsonl",
            [
                record("a"),
                '{"record": {"orphan": 1}}',  # keyless
                '{"key": 7, "record": {}}',  # non-string key
                '{"key": "b", "rec',  # torn
            ],
        )
        out = tmp_path / "merged.jsonl"
        report = merge_journals([shard], out)
        assert (report.lines, report.records, report.torn) == (4, 1, 3)
        assert "orphan" not in out.read_text()

    def test_split_campaign_merge_equals_single_run(self, tmp_path):
        """Two half-campaign shards merge into the one-run journal."""
        instances = generate_instances(
            GeneratorConfig(n=3, m=2, tmax=3), 4, seed=11
        )
        cells = cells_for_matrix(instances, ["csp2+dc"], 5.0)
        whole = tmp_path / "whole.jsonl"
        run_batch(cells, journal=whole)
        s1, s2 = tmp_path / "s1.jsonl", tmp_path / "s2.jsonl"
        run_batch(cells[: len(cells) // 2], journal=s1)
        run_batch(cells[len(cells) // 2:], journal=s2)
        merged = tmp_path / "merged.jsonl"
        merge_journals([s1, s2], merged)

        def canon(path):
            out = []
            for line in path.read_text().splitlines():
                entry = json.loads(line)
                entry["record"]["elapsed"] = 0.0  # wall clock, not content
                out.append(entry)
            return out

        assert canon(merged) == canon(whole)


class TestMergeCli:
    def test_merge_summary_and_exit_zero(self, tmp_path, capsys):
        s1 = write_lines(tmp_path / "s1.jsonl", [record("a"), record("a")])
        s2 = write_lines(tmp_path / "s2.jsonl", [record("b")])
        out = tmp_path / "merged.jsonl"
        code = main(
            ["journal", "merge", str(s1), str(s2), "--output", str(out)]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "merged 2 shard(s): 2 records from 3 lines" in stdout
        assert "1 superseded duplicates" in stdout
        assert out.exists()

    def test_missing_shard_exits_two(self, tmp_path, capsys):
        ghost = tmp_path / "ghost.jsonl"
        code = main(
            ["journal", "merge", str(ghost),
             "--output", str(tmp_path / "out.jsonl")]
        )
        assert code == 2
        assert "missing shard journal" in capsys.readouterr().err
        assert not (tmp_path / "out.jsonl").exists()
