"""Kernel parity suite: the vectorised paths must be byte-identical.

Every kernel in :mod:`repro.kernels` has three implementations that must
agree observation-for-observation:

* the **scalar reference** it replaced (the slot-by-slot simulator loop,
  the per-propagator engine path, the per-interval demand loops);
* the **numpy** fast path;
* the **pure-Python fallback** used when numpy is absent or masked via
  ``REPRO_NO_NUMPY=1``.

"Byte-identical" is literal: same SimulationResult fields including the
extracted cyclic schedule, same cascade certificates witness-for-witness,
same engine status/nodes/fails on the pinned regression grid, same
CountingKernel aggregates.  CI runs this file twice — once with numpy,
once under ``REPRO_NO_NUMPY=1`` — so both kernel paths stay covered.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import necessary
from repro.baselines import global_edf, global_fixed_priority
from repro.baselines.simulator import simulate_priority_policy
from repro.generator import GeneratorConfig, generate_instance
from repro.generator.named import running_example, running_example_platform
from repro.generator.random_systems import generate_system
from repro.kernels import demand as demand_kernel
from repro.kernels import have_numpy, kernel_availability, numpy_or_none
from repro.kernels.fixpoint import CountingKernel
from repro.model import Platform, TaskSystem
from repro.solvers.registry import create_solver

SEED = 2009


def _random_system(seed: int, n=None, tmax=None) -> TaskSystem:
    rng = random.Random(seed)
    n = n or rng.randint(2, 5)
    tmax = tmax or rng.choice([4, 5, 6, 8])
    return generate_system(rng, n, tmax)


def _sim_equal(a, b):
    assert a.schedulable == b.schedulable
    assert a.missed == b.missed
    assert a.cycles_simulated == b.cycles_simulated
    if a.schedule is None or b.schedule is None:
        assert a.schedule is None and b.schedule is None
    else:
        assert a.schedule.table.tolist() == b.schedule.table.tolist()


# ---------------------------------------------------------------------------
# simulator: block-stepping kernel vs the scalar slot-by-slot loop
# ---------------------------------------------------------------------------

class TestSimulatorParity:
    """``static_key`` routing must not change a single observation."""

    @pytest.mark.parametrize("seed", range(40))
    @pytest.mark.parametrize("m", [1, 2, 3])
    def test_edf_grid(self, seed, m):
        system = _random_system(seed)
        kernel = global_edf(system, m)
        scalar = simulate_priority_policy(
            system, m, priority=lambda i, rel, dl, rem: (dl, i)
        )
        _sim_equal(kernel, scalar)

    @pytest.mark.parametrize("seed", range(20))
    def test_fixed_priority_grid(self, seed):
        system = _random_system(seed)
        rng = random.Random(seed * 7 + 1)
        order = list(range(system.n))
        rng.shuffle(order)
        rank = [0] * system.n
        for pos, i in enumerate(order):
            rank[i] = pos
        m = rng.randint(1, 3)
        kernel = global_fixed_priority(system, m, order)
        scalar = simulate_priority_policy(
            system, m, priority=lambda i, rel, dl, rem: (rank[i], i)
        )
        _sim_equal(kernel, scalar)

    @settings(max_examples=60, deadline=None, derandomize=True)
    @given(
        tuples=st.lists(
            st.tuples(
                st.integers(0, 3),   # offset
                st.integers(0, 3),   # wcet
                st.integers(1, 6),   # deadline (>= wcet enforced below)
                st.integers(1, 6),   # period  (>= deadline enforced below)
            ),
            min_size=1,
            max_size=4,
        ),
        m=st.integers(1, 3),
    )
    def test_edf_hypothesis(self, tuples, m):
        tasks = [
            (o, min(c, d), d, max(d, t)) for o, c, d, t in tuples
        ]
        system = TaskSystem.from_tuples(tasks)
        kernel = global_edf(system, m)
        scalar = simulate_priority_policy(
            system, m, priority=lambda i, rel, dl, rem: (dl, i)
        )
        _sim_equal(kernel, scalar)

    def test_running_example(self):
        system = running_example()
        _sim_equal(
            global_edf(system, 2),
            simulate_priority_policy(
                system, 2, priority=lambda i, rel, dl, rem: (dl, i)
            ),
        )

    def test_numpy_masked_fallback(self, monkeypatch):
        """The list-of-rows history path returns the same schedules."""
        with_np = [global_edf(_random_system(s), 2) for s in range(10)]
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        without = [global_edf(_random_system(s), 2) for s in range(10)]
        for a, b in zip(with_np, without):
            _sim_equal(a, b)


# ---------------------------------------------------------------------------
# demand kernels: numpy table vs pure-Python rolling sweep
# ---------------------------------------------------------------------------

class TestDemandParity:
    """Certificates (witnesses included) agree with numpy masked."""

    def _certs(self, system, m):
        return [
            (c.verdict.value, c.test_name, c.witness, c.detail)
            for c in necessary.necessary_certificates(system, m)
        ]

    @pytest.mark.parametrize("seed", range(25))
    def test_certificate_grid(self, seed, monkeypatch):
        system = _random_system(seed)
        with_np = [self._certs(system, m) for m in (1, 2, 3)]
        bound_np = necessary.processor_lower_bound(system)
        wit_np = necessary.demand_over_capacity_witness(system, 2)
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        without = [self._certs(system, m) for m in (1, 2, 3)]
        assert with_np == without
        assert bound_np == necessary.processor_lower_bound(system)
        assert wit_np == necessary.demand_over_capacity_witness(system, 2)

    @settings(max_examples=50, deadline=None, derandomize=True)
    @given(
        spans=st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 7), st.integers(1, 4)),
            max_size=8,
        ),
        m=st.integers(1, 3),
    )
    def test_excess_witness_paths_agree(self, spans, m):
        """The tie-break (np.argmax first occurrence) is pinned exactly."""
        import os

        T = 8
        spans = [(min(s, e), max(s, e), c) for s, e, c in spans]
        with_np = demand_kernel.enclosed_excess_witness(spans, T, m, 10_000)
        need_np = demand_kernel.interval_min_processors(spans, T, 10_000)
        prior = os.environ.get("REPRO_NO_NUMPY")
        os.environ["REPRO_NO_NUMPY"] = "1"
        try:
            assert demand_kernel.enclosed_excess_witness(
                spans, T, m, 10_000
            ) == with_np
            assert demand_kernel.interval_min_processors(
                spans, T, 10_000
            ) == need_np
        finally:
            if prior is None:
                del os.environ["REPRO_NO_NUMPY"]
            else:
                os.environ["REPRO_NO_NUMPY"] = prior


# ---------------------------------------------------------------------------
# engine: vectorised batching vs the legacy per-propagator path
# ---------------------------------------------------------------------------

ENGINE_SPECS = [None, (4, 4, 2, 11), (4, 4, 2, 12), (5, 4, 2, 23),
                (5, 5, 2, 31)]


def _instance(spec):
    if spec is None:
        return running_example(), running_example_platform()
    n, tmax, m, seed = spec
    inst = generate_instance(GeneratorConfig(n=n, tmax=tmax, m=m), seed)
    return inst.system, Platform.identical(inst.m)


class TestEngineParity:
    """vectorize=True/None/False: identical search decisions (PR-3 grid)."""

    @pytest.mark.parametrize("solver_name", ["csp1", "csp2-generic",
                                             "csp2-generic+dc"])
    @pytest.mark.parametrize("spec", ENGINE_SPECS, ids=str)
    def test_vec_vs_scalar_counters(self, solver_name, spec):
        system, plat = _instance(spec)
        runs = {}
        for vec in (None, False, True):
            solver = create_solver(
                solver_name, system, plat, seed=SEED, vectorize=vec
            )
            out = solver.solve(node_limit=20_000)
            runs[vec] = (out.status.value, out.stats.nodes, out.stats.fails)
        assert runs[None] == runs[False] == runs[True]


# ---------------------------------------------------------------------------
# CountingKernel: numpy reset pass vs the scalar evaluate sweep
# ---------------------------------------------------------------------------

class TestCountingKernelReset:
    def _kernel_and_state(self):
        from repro.csp.search import Solver
        from repro.csp.state import DomainState
        from repro.encodings.csp2 import encode_csp2

        system, plat = running_example(), running_example_platform()
        enc = encode_csp2(system, plat, True)
        engine = Solver(enc.model)
        assert engine._kernel is not None, "csp2 should batch counting rows"
        return engine._kernel, DomainState(enc.model)

    def test_reset_matches_evaluate(self):
        kernel, state = self._kernel_and_state()
        kernel.reset(state)
        after_reset = [list(row.c) for row in kernel.rows]
        assert after_reset == kernel.evaluate(state)

    def test_reset_matches_evaluate_numpy_masked(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        kernel, state = self._kernel_and_state()
        kernel.reset(state)
        assert [list(row.c) for row in kernel.rows] == kernel.evaluate(state)


# ---------------------------------------------------------------------------
# availability reporting
# ---------------------------------------------------------------------------

class TestAvailability:
    def test_numpy_mask_is_per_call(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        assert numpy_or_none() is None
        assert have_numpy() is False
        monkeypatch.delenv("REPRO_NO_NUMPY")
        # unmasked: the answer reflects the actual install, immediately
        assert (numpy_or_none() is not None) == have_numpy()

    def test_availability_payload_shape(self):
        info = kernel_availability()
        assert set(info) >= {"numpy", "batched_fixpoint", "simulator_blocks",
                             "demand_table", "vectorized_var_orders"}
