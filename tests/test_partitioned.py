"""Tests for the partitioned-scheduling baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    exact_partition,
    first_fit_partition,
    uniprocessor_edf_feasible,
)
from repro.model import Platform, Task, TaskSystem
from repro.solvers import Feasibility, create_solver

from tests.helpers import running_example


class TestUniprocessorTest:
    def test_feasible_single(self):
        assert uniprocessor_edf_feasible([Task(0, 1, 2, 2)])

    def test_overload_infeasible(self):
        assert not uniprocessor_edf_feasible([Task(0, 2, 2, 2), Task(0, 1, 2, 2)])

    def test_empty_bin_feasible(self):
        assert uniprocessor_edf_feasible([])

    def test_edf_optimality_on_one_processor(self):
        # EDF == exact feasibility on m=1: cross-check against the CSP
        for tuples in [
            [(0, 1, 2, 2), (0, 1, 4, 4)],
            [(0, 2, 2, 4), (1, 1, 2, 2)],
            [(0, 1, 1, 2), (1, 1, 1, 2)],
        ]:
            s = TaskSystem.from_tuples(tuples)
            csp = create_solver("csp2+dc", s, Platform.identical(1)).solve(time_limit=20)
            assert uniprocessor_edf_feasible(list(s.tasks)) == csp.is_feasible, tuples


class TestFirstFit:
    def test_easy_fit_packs_first_bin(self):
        # both 0.5-utilization tasks fit together on one processor, and
        # first-fit packs them there rather than spreading
        s = TaskSystem.from_tuples([(0, 1, 2, 2), (0, 1, 2, 2)])
        res = first_fit_partition(s, 2)
        assert res.found
        assert res.assignment == [0, 0]

    def test_spreads_when_needed(self):
        # two saturating tasks cannot share a processor
        s = TaskSystem.from_tuples([(0, 2, 2, 2), (0, 2, 2, 2)])
        res = first_fit_partition(s, 2)
        assert res.found
        assert sorted(res.assignment) == [0, 1]

    def test_single_bin(self):
        s = TaskSystem.from_tuples([(0, 1, 4, 4), (0, 1, 4, 4)])
        res = first_fit_partition(s, 1)
        assert res.found
        assert res.assignment == [0, 0]

    def test_heuristic_failure_not_a_proof(self):
        s = TaskSystem.from_tuples([(0, 2, 2, 2), (0, 2, 2, 2), (0, 2, 2, 2)])
        res = first_fit_partition(s, 2)
        assert not res.found
        assert not res.exact

    def test_rejects_bad_m(self):
        with pytest.raises(ValueError):
            first_fit_partition(running_example(), 0)


class TestExactPartition:
    def test_finds_partition(self):
        s = TaskSystem.from_tuples([(0, 1, 2, 2), (0, 1, 2, 2), (0, 1, 4, 4)])
        res = exact_partition(s, 2)
        assert res.found and res.exact
        # verify the witness bin by bin
        bins = {}
        for i, j in enumerate(res.assignment):
            bins.setdefault(j, []).append(s[i])
        assert all(uniprocessor_edf_feasible(b) for b in bins.values())

    def test_refutes_exhaustively(self):
        s = TaskSystem.from_tuples([(0, 2, 2, 2), (0, 2, 2, 2), (0, 2, 2, 2)])
        res = exact_partition(s, 2)
        assert not res.found
        assert res.exact  # a proof: no partition exists

    def test_running_example_has_no_partition_on_two(self):
        """The paper's Example 1 is globally feasible but NOT partitionable:
        global migration is essential — the key global-vs-partitioned gap."""
        res = exact_partition(running_example(), 2)
        assert not res.found and res.exact
        # while the global CSP schedules it
        glob = create_solver("csp2+dc", running_example(), Platform.identical(2)).solve(
            time_limit=20
        )
        assert glob.is_feasible

    def test_time_limit(self):
        s = TaskSystem.from_tuples([(0, 1, 6, 6)] * 6)
        res = exact_partition(s, 3, time_limit=0.0)
        assert not res.exact

    def test_rejects_bad_m(self):
        with pytest.raises(ValueError):
            exact_partition(running_example(), 0)


@settings(deadline=None, max_examples=20)
@given(st.data())
def test_partitioned_implies_global_feasible(data):
    """Soundness: any partition found certifies global feasibility."""
    n = data.draw(st.integers(1, 4))
    tasks = []
    for _ in range(n):
        t = data.draw(st.sampled_from([1, 2, 4]))
        d = data.draw(st.integers(1, t))
        c = data.draw(st.integers(1, d))
        o = data.draw(st.integers(0, t - 1))
        tasks.append(Task(o, c, d, t))
    system = TaskSystem(tasks)
    m = data.draw(st.integers(1, 3))
    res = exact_partition(system, m)
    if res.found:
        glob = create_solver("csp2+dc", system, Platform.identical(m)).solve(
            time_limit=20
        )
        assert glob.is_feasible


@settings(deadline=None, max_examples=15)
@given(st.data())
def test_first_fit_never_beats_exact(data):
    n = data.draw(st.integers(1, 4))
    tasks = []
    for _ in range(n):
        t = data.draw(st.sampled_from([2, 4]))
        d = data.draw(st.integers(1, t))
        c = data.draw(st.integers(1, d))
        tasks.append(Task(0, c, d, t))
    system = TaskSystem(tasks)
    m = data.draw(st.integers(1, 2))
    ff = first_fit_partition(system, m)
    ex = exact_partition(system, m)
    if ff.found:
        assert ex.found  # exact search finds at least what the heuristic does
