"""The analysis subsystem: certificates, the screening cascade, the
``screen`` meta-solver, and decided_by provenance end to end."""

import json

import pytest

from repro.analysis import (
    Certificate,
    default_tests,
    density_certificate,
    edf_simulation_certificate,
    forced_demand_certificate,
    gfb_certificate,
    interval_load_certificate,
    partitioned_certificate,
    processor_lower_bound,
    prove_infeasible,
    run_cascade,
    uniprocessor_edf_certificate,
    utilization_certificate,
    utilization_exceeds,
    wcet_slack_certificate,
)
from repro.model import Platform, TaskSystem
from repro.schedule import validate
from repro.solvers import (
    Feasibility,
    Problem,
    SolveReport,
    SolverSpec,
    available_solvers,
    create_solver,
    is_solver_name,
    solve,
    solve_problem,
    solver_info,
)

from tests.helpers import running_example


def overloaded() -> TaskSystem:
    """U = 2 > 1: the utilization certificate fires on m = 1."""
    return TaskSystem.from_tuples([(0, 2, 2, 2), (0, 2, 2, 2)])


def collision() -> TaskSystem:
    """Two synchronous D=1 jobs: r <= 1 on m=1 yet locally over-demanded."""
    return TaskSystem.from_tuples([(0, 1, 1, 8), (0, 1, 1, 8)])


def light_implicit() -> TaskSystem:
    """Implicit deadlines, U small: GFB fires on any m."""
    return TaskSystem.from_tuples([(0, 1, 4, 4), (0, 1, 8, 8)])


# ---------------------------------------------------------------------------
# necessary certificates
# ---------------------------------------------------------------------------

class TestNecessaryCertificates:
    def test_utilization_fires(self):
        cert = utilization_certificate(overloaded(), 1)
        assert cert.proves_infeasible
        assert cert.test_name == "necessary:utilization"
        assert cert.witness["ratio"] == 2.0

    def test_utilization_abstains(self):
        cert = utilization_certificate(running_example(), 2)
        assert not cert.decided

    def test_utilization_exceeds_is_the_shared_predicate(self):
        assert utilization_exceeds(1.001)
        assert not utilization_exceeds(1.0)

    def test_wcet_slack_fires(self):
        cert = wcet_slack_certificate(
            TaskSystem.from_tuples([(0, 3, 2, 4)]), 1
        )
        assert cert.proves_infeasible
        assert cert.witness["tasks"] == [[0, 3, 2]]

    def test_wcet_slack_abstains(self):
        assert not wcet_slack_certificate(running_example(), 2).decided

    def test_interval_load_fires_on_local_collision(self):
        cert = interval_load_certificate(collision(), 1)
        assert cert.proves_infeasible
        assert cert.witness["interval"] == [0, 0]
        assert cert.witness["demand"] == 2

    def test_interval_load_abstains_on_feasible(self):
        assert not interval_load_certificate(running_example(), 2).decided

    def test_interval_load_large_hyperperiod_pair_fallback(self):
        # T^2 is past any table budget but there are only two windows:
        # the candidate-pair fallback must still find the proof
        from repro.analysis import demand_over_capacity_witness

        s = TaskSystem.from_tuples([(0, 1, 1, 1000), (0, 1, 1, 1000)])
        cert = interval_load_certificate(s, 1, max_cells=1)
        assert cert.proves_infeasible
        assert cert.witness["interval"] == [0, 0]
        assert demand_over_capacity_witness(s, 1) == (0, 0, 2)

    def test_interval_load_abstains_past_both_budgets(self):
        s = TaskSystem.from_tuples([(0, 1, 1, 1000), (0, 1, 1, 1000)])
        cert = interval_load_certificate(s, 1, max_cells=1, max_pairs=0)
        assert not cert.decided
        assert "budget" in cert.detail

    def test_interval_load_total_demand_branch(self):
        cert = interval_load_certificate(overloaded(), 1)
        assert cert.proves_infeasible

    def test_forced_demand_counts_partial_overlap(self):
        # A: window [0,9], C=9 (laxity 1); B: window [4,5], C=2 on m=1 —
        # slots [4,5] are forced to hold >= 1 unit of A plus all of B
        s = TaskSystem.from_tuples([(0, 9, 10, 12), (4, 2, 2, 12)])
        cert = forced_demand_certificate(s, 1)
        assert cert.proves_infeasible
        a, b = cert.witness["interval"]
        assert cert.witness["demand"] > cert.witness["capacity"]

    def test_forced_demand_abstains_on_feasible(self):
        assert not forced_demand_certificate(running_example(), 2).decided

    def test_prove_infeasible_returns_first_proof(self):
        cert = prove_infeasible(overloaded(), 1)
        assert cert is not None and cert.test_name == "necessary:utilization"
        assert prove_infeasible(running_example(), 2) is None

    def test_rejects_bad_m(self):
        for fn in (
            utilization_certificate,
            wcet_slack_certificate,
            interval_load_certificate,
            forced_demand_certificate,
        ):
            with pytest.raises(ValueError):
                fn(running_example(), 0)


class TestProcessorLowerBound:
    def test_at_least_ceil_utilization(self):
        assert processor_lower_bound(running_example()) == 2

    def test_interval_argument_sharpens(self):
        # U = 1/4 but two synchronous D=1 jobs force m >= 2
        assert processor_lower_bound(collision()) == 2

    def test_trivial_system(self):
        assert processor_lower_bound(light_implicit()) == 1


# ---------------------------------------------------------------------------
# sufficient certificates
# ---------------------------------------------------------------------------

class TestSufficientCertificates:
    def test_gfb_fires_on_implicit(self):
        cert = gfb_certificate(light_implicit(), 2)
        assert cert.proves_feasible

    def test_gfb_abstains_on_constrained(self):
        cert = gfb_certificate(running_example(), 2)
        assert not cert.decided
        assert "implicit" in cert.detail

    def test_density_fires(self):
        s = TaskSystem.from_tuples([(0, 1, 4, 8), (0, 1, 4, 8)])
        assert density_certificate(s, 2).proves_feasible

    def test_density_abstains_when_dense(self):
        assert not density_certificate(running_example(), 2).decided

    def test_uniproc_exact_both_ways(self):
        feas = uniprocessor_edf_certificate(light_implicit(), 1)
        assert feas.proves_feasible
        assert feas.schedule is not None
        assert validate(feas.schedule).ok
        infeas = uniprocessor_edf_certificate(collision(), 1)
        assert infeas.proves_infeasible
        assert "missed" in infeas.witness

    def test_uniproc_abstains_beyond_one(self):
        assert not uniprocessor_edf_certificate(running_example(), 2).decided

    def test_partitioned_witness(self):
        s = TaskSystem.from_tuples([(0, 2, 4, 4), (0, 2, 4, 4)])
        cert = partitioned_certificate(s, 2)
        assert cert.proves_feasible
        assert len(cert.witness["assignment"]) == s.n

    def test_edf_sim_witness_validates(self):
        cert = edf_simulation_certificate(light_implicit(), 2)
        assert cert.proves_feasible
        assert validate(cert.schedule).ok

    def test_simulation_budget_abstains(self):
        cert = edf_simulation_certificate(
            running_example(), 2, state_limit=1
        )
        assert not cert.decided
        assert "budget" in cert.detail


# ---------------------------------------------------------------------------
# the cascade
# ---------------------------------------------------------------------------

class TestCascade:
    def test_stops_at_first_proof(self):
        outcome = run_cascade(overloaded(), 1)
        assert outcome.verdict is Feasibility.INFEASIBLE
        assert outcome.decided.test_name == "necessary:utilization"
        assert len(outcome.certificates) == 1

    def test_all_abstain_is_unknown(self):
        # the running example defeats every polynomial test (that is why
        # the paper needs exact search for it)
        outcome = run_cascade(running_example(), 2)
        assert outcome.verdict is Feasibility.UNKNOWN
        assert outcome.decided is None
        assert len(outcome.certificates) == len(default_tests())

    def test_timings_per_test(self):
        outcome = run_cascade(running_example(), 2)
        assert set(outcome.timings) == {
            c.test_name for c in outcome.certificates
        }

    def test_no_simulate_drops_sim_tier(self):
        outcome = run_cascade(running_example(), 2, simulate=False)
        names = {c.test_name for c in outcome.certificates}
        assert not any(n.startswith("sufficient:edf") for n in names)
        assert "sufficient:partitioned-ff" not in names

    def test_to_dict_is_jsonable(self):
        payload = json.dumps(run_cascade(collision(), 1).to_dict())
        back = json.loads(payload)
        assert back["verdict"] == "infeasible"
        assert back["decided_by"] == "sufficient:uniproc-edf"

    def test_closed_form_tier_catches_collision(self):
        # without the simulation tier the interval-load table provides
        # the same infeasibility proof, just later in the cascade
        outcome = run_cascade(collision(), 1, simulate=False)
        assert outcome.verdict is Feasibility.INFEASIBLE
        assert outcome.decided.test_name == "necessary:interval-load"

    def test_explicit_tests_reject_options(self):
        with pytest.raises(ValueError, match="default test list"):
            run_cascade(
                running_example(), 2,
                tests=[utilization_certificate], simulate=False,
            )


# ---------------------------------------------------------------------------
# the screen solver and the name grammar
# ---------------------------------------------------------------------------

class TestScreenSpec:
    def test_roundtrip(self):
        for name in ("screen", "screen+csp2+dc", "screen+sat+pairwise",
                     "screen+portfolio:csp2+dc,sat"):
            spec = SolverSpec.parse(name)
            assert spec.is_screen
            assert spec.canonical == name
            assert SolverSpec.parse(spec.canonical) == spec

    def test_inner_spec_exposed(self):
        spec = SolverSpec.parse("screen+csp2+dc")
        assert spec.screened == SolverSpec.parse("csp2+dc")
        assert SolverSpec.parse("screen").screened is None

    def test_screen_cannot_nest(self):
        with pytest.raises(ValueError, match="nest"):
            SolverSpec.parse("screen+screen+csp2")

    def test_portfolio_cannot_nest_via_screen(self):
        with pytest.raises(ValueError, match="nest"):
            SolverSpec.parse("portfolio:screen+portfolio:csp2,sat")

    def test_screen_member_in_portfolio(self):
        spec = SolverSpec.parse("portfolio:screen+csp2+dc,sat")
        assert spec.is_portfolio
        assert spec.members[0].is_screen

    def test_is_solver_name_validates_inner(self):
        assert is_solver_name("screen")
        assert is_solver_name("screen+csp2+dc")
        assert not is_solver_name("screen+magic")
        assert not is_solver_name("screen+csp2+bogus")

    def test_registry_lists_screen(self):
        assert "screen" in available_solvers()
        assert solver_info("screen+csp2+dc").proves_infeasibility


class TestScreenSolver:
    def test_bare_screen_decides(self):
        r = create_solver("screen", overloaded(), Platform.identical(1)).solve()
        assert r.status is Feasibility.INFEASIBLE
        assert r.decided_by == "necessary:utilization"
        assert r.solver_name == "screen"
        assert r.stats.extra["screen"]["decided_by"] == r.decided_by

    def test_bare_screen_abstains_to_unknown(self):
        r = create_solver(
            "screen", running_example(), Platform.identical(2)
        ).solve(time_limit=10)
        assert r.status is Feasibility.UNKNOWN
        assert r.decided_by is None

    def test_screen_falls_through_to_inner(self):
        r = create_solver(
            "screen+csp2+dc", running_example(), Platform.identical(2)
        ).solve(time_limit=20)
        assert r.status is Feasibility.FEASIBLE
        assert r.decided_by == "csp2+dc"
        assert r.solver_name == "csp2+dc"
        assert validate(r.schedule).ok
        # cascade bookkeeping still attached
        assert r.stats.extra["screen"]["decided_by"] is None
        assert len(r.stats.extra["screen"]["tests"]) == len(default_tests())

    def test_decided_instance_never_builds_inner(self):
        # an unknown inner name would raise at construction; the screen
        # resolves it eagerly, so use a valid but expensive inner and a
        # certificate-decidable instance: no search nodes may appear
        r = create_solver(
            "screen+csp2+dc", overloaded(), Platform.identical(1)
        ).solve(time_limit=10)
        assert r.status is Feasibility.INFEASIBLE
        assert r.decided_by == "necessary:utilization"
        assert r.stats.nodes == 0

    def test_unknown_inner_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown solver"):
            create_solver(
                "screen+magic", running_example(), Platform.identical(2)
            )

    def test_screen_options_flow(self):
        r = create_solver(
            "screen", running_example(), Platform.identical(2),
            simulate=False,
        ).solve()
        names = {t["name"] for t in r.stats.extra["screen"]["tests"]}
        assert "sufficient:partitioned-ff" not in names

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError, match="simulate"):
            create_solver(
                "screen", running_example(), Platform.identical(2),
                simulte=True,
            )

    def test_non_identical_platform_delegates(self):
        platform = Platform.uniform([2, 1])
        r = create_solver(
            "screen+csp2+dc", running_example(), platform
        ).solve(time_limit=20)
        assert r.status in (Feasibility.FEASIBLE, Feasibility.INFEASIBLE)
        assert r.stats.extra["screen"]["skipped"] == "non-identical platform"

    def test_zero_budget_matches_inner_semantics(self):
        # the screen neither grants nor steals budget: whatever the
        # inner engine answers at time_limit=0 is what screen+inner does
        inner = create_solver(
            "csp2+dc", running_example(), Platform.identical(2)
        ).solve(time_limit=0.0)
        screened = create_solver(
            "screen+csp2+dc", running_example(), Platform.identical(2)
        ).solve(time_limit=0.0)
        assert screened.status is inner.status


class TestScreenFrontDoor:
    def test_solve_records_decided_by(self):
        report = solve(overloaded(), m=1, solver="screen+csp2+dc", time_limit=10)
        assert report.status is Feasibility.INFEASIBLE
        assert report.decided_by == "necessary:utilization"
        assert report.winner == "screen"

    def test_report_jsonl_roundtrip_keeps_provenance(self):
        report = solve(overloaded(), m=1, solver="screen+csp2+dc", time_limit=10)
        line = json.dumps(report.to_dict())
        back = SolveReport.from_dict(json.loads(line))
        assert back.decided_by == "necessary:utilization"
        assert back.to_dict() == report.to_dict()

    def test_plain_solver_decided_by_falls_back_to_winner(self):
        report = solve(running_example(), m=2, time_limit=20)
        assert report.decided_by == "csp2+dc"

    def test_memory_guard_strips_memory_bound_inner(self):
        p = Problem.of(
            running_example(), m=2, time_limit=0.5, variable_limit=1
        )
        report = solve_problem(p, "screen+csp1", check=False)
        # screening still ran (no skipped-memory): the cascade abstains
        # on the running example and the stripped csp1 never builds
        assert report.skipped is None
        assert report.status is Feasibility.UNKNOWN
        # a decidable instance is still decided outright
        p2 = Problem.of(overloaded(), m=1, time_limit=0.5, variable_limit=1)
        report2 = solve_problem(p2, "screen+csp1", check=False)
        assert report2.status is Feasibility.INFEASIBLE
        assert report2.decided_by == "necessary:utilization"

    def test_portfolio_with_screen_member(self):
        report = solve(
            overloaded(), m=1,
            solver="portfolio:screen+csp2+dc,csp2+dc",
            time_limit=10, jobs=1,
        )
        assert report.status is Feasibility.INFEASIBLE
        assert report.decided_by == "necessary:utilization"


# ---------------------------------------------------------------------------
# soundness: the cascade may abstain, never contradict the exact solver
# ---------------------------------------------------------------------------

class TestSoundnessGrid:
    def test_cascade_agrees_with_exact_on_seeded_grid(self):
        from repro.generator import GeneratorConfig, generate_instances

        cfg = GeneratorConfig(n=5, tmax=5, m="uniform", order="d-first")
        instances = generate_instances(cfg, 40, seed=4711)
        disagreements = []
        decided = 0
        for inst in instances:
            outcome = run_cascade(inst.system, inst.m)
            if outcome.decided is None:
                continue
            decided += 1
            exact = create_solver(
                "csp2+dc", inst.system, Platform.identical(inst.m)
            ).solve(time_limit=30)
            assert exact.status is not Feasibility.UNKNOWN, inst.seed
            if exact.status is not outcome.verdict:
                disagreements.append(
                    (inst.seed, outcome.decided.test_name,
                     outcome.verdict, exact.status)
                )
        assert not disagreements, disagreements
        # the grid must actually exercise the cascade
        assert decided >= len(instances) // 2


# ---------------------------------------------------------------------------
# provenance through the batch layer
# ---------------------------------------------------------------------------

class TestBatchProvenance:
    def test_run_record_carries_decided_by(self):
        from repro.batch.cells import Cell, solve_cell
        from repro.generator.random_systems import Instance

        inst = Instance(system=overloaded(), m=1, seed=7)
        cell = Cell.from_instance(inst, "screen+csp2+dc", time_limit=10)
        record = solve_cell(cell)
        assert record.status == "infeasible"
        assert record.decided_by == "necessary:utilization"

    def test_experiment_run_roundtrip(self):
        from repro.batch.cells import Cell, solve_cell
        from repro.experiments.runner import ExperimentRun, RunRecord
        from repro.generator.random_systems import Instance

        inst = Instance(system=overloaded(), m=1, seed=7)
        record = solve_cell(Cell.from_instance(inst, "screen", time_limit=10))
        run = ExperimentRun("t", 10.0, [record])
        back = ExperimentRun.from_json(run.to_json())
        assert back.records[0].decided_by == "necessary:utilization"

    def test_legacy_records_without_decided_by_load(self):
        from repro.experiments.runner import RunRecord

        legacy = {
            "instance_seed": 1, "n": 2, "m": 1, "hyperperiod": 4,
            "utilization_ratio": 0.5, "solver": "csp2+dc",
            "status": "feasible", "elapsed": 0.1, "nodes": 3,
        }
        assert RunRecord(**legacy).decided_by is None


# ---------------------------------------------------------------------------
# min-processors integration
# ---------------------------------------------------------------------------

class TestMinProcessorsAnalysis:
    def test_lower_bound_skips_search(self):
        from repro.solvers import find_min_processors

        res = find_min_processors(collision(), time_limit_per_m=20)
        assert res.m == 2 and res.exact
        assert res.attempts[1] is Feasibility.INFEASIBLE
        assert res.decided_by[1].startswith("analysis:")

    def test_certificates_prove_infeasible_counts(self):
        from repro.solvers import find_min_processors

        # C > D: every count is excluded by certificate, never by search
        s = TaskSystem.from_tuples([(0, 3, 2, 4)])
        res = find_min_processors(s, time_limit_per_m=5, max_m=4)
        assert not res.found
        assert all(
            v is Feasibility.INFEASIBLE for v in res.attempts.values()
        )
        assert all(
            d == "analysis:processor-lower-bound"
            or d.startswith("necessary:")
            for d in res.decided_by.values()
        )

    def test_use_analysis_false_matches(self):
        from repro.solvers import find_min_processors

        with_a = find_min_processors(collision(), time_limit_per_m=20)
        without = find_min_processors(
            collision(), time_limit_per_m=20, use_analysis=False
        )
        assert with_a.m == without.m == 2
        assert without.decided_by[1] == "csp2+dc"


# ---------------------------------------------------------------------------
# the analyze CLI
# ---------------------------------------------------------------------------

class TestAnalyzeCli:
    def _write_instance(self, tmp_path, system, m):
        path = tmp_path / "i.json"
        path.write_text(json.dumps(
            {"tasks": [list(t.as_tuple()) for t in system], "m": m}
        ))
        return str(path)

    def test_decided_exits_zero(self, capsys, tmp_path):
        from repro.cli import main

        path = self._write_instance(tmp_path, overloaded(), 1)
        assert main(["analyze", path]) == 0
        out = capsys.readouterr().out
        assert "verdict: infeasible" in out
        assert "necessary:utilization" in out

    def test_abstain_exits_two(self, capsys, tmp_path):
        from repro.cli import main

        path = self._write_instance(tmp_path, running_example(), 2)
        assert main(["analyze", path]) == 2
        assert "every test abstained" in capsys.readouterr().out

    def test_json_output(self, capsys, tmp_path):
        from repro.cli import main

        path = self._write_instance(tmp_path, collision(), 1)
        assert main(["analyze", path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"] == "infeasible"
        assert payload["decided_by"] == "sufficient:uniproc-edf"

    def test_m_override(self, capsys, tmp_path):
        from repro.cli import main

        path = self._write_instance(tmp_path, overloaded(), 4)
        assert main(["analyze", path, "-m", "1"]) == 0
        assert "infeasible" in capsys.readouterr().out

    def test_min_processors_prints_provenance(self, capsys, tmp_path):
        from repro.cli import main

        path = self._write_instance(tmp_path, collision(), 1)
        assert main(["solve", path, "--min-processors",
                     "--time-limit", "20"]) == 0
        out = capsys.readouterr().out
        assert "decided by analysis:" in out
