"""Tests for sufficient bounds (analysis.bounds) and ASCII charts."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import density_bound, gfb_utilization_bound
from repro.baselines import global_edf
from repro.experiments.charts import bar_chart, table3_chart
from repro.model import Platform, Task, TaskSystem
from repro.solvers import create_solver


class TestGfbBound:
    def test_fires_on_light_system(self):
        s = TaskSystem.from_tuples([(0, 1, 4, 4), (0, 1, 4, 4)])
        v = gfb_utilization_bound(s, 2)
        assert v.schedulable and bool(v)

    def test_inconclusive_on_heavy(self):
        s = TaskSystem.from_tuples([(0, 3, 4, 4), (0, 3, 4, 4), (0, 3, 4, 4)])
        v = gfb_utilization_bound(s, 2)
        assert not v.schedulable
        assert ">" in v.detail

    def test_rejects_constrained(self):
        s = TaskSystem.from_tuples([(0, 1, 2, 4)])
        with pytest.raises(ValueError, match="implicit"):
            gfb_utilization_bound(s, 2)

    def test_rejects_bad_m(self):
        s = TaskSystem.from_tuples([(0, 1, 4, 4)])
        with pytest.raises(ValueError):
            gfb_utilization_bound(s, 0)

    def test_m1_reduces_to_u_le_1(self):
        s = TaskSystem.from_tuples([(0, 2, 4, 4), (0, 2, 4, 4)])
        assert gfb_utilization_bound(s, 1).schedulable  # U = 1 <= 1
        s2 = TaskSystem.from_tuples([(0, 3, 4, 4), (0, 2, 4, 4)])
        assert not gfb_utilization_bound(s2, 1).schedulable


class TestDensityBound:
    def test_fires_on_light(self):
        s = TaskSystem.from_tuples([(0, 1, 3, 4), (0, 1, 3, 4)])
        assert density_bound(s, 2).schedulable

    def test_rejects_arbitrary(self):
        s = TaskSystem.from_tuples([(0, 1, 5, 3)])
        with pytest.raises(ValueError, match="constrained"):
            density_bound(s, 2)

    def test_density_stricter_than_gfb(self):
        # on implicit-deadline systems the two coincide
        s = TaskSystem.from_tuples([(0, 1, 4, 4), (0, 2, 4, 4)])
        assert density_bound(s, 2).schedulable == gfb_utilization_bound(s, 2).schedulable


def small_implicit_systems():
    def build(params):
        return TaskSystem([Task(o % t, min(c, t), t, t) for o, t, c in params])

    return st.builds(
        build,
        st.lists(
            st.tuples(st.integers(0, 4), st.sampled_from([2, 3, 4, 6]), st.integers(1, 6)),
            min_size=1,
            max_size=4,
        ),
    )


@settings(deadline=None, max_examples=40)
@given(small_implicit_systems(), st.integers(1, 3))
def test_gfb_bound_is_sound(system, m):
    """GFB fires => global EDF really schedules it (exact simulation)."""
    v = gfb_utilization_bound(system, m)
    if v.schedulable:
        sim = global_edf(system, m)
        assert sim.schedulable is True, (system, m, v.detail)


def constrained_systems():
    def build(params):
        out = []
        for o, t, d, c in params:
            d = min(d, t)
            out.append(Task(o % t, min(c, d), d, t))
        return TaskSystem(out)

    return st.builds(
        build,
        st.lists(
            st.tuples(
                st.integers(0, 4),
                st.sampled_from([2, 3, 4, 6]),
                st.integers(1, 6),
                st.integers(1, 6),
            ),
            min_size=1,
            max_size=4,
        ),
    )


@settings(deadline=None, max_examples=40)
@given(constrained_systems(), st.integers(1, 3))
def test_density_bound_is_sound(system, m):
    """Density bound fires => G-EDF schedulable => CSP-feasible."""
    v = density_bound(system, m)
    if v.schedulable:
        sim = global_edf(system, m)
        assert sim.schedulable is True, (system, m, v.detail)
        exact = create_solver("csp2+dc", system, Platform.identical(m)).solve(
            time_limit=20
        )
        assert exact.is_feasible


class TestBarChart:
    def test_basic(self):
        out = bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[0].startswith("a ")
        assert lines[1].count("#") == 10  # max value fills the width
        assert lines[0].count("#") == 5

    def test_none_rendered_as_dash(self):
        out = bar_chart(["x", "y"], [None, 3.0], width=5)
        assert "-" in out.splitlines()[0]

    def test_zero_only(self):
        out = bar_chart(["z"], [0.0], width=5)
        assert "#" not in out

    def test_all_none(self):
        assert bar_chart(["a"], [None]) == "(no data)"

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0], width=0)
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0], fill="##")

    def test_small_positive_still_visible(self):
        out = bar_chart(["a", "b"], [0.001, 100.0], width=10)
        assert out.splitlines()[0].count("#") == 1


class TestTable3Chart:
    def test_renders_from_result(self):
        from repro.experiments.table1 import Table1Config, run_table1
        from repro.experiments.table3 import run_table3

        t1 = run_table1(Table1Config(n_instances=4, time_limit=0.1, seed=3))
        chart = table3_chart(run_table3(table1=t1))
        assert "mean resolution time" in chart
        assert "r " in chart
