"""Tests for geometric restarts in the generic CSP engine."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csp import Model, Solver, Status, var_order_random
from repro.csp.heuristics import make_value_order_random


def pigeonhole(n_pigeons, n_holes):
    m = Model()
    vs = [m.int_var(0, n_holes - 1, f"p{i}") for i in range(n_pigeons)]
    m.add_all_different_except(vs, None)
    return m, vs


class TestRestarts:
    def test_sat_found_with_restarts(self):
        m, vs = pigeonhole(4, 4)
        out = Solver(m, var_order=var_order_random, seed=1, restart_nodes=3).solve()
        assert out.status is Status.SAT
        vals = [out.value(v) for v in vs]
        assert len(set(vals)) == 4

    def test_unsat_still_proven(self):
        """Completeness: the doubling cutoff eventually exceeds the tree."""
        m, _ = pigeonhole(5, 4)
        out = Solver(m, var_order=var_order_random, seed=1, restart_nodes=2).solve()
        assert out.status is Status.UNSAT
        assert out.stats.restarts > 0

    def test_restart_counter(self):
        m, _ = pigeonhole(6, 5)
        out = Solver(m, var_order=var_order_random, seed=3, restart_nodes=1).solve()
        assert out.status is Status.UNSAT
        assert out.stats.restarts >= 1

    def test_node_limit_respected_across_runs(self):
        m, _ = pigeonhole(7, 6)
        out = Solver(m, var_order=var_order_random, seed=5, restart_nodes=2).solve(
            node_limit=10
        )
        assert out.status is Status.UNKNOWN
        assert out.stats.nodes <= 14  # limit + one cutoff block of slack

    def test_time_limit_respected(self):
        m, _ = pigeonhole(8, 7)
        out = Solver(m, var_order=var_order_random, seed=5, restart_nodes=4).solve(
            time_limit=0.0
        )
        assert out.status is Status.UNKNOWN

    def test_rejects_bad_cutoff(self):
        m, _ = pigeonhole(3, 3)
        with pytest.raises(ValueError):
            Solver(m, restart_nodes=0)

    def test_solve_all_incompatible(self):
        m, _ = pigeonhole(3, 3)
        with pytest.raises(ValueError, match="solve_all"):
            Solver(m, restart_nodes=5).solve_all()

    def test_without_cutoff_no_restarts(self):
        m, _ = pigeonhole(4, 3)
        out = Solver(m).solve()
        assert out.status is Status.UNSAT
        assert out.stats.restarts == 0


class TestRestartDeterminism:
    """Seeded randomized heuristics under restarts must replay exactly:
    same statuses, same node/fail/restart counters on every run."""

    def _run(self, p, h, seed, cutoff, with_value_order=False):
        m, _ = pigeonhole(p, h)
        value_order = (
            make_value_order_random(random.Random(seed * 977 + 1))
            if with_value_order
            else None
        )
        out = Solver(
            m,
            var_order=var_order_random,
            value_order=value_order,
            seed=seed,
            restart_nodes=cutoff,
        ).solve(time_limit=30)
        return (
            out.status,
            out.stats.nodes,
            out.stats.fails,
            out.stats.restarts,
            out.stats.max_depth,
        )

    @pytest.mark.parametrize("seed", [0, 7, 42])
    @pytest.mark.parametrize("cutoff", [1, 3, 8])
    def test_var_order_random_reproduces(self, seed, cutoff):
        runs = {self._run(6, 5, seed, cutoff) for _ in range(3)}
        assert len(runs) == 1
        assert next(iter(runs))[0] is Status.UNSAT

    @pytest.mark.parametrize("seed", [1, 13])
    def test_value_order_random_reproduces(self, seed):
        runs = {
            self._run(5, 5, seed, 4, with_value_order=True) for _ in range(3)
        }
        assert len(runs) == 1
        assert next(iter(runs))[0] is Status.SAT

    def test_learning_restarts_reproduce(self):
        runs = set()
        for _ in range(3):
            m, _ = pigeonhole(6, 5)
            out = Solver(
                m, var_order=var_order_random, seed=5,
                restart_nodes=3, learn=True,
            ).solve(time_limit=30)
            runs.add(
                (out.status, out.stats.nodes, out.stats.conflicts,
                 out.stats.learned, out.stats.restarts)
            )
        assert len(runs) == 1
        assert next(iter(runs))[0] is Status.UNSAT


@settings(deadline=None, max_examples=30)
@given(st.integers(2, 5), st.integers(2, 5), st.integers(1, 8), st.integers(0, 100))
def test_restarts_never_change_the_answer(p, h, cutoff, seed):
    m1, _ = pigeonhole(p, h)
    plain = Solver(m1).solve()
    m2, _ = pigeonhole(p, h)
    restarted = Solver(
        m2, var_order=var_order_random, seed=seed, restart_nodes=cutoff
    ).solve(time_limit=20)
    assert restarted.status == plain.status
