"""Tests for geometric restarts in the generic CSP engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csp import Model, Solver, Status, var_order_random


def pigeonhole(n_pigeons, n_holes):
    m = Model()
    vs = [m.int_var(0, n_holes - 1, f"p{i}") for i in range(n_pigeons)]
    m.add_all_different_except(vs, None)
    return m, vs


class TestRestarts:
    def test_sat_found_with_restarts(self):
        m, vs = pigeonhole(4, 4)
        out = Solver(m, var_order=var_order_random, seed=1, restart_nodes=3).solve()
        assert out.status is Status.SAT
        vals = [out.value(v) for v in vs]
        assert len(set(vals)) == 4

    def test_unsat_still_proven(self):
        """Completeness: the doubling cutoff eventually exceeds the tree."""
        m, _ = pigeonhole(5, 4)
        out = Solver(m, var_order=var_order_random, seed=1, restart_nodes=2).solve()
        assert out.status is Status.UNSAT
        assert out.stats.restarts > 0

    def test_restart_counter(self):
        m, _ = pigeonhole(6, 5)
        out = Solver(m, var_order=var_order_random, seed=3, restart_nodes=1).solve()
        assert out.status is Status.UNSAT
        assert out.stats.restarts >= 1

    def test_node_limit_respected_across_runs(self):
        m, _ = pigeonhole(7, 6)
        out = Solver(m, var_order=var_order_random, seed=5, restart_nodes=2).solve(
            node_limit=10
        )
        assert out.status is Status.UNKNOWN
        assert out.stats.nodes <= 14  # limit + one cutoff block of slack

    def test_time_limit_respected(self):
        m, _ = pigeonhole(8, 7)
        out = Solver(m, var_order=var_order_random, seed=5, restart_nodes=4).solve(
            time_limit=0.0
        )
        assert out.status is Status.UNKNOWN

    def test_rejects_bad_cutoff(self):
        m, _ = pigeonhole(3, 3)
        with pytest.raises(ValueError):
            Solver(m, restart_nodes=0)

    def test_solve_all_incompatible(self):
        m, _ = pigeonhole(3, 3)
        with pytest.raises(ValueError, match="solve_all"):
            Solver(m, restart_nodes=5).solve_all()

    def test_without_cutoff_no_restarts(self):
        m, _ = pigeonhole(4, 3)
        out = Solver(m).solve()
        assert out.status is Status.UNSAT
        assert out.stats.restarts == 0


@settings(deadline=None, max_examples=30)
@given(st.integers(2, 5), st.integers(2, 5), st.integers(1, 8), st.integers(0, 100))
def test_restarts_never_change_the_answer(p, h, cutoff, seed):
    m1, _ = pigeonhole(p, h)
    plain = Solver(m1).solve()
    m2, _ = pigeonhole(p, h)
    restarted = Solver(
        m2, var_order=var_order_random, seed=seed, restart_nodes=cutoff
    ).solve(time_limit=20)
    assert restarted.status == plain.status
