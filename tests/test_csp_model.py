"""Unit tests for the CSP Model/Variable layer (repro.csp.core)."""

import pytest

from repro.csp import Model, Variable
from repro.csp.propagators import CountEq, NonDecreasing


class TestVariable:
    def test_contiguous_domain(self):
        m = Model()
        v = m.int_var(3, 6, "v")
        assert v.initial_values() == [3, 4, 5, 6]
        assert v.initial_size == 4
        assert v.offset == 3

    def test_sparse_domain(self):
        m = Model()
        v = m.int_var_from([7, 2, 5, 2])
        assert v.initial_values() == [2, 5, 7]
        assert v.initial_size == 3

    def test_bool_var(self):
        m = Model()
        b = m.bool_var("b")
        assert b.initial_values() == [0, 1]

    def test_constant(self):
        m = Model()
        c = m.constant(9)
        assert c.initial_values() == [9]

    def test_negative_values_supported(self):
        m = Model()
        v = m.int_var(-3, -1)
        assert v.initial_values() == [-3, -2, -1]
        assert v.offset == -3

    def test_empty_domains_rejected(self):
        m = Model()
        with pytest.raises(ValueError):
            m.int_var(5, 4)
        with pytest.raises(ValueError):
            m.int_var_from([])

    def test_auto_names_sequential(self):
        m = Model()
        a, b = m.int_var(0, 1), m.int_var(0, 1)
        assert a.name == "v0" and b.name == "v1"
        assert a.index == 0 and b.index == 1

    def test_repr(self):
        m = Model()
        v = m.int_var(0, 1, "x")
        assert "x" in repr(v) and "[0, 1]" in repr(v)

    def test_direct_empty_variable_rejected(self):
        with pytest.raises(ValueError):
            Variable(0, "bad", 0, 0)


class TestModel:
    def test_counts(self):
        m = Model()
        vs = [m.int_var(0, 2) for _ in range(3)]
        m.add_count_eq(vs, 1, 1)
        m.add_non_decreasing(vs)
        assert m.n_variables == 3
        assert m.n_constraints == 2
        assert "vars=3" in repr(m)

    def test_degrees(self):
        m = Model()
        a, b, c = (m.int_var(0, 2) for _ in range(3))
        m.add_non_decreasing([a, b])
        m.add_count_eq([a, b, c], 0, 1)
        assert m.degrees() == [2, 2, 1]

    def test_wrapper_methods_build_right_types(self):
        m = Model()
        vs = [m.int_var(0, 3) for _ in range(3)]
        bs = [m.bool_var() for _ in range(3)]
        m.add_at_most_one_true(bs)
        m.add_exact_sum_bool(bs, 1)
        m.add_weighted_exact_sum_bool(bs, [1, 2, 3], 3)
        m.add_count_eq(vs, 1, 1)
        m.add_weighted_count_eq(vs, [1, 1, 2], 2, 2)
        m.add_all_different_except(vs, 3)
        m.add_non_decreasing(vs)
        m.add_table(vs[:2], [(0, 1)])
        names = [type(c).__name__ for c in m.constraints]
        assert names == [
            "AtMostOneTrue",
            "ExactSumBool",
            "WeightedExactSumBool",
            "CountEq",
            "WeightedCountEq",
            "AllDifferentExceptValue",
            "NonDecreasing",
            "Table",
        ]

    def test_constraint_repr_truncates(self):
        m = Model()
        vs = [m.int_var(0, 1, f"q{i}") for i in range(8)]
        r = repr(NonDecreasing(vs))
        assert "..8" in r

    def test_count_eq_validation(self):
        m = Model()
        with pytest.raises(ValueError):
            CountEq([], 0, 1)
        with pytest.raises(ValueError):
            CountEq([m.int_var(0, 1)], 0, -1)
