"""Tests for Platform (identical / uniform / heterogeneous)."""

from fractions import Fraction

import numpy as np
import pytest

from repro.model import Platform, TaskSystem

EXAMPLE = TaskSystem.from_tuples([(0, 1, 2, 2), (1, 3, 4, 4), (0, 2, 2, 3)])


class TestIdentical:
    def test_basic(self):
        p = Platform.identical(2)
        assert p.m == 2 and p.kind == "identical" and p.is_identical

    def test_rates_all_one(self):
        p = Platform.identical(3)
        assert all(p.rate(i, j) == 1 for i in range(5) for j in range(3))

    def test_rate_matrix(self):
        assert Platform.identical(2).rate_matrix(3).tolist() == [[1, 1], [1, 1], [1, 1]]

    def test_rejects_zero_processors(self):
        with pytest.raises(ValueError):
            Platform.identical(0)

    def test_one_identical_group(self):
        assert Platform.identical(4).identical_groups(3) == [[0, 1, 2, 3]]

    def test_eligibility_everything(self):
        p = Platform.identical(2)
        assert p.eligible_processors(1) == [0, 1]
        assert p.eligible_tasks(0, 3) == [0, 1, 2]


class TestUniform:
    def test_basic(self):
        p = Platform.uniform([2, 1, 1])
        assert p.kind == "uniform" and p.m == 3

    def test_rates_broadcast_over_tasks(self):
        p = Platform.uniform([2, 1])
        assert p.rate(0, 0) == 2 and p.rate(7, 0) == 2 and p.rate(0, 1) == 1

    def test_all_unit_speeds_collapse_to_identical(self):
        assert Platform.uniform([1, 1]).kind == "identical"

    def test_rejects_zero_speed(self):
        with pytest.raises(ValueError):
            Platform.uniform([1, 0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Platform.uniform([])

    def test_groups_by_speed(self):
        p = Platform.uniform([2, 1, 2, 1])
        assert p.identical_groups(2) == [[0, 2], [1, 3]]


class TestHeterogeneous:
    def test_basic(self):
        p = Platform.heterogeneous([[1, 0], [2, 1], [0, 3]])
        assert p.kind == "heterogeneous" and p.m == 2 and p.n_tasks == 3

    def test_rate_lookup(self):
        p = Platform.heterogeneous([[1, 0], [2, 1]])
        assert p.rate(0, 1) == 0 and p.rate(1, 0) == 2

    def test_zero_rate_means_ineligible(self):
        p = Platform.heterogeneous([[1, 0], [2, 1], [0, 3]])
        assert p.eligible_processors(0) == [0]
        assert p.eligible_processors(2) == [1]
        assert p.eligible_tasks(0, 3) == [0, 1]
        assert p.eligible_tasks(1, 3) == [1, 2]

    def test_rejects_negative_rates(self):
        with pytest.raises(ValueError):
            Platform.heterogeneous([[1, -1]])

    def test_rejects_unrunnable_task(self):
        with pytest.raises(ValueError):
            Platform.heterogeneous([[1, 1], [0, 0]])

    def test_rejects_wrong_task_count(self):
        p = Platform.heterogeneous([[1, 1], [1, 1]])
        with pytest.raises(ValueError):
            p.rate_matrix(3)

    def test_rate_matrix_roundtrip(self):
        mat = [[1, 0], [2, 1], [0, 3]]
        p = Platform.heterogeneous(mat)
        assert np.array_equal(p.rate_matrix(3), np.array(mat))

    def test_groups_by_column(self):
        p = Platform.heterogeneous([[1, 2, 1], [1, 1, 1]])
        assert p.identical_groups(2) == [[0, 2], [1]]


class TestQualityOrdering:
    def test_identical_quality_equal(self):
        p = Platform.identical(2)
        q = p.quality(EXAMPLE)
        assert q[0] == q[1] == EXAMPLE.utilization

    def test_heterogeneous_quality(self):
        # Q(Pj) = sum_i s_ij * Ci/Ti
        p = Platform.heterogeneous([[1, 2], [1, 0], [1, 1]])
        q = p.quality(EXAMPLE)
        assert q[0] == Fraction(1, 2) + Fraction(3, 4) + Fraction(2, 3)
        assert q[1] == 2 * Fraction(1, 2) + Fraction(2, 3)

    def test_processor_order_least_capable_first(self):
        p = Platform.heterogeneous([[1, 2], [1, 0], [1, 1]])
        # Q(P0)=23/12, Q(P1)=5/3=20/12 -> P1 first
        assert p.processor_order(EXAMPLE) == [1, 0]

    def test_order_ties_broken_by_id(self):
        assert Platform.identical(3).processor_order(EXAMPLE) == [0, 1, 2]


class TestDunder:
    def test_eq(self):
        assert Platform.identical(2) == Platform.identical(2)
        assert Platform.identical(2) != Platform.identical(3)
        assert Platform.uniform([2, 1]) == Platform.uniform([2, 1])
        assert Platform.heterogeneous([[1]]) == Platform.heterogeneous([[1]])
        assert Platform.identical(1) != Platform.heterogeneous([[1]])

    def test_hash_consistent(self):
        assert hash(Platform.uniform([2, 1])) == hash(Platform.uniform([2, 1]))

    def test_repr_roundtrippable(self):
        for p in (
            Platform.identical(2),
            Platform.uniform([2, 1]),
            Platform.heterogeneous([[1, 2]]),
        ):
            assert eval(repr(p), {"Platform": Platform}) == p
