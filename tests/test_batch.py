"""Tests for the parallel batch layer (cells, cache, executor, CLI)."""

import json
import os
import signal

import pytest

from repro.batch import (
    Cell,
    ResultCache,
    cell_key,
    cells_for_matrix,
    load_journal,
    run_batch,
    solve_cell,
)
from repro.experiments.runner import RunRecord, run_instances
from repro.generator.random_systems import GeneratorConfig, generate_instances

SOLVERS = ["csp2+dc", "csp2"]
TIME_LIMIT = 5.0  # generous: the tiny instances below always decide


@pytest.fixture(scope="module")
def instances():
    """Six tiny instances every solver decides well within the budget."""
    return generate_instances(GeneratorConfig(n=4, m=2, tmax=4), 6, seed=11)


@pytest.fixture(scope="module")
def cells(instances):
    return cells_for_matrix(instances, SOLVERS, TIME_LIMIT)


def strip_elapsed(records):
    """Everything deterministic about a record (elapsed is wall-clock)."""
    return [
        (r.instance_seed, r.n, r.m, r.hyperperiod, r.utilization_ratio,
         r.solver, r.status, r.nodes)
        for r in records
    ]


class TestCells:
    def test_matrix_is_instance_major(self, instances, cells):
        assert len(cells) == len(instances) * len(SOLVERS)
        assert [c.solver for c in cells[:2]] == SOLVERS
        assert cells[0].instance_seed == cells[1].instance_seed

    def test_roundtrip_system(self, instances, cells):
        assert cells[0].system() == instances[0].system

    def test_key_ignores_instance_seed(self, cells):
        c = cells[0]
        relabeled = Cell(**{**c.__dict__, "instance_seed": 999})
        assert cell_key(relabeled) == cell_key(c)

    def test_key_sensitive_to_content(self, cells):
        c = cells[0]
        assert cell_key(Cell(**{**c.__dict__, "m": c.m + 1})) != cell_key(c)
        assert cell_key(Cell(**{**c.__dict__, "solver": "csp1"})) != cell_key(c)
        assert cell_key(Cell(**{**c.__dict__, "time_limit": 9.0})) != cell_key(c)

    def test_solve_cell_matches_serial_runner(self, instances, cells):
        run = run_instances(instances[:2], SOLVERS, TIME_LIMIT)
        records = [solve_cell(c) for c in cells[: 2 * len(SOLVERS)]]
        assert strip_elapsed(records) == strip_elapsed(run.records)

    def test_memory_guard_in_cell(self):
        from repro.model.system import TaskSystem

        s = TaskSystem.from_tuples([(0, 1, 13, 13), (0, 1, 11, 11)])
        cell = Cell(
            tasks=tuple(t.as_tuple() for t in s), m=1, solver="csp1",
            time_limit=0.5, csp1_variable_limit=10,
        )
        rec = solve_cell(cell)
        assert rec.status == "skipped-memory"
        assert rec.elapsed == 0.5 and rec.nodes == 0


class TestCache:
    def test_miss_then_hit_roundtrip(self, tmp_path, cells):
        cache = ResultCache(tmp_path / "cache")
        key = cell_key(cells[0])
        assert cache.get(key) is None and key not in cache
        record = solve_cell(cells[0])
        cache.put(key, record)
        assert key in cache and len(cache) == 1
        assert cache.get(key) == record  # byte-identical round-trip

    def test_corrupt_entry_is_a_miss(self, tmp_path, cells):
        cache = ResultCache(tmp_path / "cache")
        key = cell_key(cells[0])
        cache.put(key, solve_cell(cells[0]))
        cache._path(key).write_text("{not json")
        assert cache.get(key) is None

    def test_run_batch_warm_cache_is_byte_identical(self, tmp_path, cells):
        cache = tmp_path / "cache"
        cold = run_batch(cells, jobs=1, cache=cache)
        assert cold.computed == len(cells) and cold.cache_hits == 0
        warm = run_batch(cells, jobs=1, cache=cache)
        assert warm.computed == 0 and warm.cache_hits == len(cells)
        assert warm.records == cold.records  # elapsed included

    def test_cache_shared_across_campaign_seeds(self, tmp_path, instances):
        """Same system content under a different generator seed still hits,
        and the served record carries the new campaign's seed."""
        from dataclasses import replace
        from repro.generator.random_systems import Instance

        cache = tmp_path / "cache"
        run_batch(cells_for_matrix(instances[:1], SOLVERS, TIME_LIMIT), cache=cache)
        relabeled = replace(instances[0], seed=424242)
        assert isinstance(relabeled, Instance)
        journal = tmp_path / "b.jsonl"
        rep = run_batch(
            cells_for_matrix([relabeled], SOLVERS, TIME_LIMIT),
            cache=cache, journal=journal,
        )
        assert rep.cache_hits == len(SOLVERS)
        assert all(r.instance_seed == 424242 for r in rep.records)
        # the journal is campaign B's output: it must carry B's seeds too
        assert all(
            rec["instance_seed"] == 424242
            for rec in load_journal(journal).values()
        )


class TestExecutor:
    def test_jobs1_matches_jobsN(self, cells):
        serial = run_batch(cells, jobs=1)
        parallel = run_batch(cells, jobs=4)
        assert strip_elapsed(serial.records) == strip_elapsed(parallel.records)

    def test_records_in_canonical_order(self, cells):
        rep = run_batch(cells, jobs=4)
        assert [(r.instance_seed, r.solver) for r in rep.records] == [
            (c.instance_seed, c.solver) for c in cells
        ]

    def test_journal_streams_every_cell(self, tmp_path, cells):
        journal = tmp_path / "results.jsonl"
        rep = run_batch(cells, jobs=1, journal=journal)
        entries = load_journal(journal)
        assert set(entries) == {cell_key(c) for c in cells}
        assert rep.resumed == 0

    def test_resume_after_kill(self, tmp_path, cells):
        """A journal with some complete lines and one torn line resumes
        exactly: journaled cells are served, the rest recomputed."""
        journal = tmp_path / "results.jsonl"
        full = run_batch(cells, jobs=1, journal=journal)
        lines = journal.read_text().splitlines(keepends=True)
        keep = len(cells) // 2
        # simulate a crash mid-write: half the lines, plus a torn one
        journal.write_text("".join(lines[:keep]) + lines[keep][: len(lines[keep]) // 2])
        resumed = run_batch(cells, jobs=1, journal=journal, resume=True)
        assert resumed.resumed == keep
        assert resumed.computed == len(cells) - keep
        assert strip_elapsed(resumed.records) == strip_elapsed(full.records)
        # the journal is whole again afterwards: every cell present and
        # every line valid JSON (the torn tail was truncated, not kept)
        assert set(load_journal(journal)) == {cell_key(c) for c in cells}
        for line in journal.read_text().splitlines():
            json.loads(line)

    def test_resume_tolerates_foreign_record_shape(self, tmp_path, cells):
        """A journal line whose record doesn't match RunRecord's fields is
        recomputed, never a crash (e.g. written by another version)."""
        journal = tmp_path / "results.jsonl"
        run_batch(cells[:2], jobs=1, journal=journal)
        lines = journal.read_text().splitlines()
        bad = json.loads(lines[0])
        bad["record"]["bogus_field"] = 1
        journal.write_text(json.dumps(bad) + "\n" + lines[1] + "\n")
        rep = run_batch(cells[:2], jobs=1, journal=journal, resume=True)
        assert rep.resumed == 1 and rep.computed == 1

    def test_resume_warms_the_cache(self, tmp_path, cells):
        """Cells served from the journal are also written to --cache-dir."""
        journal = tmp_path / "results.jsonl"
        cache = ResultCache(tmp_path / "cache")
        run_batch(cells, jobs=1, journal=journal)
        run_batch(cells, jobs=1, journal=journal, resume=True, cache=cache)
        assert len(cache) == len(cells)

    def test_resume_with_full_journal_computes_nothing(self, tmp_path, cells):
        journal = tmp_path / "results.jsonl"
        full = run_batch(cells, jobs=1, journal=journal)
        again = run_batch(cells, jobs=4, journal=journal, resume=True)
        assert again.resumed == len(cells) and again.computed == 0
        assert again.records == full.records

    def test_duplicate_cells_solved_once(self, cells):
        rep = run_batch([cells[0], cells[0], cells[1]], jobs=1)
        assert rep.computed == 2
        assert rep.records[0] == rep.records[1]

    def test_progress_called_per_cell(self, cells):
        seen = []
        run_batch(cells, jobs=1, progress=lambda d, t: seen.append((d, t)))
        assert seen[-1] == (len(cells), len(cells))
        assert len(seen) == len(cells)

    def test_bad_jobs_rejected(self, cells):
        with pytest.raises(ValueError):
            run_batch(cells, jobs=0)


#: instance seed whose cells the killer/raiser helpers below target;
#: set by each test before launching the campaign
_VICTIM_SEED = None


def _solve_or_sigkill(cell):
    """Worker stand-in: SIGKILL ourselves on the victim's cells."""
    if cell.instance_seed == _VICTIM_SEED:
        os.kill(os.getpid(), signal.SIGKILL)
    return solve_cell(cell)


def _solve_or_raise(cell):
    """Worker stand-in: raise on the victim's cells."""
    if cell.instance_seed == _VICTIM_SEED:
        raise RuntimeError("deliberate worker failure")
    return solve_cell(cell)


class TestFaultTolerance:
    """A campaign always completes; dead cells become fault:* records."""

    def _mark_victim(self, monkeypatch, instances):
        monkeypatch.setattr(
            "tests.test_batch._VICTIM_SEED", instances[0].seed, raising=False
        )
        # monkeypatch can't reach the module-global read by the forked
        # workers through its normal attr path, so set it directly too
        global _VICTIM_SEED
        _VICTIM_SEED = instances[0].seed

    def test_sigkilled_pool_worker_does_not_abort_the_campaign(
        self, tmp_path, monkeypatch, instances, cells
    ):
        """A SIGKILLed worker breaks the pool; the campaign must still
        complete, with the victim journaled as a fault record."""
        self._mark_victim(monkeypatch, instances)
        monkeypatch.setattr(
            "repro.batch.executor.solve_cell", _solve_or_sigkill
        )
        journal = tmp_path / "r.jsonl"
        report = run_batch(cells, jobs=2, journal=journal, retries=1, grace=2.0)
        assert all(r is not None for r in report.records)
        victims = [r for r in report.records if r.instance_seed == instances[0].seed]
        assert victims and all(r.status.startswith("fault:") for r in victims)
        # SIGKILL without a report classifies as the OOM-killer's work
        assert all(r.status == "fault:oom" for r in victims)
        survivors = [r for r in report.records if r.instance_seed != instances[0].seed]
        assert all(not r.status.startswith("fault:") for r in survivors)
        assert set(load_journal(journal)) == {cell_key(c) for c in cells}
        assert report.faults == len(victims)

    def test_inprocess_failure_escalates_to_supervision(
        self, tmp_path, monkeypatch, instances, cells
    ):
        """jobs=1 in-process exceptions classify instead of propagating."""
        self._mark_victim(monkeypatch, instances)
        monkeypatch.setattr("repro.batch.executor.solve_cell", _solve_or_raise)
        report = run_batch(cells[:4], jobs=1, retries=0, grace=2.0)
        faulted = [r for r in report.records if r.status == "fault:error"]
        assert len(faulted) == 2  # both solvers of the victim instance
        assert all("deliberate worker failure" in r.fault["detail"] for r in faulted)
        assert report.retried == 2

    def test_supervised_matches_plain_execution(self, cells):
        plain = run_batch(cells[:6], jobs=1)
        watched = run_batch(cells[:6], jobs=2, supervised=True)
        assert strip_elapsed(plain.records) == strip_elapsed(watched.records)
        assert watched.faults == 0 and watched.retried == 0

    def test_raising_progress_callback_cannot_abort_journaling(
        self, tmp_path, cells
    ):
        def bad_progress(done, total):
            raise ValueError("user callback bug")

        journal = tmp_path / "r.jsonl"
        with pytest.warns(RuntimeWarning, match="progress callback"):
            report = run_batch(cells[:4], jobs=1, journal=journal,
                               progress=bad_progress)
        assert all(r is not None for r in report.records)
        assert set(load_journal(journal)) == {cell_key(c) for c in cells[:4]}

    def test_fault_resume_skip_serves_retry_recomputes(self, tmp_path, cells):
        from repro.batch import ChaosConfig

        chaos = ChaosConfig(seed=0, rate=1.0, kinds=("error",), torn_writes=False)
        journal = tmp_path / "r.jsonl"
        first = run_batch(cells[:2], journal=journal, chaos=chaos, retries=0)
        assert first.faults == 2

        served = run_batch(cells[:2], journal=journal, resume=True)
        assert served.resumed == 2 and served.computed == 0
        assert all(r.status == "fault:error" for r in served.records)

        healed = run_batch(
            cells[:2], journal=journal, resume=True, fault_resume="retry"
        )
        assert healed.resumed == 0 and healed.computed == 2
        assert all(not r.status.startswith("fault:") for r in healed.records)
        # the journal's last word per key is now the healed record
        for rec in load_journal(journal).values():
            assert not rec["status"].startswith("fault:")

    def test_fault_records_never_enter_the_cache(self, tmp_path, cells):
        from repro.batch import ChaosConfig

        chaos = ChaosConfig(seed=0, rate=1.0, kinds=("error",))
        cache = ResultCache(tmp_path / "cache")
        run_batch(cells[:2], cache=cache, chaos=chaos, retries=0)
        assert len(cache) == 0

    def test_bad_knobs_rejected(self, cells):
        with pytest.raises(ValueError):
            run_batch(cells[:1], retries=-1)
        with pytest.raises(ValueError):
            run_batch(cells[:1], fault_resume="maybe")


class TestRunnerShim:
    def test_run_instances_still_serial_compatible(self, instances):
        a = run_instances(instances, SOLVERS, TIME_LIMIT)
        b = run_instances(instances, SOLVERS, TIME_LIMIT, jobs=2)
        assert strip_elapsed(a.records) == strip_elapsed(b.records)

    def test_run_instances_uses_cache(self, tmp_path, instances):
        cache = str(tmp_path / "cache")
        a = run_instances(instances, SOLVERS, TIME_LIMIT, cache_dir=cache)
        b = run_instances(instances, SOLVERS, TIME_LIMIT, cache_dir=cache)
        assert a.records == b.records


class TestBatchCli:
    def run_cli(self, *argv):
        from repro.cli import main

        return main(list(argv))

    def test_cold_then_resume(self, tmp_path, capsys):
        out = tmp_path / "r.jsonl"
        args = [
            "batch", "--count", "4", "-n", "4", "-m", "2", "--tmax", "4",
            "--solvers", "csp2+dc", "--time-limit", "5.0",
            "--jobs", "2", "--cache-dir", str(tmp_path / "cache"),
            "-o", str(out), "--quiet",
        ]
        assert self.run_cli(*args) == 0
        first = capsys.readouterr().out
        assert "4 cells" in first and "computed: 4" in first
        assert self.run_cli(*args, "--resume") == 0
        second = capsys.readouterr().out
        assert "computed: 0" in second and "resumed: 4" in second
        assert len(load_journal(out)) == 4

    def test_instances_file(self, tmp_path, capsys):
        path = tmp_path / "inst.json"
        path.write_text(json.dumps(
            {"tasks": [[0, 1, 2, 2], [1, 3, 4, 4], [0, 2, 2, 3]], "m": 2}
        ))
        rc = self.run_cli(
            "batch", "--instances-file", str(path), "--solvers", "csp2+dc",
            "--time-limit", "5.0", "-o", str(tmp_path / "r.jsonl"), "--quiet",
        )
        assert rc == 0
        assert "feasible: 1" in capsys.readouterr().out

    def test_unknown_solver_rejected(self, tmp_path, capsys):
        rc = self.run_cli(
            "batch", "--count", "1", "--solvers", "nope",
            "-o", str(tmp_path / "r.jsonl"),
        )
        assert rc == 2


def test_journal_loader_ignores_garbage(tmp_path):
    path = tmp_path / "j.jsonl"
    rec = RunRecord(1, 4, 2, 12, 0.5, "csp2+dc", "feasible", 0.1, 3)
    good = json.dumps({"key": "k1", "record": rec.__dict__})
    path.write_text(good + "\n\nnot json\n" + '{"key": "k2"}' + "\n")
    entries = load_journal(path)
    assert set(entries) == {"k1"}
    assert RunRecord(**entries["k1"]) == rec


def test_load_journal_missing_file(tmp_path):
    assert load_journal(tmp_path / "absent.jsonl") == {}
