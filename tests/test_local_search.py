"""Tests for the min-conflicts local-search solver (paper future work)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import Platform, Task, TaskSystem
from repro.schedule import validate
from repro.solvers import Feasibility, create_solver
from repro.solvers.csp2_local import Csp2LocalSearchSolver

from tests.helpers import running_example


class TestConstruction:
    def test_registry_name(self):
        s = running_example()
        solver = create_solver("csp2-local", s, Platform.identical(2))
        assert solver.name == "csp2-local"

    def test_rejects_arbitrary_deadlines(self):
        s = TaskSystem.from_tuples([(0, 1, 5, 3)])
        with pytest.raises(ValueError, match="clone"):
            Csp2LocalSearchSolver(s, Platform.identical(1))

    def test_rejects_non_identical(self):
        with pytest.raises(ValueError, match="identical"):
            Csp2LocalSearchSolver(running_example(), Platform.uniform([2, 1]))

    def test_rejects_bad_noise(self):
        with pytest.raises(ValueError, match="noise"):
            Csp2LocalSearchSolver(running_example(), Platform.identical(2), noise=2.0)


class TestSolving:
    def test_solves_running_example(self):
        solver = Csp2LocalSearchSolver(running_example(), Platform.identical(2), seed=1)
        r = solver.solve(time_limit=20)
        assert r.status is Feasibility.FEASIBLE
        assert validate(r.schedule).ok

    def test_never_claims_infeasible(self):
        # genuinely infeasible instance: local search must say UNKNOWN
        s = TaskSystem.from_tuples([(0, 2, 2, 2), (0, 2, 2, 2), (0, 1, 2, 2)])
        r = Csp2LocalSearchSolver(s, Platform.identical(2), seed=1).solve(
            time_limit=0.3
        )
        assert r.status is Feasibility.UNKNOWN  # the paper's stated trade-off

    def test_cd_violation_short_circuits(self):
        s = TaskSystem.from_tuples([(0, 3, 2, 4)])
        r = Csp2LocalSearchSolver(s, Platform.identical(1)).solve(time_limit=5)
        assert r.status is Feasibility.UNKNOWN
        assert r.stats.nodes == 0

    def test_zero_wcet_trivial(self):
        s = TaskSystem.from_tuples([(0, 0, 2, 2)])
        r = Csp2LocalSearchSolver(s, Platform.identical(1)).solve(time_limit=5)
        assert r.status is Feasibility.FEASIBLE
        assert r.schedule.busy_slots() == 0

    def test_deterministic_for_seed(self):
        a = Csp2LocalSearchSolver(running_example(), Platform.identical(2), seed=5)
        b = Csp2LocalSearchSolver(running_example(), Platform.identical(2), seed=5)
        ra = a.solve(time_limit=20)
        rb = b.solve(time_limit=20)
        assert ra.status == rb.status
        if ra.schedule is not None:
            assert ra.schedule == rb.schedule

    def test_restart_counter_exposed(self):
        s = TaskSystem.from_tuples([(0, 2, 2, 2), (0, 2, 2, 2), (0, 1, 2, 2)])
        solver = Csp2LocalSearchSolver(
            s, Platform.identical(2), seed=1, max_steps_per_restart=5
        )
        r = solver.solve(time_limit=0.2)
        assert "restarts" in r.stats.extra
        assert r.stats.extra["restarts"] >= 1


@settings(deadline=None, max_examples=25)
@given(st.data())
def test_local_search_agrees_with_exact_when_it_answers(data):
    """Whatever the local search finds must be a real schedule; and it
    should find most schedules the exact solver proves feasible."""
    n = data.draw(st.integers(1, 4))
    tasks = []
    for _ in range(n):
        t = data.draw(st.sampled_from([1, 2, 3, 4, 6]))
        d = data.draw(st.integers(1, t))
        c = data.draw(st.integers(0, d))
        o = data.draw(st.integers(0, t - 1))
        tasks.append(Task(o, c, d, t))
    system = TaskSystem(tasks)
    m = data.draw(st.integers(1, 3))
    platform = Platform.identical(m)

    exact = create_solver("csp2+dc", system, platform).solve(time_limit=20)
    local = Csp2LocalSearchSolver(system, platform, seed=3).solve(time_limit=3)
    if local.status is Feasibility.FEASIBLE:
        assert validate(local.schedule).ok
        assert exact.status is Feasibility.FEASIBLE
    # and local search never contradicts a feasible instance by claiming
    # infeasibility (it structurally cannot return INFEASIBLE)
    assert local.status is not Feasibility.INFEASIBLE
