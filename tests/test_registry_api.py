"""The redesigned solving API: spec parsing, registry metadata, option
validation, the Problem/SolveReport front door, and the removal of the
PR 2 deprecation shims."""

import json

import pytest

from repro.model import Platform, TaskSystem
from repro.schedule import validate
from repro.solvers import (
    Feasibility,
    Problem,
    SolveReport,
    SolverSpec,
    available_solvers,
    create_solver,
    is_solver_name,
    iter_solver_info,
    register_solver,
    solve,
    solve_iter,
    solver_info,
)

from tests.helpers import running_example


def tiny_feasible() -> TaskSystem:
    """One task, half utilization: feasible on one processor."""
    return TaskSystem.from_tuples([(0, 1, 2, 2)])


def tiny_infeasible() -> TaskSystem:
    """Two saturating tasks on one processor: demand 4 in 2 slots."""
    return TaskSystem.from_tuples([(0, 2, 2, 2), (0, 2, 2, 2)])


class TestSolverSpec:
    def test_simple_roundtrip(self):
        for name in ("csp2", "csp2+dc", "sat+pairwise", "csp1+dom_deg"):
            spec = SolverSpec.parse(name)
            assert spec.canonical == name
            assert SolverSpec.parse(spec.canonical) == spec
            assert not spec.is_portfolio

    def test_normalization(self):
        assert SolverSpec.parse(" CSP2+DC ").canonical == "csp2+dc"

    def test_parse_idempotent_on_spec(self):
        spec = SolverSpec.parse("csp2+dc")
        assert SolverSpec.parse(spec) is spec

    def test_portfolio(self):
        spec = SolverSpec.parse("portfolio:csp2+dc,sat,csp2-local")
        assert spec.is_portfolio
        assert [m.canonical for m in spec.members] == ["csp2+dc", "sat", "csp2-local"]
        assert spec.canonical == "portfolio:csp2+dc,sat,csp2-local"

    def test_portfolio_errors(self):
        with pytest.raises(ValueError, match="member"):
            SolverSpec.parse("portfolio:")
        with pytest.raises(ValueError, match="members"):
            SolverSpec.parse("portfolio")
        with pytest.raises(ValueError, match="nest"):
            SolverSpec.parse("portfolio:csp2,portfolio:sat")

    def test_empty(self):
        with pytest.raises(ValueError, match="empty"):
            SolverSpec.parse("   ")


class TestRegistryMetadata:
    def test_every_family_has_metadata(self):
        for info in iter_solver_info():
            assert info.description
            assert isinstance(info.options, tuple)
            assert set(info.platforms) <= {"identical", "uniform", "heterogeneous"}

    def test_known_capabilities(self):
        assert solver_info("csp2+dc").proves_infeasibility
        assert solver_info("csp2+dc").is_exact
        assert not solver_info("csp2-local").proves_infeasibility
        assert not solver_info("edf").proves_infeasibility
        assert solver_info("sat").proves_infeasibility

    def test_is_solver_name(self):
        assert is_solver_name("csp2+dc")
        assert is_solver_name("portfolio:csp2+dc,sat")
        assert not is_solver_name("magic")
        assert not is_solver_name("portfolio:csp2+dc,magic")

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown solver"):
            create_solver("magic", running_example(), Platform.identical(2))

    def test_unknown_suffix_rejected_everywhere(self):
        for bad in ("csp2+bogus", "edf+bogus", "csp2-local+x", "sat+bogus",
                    "portfolio:csp2+zzz,sat"):
            assert not is_solver_name(bad), bad
            with pytest.raises(ValueError, match="suffix"):
                create_solver(bad, running_example(), Platform.identical(2))

    def test_hidden_suffixes_still_accepted(self):
        for ok in ("csp2+d-c", "csp1+min_dom", "sat+sequential", "fp+(d-c)"):
            assert is_solver_name(ok), ok
            engine = create_solver(ok, running_example(), Platform.identical(2))
            assert hasattr(engine, "solve")

    def test_register_decorator(self):
        from repro.solvers import registry as reg

        @register_solver(
            "test-dummy", description="a test-only solver", options=("knob",),
        )
        def build(system, platform, spec, seed, **options):
            return create_solver("csp2+dc", system, platform)

        try:
            assert "test-dummy" in available_solvers()
            engine = create_solver("test-dummy", tiny_feasible(), Platform.identical(1))
            assert engine.solve(time_limit=5).is_feasible
        finally:
            reg._REGISTRY.pop("test-dummy", None)
        assert "test-dummy" not in available_solvers()


class TestOptionValidation:
    def test_typo_raises_with_accepted_list(self):
        with pytest.raises(ValueError, match="symmetry_breaking"):
            create_solver(
                "csp2+dc", running_example(), Platform.identical(2),
                symetry_breaking=False,  # the motivating typo
            )

    def test_solver_without_options(self):
        with pytest.raises(ValueError, match="accepted options: none"):
            create_solver(
                "sat", running_example(), Platform.identical(2), foo=1
            )

    def test_through_solve(self):
        with pytest.raises(ValueError, match="unknown option"):
            solve(running_example(), m=2, demand_prunning=True)

    def test_valid_options_still_flow(self):
        r = solve(running_example(), m=2, time_limit=20, symmetry_breaking=False)
        assert r.is_feasible


class TestRegistryRoundTrip:
    """Every advertised name solves tiny instances and honors its
    declared ``proves_infeasibility`` capability."""

    @pytest.mark.parametrize("name", available_solvers())
    def test_feasible_instance(self, name):
        info = solver_info(name)
        engine = create_solver(name, tiny_feasible(), Platform.identical(1))
        result = engine.solve(time_limit=10)
        if info.is_exact:
            assert result.status is Feasibility.FEASIBLE, name
        else:
            assert result.status in (Feasibility.FEASIBLE, Feasibility.UNKNOWN)
        if result.schedule is not None:
            assert validate(result.schedule).ok, name

    @pytest.mark.parametrize("name", available_solvers())
    def test_infeasible_instance(self, name):
        info = solver_info(name)
        budget = 10 if info.is_exact else 0.3
        engine = create_solver(name, tiny_infeasible(), Platform.identical(1))
        result = engine.solve(time_limit=budget)
        if info.proves_infeasibility:
            assert result.status is Feasibility.INFEASIBLE, name
        else:
            assert result.status is not Feasibility.INFEASIBLE, name


class TestDeprecationShimsRemoved:
    """The PR 2 shims warned for three PRs and are now gone (PR 5)."""

    def test_make_solver_gone(self):
        import repro
        import repro.solvers
        import repro.solvers.registry as registry

        for namespace in (repro, repro.solvers, registry):
            assert not hasattr(namespace, "make_solver")
        with pytest.raises(ImportError):
            from repro.solvers.registry import make_solver  # noqa: F401

    def test_mgrts_result_gone(self):
        import repro.solvers
        import repro.solvers.api as api

        for namespace in (repro.solvers, api):
            assert not hasattr(namespace, "MgrtsResult")
        with pytest.raises(ImportError):
            from repro.solvers.api import MgrtsResult  # noqa: F401

    def test_every_preexisting_name_still_resolves(self):
        preexisting = [
            "csp1", "csp2", "csp2+rm", "csp2+dm", "csp2+tc", "csp2+dc",
            "csp1+dom_deg", "csp1+input",
            "csp2-generic", "csp2-generic+rm", "csp2-generic+dm",
            "csp2-generic+tc", "csp2-generic+dc",
            "csp2-local", "sat", "sat+pairwise",
        ]
        for name in preexisting:
            assert name in available_solvers()
            engine = create_solver(name, running_example(), Platform.identical(2))
            assert hasattr(engine, "solve")


class TestProblemFrontDoor:
    def test_of_requires_platform_or_m(self):
        with pytest.raises(ValueError, match="platform"):
            Problem.of(running_example())
        with pytest.raises(ValueError, match="conflicting"):
            Problem.of(running_example(), platform=Platform.identical(2), m=3)

    def test_problem_roundtrip(self):
        p = Problem.of(
            running_example(), m=2, time_limit=3.5, seed=7, label="cell-0"
        )
        assert Problem.from_dict(p.to_dict()) == p

    def test_solve_iter_matrix_order(self):
        problems = [
            Problem.of(tiny_feasible(), m=1, time_limit=10),
            Problem.of(tiny_infeasible(), m=1, time_limit=10),
        ]
        reports = list(solve_iter(problems, ["csp2+dc", "sat"]))
        assert [r.index for r in reports] == [0, 1, 2, 3]
        assert [r.status for r in reports] == [
            Feasibility.FEASIBLE, Feasibility.FEASIBLE,
            Feasibility.INFEASIBLE, Feasibility.INFEASIBLE,
        ]
        assert [r.solver for r in reports] == ["csp2+dc", "sat"] * 2

    def test_solve_iter_parallel_matches_serial(self):
        problems = [
            Problem.of(tiny_feasible(), m=1, time_limit=10),
            Problem.of(tiny_infeasible(), m=1, time_limit=10),
        ]
        serial = {
            r.index: r.status for r in solve_iter(problems, ["csp2+dc", "sat"])
        }
        parallel = {
            r.index: r.status
            for r in solve_iter(problems, ["csp2+dc", "sat"], jobs=2)
        }
        assert serial == parallel

    def test_solve_iter_progress_and_single_forms(self):
        seen = []
        reports = list(
            solve_iter(
                Problem.of(tiny_feasible(), m=1, time_limit=10),
                "csp2+dc",
                progress=lambda done, total: seen.append((done, total)),
            )
        )
        assert len(reports) == 1 and reports[0].is_feasible
        assert seen == [(1, 1)]

    def test_report_jsonl_roundtrip(self):
        report = solve(running_example(), m=2, time_limit=20)
        line = json.dumps(report.to_dict())
        back = SolveReport.from_dict(json.loads(line))
        assert back.to_dict() == report.to_dict()
        assert back.status is report.status
        assert back.schedule == report.schedule
        assert validate(back.schedule).ok

    def test_report_roundtrip_arbitrary_deadlines(self):
        arb = TaskSystem.from_tuples([(0, 2, 5, 2), (0, 1, 3, 3)])
        report = solve(arb, m=2, time_limit=20)
        back = SolveReport.from_dict(report.to_dict())
        assert not back.clone_map.is_identity
        assert back.original_schedule.system == arb

    def test_fault_report_jsonl_roundtrip(self):
        """A fault:* report (crashed cell) survives the JSONL round trip."""
        from repro.solvers.problem import _fault_report

        problem = Problem.of(tiny_feasible(), m=1, time_limit=2.0)
        entry = (3, problem, "csp2", False, {})
        report = _fault_report(entry, "crash", "worker killed by SIGABRT")
        line = json.dumps(report.to_dict())
        back = SolveReport.from_dict(json.loads(line))
        assert back.to_dict() == report.to_dict()
        assert back.status_label == "fault:crash"
        assert back.decided_by == "supervisor:crash"
        assert back.elapsed == 2.0  # charged the full budget, like overruns
        assert back.fault["detail"] == "worker killed by SIGABRT"
        assert back.index == 3

    def test_node_limit_stop_keeps_true_wall_time(self):
        report = solve(
            running_example(), m=2, solver="csp1", time_limit=30.0, node_limit=1
        )
        assert report.timed_out
        assert report.elapsed < 1.0  # node-caused stop, not a 30 s overrun

    def test_wall_overrun_charged_full_budget(self):
        report = solve(running_example(), m=2, solver="csp1", time_limit=0.0)
        assert report.timed_out
        assert report.elapsed == 0.0

    def test_memory_guard_via_problem(self):
        p = Problem.of(running_example(), m=2, time_limit=0.5, variable_limit=1)
        from repro.solvers import solve_problem

        report = solve_problem(p, "csp1", check=False)
        assert report.skipped == "memory"
        assert report.status_label == "skipped-memory"
        assert report.status is Feasibility.UNKNOWN
        assert report.elapsed == 0.5
        # non-memory-bound solvers ignore the guard
        assert solve_problem(p, "csp2+dc").is_feasible

    def test_solve_returns_report_with_winner(self):
        report = solve(running_example(), m=2, time_limit=20)
        assert isinstance(report, SolveReport)
        assert report.solver == "csp2+dc"
        assert report.winner == "csp2+dc"


class TestSolversCli:
    def test_solvers_subcommand(self, capsys):
        from repro.cli import main

        assert main(["solvers"]) == 0
        out = capsys.readouterr().out
        assert "csp2 / csp2+rm" in out
        assert "portfolio:NAME" in out

    def test_solvers_json(self, capsys):
        from repro.cli import main

        assert main(["solvers", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        entries = payload["solvers"]
        names = [n for entry in entries for n in entry["names"]]
        assert names == available_solvers()
        by_base = {entry["names"][0]: entry for entry in entries}
        assert "proves_infeasibility" in by_base["csp2"]["capabilities"]
        assert by_base["csp2-local"]["capabilities"] == []

    def test_solvers_json_reports_kernel_availability(self, capsys):
        from repro.cli import main
        from repro.kernels import have_numpy

        assert main(["solvers", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        kernels = payload["kernels"]
        assert kernels["numpy"] == have_numpy()
        assert kernels["batched_fixpoint"] is True
        for key in ("vectorized_var_orders", "simulator_blocks",
                    "demand_table"):
            assert key in kernels

    def test_solvers_json_carries_service_discovery_fields(self, capsys):
        """The service hello/clients key off base, suffixes, memory_bound."""
        from repro.cli import main

        assert main(["solvers", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        entries = payload["solvers"]
        by_base = {entry["base"]: entry for entry in entries}
        assert set(by_base["csp2"]["suffixes"]) >= {"rm", "dm", "tc", "dc"}
        assert all(
            isinstance(entry["memory_bound"], bool) for entry in entries
        )
        assert by_base["csp1"]["memory_bound"] is True

    def test_batch_solver_list_keeps_portfolio_names(self):
        from repro.cli import _split_solver_list

        assert _split_solver_list("csp1,csp2+dc") == ["csp1", "csp2+dc"]
        assert _split_solver_list("portfolio:csp2+dc,sat") == [
            "portfolio:csp2+dc,sat"
        ]
        assert _split_solver_list("csp1; portfolio:csp2+dc,sat") == [
            "csp1", "portfolio:csp2+dc,sat"
        ]

    def test_unknown_solver_rejected(self, capsys, tmp_path):
        from repro.cli import main

        inst = tmp_path / "i.json"
        inst.write_text(json.dumps({"tasks": [[0, 1, 2, 2]], "m": 1}))
        assert main(["solve", str(inst), "--solver", "magic"]) == 2
        assert "unknown solver" in capsys.readouterr().err


class TestDocsDriftGuard:
    def test_rendered_doc_matches_checked_in_file(self):
        import pathlib

        from repro.solvers.docs import render_solvers_md

        path = pathlib.Path(__file__).resolve().parent.parent / "docs" / "SOLVERS.md"
        assert path.read_text() == render_solvers_md(), (
            "docs/SOLVERS.md drifted from the registry; run "
            "`python scripts/solvers_md.py --write`"
        )
