"""Search engine tests: correctness against brute force, heuristics, limits."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csp import (
    AllDifferentExceptValue,
    CountEq,
    Model,
    NonDecreasing,
    Solver,
    Status,
    Table,
    value_order_ascending,
    value_order_custom,
    value_order_descending,
    var_order_dom_deg,
    var_order_input,
    var_order_min_domain,
    var_order_random,
)
from repro.csp.heuristics import make_value_order_random

from tests.test_csp_propagators import satisfies


def brute_force_solutions(model):
    """All solutions by exhaustive enumeration (ground truth)."""
    vars = model.variables
    domains = [v.initial_values() for v in vars]
    out = []
    for combo in itertools.product(*domains):
        values = dict(zip(vars, combo))
        if all(satisfies(c, values) for c in model.constraints):
            out.append(values)
    return out


class TestBasics:
    def test_trivial_sat(self):
        m = Model()
        x = m.int_var(1, 3, "x")
        out = Solver(m).solve()
        assert out.status is Status.SAT
        assert out.value(x) in (1, 2, 3)
        assert out.is_sat

    def test_root_propagation_solves(self):
        m = Model()
        x = m.int_var(0, 5)
        y = m.constant(4)
        m.add_non_decreasing([y, x])  # x >= 4
        m.add_non_decreasing([x, y])  # x <= 4
        out = Solver(m).solve()
        assert out.status is Status.SAT
        assert out.value(x) == 4
        assert out.stats.nodes == 0  # solved by propagation alone

    def test_unsat(self):
        m = Model()
        a, b = m.int_var(0, 1), m.int_var(0, 1)
        m.add_all_different_except([a, b], None)
        m.add_non_decreasing([b, a])  # b <= a
        m.add_non_decreasing([a, b])  # a <= b -> a == b -> conflict
        out = Solver(m).solve()
        assert out.status is Status.UNSAT
        assert out.solution is None

    def test_value_raises_without_solution(self):
        m = Model()
        x = m.int_var(0, 0)
        y = m.int_var(1, 1)
        m.add_non_decreasing([y, x])
        out = Solver(m).solve()
        with pytest.raises(ValueError):
            out.value(x)

    def test_node_limit(self):
        # pigeonhole: 7 pigeons, 6 holes — UNSAT but needs real search
        m = Model()
        vs = [m.int_var(0, 5) for _ in range(7)]
        m.add_all_different_except(vs, None)
        out = Solver(m).solve(node_limit=3)
        assert out.status is Status.UNKNOWN
        assert out.stats.nodes >= 3

    def test_time_limit_zero(self):
        m = Model()
        vs = [m.int_var(0, 5) for _ in range(6)]
        m.add_all_different_except(vs, None)
        out = Solver(m).solve(time_limit=0.0)
        assert out.status is Status.UNKNOWN


class TestEnumeration:
    def test_solve_all_counts(self):
        # x <= y over {0,1,2}^2 -> 6 solutions
        m = Model()
        x, y = m.int_var(0, 2), m.int_var(0, 2)
        m.add_non_decreasing([x, y])
        out = Solver(m).solve_all()
        assert out.status is Status.SAT
        assert len(out.solutions) == 6
        assert out.stats.solutions == 6

    def test_solutions_unique(self):
        m = Model()
        x, y = m.int_var(0, 2), m.int_var(0, 2)
        m.add_non_decreasing([x, y])
        out = Solver(m).solve_all()
        seen = {tuple(sorted((v.name, val) for v, val in sol.items())) for sol in out.solutions}
        assert len(seen) == len(out.solutions)

    def test_max_solutions_cap(self):
        m = Model()
        x, y = m.int_var(0, 2), m.int_var(0, 2)
        out = Solver(m).solve_all(max_solutions=4)
        assert out.status is Status.SAT
        assert len(out.solutions) == 4

    def test_exhausted_unsat(self):
        m = Model()
        x = m.int_var(0, 1)
        y = m.int_var(0, 1)
        m.add(Table([x, y], []))  # empty table: nothing allowed
        out = Solver(m).solve_all()
        assert out.status is Status.UNSAT


class TestHeuristics:
    def _pigeonhole(self):
        """3 pigeons, 3 holes, all different — 6 solutions."""
        m = Model()
        vs = [m.int_var(0, 2, f"p{i}") for i in range(3)]
        m.add_all_different_except(vs, None)
        return m, vs

    @pytest.mark.parametrize(
        "var_order",
        [var_order_input, var_order_min_domain, var_order_dom_deg],
    )
    @pytest.mark.parametrize(
        "value_order", [value_order_ascending, value_order_descending]
    )
    def test_all_heuristics_find_all_solutions(self, var_order, value_order):
        m, vs = self._pigeonhole()
        out = Solver(m, var_order=var_order, value_order=value_order).solve_all()
        assert len(out.solutions) == 6

    def test_random_orders_reproducible(self):
        m, vs = self._pigeonhole()
        a = Solver(m, var_order=var_order_random, seed=7).solve()
        b = Solver(m, var_order=var_order_random, seed=7).solve()
        assert a.solution == b.solution

    def test_random_var_order_requires_seed(self):
        m, _ = self._pigeonhole()
        with pytest.raises(ValueError):
            Solver(m, var_order=var_order_random).solve()

    def test_random_value_order(self):
        import random

        m, _ = self._pigeonhole()
        vo = make_value_order_random(random.Random(3))
        out = Solver(m, value_order=vo).solve_all()
        assert len(out.solutions) == 6

    def test_custom_value_order_changes_first_solution(self):
        m = Model()
        x = m.int_var(0, 2, "x")
        pref = value_order_custom({x.index: [2, 0, 1]})
        out = Solver(m, value_order=pref).solve()
        assert out.value(x) == 2

    def test_custom_value_order_global_list(self):
        m = Model()
        x = m.int_var(0, 2)
        y = m.int_var(0, 2)
        out = Solver(m, value_order=value_order_custom([1, 2, 0])).solve()
        assert out.value(x) == 1 and out.value(y) == 1

    def test_custom_value_order_duplicates_keep_leftovers(self):
        # a duplicated preferred value must not mask the leftover values
        # (search stays complete: every domain value is still tried)
        m = Model()
        x = m.int_var(0, 2, "x")
        order = value_order_custom([1, 1, 2])
        from repro.csp.state import DomainState

        assert order(DomainState(m), x) == [1, 2, 0]

    def test_input_order_branches_in_creation_order(self):
        m = Model()
        x = m.int_var(0, 1, "x")
        y = m.int_var(0, 1, "y")
        out = Solver(m, var_order=var_order_input).solve()
        assert out.stats.max_depth >= 1
        assert out.value(x) == 0


class TestStats:
    def test_stats_populated(self):
        m = Model()
        vs = [m.int_var(0, 3) for _ in range(4)]
        m.add_all_different_except(vs, None)
        out = Solver(m).solve()
        assert out.stats.nodes > 0
        assert out.stats.propagations > 0
        assert out.stats.elapsed >= 0.0
        assert out.stats.max_depth >= 1


@settings(deadline=None, max_examples=60)
@given(st.data())
def test_solver_matches_brute_force(data):
    """Random small CSPs: the solver finds exactly the brute-force solutions."""
    n_vars = data.draw(st.integers(2, 4))
    m = Model()
    vs = [m.int_var(0, data.draw(st.integers(1, 3)), f"v{i}") for i in range(n_vars)]

    n_constraints = data.draw(st.integers(0, 3))
    for _ in range(n_constraints):
        kind = data.draw(st.sampled_from(["count", "alldiff", "nondec", "table"]))
        sub_idx = data.draw(
            st.lists(st.integers(0, n_vars - 1), min_size=2, max_size=n_vars, unique=True)
        )
        sub = [vs[i] for i in sub_idx]
        if kind == "count":
            m.add_count_eq(sub, data.draw(st.integers(0, 3)), data.draw(st.integers(0, 2)))
        elif kind == "alldiff":
            exc = data.draw(st.one_of(st.none(), st.integers(0, 3)))
            m.add_all_different_except(sub, exc)
        elif kind == "nondec":
            m.add_non_decreasing(sub)
        else:
            n_tuples = data.draw(st.integers(0, 6))
            tuples = [
                tuple(data.draw(st.integers(0, 3)) for _ in sub) for _ in range(n_tuples)
            ]
            m.add_table(sub, tuples)

    expected = brute_force_solutions(m)
    out = Solver(m).solve_all()
    if expected:
        assert out.status is Status.SAT
    else:
        assert out.status is Status.UNSAT
    got = {tuple(sol[v] for v in m.variables) for sol in out.solutions}
    want = {tuple(sol[v] for v in m.variables) for sol in expected}
    assert got == want
