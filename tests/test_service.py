"""Tests for the solver service (protocol, daemon, client, CLI serve)."""

import json
import subprocess
import sys
import threading

import pytest

from repro.batch.supervise import FAULT_CRASH, FaultRecord
from repro.batch.transport import LocalPoolTransport, WorkResult
from repro.generator.random_systems import GeneratorConfig, generate_instances
from repro.model.platform import Platform
from repro.service import (
    ServiceCaps,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceHandle,
)
from repro.service.protocol import (
    PROTOCOL,
    ProtocolError,
    clamp_problem,
    parse_solve_request,
    request_cell,
)
from repro.solvers.problem import Problem, solve_problem

TIME_LIMIT = 5.0


def make_problems(count=4, seed=11, **kwargs):
    """Tiny always-decided problems with explicit budgets."""
    instances = generate_instances(
        GeneratorConfig(n=3, m=2, tmax=3), count, seed=seed
    )
    return [
        Problem.of(
            inst.system, m=inst.m, time_limit=TIME_LIMIT,
            label=f"seed:{inst.seed}", **kwargs,
        )
        for inst in instances
    ]


def unsupervised_config(tmp_path, **overrides):
    """In-process execution: fast, and fine for these tiny instances."""
    defaults = dict(
        jobs=2,
        supervised=False,
        cache_dir=str(tmp_path / "cache"),
        journal=str(tmp_path / "journal.jsonl"),
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


@pytest.fixture()
def service(tmp_path):
    with ServiceHandle(unsupervised_config(tmp_path)) as handle:
        host, port = handle._addr
        with ServiceClient.connect(host, port) as client:
            yield handle, client


# -- protocol unit tests ----------------------------------------------------


class TestClamping:
    def test_missing_wall_budget_gets_the_default(self):
        problem = make_problems(1)[0]
        clamped = clamp_problem(
            Problem.of(problem.system, m=2), ServiceCaps()
        )
        assert clamped.time_limit == ServiceCaps().default_time_limit
        assert clamped.variable_limit == ServiceCaps().max_variable_limit

    def test_over_cap_budgets_are_reduced(self):
        problem = make_problems(1)[0]
        caps = ServiceCaps(max_time_limit=10.0, max_node_limit=100)
        clamped = clamp_problem(
            Problem.of(
                problem.system, m=2, time_limit=999.0, node_limit=10**9,
                variable_limit=10**12,
            ),
            caps,
        )
        assert clamped.time_limit == 10.0
        assert clamped.node_limit == 100
        assert clamped.variable_limit == caps.max_variable_limit

    @pytest.mark.parametrize(
        "kwargs", [
            {"time_limit": 0.0},
            {"time_limit": -1.0},
            {"node_limit": 0},
            {"variable_limit": -5},
        ],
    )
    def test_non_positive_budgets_are_refused(self, kwargs):
        problem = make_problems(1)[0]
        base = {"time_limit": TIME_LIMIT}
        base.update(kwargs)
        with pytest.raises(ProtocolError, match="must be > 0"):
            clamp_problem(
                Problem.of(problem.system, m=2, **base), ServiceCaps()
            )


class TestRequestCell:
    def test_label_is_outside_the_key(self):
        a, = make_problems(1)
        relabeled = Problem.of(a.system, m=2, time_limit=a.time_limit,
                               label="other")
        key_a, _ = request_cell(clamp_problem(a, ServiceCaps()), "csp2+dc")
        key_b, _ = request_cell(
            clamp_problem(relabeled, ServiceCaps()), "csp2+dc"
        )
        assert key_a == key_b

    def test_budgets_are_inside_the_key(self):
        a, = make_problems(1)
        caps = ServiceCaps()
        key_a, _ = request_cell(clamp_problem(a, caps), "csp2+dc")
        tighter = Problem.of(a.system, m=2, time_limit=1.0)
        key_b, _ = request_cell(clamp_problem(tighter, caps), "csp2+dc")
        assert key_a != key_b

    def test_non_identical_platform_is_refused(self):
        a, = make_problems(1)
        uniform = Problem.of(
            a.system, platform=Platform.uniform([2, 1]),
            time_limit=TIME_LIMIT,
        )
        with pytest.raises(ProtocolError, match="identical platforms"):
            request_cell(uniform, "csp2+dc")


class TestParseSolveRequest:
    def envelope(self, problem, **overrides):
        doc = {
            "id": 1, "type": "solve", "problem": problem.to_dict(),
            "solver": "csp2+dc", "options": {},
        }
        doc.update(overrides)
        return doc

    def test_good_request_is_clamped_and_keyed(self):
        problem, = make_problems(1)
        req = parse_solve_request(self.envelope(problem), ServiceCaps())
        assert req.id == 1 and req.solver == "csp2+dc"
        assert req.problem.variable_limit == ServiceCaps().max_variable_limit
        assert req.key

    def test_missing_problem(self):
        with pytest.raises(ProtocolError, match="no 'problem'"):
            parse_solve_request({"type": "solve"}, ServiceCaps())

    def test_unknown_solver(self):
        problem, = make_problems(1)
        with pytest.raises(ProtocolError) as err:
            parse_solve_request(
                self.envelope(problem, solver="quantum"), ServiceCaps()
            )
        assert err.value.code == "unknown-solver"

    def test_unknown_option(self):
        problem, = make_problems(1)
        with pytest.raises(ProtocolError, match="unknown option"):
            parse_solve_request(
                self.envelope(problem, options={"warp": 9}), ServiceCaps()
            )

    def test_garbage_problem_payload(self):
        with pytest.raises(ProtocolError, match="bad problem payload"):
            parse_solve_request(
                {"type": "solve", "problem": {"system": "??"},
                 "solver": "csp2+dc"},
                ServiceCaps(),
            )


# -- the daemon end to end --------------------------------------------------


class TestRoundTrip:
    def test_hello_advertises_the_registry(self, service):
        _handle, client = service
        assert client.hello["protocol"] == PROTOCOL
        assert "csp2+dc" in client.solvers
        assert client.max_pending == 64
        assert client.hello["caps"]["max_time_limit"] == 30.0

    def test_reports_match_local_solves(self, service):
        _handle, client = service
        problems = make_problems(3)
        remote = client.solve_many(problems)
        for problem, report in zip(problems, remote):
            local = solve_problem(problem, "csp2+dc")
            assert report.status_label == local.status_label
            assert report.stats.nodes == local.stats.nodes
            assert report.decided_by == local.decided_by
            assert report.problem.label == problem.label

    def test_interleaved_recv_out_of_submission_order(self, service):
        _handle, client = service
        first, second = make_problems(2)
        id1 = client.submit(first)
        id2 = client.submit(second)
        # ask for the later id first: the mailbox parks id1's line
        entry2 = client.recv(id2)
        entry1 = client.recv(id1)
        assert entry1["id"] == id1 and entry2["id"] == id2
        assert entry1["type"] == entry2["type"] == "report"

    def test_clamping_is_visible_in_the_response(self, service):
        _handle, client = service
        problem, = make_problems(1)
        greedy = Problem.of(problem.system, m=2, time_limit=999.0)
        report = client.solve(greedy)
        assert report.problem.time_limit == 30.0  # the default cap


class TestMemoCache:
    def test_second_ask_is_served_from_cache(self, service):
        _handle, client = service
        problem, = make_problems(1)
        entry1 = client.recv(client.submit(problem))
        entry2 = client.recv(client.submit(problem))
        assert entry1["cached"] is False and entry2["cached"] is True
        assert entry1["key"] == entry2["key"]
        assert entry1["report"]["stats"] == entry2["report"]["stats"]

    def test_cached_report_carries_the_requesters_label(self, service):
        _handle, client = service
        problem, = make_problems(1)
        client.solve(problem)
        relabeled = Problem.of(
            problem.system, m=2, time_limit=problem.time_limit,
            label="second-client",
        )
        entry = client.recv(client.submit(relabeled))
        assert entry["cached"] is True
        assert entry["report"]["problem"]["label"] == "second-client"

    def test_stats_count_the_cache_split(self, service):
        _handle, client = service
        problems = make_problems(2)
        client.solve_many(problems)
        client.solve_many(problems)
        stats = client.stats()
        assert stats["served"] == 4
        assert stats["computed"] == 2 and stats["cached"] == 2
        assert stats["faulted"] == 0 and stats["busy"] == 0
        assert stats["cache_entries"] == 2


class TestStructuredErrors:
    def test_malformed_json_line_keeps_the_connection(self, service):
        _handle, client = service
        client._wfile.write("this is not json\n")
        client._wfile.flush()
        entry = json.loads(client._rfile.readline())
        assert entry["type"] == "error" and entry["code"] == "bad-request"
        # the connection survived: a real solve still works
        assert client.solve(make_problems(1)[0]) is not None

    def test_unknown_request_type(self, service):
        _handle, client = service
        client._write({"id": 7, "type": "dance"})
        entry = client.recv(7)
        assert entry["code"] == "bad-request"
        assert "unknown request type" in entry["detail"]

    def test_unknown_solver_refused(self, service):
        _handle, client = service
        with pytest.raises(ServiceError) as err:
            client.solve(make_problems(1)[0], solver="quantum")
        assert err.value.code == "unknown-solver"

    def test_bad_option_refused(self, service):
        _handle, client = service
        with pytest.raises(ServiceError) as err:
            client.solve(make_problems(1)[0], options={"warp": 9})
        assert err.value.code == "bad-request"

    def test_negative_budget_refused(self, service):
        _handle, client = service
        problem, = make_problems(1)
        broke = Problem.of(problem.system, m=2, time_limit=-1.0)
        with pytest.raises(ServiceError, match="must be > 0"):
            client.solve(broke)

    def test_heterogeneous_platform_refused(self, service):
        _handle, client = service
        problem, = make_problems(1)
        uniform = Problem.of(
            problem.system, platform=Platform.uniform([2, 1]),
            time_limit=TIME_LIMIT,
        )
        with pytest.raises(ServiceError, match="identical platforms"):
            client.solve(uniform)


class _GatedTransport:
    """Blocks every execution until the test releases the gate."""

    def __init__(self):
        self.gate = threading.Event()
        self.inner = LocalPoolTransport(jobs=1)

    def execute(self, items):
        self.gate.wait(timeout=30.0)
        yield from self.inner.execute(items)


class TestBackPressure:
    def test_overflow_is_a_busy_error_not_a_drop(self, tmp_path):
        transport = _GatedTransport()
        config = unsupervised_config(tmp_path, jobs=1, max_pending=1)
        with ServiceHandle(config, transport=transport) as handle:
            host, port = handle._addr
            with ServiceClient.connect(host, port) as client:
                first, second = make_problems(2)
                id1 = client.submit(first)
                id2 = client.submit(second)
                # the second ask overflows the admission window
                entry2 = client.recv(id2)
                assert entry2["type"] == "error"
                assert entry2["code"] == "busy"
                assert "resubmit" in entry2["detail"]
                # release the gate: the admitted solve still answers
                transport.gate.set()
                entry1 = client.recv(id1)
                assert entry1["type"] == "report"
                stats = client.stats()
                assert stats["busy"] == 1 and stats["served"] == 1


class _FaultingTransport:
    """Every item dies the same classified death."""

    def execute(self, items):
        for item in items:
            yield WorkResult(
                key=item.key,
                fault=FaultRecord(
                    kind=FAULT_CRASH, detail="SIGSEGV", attempts=2
                ),
                attempts=2,
            )


class TestFaultPath:
    def test_transport_fault_becomes_a_fault_report(self, tmp_path):
        config = unsupervised_config(tmp_path)
        with ServiceHandle(config, transport=_FaultingTransport()) as handle:
            host, port = handle._addr
            with ServiceClient.connect(host, port) as client:
                problem, = make_problems(1)
                report = client.solve(problem)
                assert report.status_label == "fault:crash"
                assert report.fault["attempts"] == 2
                # the full wall budget is charged, like a campaign fault
                assert report.elapsed == problem.time_limit
                stats = client.stats()
                assert stats["faulted"] == 1
                # faults never enter the memo: the retry recomputes
                entry = client.recv(client.submit(problem))
                assert entry["cached"] is False
                assert stats["cache_entries"] == 0


class TestJournal:
    def test_every_response_is_journaled_first(self, service, tmp_path):
        handle, client = service
        problems = make_problems(2)
        client.solve_many(problems)
        client.solve_many(problems[:1])  # a cached serve journals too
        handle.stop()
        lines = [
            json.loads(line)
            for line in (tmp_path / "journal.jsonl").read_text().splitlines()
        ]
        assert len(lines) == 3
        assert all(
            set(entry) == {"key", "report"} and entry["key"]
            for entry in lines
        )
        # the journal speaks the merge tool's dialect: last-line-wins
        from repro.batch import merge_journals

        out = tmp_path / "merged.jsonl"
        report = merge_journals([tmp_path / "journal.jsonl"], out)
        assert report.records == 2 and report.duplicates == 1


class TestShutdown:
    def test_shutdown_stops_the_daemon(self, tmp_path):
        handle = ServiceHandle(unsupervised_config(tmp_path))
        host, port = handle.start()
        with ServiceClient.connect(host, port) as client:
            client.solve(make_problems(1)[0])
            client.shutdown()
        handle._thread.join(timeout=30.0)
        assert not handle._thread.is_alive()

    def test_remote_shutdown_can_be_disabled(self, tmp_path):
        config = unsupervised_config(tmp_path, allow_shutdown=False)
        with ServiceHandle(config) as handle:
            host, port = handle._addr
            with ServiceClient.connect(host, port) as client:
                with pytest.raises(ServiceError, match="disabled"):
                    client.shutdown()
                # still serving
                assert client.stats()["errors"] == 1


class TestStdio:
    def test_one_session_over_pipes(self, tmp_path):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--stdio",
             "--jobs", "1", "--unsupervised",
             "--journal", str(tmp_path / "j.jsonl")],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            cwd="/root/repo",
        )
        try:
            hello = json.loads(proc.stdout.readline())
            assert hello["type"] == "hello" and hello["protocol"] == PROTOCOL
            problem, = make_problems(1)
            request = {
                "id": 1, "type": "solve", "problem": problem.to_dict(),
                "solver": "csp2+dc", "options": {},
            }
            proc.stdin.write(json.dumps(request) + "\n")
            proc.stdin.flush()
            entry = json.loads(proc.stdout.readline())
            assert entry["id"] == 1 and entry["type"] == "report"
            local = solve_problem(problem, "csp2+dc")
            assert entry["report"]["status"] == local.status_label
            proc.stdin.close()  # EOF ends the session
            assert proc.wait(timeout=60.0) == 0
        finally:
            proc.kill()
        assert (tmp_path / "j.jsonl").exists()


class TestConfigValidation:
    def test_bad_knobs_are_rejected(self):
        from repro.service import SolverService

        with pytest.raises(ValueError, match="jobs"):
            SolverService(ServiceConfig(jobs=0))
        with pytest.raises(ValueError, match="max_pending"):
            SolverService(ServiceConfig(max_pending=0))
