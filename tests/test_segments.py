"""Tests for execution-segment trace extraction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import Platform, Task, TaskSystem
from repro.schedule import Schedule, compute_metrics
from repro.schedule.segments import JobTrace, Segment, extract_traces
from repro.solvers import create_solver

from tests.helpers import RUNNING_EXAMPLE_TABLE, running_example


@pytest.fixture
def traces():
    sched = Schedule(running_example(), Platform.identical(2), RUNNING_EXAMPLE_TABLE)
    return extract_traces(sched)


class TestRunningExampleTraces:
    def test_one_trace_per_job(self, traces):
        assert len(traces) == 13  # 6 + 3 + 4 jobs

    def test_units_equal_wcet_on_feasible(self, traces):
        system = running_example()
        for tr in traces:
            assert tr.units == system[tr.task].wcet

    def test_tau3_segments_are_whole_windows(self, traces):
        # tau3 (C=D=2) always runs both slots back to back on P1
        for tr in traces:
            if tr.task == 2:
                assert len(tr.segments) == 1
                assert tr.segments[0].length == 2
                assert tr.segments[0].processor == 0
                assert tr.preemptions == 0 and tr.migrations == 0

    def test_tau2_window1_trace(self, traces):
        # tau2 job 0: units at slots 1,3,4 on P2 -> segments [1],[3,4]
        tr = next(t for t in traces if t.task == 1 and t.job == 0)
        assert [(s.start_slot, s.length) for s in tr.segments] == [(1, 1), (3, 2)]
        assert tr.preemptions == 1
        assert tr.migrations == 0
        assert tr.completion_pos == 4  # finished at window position 4 of 4

    def test_release_slots(self, traces):
        tau2_releases = [t.release_slot for t in traces if t.task == 1]
        assert tau2_releases == [1, 5, 9]


class TestEdgeCases:
    def test_empty_schedule_traces(self):
        s = TaskSystem.from_tuples([(0, 1, 2, 2)])
        sched = Schedule.empty(s, Platform.identical(1))
        (tr,) = extract_traces(sched)
        assert tr.segments == ()
        assert tr.units == 0
        assert tr.completion_pos is None

    def test_wrapped_window_single_segment(self):
        # task (1,2,4,4): T=4, window [1,2,3,0-wrapped]; run at 3 and 0:
        # consecutive in window order -> ONE segment despite the wrap
        s = TaskSystem.from_tuples([(1, 2, 4, 4)])
        sched = Schedule.from_assignment(s, Platform.identical(1), {(0, 3): 0, (0, 0): 0})
        (tr,) = extract_traces(sched)
        assert len(tr.segments) == 1
        assert tr.segments[0].window_pos == 2
        assert tr.segments[0].start_slot == 3
        assert tr.segments[0].length == 2

    def test_migration_splits_segment(self):
        s = TaskSystem.from_tuples([(0, 2, 4, 4)])
        sched = Schedule.from_assignment(
            s, Platform.identical(2), {(0, 0): 0, (1, 1): 0}
        )
        (tr,) = extract_traces(sched)
        assert len(tr.segments) == 2
        assert tr.migrations == 1
        assert tr.preemptions == 0  # seamless handover, no gap

    def test_gap_with_same_processor_is_preemption(self):
        s = TaskSystem.from_tuples([(0, 2, 4, 4)])
        sched = Schedule.from_assignment(
            s, Platform.identical(1), {(0, 0): 0, (0, 2): 0}
        )
        (tr,) = extract_traces(sched)
        assert tr.preemptions == 1
        assert tr.migrations == 0


@settings(deadline=None, max_examples=25)
@given(st.data())
def test_traces_agree_with_metrics(data):
    """Segment-level migration/preemption totals match compute_metrics."""
    n = data.draw(st.integers(1, 3))
    tasks = []
    for _ in range(n):
        t = data.draw(st.sampled_from([2, 3, 4]))
        d = data.draw(st.integers(1, t))
        c = data.draw(st.integers(1, d))
        o = data.draw(st.integers(0, t - 1))
        tasks.append(Task(o, c, d, t))
    system = TaskSystem(tasks)
    m = data.draw(st.integers(1, 2))
    r = create_solver("csp2+dc", system, Platform.identical(m)).solve(time_limit=20)
    if not r.is_feasible:
        return
    traces = extract_traces(r.schedule)
    metrics = compute_metrics(r.schedule)
    assert sum(t.migrations for t in traces) == metrics.migrations
    assert sum(t.preemptions for t in traces) == metrics.preemptions
    assert sum(t.units for t in traces) == r.schedule.busy_slots()
