"""Round-trip tests for the JSON serialization layer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import Platform, Task, TaskSystem
from repro.schedule import Schedule
from repro.schedule.io import (
    dump_json,
    load_instance,
    platform_from_dict,
    platform_to_dict,
    schedule_from_dict,
    schedule_to_dict,
    system_from_dict,
    system_to_dict,
)

from tests.helpers import RUNNING_EXAMPLE_TABLE, running_example


class TestSystemRoundTrip:
    def test_basic(self):
        s = running_example()
        assert system_from_dict(system_to_dict(s)) == s

    def test_names_preserved(self):
        s = TaskSystem.from_tuples([(0, 1, 2, 2)], names=["sensor"])
        d = system_to_dict(s)
        assert d["names"] == ["sensor"]
        assert system_from_dict(d)[0].name == "sensor"

    def test_default_names_omitted(self):
        d = system_to_dict(running_example())
        assert "names" not in d

    def test_missing_tasks_rejected(self):
        with pytest.raises(ValueError, match="tasks"):
            system_from_dict({})


class TestPlatformRoundTrip:
    @pytest.mark.parametrize(
        "platform",
        [
            Platform.identical(3),
            Platform.uniform([2, 1]),
            Platform.heterogeneous([[1, 0], [2, 1]]),
        ],
    )
    def test_roundtrip(self, platform):
        assert platform_from_dict(platform_to_dict(platform)) == platform

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            platform_from_dict({"kind": "quantum"})


class TestScheduleRoundTrip:
    def test_roundtrip(self):
        sched = Schedule(running_example(), Platform.identical(2), RUNNING_EXAMPLE_TABLE)
        back = schedule_from_dict(schedule_to_dict(sched))
        assert back == sched

    def test_legacy_flat_format(self):
        data = {
            "tasks": [[0, 1, 2, 2], [1, 3, 4, 4], [0, 2, 2, 3]],
            "m": 2,
            "table": RUNNING_EXAMPLE_TABLE,
        }
        sched = schedule_from_dict(data)
        assert sched.m == 2 and sched.horizon == 12

    def test_heterogeneous_schedule(self):
        s = TaskSystem.from_tuples([(0, 4, 2, 4)])
        p = Platform.heterogeneous([[2]])
        sched = Schedule.from_assignment(s, p, {(0, 0): 0, (0, 1): 0})
        assert schedule_from_dict(schedule_to_dict(sched)) == sched


class TestLoadInstance:
    def test_with_m(self):
        system, platform = load_instance({"tasks": [[0, 1, 2, 2]], "m": 2})
        assert platform == Platform.identical(2)

    def test_with_platform(self):
        system, platform = load_instance(
            {"tasks": [[0, 1, 2, 2]], "platform": {"kind": "uniform", "speeds": [3, 1]}}
        )
        assert platform == Platform.uniform([3, 1])

    def test_missing_both(self):
        with pytest.raises(ValueError, match="'m' or 'platform'"):
            load_instance({"tasks": [[0, 1, 2, 2]]})


def test_dump_json_trailing_newline():
    assert dump_json({"a": 1}).endswith("\n")


@settings(max_examples=40)
@given(
    st.lists(
        st.tuples(
            st.integers(0, 9), st.integers(1, 9), st.integers(1, 9), st.integers(1, 9)
        ),
        min_size=1,
        max_size=5,
    )
)
def test_system_roundtrip_property(params):
    s = TaskSystem([Task(o, min(c, d), d, t) for o, c, d, t in params])
    assert system_from_dict(system_to_dict(s)) == s
