"""Actual-usage analysis of a WCET schedule under stochastic demand.

The cyclic schedule reserves exactly ``C_i`` slots per job; a job whose
actual execution time is ``a <= C_i`` uses its first ``a`` reserved slots
(in window order) and leaves the remaining ``C_i - a`` reserved slots idle
— the paper's anomaly-avoidance convention, which keeps every deadline met
with probability 1 regardless of the distributions.

Because slot usage is linear in the per-job actual times, the expected
busy fraction has a closed form; the Monte-Carlo simulator provides full
empirical distributions (per-hyperperiod busy slots, per-job unused
reservation) and is property-tested to converge to the closed form.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass
from fractions import Fraction

from repro.model import intervals
from repro.schedule.schedule import Schedule
from repro.stochastic.distributions import ExecTimeDistribution

__all__ = ["UsageStats", "expected_utilization", "simulate_actual_usage"]


def _check_distributions(
    schedule: Schedule, distributions: Sequence[ExecTimeDistribution]
) -> None:
    system = schedule.system
    if len(distributions) != system.n:
        raise ValueError(
            f"need one distribution per task: got {len(distributions)}, "
            f"system has {system.n}"
        )
    for i, dist in enumerate(distributions):
        if dist.wcet > system[i].wcet:
            raise ValueError(
                f"distribution of task {i} has support up to {dist.wcet} "
                f"> WCET {system[i].wcet}: the WCET schedule only reserves "
                f"{system[i].wcet} slots"
            )


def expected_utilization(
    schedule: Schedule, distributions: Sequence[ExecTimeDistribution]
) -> Fraction:
    """Exact expected fraction of processor slots actually busy.

    By linearity of expectation: ``sum_i (T/T_i) * E[a_i] / (m * T)``
    (independent of *where* the schedule placed the reservations).
    """
    _check_distributions(schedule, distributions)
    system = schedule.system
    T = schedule.horizon
    expected_busy = sum(
        (Fraction(T, system[i].period) * distributions[i].mean for i in range(system.n)),
        Fraction(0),
    )
    return expected_busy / (schedule.m * T)


@dataclass(frozen=True)
class UsageStats:
    """Monte-Carlo usage statistics over sampled hyperperiods."""

    samples: int
    mean_busy_fraction: float
    min_busy_fraction: float
    max_busy_fraction: float
    #: average unused reserved slots per job, by task
    mean_unused_per_job: tuple[float, ...]
    #: probability that a full hyperperiod used every reserved slot
    p_full_usage: float


def simulate_actual_usage(
    schedule: Schedule,
    distributions: Sequence[ExecTimeDistribution],
    samples: int = 1000,
    seed: int = 0,
) -> UsageStats:
    """Sample actual execution times and measure reserved-slot usage.

    Deadlines cannot be missed (actual <= WCET and the schedule reserves
    WCET), so the interesting outputs are capacity-usage statistics.
    """
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    _check_distributions(schedule, distributions)
    system = schedule.system
    T = schedule.horizon
    m = schedule.m
    rng = random.Random(seed)

    # reserved slot count per (task, job) from the schedule table
    n_jobs = [T // system[i].period for i in range(system.n)]
    reserved = [[0] * n_jobs[i] for i in range(system.n)]
    for i in range(system.n):
        task = system[i]
        for j, t in schedule.task_assignments(i):
            job = intervals.active_job(task, T, t)
            if job is not None:
                reserved[i][job] += 1

    total_slots = m * T
    busy_fracs: list[float] = []
    unused_sums = [0.0] * system.n
    full_count = 0
    total_jobs_per_task = [max(1, n_jobs[i]) for i in range(system.n)]
    for _ in range(samples):
        busy = 0
        unused_this = [0] * system.n
        for i in range(system.n):
            dist = distributions[i]
            for job in range(n_jobs[i]):
                actual = dist.sample(rng)
                # a job uses min(actual, reserved) of its reserved slots
                used = min(actual, reserved[i][job])
                busy += used
                unused_this[i] += reserved[i][job] - used
        busy_fracs.append(busy / total_slots)
        if all(u == 0 for u in unused_this):
            full_count += 1
        for i in range(system.n):
            unused_sums[i] += unused_this[i]

    mean_unused = tuple(
        unused_sums[i] / (samples * total_jobs_per_task[i]) for i in range(system.n)
    )
    return UsageStats(
        samples=samples,
        mean_busy_fraction=sum(busy_fracs) / samples,
        min_busy_fraction=min(busy_fracs),
        max_busy_fraction=max(busy_fracs),
        mean_unused_per_job=mean_unused,
        p_full_usage=full_count / samples,
    )
