"""Probabilistic execution times (the paper's long-term future work).

Section VIII closes with: "one of our objectives is to move from the
usual deterministic setting — where worst-case execution times are
considered — to probabilistic settings — e.g. where a probability
distribution over execution times is known for each task".

This package takes the first step the paper's own semantics permits: the
cyclic schedule is still built for WCETs (and Theorem 1's remark applies —
*processors idle through unused budget to avoid scheduling anomalies*, so
deadlines are met with probability 1).  What becomes probabilistic is the
*resource usage*: how much of the reserved capacity is actually consumed.
The tools here quantify that:

* :class:`ExecTimeDistribution` — discrete distributions over
  ``0..C_i`` with exact moments;
* :func:`expected_utilization` — closed-form expected busy fraction of a
  WCET schedule under given distributions;
* :func:`simulate_actual_usage` — Monte-Carlo execution of the cyclic
  schedule, yielding empirical usage/slack statistics (converges to the
  closed form — property-tested).
"""

from repro.stochastic.distributions import ExecTimeDistribution
from repro.stochastic.usage import (
    UsageStats,
    expected_utilization,
    simulate_actual_usage,
)

__all__ = [
    "ExecTimeDistribution",
    "UsageStats",
    "expected_utilization",
    "simulate_actual_usage",
]
