"""Discrete execution-time distributions bounded by the WCET."""

from __future__ import annotations

import random
from collections.abc import Mapping
from fractions import Fraction

__all__ = ["ExecTimeDistribution"]


class ExecTimeDistribution:
    """A probability mass function over integer execution times ``0..C``.

    Probabilities are exact :class:`fractions.Fraction` values summing to
    one, so expectations are exact too; sampling uses cumulative inversion.
    """

    __slots__ = ("_pmf", "_wcet", "_cdf")

    def __init__(self, pmf: Mapping[int, Fraction | int | str]) -> None:
        items: list[tuple[int, Fraction]] = []
        for value, p in sorted(pmf.items()):
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                raise ValueError(f"execution times must be ints >= 0, got {value!r}")
            frac = Fraction(p)
            if frac < 0:
                raise ValueError(f"probabilities must be >= 0, got {frac}")
            if frac > 0:
                items.append((value, frac))
        if not items:
            raise ValueError("distribution needs at least one positive-mass value")
        total = sum(f for _, f in items)
        if total != 1:
            raise ValueError(f"probabilities must sum to 1, got {total}")
        self._pmf = tuple(items)
        self._wcet = items[-1][0]
        cdf = []
        acc = Fraction(0)
        for v, f in items:
            acc += f
            cdf.append((v, acc))
        self._cdf = tuple(cdf)

    # -- constructors ---------------------------------------------------------
    @classmethod
    def deterministic(cls, c: int) -> "ExecTimeDistribution":
        """Always exactly ``c`` (the classical WCET model)."""
        return cls({c: Fraction(1)})

    @classmethod
    def uniform(cls, lo: int, hi: int) -> "ExecTimeDistribution":
        """Uniform over ``lo..hi`` inclusive."""
        if hi < lo:
            raise ValueError(f"empty range {lo}..{hi}")
        n = hi - lo + 1
        return cls({v: Fraction(1, n) for v in range(lo, hi + 1)})

    # -- queries ---------------------------------------------------------------
    @property
    def wcet(self) -> int:
        """The largest value with positive mass (must not exceed the task's C)."""
        return self._wcet

    @property
    def support(self) -> tuple[int, ...]:
        return tuple(v for v, _ in self._pmf)

    def probability(self, value: int) -> Fraction:
        for v, f in self._pmf:
            if v == value:
                return f
        return Fraction(0)

    @property
    def mean(self) -> Fraction:
        """Exact expectation."""
        return sum((Fraction(v) * f for v, f in self._pmf), Fraction(0))

    @property
    def variance(self) -> Fraction:
        mu = self.mean
        return sum(
            ((Fraction(v) - mu) ** 2 * f for v, f in self._pmf), Fraction(0)
        )

    def sample(self, rng: random.Random) -> int:
        """One draw via cumulative inversion."""
        u = Fraction(rng.random()).limit_denominator(10**12)
        for v, acc in self._cdf:
            if u <= acc:
                return v
        return self._wcet

    def __repr__(self) -> str:
        inner = ", ".join(f"{v}: {str(f)}" for v, f in self._pmf)
        return f"ExecTimeDistribution({{{inner}}})"
