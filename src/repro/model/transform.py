"""Arbitrary-deadline systems via task cloning (paper Section VI-B).

With ``D_i > T_i`` up to ``k_i = ceil(D_i / T_i)`` jobs of the same task may
be simultaneously active, and the CSP encodings (which identify "the task"
with a single value/variable row) cannot express two instances running at
once on different processors.  The paper's fix: replace ``tau_i`` by ``k_i``
*clones* ``tau_{i,i'}``::

    O_{i,i'} = O_i + (i'-1) * T_i        (windows start one period apart)
    C_{i,i'} = C_i
    D_{i,i'} = D_i
    T_{i,i'} = k_i * T_i                 (smallest multiple of T_i >= D_i)

Every clone is then constrained (``D <= k_i T_i``), and solving the cloned
system with the unchanged encodings solves the original one: clone ``i'``
serves exactly the jobs ``i', i'+k_i, i'+2k_i, ...`` of the original task.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.system import TaskSystem
from repro.model.task import Task
from repro.util.math import ceil_div

__all__ = ["CloneMap", "clone_for_arbitrary_deadlines"]


@dataclass(frozen=True)
class CloneMap:
    """Bookkeeping from a cloned system back to its original.

    Attributes
    ----------
    original:
        The pre-transformation system.
    origin_of:
        ``origin_of[c]`` is the original task index of clone ``c``.
    clone_index_of:
        ``clone_index_of[c]`` is the clone's 1-based ``i'`` within its
        original task (paper notation ``tau_{i,i'}``).
    clones_of:
        ``clones_of[i]`` lists the clone indices of original task ``i``,
        in ``i'`` order.
    """

    original: TaskSystem
    origin_of: tuple[int, ...]
    clone_index_of: tuple[int, ...]
    clones_of: tuple[tuple[int, ...], ...]

    @property
    def is_identity(self) -> bool:
        """True when no task needed cloning (already constrained)."""
        return len(self.origin_of) == len(self.original) and all(
            len(c) == 1 for c in self.clones_of
        )


def clone_for_arbitrary_deadlines(system: TaskSystem) -> tuple[TaskSystem, CloneMap]:
    """Rewrite ``system`` so that every task is constrained (``D <= T``).

    Constrained tasks are passed through untouched (``k_i = 1`` yields the
    original 4-tuple).  Returns the rewritten system and a :class:`CloneMap`.
    """
    clones: list[Task] = []
    origin_of: list[int] = []
    clone_index_of: list[int] = []
    clones_of: list[tuple[int, ...]] = []
    for i, task in enumerate(system):
        k = ceil_div(task.deadline, task.period)
        indices = []
        for iprime in range(1, k + 1):
            name = task.name if k == 1 else f"{task.name}.{iprime}"
            clones.append(
                Task(
                    offset=task.offset + (iprime - 1) * task.period,
                    wcet=task.wcet,
                    deadline=task.deadline,
                    period=k * task.period,
                    name=name,
                )
            )
            indices.append(len(clones) - 1)
            origin_of.append(i)
            clone_index_of.append(iprime)
        clones_of.append(tuple(indices))
    cloned = TaskSystem(clones)
    return cloned, CloneMap(
        original=system,
        origin_of=tuple(origin_of),
        clone_index_of=tuple(clone_index_of),
        clones_of=tuple(clones_of),
    )
