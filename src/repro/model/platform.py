"""Processor platforms: identical, uniform, heterogeneous (paper Section I/VI).

A platform is fully described by its execution-rate function: a job of task
``i`` running on processor ``P_j`` for ``t`` slots completes ``s_{i,j} * t``
units of execution.

* *identical*:      ``s_{i,j} = 1``               (paper Sections IV-V)
* *uniform*:        ``s_{i,j} = s_j``             (per-processor speed)
* *heterogeneous*:  arbitrary ``s_{i,j} >= 0``    (``0`` = cannot run;
  paper Section VI-A)

Rates are integers so that the exactly-``C_i`` constraints (11)/(12) stay in
integer arithmetic (scale rational rates up front if needed).
"""

from __future__ import annotations

from collections.abc import Sequence
from fractions import Fraction

import numpy as np

__all__ = ["Platform"]


class Platform:
    """An ``m``-processor platform with integer execution rates.

    Use the factory classmethods :meth:`identical`, :meth:`uniform` and
    :meth:`heterogeneous`.  For identical/uniform platforms the rate matrix
    is lazily broadcast to any number of tasks; heterogeneous platforms fix
    the number of tasks at construction.
    """

    __slots__ = ("_kind", "_m", "_speeds", "_matrix")

    def __init__(
        self,
        kind: str,
        m: int,
        speeds: tuple[int, ...] | None = None,
        matrix: np.ndarray | None = None,
    ) -> None:
        if kind not in ("identical", "uniform", "heterogeneous"):
            raise ValueError(f"unknown platform kind {kind!r}")
        if m < 1:
            raise ValueError(f"need at least one processor, got m={m}")
        self._kind = kind
        self._m = m
        self._speeds = speeds
        self._matrix = matrix

    # -- factories -----------------------------------------------------------
    @classmethod
    def identical(cls, m: int) -> "Platform":
        """``m`` identical unit-speed processors."""
        return cls("identical", m)

    @classmethod
    def uniform(cls, speeds: Sequence[int]) -> "Platform":
        """Uniform platform: processor ``P_j`` has speed ``speeds[j] >= 1``."""
        sp = tuple(int(s) for s in speeds)
        if not sp:
            raise ValueError("need at least one speed")
        if any(s < 1 for s in sp):
            raise ValueError(f"uniform speeds must be >= 1, got {sp}")
        if all(s == sp[0] == 1 for s in sp):
            return cls.identical(len(sp))
        return cls("uniform", len(sp), speeds=sp)

    @classmethod
    def heterogeneous(cls, rates: Sequence[Sequence[int]]) -> "Platform":
        """Heterogeneous platform from an ``n x m`` rate matrix.

        ``rates[i][j] = 0`` means task ``i`` cannot run on ``P_j``
        (dedicated processors, paper Section I).
        """
        mat = np.asarray(rates, dtype=np.int64)
        if mat.ndim != 2 or mat.shape[0] < 1 or mat.shape[1] < 1:
            raise ValueError(f"rate matrix must be 2-D non-empty, got shape {mat.shape}")
        if (mat < 0).any():
            raise ValueError("rates must be >= 0")
        if (mat.max(axis=1) == 0).any():
            bad = int(np.argmax(mat.max(axis=1) == 0))
            raise ValueError(f"task {bad} cannot run on any processor")
        return cls("heterogeneous", mat.shape[1], matrix=mat)

    # -- basic properties ------------------------------------------------------
    @property
    def kind(self) -> str:
        """One of ``identical``, ``uniform``, ``heterogeneous``."""
        return self._kind

    @property
    def m(self) -> int:
        """Number of processors."""
        return self._m

    @property
    def is_identical(self) -> bool:
        return self._kind == "identical"

    @property
    def n_tasks(self) -> int | None:
        """Number of tasks fixed by a heterogeneous rate matrix (else None)."""
        return None if self._matrix is None else int(self._matrix.shape[0])

    def __repr__(self) -> str:
        if self._kind == "identical":
            return f"Platform.identical({self._m})"
        if self._kind == "uniform":
            return f"Platform.uniform({list(self._speeds)})"
        return f"Platform.heterogeneous({self._matrix.tolist()})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Platform):
            return NotImplemented
        if self._kind != other._kind or self._m != other._m:
            return False
        if self._kind == "uniform":
            return self._speeds == other._speeds
        if self._kind == "heterogeneous":
            return bool(np.array_equal(self._matrix, other._matrix))
        return True

    def __hash__(self) -> int:
        if self._kind == "heterogeneous":
            return hash((self._kind, self._matrix.tobytes()))
        return hash((self._kind, self._m, self._speeds))

    # -- rates ---------------------------------------------------------------
    def _check_task(self, i: int) -> None:
        if i < 0 or (self._matrix is not None and i >= self._matrix.shape[0]):
            raise IndexError(f"task index {i} out of range")

    def rate(self, i: int, j: int) -> int:
        """Execution rate ``s_{i,j}`` of task ``i`` on processor ``j``."""
        if not 0 <= j < self._m:
            raise IndexError(f"processor index {j} out of range 0..{self._m - 1}")
        self._check_task(i)
        if self._kind == "identical":
            return 1
        if self._kind == "uniform":
            return self._speeds[j]
        return int(self._matrix[i, j])

    def rate_matrix(self, n: int) -> np.ndarray:
        """Full ``n x m`` rate matrix (broadcasting identical/uniform kinds)."""
        if self._kind == "identical":
            return np.ones((n, self._m), dtype=np.int64)
        if self._kind == "uniform":
            return np.tile(np.asarray(self._speeds, dtype=np.int64), (n, 1))
        if n != self._matrix.shape[0]:
            raise ValueError(
                f"heterogeneous platform fixed at {self._matrix.shape[0]} tasks, got n={n}"
            )
        return self._matrix.copy()

    def eligible_processors(self, i: int) -> list[int]:
        """Processors with ``s_{i,j} > 0`` for task ``i``."""
        if self._kind != "heterogeneous":
            return list(range(self._m))
        self._check_task(i)
        return [j for j in range(self._m) if self._matrix[i, j] > 0]

    def eligible_tasks(self, j: int, n: int) -> list[int]:
        """Tasks that can run on processor ``j`` (all, unless heterogeneous)."""
        if self._kind != "heterogeneous":
            return list(range(n))
        return [i for i in range(self._matrix.shape[0]) if self._matrix[i, j] > 0]

    # -- structure used by the CSP2 search strategy (paper Section VI-A) -----
    def identical_groups(self, n: int) -> list[list[int]]:
        """Maximal groups of processors with identical rate columns.

        Consecutive-id groups are what the restricted symmetry-breaking rule
        (13) applies to; on an identical platform this is one group of all
        processors.  Processors are grouped regardless of id adjacency —
        callers order variables so that group members are adjacent.
        """
        mat = self.rate_matrix(n)
        groups: dict[bytes, list[int]] = {}
        for j in range(self._m):
            groups.setdefault(mat[:, j].tobytes(), []).append(j)
        return sorted(groups.values(), key=lambda g: g[0])

    def quality(self, system) -> list["Fraction"]:
        """The paper's processor quality measure
        ``Q(P_j) = sum_i s_{i,j} C_i / T_i`` (Section VI-A), as exact
        fractions, one per processor."""
        n = len(system)
        mat = self.rate_matrix(n)
        out = []
        for j in range(self._m):
            q = sum(
                (Fraction(int(mat[i, j]) * system[i].wcet, system[i].period) for i in range(n)),
                Fraction(0),
            )
            out.append(q)
        return out

    def processor_order(self, system) -> list[int]:
        """Processors sorted least-capable-first by :meth:`quality`
        (Section VI-A: pruning the search tree as early as possible)."""
        quality = self.quality(system)
        return sorted(range(self._m), key=lambda j: (quality[j], j))
