"""The periodic task abstraction (paper Section II)."""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

__all__ = ["Task"]


@dataclass(frozen=True, slots=True)
class Task:
    """A periodic real-time task ``(O, C, D, T)``.

    Every integer multiple of the period releases a *job*: job ``k``
    (k = 1, 2, ...) is released at ``O + (k-1)T``, must receive exactly
    ``C`` units of execution, and must do so before its absolute deadline
    ``O + (k-1)T + D``.  Time is discrete and all parameters are integers
    (paper Section II).

    Attributes
    ----------
    offset:
        Release time ``O_i`` of the first job (``>= 0``).
    wcet:
        Worst-case execution time ``C_i`` (``>= 0``); the schedule must
        allocate *exactly* this many unit slots per job (constraint C4).
    deadline:
        Relative deadline ``D_i`` (``>= 1``).  On identical processors a
        task additionally needs ``C <= D`` to be schedulable.  ``D <= T``
        is the *constrained deadline* case; the CSP encodings require it,
        arbitrary-deadline tasks are first rewritten with
        :func:`repro.model.transform.clone_for_arbitrary_deadlines`.
    period:
        Period ``T_i`` (``>= 1``).
    name:
        Optional label used in rendering; defaults to ``tau<idx>`` at
        system construction.
    """

    offset: int
    wcet: int
    deadline: int
    period: int
    name: str | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        for attr in ("offset", "wcet", "deadline", "period"):
            v = getattr(self, attr)
            if not isinstance(v, int) or isinstance(v, bool):
                raise TypeError(f"Task.{attr} must be an int, got {v!r}")
        if self.offset < 0:
            raise ValueError(f"offset must be >= 0, got {self.offset}")
        if self.wcet < 0:
            raise ValueError(f"wcet must be >= 0, got {self.wcet}")
        if self.deadline < 1:
            raise ValueError(f"deadline must be >= 1, got {self.deadline}")
        if self.period < 1:
            raise ValueError(f"period must be >= 1, got {self.period}")
        # Note: C > D is *not* rejected here.  On identical processors it is
        # trivially infeasible (a job gets at most one unit per slot), and
        # analysis.feasibility reports it as such, but on heterogeneous
        # platforms with rates > 1 such a task can still be schedulable.

    # -- paper-notation aliases -------------------------------------------
    @property
    def O(self) -> int:  # noqa: E743 - paper notation
        """Alias for :attr:`offset` (paper notation ``O_i``)."""
        return self.offset

    @property
    def C(self) -> int:
        """Alias for :attr:`wcet` (paper notation ``C_i``)."""
        return self.wcet

    @property
    def D(self) -> int:
        """Alias for :attr:`deadline` (paper notation ``D_i``)."""
        return self.deadline

    @property
    def T(self) -> int:
        """Alias for :attr:`period` (paper notation ``T_i``)."""
        return self.period

    # -- derived quantities ------------------------------------------------
    @property
    def utilization(self) -> Fraction:
        """``C_i / T_i`` as an exact fraction."""
        return Fraction(self.wcet, self.period)

    @property
    def density(self) -> Fraction:
        """``C_i / min(D_i, T_i)`` as an exact fraction."""
        return Fraction(self.wcet, min(self.deadline, self.period))

    @property
    def laxity(self) -> int:
        """``D_i - C_i``, the paper's (D-C) value-ordering key."""
        return self.deadline - self.wcet

    @property
    def slack(self) -> int:
        """``T_i - C_i``, the paper's (T-C) value-ordering key."""
        return self.period - self.wcet

    @property
    def is_constrained(self) -> bool:
        """True iff ``D_i <= T_i`` (constrained-deadline task)."""
        return self.deadline <= self.period

    @property
    def phase(self) -> int:
        """``O_i mod T_i`` — the only part of the offset that matters for
        the cyclic availability pattern over a hyperperiod."""
        return self.offset % self.period

    def with_name(self, name: str) -> "Task":
        """Copy of this task with a different display name."""
        return Task(self.offset, self.wcet, self.deadline, self.period, name)

    def as_tuple(self) -> tuple[int, int, int, int]:
        """The ``(O, C, D, T)`` 4-tuple."""
        return (self.offset, self.wcet, self.deadline, self.period)

    def __str__(self) -> str:
        label = self.name or "task"
        return f"{label}(O={self.offset}, C={self.wcet}, D={self.deadline}, T={self.period})"
