"""Task systems (finite collections of periodic tasks)."""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from fractions import Fraction

from repro.model import intervals
from repro.model.task import Task
from repro.util.math import ceil_div, lcm_all

__all__ = ["TaskSystem"]


class TaskSystem:
    """An ordered, immutable collection of periodic tasks.

    Task indices are 0-based throughout the library (the paper's
    ``tau_1 .. tau_n`` are ``system[0] .. system[n-1]``).

    >>> sys3 = TaskSystem.from_tuples([(0, 1, 2, 2), (1, 3, 4, 4), (0, 2, 2, 3)])
    >>> sys3.hyperperiod
    12
    >>> float(sys3.utilization)
    1.9166666666666667
    """

    __slots__ = ("_tasks", "_hyperperiod")

    def __init__(self, tasks: Iterable[Task]) -> None:
        tasks = list(tasks)
        if not tasks:
            raise ValueError("a task system needs at least one task")
        named = []
        for i, t in enumerate(tasks):
            if not isinstance(t, Task):
                raise TypeError(f"expected Task, got {t!r}")
            named.append(t if t.name is not None else t.with_name(f"tau{i + 1}"))
        self._tasks: tuple[Task, ...] = tuple(named)
        self._hyperperiod: int = lcm_all(t.period for t in self._tasks)

    # -- construction helpers ----------------------------------------------
    @classmethod
    def from_tuples(
        cls, tuples: Iterable[Sequence[int]], names: Sequence[str] | None = None
    ) -> "TaskSystem":
        """Build a system from ``(O, C, D, T)`` tuples."""
        tasks = []
        for i, tup in enumerate(tuples):
            o, c, d, t = tup
            name = names[i] if names is not None else None
            tasks.append(Task(o, c, d, t, name))
        return cls(tasks)

    # -- container protocol --------------------------------------------------
    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks)

    def __getitem__(self, idx: int) -> Task:
        return self._tasks[idx]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TaskSystem):
            return NotImplemented
        return self._tasks == other._tasks

    def __hash__(self) -> int:
        return hash(self._tasks)

    def __repr__(self) -> str:
        inner = ", ".join(str(t.as_tuple()) for t in self._tasks)
        return f"TaskSystem([{inner}])"

    # -- aggregate quantities -------------------------------------------------
    @property
    def tasks(self) -> tuple[Task, ...]:
        """The tasks, in index order."""
        return self._tasks

    @property
    def n(self) -> int:
        """Number of tasks."""
        return len(self._tasks)

    @property
    def hyperperiod(self) -> int:
        """``T = lcm(T_1, .., T_n)`` — the cyclic schedule length."""
        return self._hyperperiod

    @property
    def max_period(self) -> int:
        """``Tmax = max_i T_i``."""
        return max(t.period for t in self._tasks)

    @property
    def utilization(self) -> Fraction:
        """``U = sum_i C_i / T_i`` as an exact fraction.

        ``U <= m`` is necessary for feasibility on ``m`` identical
        processors; Table II's filter removes instances with ``U > m``.
        """
        return sum((t.utilization for t in self._tasks), Fraction(0))

    def utilization_ratio(self, m: int) -> Fraction:
        """``r = U / m``, the paper's utilization ratio (feasible => r <= 1)."""
        if m < 1:
            raise ValueError(f"need at least one processor, got m={m}")
        return self.utilization / m

    @property
    def density(self) -> Fraction:
        """``sum_i C_i / min(D_i, T_i)`` (a stronger necessary load measure)."""
        return sum((t.density for t in self._tasks), Fraction(0))

    @property
    def is_constrained(self) -> bool:
        """True iff every task has ``D_i <= T_i``."""
        return all(t.is_constrained for t in self._tasks)

    @property
    def min_processors(self) -> int:
        """``m_min = ceil(U)`` — Table IV's processor count choice."""
        u = self.utilization
        return max(1, ceil_div(u.numerator, u.denominator))

    # -- per-task window helpers (delegate to repro.model.intervals) ---------
    def n_jobs(self, i: int) -> int:
        """Jobs of task ``i`` per hyperperiod."""
        return intervals.n_jobs(self._tasks[i], self._hyperperiod)

    def total_jobs(self) -> int:
        """Total job windows per hyperperiod, ``sum_i T/T_i``."""
        return sum(self.n_jobs(i) for i in range(self.n))

    def total_demand(self) -> int:
        """Total execution units to place per hyperperiod, ``sum_i (T/T_i) C_i``."""
        return sum(self.n_jobs(i) * t.wcet for i, t in enumerate(self._tasks))

    def active_job(self, i: int, slot: int) -> int | None:
        """Job of task ``i`` whose window contains ``slot`` (None if idle)."""
        return intervals.active_job(self._tasks[i], self._hyperperiod, slot)

    def window_slots(self, i: int, job: int) -> list[int]:
        """Cyclic slot set of job ``job`` of task ``i``."""
        return intervals.window_slots(self._tasks[i], self._hyperperiod, job)

    def job_release(self, i: int, job: int) -> int:
        """Release slot of job ``job`` of task ``i``."""
        return intervals.job_release(self._tasks[i], job)

    def task_slots(self, i: int) -> list[int]:
        """All slots (sorted, deduplicated) where task ``i`` may run."""
        slots: set[int] = set()
        for job in range(self.n_jobs(i)):
            slots.update(self.window_slots(i, job))
        return sorted(slots)

    def rename(self, names: Sequence[str]) -> "TaskSystem":
        """Copy with new display names."""
        if len(names) != self.n:
            raise ValueError(f"expected {self.n} names, got {len(names)}")
        return TaskSystem(t.with_name(nm) for t, nm in zip(self._tasks, names))
