"""Task model: periodic tasks, task systems, platforms, availability windows.

This is the paper's Section II.  A task is the 4-tuple
``(O_i, C_i, D_i, T_i)`` (offset, WCET, relative deadline, period); a task
system is a finite set of tasks with a hyperperiod ``T = lcm(T_i)``; a
platform is a set of processors that is *identical*, *uniform* or
*heterogeneous* (execution-rate matrix ``s_{i,j}``).
"""

from repro.model.task import Task
from repro.model.system import TaskSystem
from repro.model.platform import Platform
from repro.model.intervals import (
    active_job,
    job_release,
    slots_after,
    window_slots,
)
from repro.model.transform import CloneMap, clone_for_arbitrary_deadlines

__all__ = [
    "Task",
    "TaskSystem",
    "Platform",
    "active_job",
    "job_release",
    "slots_after",
    "window_slots",
    "CloneMap",
    "clone_for_arbitrary_deadlines",
]
