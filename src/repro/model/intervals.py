"""Cyclic availability windows over one hyperperiod.

The paper restricts the search to *periodic* schedules of length
``T = lcm(T_i)`` (Section III): the pattern of availability intervals
repeats every ``T`` slots, so a cyclic schedule that satisfies C1-C4 within
one hyperperiod unrolls to a feasible infinite schedule.

We index slots ``0 .. T-1`` (paper uses ``1 .. T``).  Job ``j`` of task
``i`` within the cycle (``j = 0 .. T/T_i - 1``) is released at slot
``r_j = phase_i + j*T_i`` where ``phase_i = O_i mod T_i``, and its
availability window is the *cyclic* slot set
``{(r_j + u) mod T : u = 0 .. D_i - 1}``.

When ``O_i + D_i > T_i`` the last window of the cycle wraps past slot
``T-1``; the wrapped slots at the start of cycle ``c`` serve the final job
of cycle ``c-1`` (see docs/ARCHITECTURE.md, "Design notes", for why this is exactly
feasibility-preserving).  All functions here handle the wrapped case.

With ``D_i <= T_i`` (constrained, which every solver-facing system
satisfies) a task's windows are pairwise disjoint, so each slot belongs to
at most one window per task — :func:`active_job` exploits this to run in
O(1) without materializing interval objects (Table IV instances would need
~10M of them otherwise).
"""

from __future__ import annotations

from repro.model.task import Task

__all__ = ["active_job", "job_release", "window_slots", "slots_after", "n_jobs"]


def n_jobs(task: Task, hyperperiod: int) -> int:
    """Number of jobs of ``task`` per hyperperiod (``T / T_i``)."""
    if hyperperiod % task.period != 0:
        raise ValueError(
            f"hyperperiod {hyperperiod} is not a multiple of period {task.period}"
        )
    return hyperperiod // task.period


def job_release(task: Task, job: int) -> int:
    """Release slot (within the cycle) of 0-based job ``job``.

    Always in ``0 .. T_hyper - 1`` because ``phase < T_i`` and
    ``job * T_i < T_hyper``.
    """
    if job < 0:
        raise ValueError(f"job index must be >= 0, got {job}")
    return task.phase + job * task.period


def active_job(task: Task, hyperperiod: int, slot: int) -> int | None:
    """The 0-based job of ``task`` whose window contains ``slot``, else None.

    O(1).  Requires ``D_i <= T_i`` (disjoint windows); raises otherwise.
    """
    if not task.is_constrained:
        raise ValueError(
            f"active_job requires a constrained-deadline task, got D={task.deadline} "
            f"> T={task.period}; clone the system first"
        )
    if not 0 <= slot < hyperperiod:
        raise ValueError(f"slot {slot} outside 0..{hyperperiod - 1}")
    delta = (slot - task.phase) % hyperperiod
    job, within = divmod(delta, task.period)
    if within < task.deadline:
        return job
    return None


def window_slots(task: Task, hyperperiod: int, job: int) -> list[int]:
    """The cyclic slot set of ``job``'s availability window, in scan order
    within the cycle is NOT guaranteed — slots are listed release-first,
    i.e. ``r_j, r_j+1, ..`` wrapping modulo the hyperperiod."""
    r = job_release(task, job)
    return [(r + u) % hyperperiod for u in range(task.deadline)]


def slots_after(task: Task, hyperperiod: int, job: int, slot: int) -> int:
    """Number of window slots of ``job`` *strictly after* ``slot`` in scan
    order (the linear order ``0 < 1 < .. < T-1``, not cyclic order).

    This is the chronological solver's remaining-capacity bound: after
    finishing slot ``t``, a window with ``d`` units of demand left is dead
    unless ``d <= slots_after(.., t)``.
    """
    T = hyperperiod
    r = job_release(task, job)
    end = r + task.deadline - 1  # last slot, possibly >= T (wrapped)
    count = 0
    if end < T:
        # plain window [r, end]
        if slot < end:
            count = end - max(slot, r - 1)
    else:
        # wrapped: head [r, T-1] and tail [0, end - T]
        tail_end = end - T
        if slot < T - 1:
            count += (T - 1) - max(slot, r - 1)
        if slot < tail_end:
            count += tail_end - slot
    return count
