"""Polynomial-time schedulability analysis: certificates and screening.

Three layers, cheapest on top:

* :mod:`repro.analysis.necessary` — infeasibility certificates (the
  paper's ``r > 1`` filter plus per-task slack, interval-load and
  forced-demand arguments) and :func:`processor_lower_bound`;
* :mod:`repro.analysis.sufficient` — feasibility certificates (GFB and
  density bounds, the exact ``m = 1`` EDF decision, first-fit packing
  and hyperperiod-simulation witnesses);
* :mod:`repro.analysis.cascade` — the ``screen`` meta-solver chaining
  them cheapest-first in front of (or instead of) exact search.

:mod:`repro.analysis.bounds` holds the raw closed-form bound formulas
and :mod:`repro.analysis.feasibility` the legacy check-list API, both
kept for direct use.
"""

from repro.analysis.bounds import BoundVerdict, density_bound, gfb_utilization_bound
from repro.analysis.cascade import (
    CascadeOutcome,
    ScreenSolver,
    default_tests,
    run_cascade,
)
from repro.analysis.certificates import Certificate
from repro.analysis.feasibility import (
    NecessaryCheck,
    necessary_conditions,
    passes_utilization_filter,
)
from repro.analysis.necessary import (
    demand_over_capacity_witness,
    forced_demand_certificate,
    interval_load_certificate,
    necessary_certificates,
    processor_lower_bound,
    prove_infeasible,
    utilization_certificate,
    utilization_exceeds,
    wcet_slack_certificate,
)
from repro.analysis.sufficient import (
    density_certificate,
    edf_simulation_certificate,
    gfb_certificate,
    partitioned_certificate,
    prove_feasible,
    sufficient_certificates,
    uniprocessor_edf_certificate,
)

__all__ = [
    "Certificate",
    "CascadeOutcome",
    "ScreenSolver",
    "default_tests",
    "run_cascade",
    "utilization_exceeds",
    "utilization_certificate",
    "wcet_slack_certificate",
    "interval_load_certificate",
    "forced_demand_certificate",
    "necessary_certificates",
    "prove_infeasible",
    "processor_lower_bound",
    "demand_over_capacity_witness",
    "gfb_certificate",
    "density_certificate",
    "uniprocessor_edf_certificate",
    "partitioned_certificate",
    "edf_simulation_certificate",
    "sufficient_certificates",
    "prove_feasible",
    "NecessaryCheck",
    "necessary_conditions",
    "passes_utilization_filter",
    "BoundVerdict",
    "density_bound",
    "gfb_utilization_bound",
]
