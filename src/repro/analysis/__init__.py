"""Feasibility analysis: necessary conditions and instance filters."""

from repro.analysis.feasibility import (
    NecessaryCheck,
    demand_over_capacity_witness,
    necessary_conditions,
    passes_utilization_filter,
)
from repro.analysis.bounds import BoundVerdict, density_bound, gfb_utilization_bound

__all__ = [
    "NecessaryCheck",
    "demand_over_capacity_witness",
    "necessary_conditions",
    "passes_utilization_filter",
    "BoundVerdict",
    "density_bound",
    "gfb_utilization_bound",
]
