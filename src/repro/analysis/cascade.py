"""The screening cascade: cheap tests first, exact search only if needed.

The paper decides every instance by exhaustive search, yet its own
Table II shows a trivial necessary condition (``r > 1``) already settles
a large share.  This module generalizes that observation into a
meta-solver: run the polynomial-time certificates of
:mod:`repro.analysis.necessary` and :mod:`repro.analysis.sufficient`
*cheapest first*, stop at the first proof, and only fall through to an
exact engine when every test abstains.

Two entry points:

* :func:`run_cascade` — the bare analysis: an ordered list of
  :class:`~repro.analysis.certificates.Certificate` with per-test wall
  times and the deciding certificate (if any);
* the registered ``screen`` solver — ``screen`` alone answers
  FEASIBLE/INFEASIBLE/UNKNOWN from the cascade; ``screen+csp2+dc``
  (or ``screen+portfolio:csp2+dc,sat``) forwards abstentions to the
  wrapped engine with the remaining budget, so ``solve``, ``solve_iter``,
  ``batch`` campaigns and racing portfolios all compose with screening
  transparently.  The answer's ``decided_by`` records the deciding test
  (``"necessary:utilization"``, ...) or the inner engine.

Soundness contract (enforced by the test suite's agreement grid): a
cascade verdict may *abstain* but never contradicts the exact solvers —
every INFEASIBLE certificate is a proof, every FEASIBLE certificate
either carries a validated schedule or fires a bound that implies one
exists.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.analysis import necessary, sufficient
from repro.analysis.certificates import Certificate
from repro.model.platform import Platform
from repro.model.system import TaskSystem
from repro.solvers.base import Feasibility, SolveResult, SolverStats
from repro.solvers.registry import (
    PROVES_INFEASIBILITY,
    register_solver,
    solver_info,
)
from repro.solvers.spec import SolverSpec

__all__ = ["CascadeOutcome", "default_tests", "run_cascade", "ScreenSolver"]

#: a cascade test: ``fn(system, m) -> Certificate``
CascadeTest = Callable[[TaskSystem, int], Certificate]


def default_tests(
    simulate: bool = True,
    max_cycles: int = 64,
    state_limit: int = sufficient.DEFAULT_STATE_LIMIT,
) -> "list[CascadeTest]":
    """The standard test order: cheapest-per-decision first.

    O(n) arithmetic bounds open, the (work-gated) simulation witnesses
    follow — on the paper's generator grid they decide the bulk of the
    feasible instances at ~2 ms apiece — and the quadratic interval
    arguments close, mopping up infeasible instances the utilization
    filter missed.  ``simulate=False`` drops the simulation tier
    entirely for a pure closed-form screen.
    """
    tests: list[CascadeTest] = [
        necessary.utilization_certificate,
        necessary.wcet_slack_certificate,
        sufficient.gfb_certificate,
        sufficient.density_certificate,
    ]
    if simulate:
        def _gated(fn):
            def test(system, m):
                return fn(
                    system, m, max_cycles=max_cycles, state_limit=state_limit
                )
            test.__name__ = fn.__name__
            return test

        tests += [
            _gated(sufficient.uniprocessor_edf_certificate),
            _gated(sufficient.partitioned_certificate),
            _gated(sufficient.edf_simulation_certificate),
        ]
    tests += [
        necessary.interval_load_certificate,
        necessary.forced_demand_certificate,
    ]
    return tests


@dataclass
class CascadeOutcome:
    """What one cascade run learned.

    ``certificates`` lists every test that ran, in order (the deciding
    one last); ``decided`` is that final certificate when it settled the
    instance, None when every test abstained (or the budget cut the
    cascade short); ``timings`` maps test name to its wall time.
    """

    certificates: list[Certificate] = field(default_factory=list)
    decided: Certificate | None = None
    elapsed: float = 0.0
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def verdict(self) -> Feasibility:
        """FEASIBLE/INFEASIBLE when decided, UNKNOWN otherwise."""
        if self.decided is None:
            return Feasibility.UNKNOWN
        return self.decided.verdict

    def to_dict(self) -> dict:
        """JSON-able summary (CLI ``analyze --json``, bench records)."""
        return {
            "verdict": self.verdict.value,
            "decided_by": None if self.decided is None else self.decided.test_name,
            "elapsed": self.elapsed,
            "certificates": [c.to_dict() for c in self.certificates],
        }


def run_cascade(
    system: TaskSystem,
    m: int,
    tests: "Sequence[CascadeTest] | None" = None,
    time_limit: float | None = None,
    **test_options,
) -> CascadeOutcome:
    """Run the screening tests in order, stopping at the first proof.

    ``system`` may have arbitrary deadlines (each test clones as
    needed); ``m`` counts identical processors.  ``test_options``
    (``simulate=``, ``max_cycles=``, ``state_limit=``) configure
    :func:`default_tests` and are rejected when ``tests`` is given
    explicitly.
    """
    if tests is None:
        tests = default_tests(**test_options)
    elif test_options:
        raise ValueError(
            f"test options {sorted(test_options)} only apply to the "
            "default test list"
        )
    outcome = CascadeOutcome()
    t0 = time.monotonic()
    for test in tests:
        if time_limit is not None and time.monotonic() - t0 >= time_limit:
            break
        t_test = time.monotonic()
        cert = test(system, m)
        outcome.timings[cert.test_name] = time.monotonic() - t_test
        outcome.certificates.append(cert)
        if cert.decided:
            outcome.decided = cert
            break
    outcome.elapsed = time.monotonic() - t0
    return outcome


class ScreenSolver:
    """The ``screen`` meta-solver: cascade first, inner engine on abstain.

    Parameters
    ----------
    inner:
        Fall-through solver spec (None = bare cascade, which answers
        UNKNOWN when every test abstains).  Built lazily — a decided
        cascade never constructs the inner model at all, which is the
        whole point.
    simulate, max_cycles, state_limit:
        Cascade knobs, see :func:`default_tests`.

    Non-identical platforms skip the cascade (its certificates argue
    about identical processors) and delegate to the inner engine
    directly.  An inner INFEASIBLE is passed through only when the inner
    family proves infeasibility — same downgrade rule as the portfolio —
    so the ``screen`` family's own ``proves_infeasibility`` capability
    stays sound for any composition.
    """

    def __init__(
        self,
        system: TaskSystem,
        platform: Platform,
        inner: "SolverSpec | str | None" = None,
        seed: int | None = None,
        simulate: bool = True,
        max_cycles: int = 64,
        state_limit: int = sufficient.DEFAULT_STATE_LIMIT,
    ) -> None:
        self.system = system
        self.platform = platform
        self.inner = None if inner is None else SolverSpec.parse(inner)
        self.seed = seed
        self.simulate = simulate
        self.max_cycles = max_cycles
        self.state_limit = state_limit
        #: fail fast on unknown inner names (mirrors the portfolio)
        self._inner_info = None if self.inner is None else solver_info(self.inner)
        self.name = "screen" + (
            f"+{self.inner.canonical}" if self.inner is not None else ""
        )

    def _screen_meta(self, outcome: "CascadeOutcome | None") -> dict:
        """The ``stats.extra['screen']`` payload."""
        if outcome is None:
            return {"tests": [], "decided_by": None, "elapsed": 0.0,
                    "skipped": "non-identical platform"}
        return {
            "tests": [
                {
                    "name": c.test_name,
                    "verdict": c.verdict.value if c.decided else "abstain",
                    "elapsed": outcome.timings.get(c.test_name, 0.0),
                }
                for c in outcome.certificates
            ],
            "decided_by": None
            if outcome.decided is None
            else outcome.decided.test_name,
            "elapsed": outcome.elapsed,
        }

    def solve(
        self, time_limit: float | None = None, node_limit: int | None = None
    ) -> SolveResult:
        """Cascade, then (only on abstention) the inner engine."""
        t0 = time.monotonic()
        outcome = None
        if self.platform.is_identical:
            outcome = run_cascade(
                self.system,
                self.platform.m,
                time_limit=time_limit,
                simulate=self.simulate,
                max_cycles=self.max_cycles,
                state_limit=self.state_limit,
            )
            if outcome.decided is not None:
                cert = outcome.decided
                stats = SolverStats(
                    elapsed=time.monotonic() - t0,
                    extra={"screen": self._screen_meta(outcome)},
                )
                return SolveResult(
                    status=cert.verdict,
                    schedule=cert.schedule,
                    stats=stats,
                    solver_name="screen",
                    decided_by=cert.test_name,
                )
        if self.inner is None:
            return SolveResult(
                status=Feasibility.UNKNOWN,
                schedule=None,
                stats=SolverStats(
                    elapsed=time.monotonic() - t0,
                    extra={"screen": self._screen_meta(outcome)},
                ),
                solver_name="screen",
            )
        from repro.solvers.registry import create_solver

        engine = create_solver(
            self.inner, self.system, self.platform, seed=self.seed
        )
        remaining = time_limit
        if remaining is not None:
            remaining = max(0.0, remaining - (time.monotonic() - t0))
        result = engine.solve(time_limit=remaining, node_limit=node_limit)
        status = result.status
        if (
            status is Feasibility.INFEASIBLE
            and not self._inner_info.proves_infeasibility
        ):
            status = Feasibility.UNKNOWN
        stats = result.stats
        stats.elapsed = time.monotonic() - t0  # screening time included
        stats.extra = dict(stats.extra, screen=self._screen_meta(outcome))
        return SolveResult(
            status=status,
            schedule=result.schedule,
            stats=stats,
            solver_name=result.solver_name,
            decided_by=result.decided_by or result.solver_name,
        )


@register_solver(
    "screen",
    description=(
        "Screening-cascade meta-solver: certified polynomial-time "
        "necessary/sufficient tests run cheapest-first; screen+NAME falls "
        "through to NAME only when every test abstains"
    ),
    paper_section="VII-B (Table II's r > 1 filter, generalized)",
    pick_when=(
        "Large campaigns: most instances are decided in microseconds by a "
        "certificate and the exact engine only sees the hard core"
    ),
    capabilities=(PROVES_INFEASIBILITY,),
    suffixes={},
    options=("simulate", "max_cycles", "state_limit"),
    platforms=("identical", "uniform", "heterogeneous"),
)
def _build_screen(system, platform, spec, seed, **options):
    """Registry factory: ``screen`` / ``screen+NAME`` / ``screen+portfolio:...``."""
    return ScreenSolver(
        system, platform, inner=spec.screened, seed=seed, **options
    )
