"""Necessary conditions: polynomial-time *infeasibility* certificates.

The paper uses exactly one such filter — the utilization ratio ``r = U/m``
(Table II counts the unsolved instances with ``r > 1`` that the filter
would have pruned without any search).  This module turns that filter and
three strictly stronger necessary conditions into
:class:`~repro.analysis.certificates.Certificate`-producing tests, each a
proof of infeasibility when it fires and an abstention otherwise:

* ``necessary:utilization`` — ``U > m`` (the paper's ``r > 1``);
* ``necessary:wcet-slack`` — some task has ``C_i > D_i`` (a job receives
  at most one execution unit per slot on identical processors);
* ``necessary:interval-load`` — some scan interval ``[a, b]`` wholly
  contains job windows demanding more than ``m (b - a + 1)`` units
  (computed for *all* slot pairs at once via a 2-D prefix-sum table);
* ``necessary:forced-demand`` — the partial-overlap strengthening: a job
  whose window merely *overlaps* ``[a, b]`` is still forced to execute at
  least ``C - |window \\ [a, b]|`` units inside it, so summing those
  forced loads can exceed capacity even when no window is enclosed.

All tests assume ``m`` *identical* processors (the cascade only applies
them there) and operate on constrained-deadline systems —
arbitrary-deadline systems are cloned first, which is exactly
feasibility-preserving (paper Section VI-B).

The same interval table yields :func:`processor_lower_bound`: the
smallest ``m`` not excluded by any interval-load argument, which is at
least ``ceil(U)`` and often strictly better — ``find_min_processors``
starts there instead of searching counts that are provably too small.
"""

from __future__ import annotations

import math
from fractions import Fraction

from repro.analysis.certificates import Certificate
from repro.kernels import demand as demand_kernel
from repro.model import intervals
from repro.model.system import TaskSystem
from repro.model.transform import clone_for_arbitrary_deadlines

__all__ = [
    "utilization_exceeds",
    "utilization_certificate",
    "wcet_slack_certificate",
    "interval_load_certificate",
    "forced_demand_certificate",
    "necessary_certificates",
    "prove_infeasible",
    "processor_lower_bound",
    "demand_over_capacity_witness",
]

#: default cap on the interval table size (slots squared); hyperperiods
#: past ``sqrt(4M) = 2000`` slots make the test abstain rather than churn
MAX_TABLE_CELLS = 4_000_000

#: default cap on candidate (start, end) pairs for the forced-demand scan
MAX_FORCED_PAIRS = 4_096


def _constrained(system: TaskSystem) -> TaskSystem:
    """The system itself, or its constrained-deadline clone (VI-B)."""
    if system.is_constrained:
        return system
    cloned, _ = clone_for_arbitrary_deadlines(system)
    return cloned


def _check_m(m: int) -> None:
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")


# ---------------------------------------------------------------------------
# utilization (the paper's r > 1 filter)
# ---------------------------------------------------------------------------

def utilization_exceeds(ratio: "Fraction | float") -> bool:
    """The paper's Table II filter predicate: True iff ``r = U/m > 1``.

    The *single* implementation of that comparison — the utilization
    certificate, ``passes_utilization_filter`` and Table II's
    filtered/unfiltered split all call this, so they can never disagree.
    """
    return ratio > 1


def utilization_certificate(system: TaskSystem, m: int) -> Certificate:
    """``U > m`` proves infeasibility on ``m`` identical processors."""
    _check_m(m)
    u = system.utilization
    r = system.utilization_ratio(m)
    if utilization_exceeds(r):
        return Certificate.infeasible(
            "necessary:utilization",
            witness={"utilization": str(u), "m": m, "ratio": float(r)},
            detail=f"U = {float(u):.3f} > m = {m} (r = {float(r):.3f})",
        )
    return Certificate.abstain(
        "necessary:utilization", detail=f"r = U/m = {float(r):.3f} <= 1"
    )


# ---------------------------------------------------------------------------
# per-task slack (C <= D)
# ---------------------------------------------------------------------------

def wcet_slack_certificate(system: TaskSystem, m: int) -> Certificate:
    """``C_i > D_i`` proves infeasibility: one unit per slot per job."""
    _check_m(m)
    bad = [
        (i, t.wcet, t.deadline)
        for i, t in enumerate(system)
        if t.wcet > t.deadline
    ]
    if bad:
        i, c, d = bad[0]
        return Certificate.infeasible(
            "necessary:wcet-slack",
            witness={"tasks": [list(b) for b in bad]},
            detail=f"task {i} has C = {c} > D = {d} "
            f"({len(bad)} such task(s); no m helps)",
        )
    return Certificate.abstain(
        "necessary:wcet-slack", detail="every task has C <= D"
    )


# ---------------------------------------------------------------------------
# interval load (enclosed windows, all slot pairs at once)
# ---------------------------------------------------------------------------

def _window_spans(system: TaskSystem) -> list[tuple[int, int, int]]:
    """(start, end, wcet) scan-order spans of every non-wrapped window.

    A window wrapping past ``T - 1`` never lies wholly inside a linear
    scan interval, so wrapped windows are skipped here (the global
    total-demand check still accounts for them).
    """
    spans = []
    T = system.hyperperiod
    for i, task in enumerate(system):
        if task.wcet == 0:
            continue
        for job in range(system.n_jobs(i)):
            r = intervals.job_release(task, job)
            end = r + task.deadline - 1
            if end < T:
                spans.append((r, end, task.wcet))
    return spans


def _enclosed_witness_pairs(
    system: TaskSystem, m: int, max_pairs: int
) -> "tuple[int, int, int] | None":
    """Pair-enumeration fallback for hyperperiods too large to table.

    Enumerates (window start, window end) candidate pairs — where the
    enclosed-demand bound is tight — accumulating demand per start with
    a sorted sweep; returns the first violated pair.  Assumes the caller
    already verified ``len(starts) * len(ends) <= max_pairs``.
    """
    spans = _window_spans(system)
    starts = sorted({s for s, _, _ in spans})
    ends = sorted({e for _, e, _ in spans})
    if len(starts) * len(ends) > max_pairs:
        return None
    for a in starts:
        inside = sorted((e, c) for s, e, c in spans if s >= a)
        demand = 0
        k = 0
        for b in ends:
            if b < a:
                continue
            while k < len(inside) and inside[k][0] <= b:
                demand += inside[k][1]
                k += 1
            if demand > m * (b - a + 1):
                return (a, b, demand)
    return None


def _enclosed_over_capacity(
    system: TaskSystem, m: int, max_cells: int, max_pairs: int
) -> "tuple[tuple[int, int, int] | None, bool]":
    """The shared interval-load scan: ``(witness, checked)``.

    ``witness`` is ``(a, b, demand)`` of an over-demanded interval (the
    full-cycle total-demand check, wrapped windows included, comes
    first); ``checked`` is False when *both* strategies — the all-pairs
    prefix-sum table (``T^2 <= max_cells``) and the candidate-pair
    enumeration (``starts x ends <= max_pairs``) — were over budget, so
    the caller must abstain rather than conclude "no violation".
    """
    T = system.hyperperiod
    total = system.total_demand()
    if total > m * T:
        return (0, T - 1, total), True
    spans = _window_spans(system)
    witness, tabled = demand_kernel.enclosed_excess_witness(
        spans, T, m, max_cells=max_cells
    )
    if not tabled:
        starts = {s for s, _, _ in spans}
        ends = {e for _, e, _ in spans}
        if len(starts) * len(ends) > max_pairs:
            return None, False
        return _enclosed_witness_pairs(system, m, max_pairs), True
    return witness, True


def demand_over_capacity_witness(
    system: TaskSystem, m: int, max_pairs: int = 250_000
) -> tuple[int, int, int] | None:
    """A scan interval ``[a, b]`` whose enclosed demand exceeds ``m`` slots
    of capacity, or None.

    Small hyperperiods are checked for *every* slot pair via the
    prefix-sum table; larger ones fall back to enumerating (window
    start, window end) candidate pairs — where the bound is tight — up
    to ``max_pairs``, past which the check degrades to the
    full-hyperperiod test only (equivalent to ``U <= m``).
    """
    _check_m(m)
    system = _constrained(system)
    witness, _ = _enclosed_over_capacity(
        system, m, max_cells=MAX_TABLE_CELLS, max_pairs=max_pairs
    )
    return witness


def interval_load_certificate(
    system: TaskSystem,
    m: int,
    max_cells: int = MAX_TABLE_CELLS,
    max_pairs: int = 250_000,
) -> Certificate:
    """Enclosed-window interval load: demand in ``[a, b]`` vs ``m`` slots.

    Sound for cyclic schedules because every non-wrapped window's ``C``
    units must fall inside the window, hence inside any interval
    enclosing it; the full-cycle check (wrapped windows included) is the
    classical ``total demand <= m T``.  Abstains only when both the
    table (``max_cells``) and pair-enumeration (``max_pairs``) budgets
    are exceeded.
    """
    _check_m(m)
    system = _constrained(system)
    witness, checked = _enclosed_over_capacity(
        system, m, max_cells=max_cells, max_pairs=max_pairs
    )
    if witness is not None:
        a, b, demand = witness
        return Certificate.infeasible(
            "necessary:interval-load",
            witness={"interval": [a, b], "demand": demand,
                     "capacity": m * (b - a + 1)},
            detail=f"slots [{a}, {b}] enclose demand {demand} > "
            f"capacity {m * (b - a + 1)}",
        )
    if not checked:
        return Certificate.abstain(
            "necessary:interval-load",
            detail=f"hyperperiod {system.hyperperiod} past the "
            "interval-table and candidate-pair budgets",
        )
    return Certificate.abstain(
        "necessary:interval-load", detail="no over-demanded scan interval"
    )


# ---------------------------------------------------------------------------
# forced demand (partial-overlap strengthening)
# ---------------------------------------------------------------------------

def _job_fragments(system: TaskSystem):
    """Per job: linear window fragments plus wcet and window length.

    Returns parallel lists ``(f_start, f_end, f_job)`` over fragments
    (a wrapped window contributes two) and ``(wcet, wlen)`` over jobs,
    ready for the overlap arithmetic in :mod:`repro.kernels.demand`.
    """
    T = system.hyperperiod
    f_start, f_end, f_job = [], [], []
    wcet, wlen = [], []
    jid = 0
    for i, task in enumerate(system):
        if task.wcet == 0:
            continue
        for job in range(system.n_jobs(i)):
            r = intervals.job_release(task, job)
            end = r + task.deadline - 1
            if end < T:
                f_start.append(r), f_end.append(end), f_job.append(jid)
            else:
                f_start.append(r), f_end.append(T - 1), f_job.append(jid)
                f_start.append(0), f_end.append(end - T), f_job.append(jid)
            wcet.append(task.wcet)
            wlen.append(task.deadline)
            jid += 1
    return f_start, f_end, f_job, wcet, wlen


def forced_demand_certificate(
    system: TaskSystem, m: int, max_pairs: int = MAX_FORCED_PAIRS
) -> Certificate:
    """Forced load: jobs overlapping ``[a, b]`` must still run
    ``max(0, C - |window outside [a, b]|)`` units inside it.

    Strictly stronger than the enclosed-window argument (an enclosed
    window is forced for its full ``C``); candidate intervals are
    (window-start, window-end) pairs, abstaining past ``max_pairs``.
    """
    _check_m(m)
    system = _constrained(system)
    fs, fe, fj, wc, wl = _job_fragments(system)
    if len(wc) == 0:
        return Certificate.abstain(
            "necessary:forced-demand", detail="no positive-wcet jobs"
        )
    starts = sorted(set(fs))
    ends = sorted(set(fe))
    if len(starts) * len(ends) > max_pairs:
        return Certificate.abstain(
            "necessary:forced-demand",
            detail=f"{len(starts)}x{len(ends)} candidate intervals past "
            f"the pair budget {max_pairs}",
        )
    witness = demand_kernel.forced_demand_witness(
        fs, fe, fj, wc, wl, starts, ends, m
    )
    if witness is not None:
        a, b, demand = witness
        capacity = m * (b - a + 1)
        return Certificate.infeasible(
            "necessary:forced-demand",
            witness={"interval": [a, b], "demand": demand,
                     "capacity": capacity},
            detail=f"slots [{a}, {b}] force demand {demand} > "
            f"capacity {capacity}",
        )
    return Certificate.abstain(
        "necessary:forced-demand", detail="no over-forced interval"
    )


# ---------------------------------------------------------------------------
# aggregation + the processor-count lower bound
# ---------------------------------------------------------------------------

def necessary_certificates(system: TaskSystem, m: int) -> list[Certificate]:
    """All necessary-condition certificates, cheapest first.

    Any INFEASIBLE entry proves the instance unschedulable on ``m``
    identical processors; all-abstain proves nothing (the conditions are
    necessary, not sufficient).
    """
    return [
        utilization_certificate(system, m),
        wcet_slack_certificate(system, m),
        interval_load_certificate(system, m),
        forced_demand_certificate(system, m),
    ]


def prove_infeasible(system: TaskSystem, m: int) -> Certificate | None:
    """The first infeasibility proof found, or None (tests abstained).

    Runs the necessary tests cheapest-first and stops at the first
    failure — the certificate-producing analogue of the paper's ``r > 1``
    pre-filter, for use anywhere a cheap "is this m hopeless?" answer
    avoids an exact search (``find_min_processors`` in particular).
    """
    for test in (
        utilization_certificate,
        wcet_slack_certificate,
        interval_load_certificate,
        forced_demand_certificate,
    ):
        cert = test(system, m)
        if cert.proves_infeasible:
            return cert
    return None


def processor_lower_bound(
    system: TaskSystem, max_cells: int = MAX_TABLE_CELLS
) -> int:
    """The smallest ``m`` no interval-load argument excludes.

    At least ``max(1, ceil(U))``; the interval table sharpens it to
    ``max ceil(demand(a, b) / (b - a + 1))`` over all scan intervals
    (e.g. two synchronous ``D = 1`` jobs force ``m >= 2`` even at tiny
    utilization).  Every count below the returned value is *provably*
    infeasible, so minimum-processor searches may start here without
    losing exactness.
    """
    system = _constrained(system)
    bound = max(1, system.min_processors)
    T = system.hyperperiod
    bound = max(bound, math.ceil(system.total_demand() / T))
    need = demand_kernel.interval_min_processors(
        _window_spans(system), T, max_cells=max_cells
    )
    if need is not None:
        bound = max(bound, need)
    return bound
