"""Sufficient conditions: polynomial-time *feasibility* certificates.

Each test here, when it fires, proves a schedule exists — by a
closed-form schedulability bound for a concrete policy, by a packing
argument, or by exhibiting one cyclic hyperperiod outright:

* ``sufficient:gfb`` — the Goossens-Funk-Baruah utilization bound for
  global EDF on implicit-deadline systems (``U <= m - (m-1) U_max``);
* ``sufficient:density`` — its density generalization for constrained
  deadlines (Bertogna et al.);
* ``sufficient:uniproc-edf`` — on ``m = 1`` EDF is *optimal*, so the
  exact EDF simulation decides both ways: schedulable means feasible and
  a deadline miss proves infeasibility (the one test in this module that
  can also return INFEASIBLE);
* ``sufficient:partitioned-ff`` — a first-fit-decreasing partition whose
  bins are each exactly uniprocessor-EDF-feasible (Chen & Bansal-style
  packing); a partitioned schedule is trivially a global one;
* ``sufficient:edf-sim`` — the hyperperiod simulation witness: run the
  exact global-EDF simulator (periodicity detection makes the verdict a
  proof) and hand back the produced cyclic schedule.

Simulation-backed tests are gated by a work estimate
(``hyperperiod x n x m``) so the cascade stays polynomial-time in
practice: past ``state_limit`` they abstain instead of simulating.

All tests assume ``m`` identical processors and constrained deadlines
(arbitrary-deadline systems are cloned first, Section VI-B).
"""

from __future__ import annotations

from repro.analysis.bounds import density_bound, gfb_utilization_bound
from repro.analysis.certificates import Certificate
from repro.analysis.necessary import _check_m, _constrained
from repro.model.system import TaskSystem

__all__ = [
    "gfb_certificate",
    "density_certificate",
    "uniprocessor_edf_certificate",
    "partitioned_certificate",
    "edf_simulation_certificate",
    "sufficient_certificates",
    "prove_feasible",
]

#: default cap on simulation work (hyperperiod x n x m); past it the
#: simulation-backed tests abstain instead of running
DEFAULT_STATE_LIMIT = 200_000


def _sim_work(system: TaskSystem, m: int) -> int:
    """Rough work estimate of one simulation-backed test."""
    return system.hyperperiod * system.n * m


def gfb_certificate(system: TaskSystem, m: int) -> Certificate:
    """GFB bound: implicit-deadline and ``U <= m - (m-1) U_max`` proves
    global-EDF schedulability, hence feasibility."""
    _check_m(m)
    system = _constrained(system)
    if any(t.deadline != t.period for t in system):
        return Certificate.abstain(
            "sufficient:gfb", detail="deadlines not implicit (D != T)"
        )
    verdict = gfb_utilization_bound(system, m)
    if verdict.schedulable:
        return Certificate.feasible(
            "sufficient:gfb",
            witness={"bound": verdict.detail, "m": m},
            detail=verdict.detail,
        )
    return Certificate.abstain("sufficient:gfb", detail=verdict.detail)


def density_certificate(system: TaskSystem, m: int) -> Certificate:
    """Density bound: ``delta_sum <= m - (m-1) delta_max`` on constrained
    deadlines proves global-EDF schedulability, hence feasibility."""
    _check_m(m)
    system = _constrained(system)
    verdict = density_bound(system, m)
    if verdict.schedulable:
        return Certificate.feasible(
            "sufficient:density",
            witness={"bound": verdict.detail, "m": m},
            detail=verdict.detail,
        )
    return Certificate.abstain("sufficient:density", detail=verdict.detail)


def uniprocessor_edf_certificate(
    system: TaskSystem,
    m: int,
    max_cycles: int = 64,
    state_limit: int = DEFAULT_STATE_LIMIT,
) -> Certificate:
    """Exact ``m = 1`` decision: EDF is optimal on one processor, so the
    simulation verdict settles the instance in *both* directions."""
    _check_m(m)
    if m != 1:
        return Certificate.abstain(
            "sufficient:uniproc-edf", detail="applies to m = 1 only"
        )
    system = _constrained(system)
    if _sim_work(system, m) > state_limit:
        return Certificate.abstain(
            "sufficient:uniproc-edf", detail="past the simulation budget"
        )
    from repro.baselines.priorities import global_edf

    sim = global_edf(system, 1, max_cycles=max_cycles)
    if sim.schedulable:
        return Certificate.feasible(
            "sufficient:uniproc-edf",
            witness={"cycles": sim.cycles_simulated},
            detail="uniprocessor EDF schedule repeats with no miss "
            "(EDF is optimal on m = 1)",
            schedule=sim.schedule,
        )
    if sim.schedulable is False:
        task, release, deadline = sim.missed
        return Certificate.infeasible(
            "sufficient:uniproc-edf",
            witness={"missed": {"task": task, "release": release,
                                "deadline": deadline}},
            detail=f"EDF (optimal on m = 1) misses task {task}'s deadline "
            f"{deadline} for the job released at {release}",
        )
    return Certificate.abstain(
        "sufficient:uniproc-edf", detail="simulation did not converge"
    )


def partitioned_certificate(
    system: TaskSystem,
    m: int,
    max_cycles: int = 64,
    state_limit: int = DEFAULT_STATE_LIMIT,
) -> Certificate:
    """First-fit-decreasing packing witness: a task-to-processor
    assignment whose every bin is exactly uniprocessor-EDF-feasible.

    A partitioned schedule is trivially a valid global schedule, so a
    found partition proves feasibility; not finding one proves nothing
    (global scheduling strictly dominates partitioning).
    """
    _check_m(m)
    system = _constrained(system)
    if _sim_work(system, m) > state_limit:
        return Certificate.abstain(
            "sufficient:partitioned-ff", detail="past the simulation budget"
        )
    from repro.baselines.partitioned import first_fit_partition

    try:
        part = first_fit_partition(system, m, max_cycles=max_cycles)
    except RuntimeError:  # a bin simulation failed to converge
        return Certificate.abstain(
            "sufficient:partitioned-ff",
            detail="bin simulation did not converge",
        )
    if part.found:
        return Certificate.feasible(
            "sufficient:partitioned-ff",
            witness={"assignment": part.assignment,
                     "bins_tried": part.partitions_tried},
            detail=f"first-fit partition onto {m} processor(s): "
            f"{part.assignment}",
        )
    return Certificate.abstain(
        "sufficient:partitioned-ff", detail="first-fit found no partition"
    )


def edf_simulation_certificate(
    system: TaskSystem,
    m: int,
    max_cycles: int = 64,
    state_limit: int = DEFAULT_STATE_LIMIT,
) -> Certificate:
    """Hyperperiod simulation witness: exact global-EDF simulation with
    periodicity detection; a schedulable verdict hands back the cyclic
    schedule itself (a miss proves nothing for ``m > 1``)."""
    _check_m(m)
    system = _constrained(system)
    if _sim_work(system, m) > state_limit:
        return Certificate.abstain(
            "sufficient:edf-sim", detail="past the simulation budget"
        )
    from repro.baselines.priorities import global_edf

    sim = global_edf(system, m, max_cycles=max_cycles)
    if sim.schedulable:
        return Certificate.feasible(
            "sufficient:edf-sim",
            witness={"cycles": sim.cycles_simulated},
            detail="global EDF schedule repeats with no miss",
            schedule=sim.schedule,
        )
    return Certificate.abstain(
        "sufficient:edf-sim",
        detail="EDF missed a deadline (not an infeasibility proof)"
        if sim.schedulable is False
        else "simulation did not converge",
    )


def sufficient_certificates(
    system: TaskSystem,
    m: int,
    max_cycles: int = 64,
    state_limit: int = DEFAULT_STATE_LIMIT,
) -> list[Certificate]:
    """All sufficient-condition certificates, cheapest first."""
    return [
        gfb_certificate(system, m),
        density_certificate(system, m),
        uniprocessor_edf_certificate(
            system, m, max_cycles=max_cycles, state_limit=state_limit
        ),
        partitioned_certificate(
            system, m, max_cycles=max_cycles, state_limit=state_limit
        ),
        edf_simulation_certificate(
            system, m, max_cycles=max_cycles, state_limit=state_limit
        ),
    ]


def prove_feasible(
    system: TaskSystem,
    m: int,
    max_cycles: int = 64,
    state_limit: int = DEFAULT_STATE_LIMIT,
) -> Certificate | None:
    """The first feasibility proof found, or None (tests abstained)."""
    for cert in sufficient_certificates(
        system, m, max_cycles=max_cycles, state_limit=state_limit
    ):
        if cert.proves_feasible:
            return cert
    return None
