"""Classical *sufficient* schedulability bounds for global scheduling.

The paper's approach is exact-but-expensive; the standard cheap
alternatives are closed-form bounds.  Implemented here for context and
cross-checking (each bound, when it fires, certifies schedulability under
the corresponding *policy*, hence feasibility — the exact CSP solvers must
agree):

* **GFB utilization bound** (Goossens-Funk-Baruah) for global EDF on
  implicit-deadline systems (``D_i = T_i``)::

      U <= m - (m - 1) * U_max   =>   G-EDF schedulable

* its **density generalization** for constrained deadlines
  (``D_i <= T_i``), with ``delta_i = C_i / D_i``::

      delta_sum <= m - (m - 1) * delta_max   =>   G-EDF schedulable

* the trivial **single-processor utilization bound**: ``U <= 1`` on
  ``m = 1`` with implicit deadlines (EDF optimality).

All bounds are one-sided: failing them proves nothing (that is what the
exact solvers are for).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.model.system import TaskSystem

__all__ = ["BoundVerdict", "gfb_utilization_bound", "density_bound"]


@dataclass(frozen=True)
class BoundVerdict:
    """Result of a sufficient test: fired (True) or inconclusive (False)."""

    name: str
    schedulable: bool
    detail: str

    def __bool__(self) -> bool:
        return self.schedulable


def gfb_utilization_bound(system: TaskSystem, m: int) -> BoundVerdict:
    """GFB: implicit-deadline systems are G-EDF-schedulable on ``m``
    identical processors when ``U <= m - (m-1) U_max``.

    Raises if any task has ``D_i != T_i`` (the bound does not apply).
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    if any(t.deadline != t.period for t in system):
        raise ValueError(
            "the GFB utilization bound applies to implicit-deadline systems "
            "only (D_i = T_i); use density_bound for constrained deadlines"
        )
    u = system.utilization
    u_max = max((t.utilization for t in system), default=Fraction(0))
    threshold = m - (m - 1) * u_max
    fired = u <= threshold
    return BoundVerdict(
        "gfb-utilization",
        bool(fired),
        f"U = {float(u):.3f} {'<=' if fired else '>'} "
        f"m - (m-1)*Umax = {float(threshold):.3f}",
    )


def density_bound(system: TaskSystem, m: int) -> BoundVerdict:
    """Density form for constrained deadlines: G-EDF-schedulable when
    ``sum C_i/D_i <= m - (m-1) * max(C_i/D_i)``.

    Requires ``D_i <= T_i`` for every task.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    if not system.is_constrained:
        raise ValueError(
            "the density bound needs constrained deadlines; clone the system first"
        )
    densities = [Fraction(t.wcet, t.deadline) for t in system]
    total = sum(densities, Fraction(0))
    d_max = max(densities, default=Fraction(0))
    threshold = m - (m - 1) * d_max
    fired = total <= threshold
    return BoundVerdict(
        "density",
        bool(fired),
        f"delta_sum = {float(total):.3f} {'<=' if fired else '>'} "
        f"m - (m-1)*delta_max = {float(threshold):.3f}",
    )
