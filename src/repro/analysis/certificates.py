"""Structured verdicts for the polynomial-time schedulability tests.

Every test in :mod:`repro.analysis.necessary` and
:mod:`repro.analysis.sufficient` answers with a :class:`Certificate`: a
verdict (FEASIBLE / INFEASIBLE / UNKNOWN-abstain), the test's name, and
a JSON-able *witness* substantiating the claim — the over-demanded
interval, the violated bound with its numbers, the partition assignment,
the missed deadline.  Certificates are proofs, not heuristics:

* an INFEASIBLE certificate means *no* schedule exists (the test is a
  necessary condition and it failed);
* a FEASIBLE certificate means a schedule *does* exist (the test is a
  sufficient condition and it fired), optionally carrying the witness
  schedule itself;
* UNKNOWN means the test abstains — it proves nothing either way and the
  next test (or the exact solver) must take over.

The cascade (:mod:`repro.analysis.cascade`) chains tests cheapest-first
and stops at the first non-abstaining certificate, which is what the
``screen`` meta-solver records as the answer's ``decided_by``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.schedule.schedule import Schedule
from repro.solvers.base import Feasibility

__all__ = ["Certificate"]


@dataclass(frozen=True)
class Certificate:
    """One polynomial-time test's verdict with its supporting evidence.

    Attributes
    ----------
    verdict:
        ``FEASIBLE`` (sufficient test fired), ``INFEASIBLE`` (necessary
        test failed) or ``UNKNOWN`` (the test abstains).
    test_name:
        Qualified test name, e.g. ``"necessary:utilization"`` — the
        string recorded as ``decided_by`` when this certificate decides.
    witness:
        JSON-able evidence for the verdict (numbers of the violated
        bound, the over-demanded interval, a partition assignment, ...).
    detail:
        One human-readable line (printed by ``repro-mgrts analyze``).
    schedule:
        For feasibility certificates whose witness *is* a schedule (EDF
        simulation): one validated cyclic hyperperiod; ``None`` when the
        proof is by bound or packing argument.
    """

    verdict: Feasibility
    test_name: str
    witness: dict[str, Any] = field(default_factory=dict)
    detail: str = ""
    schedule: Schedule | None = field(default=None, compare=False)

    # -- constructors ------------------------------------------------------
    @classmethod
    def infeasible(
        cls, test_name: str, witness: dict | None = None, detail: str = ""
    ) -> "Certificate":
        """An infeasibility proof from a failed necessary condition."""
        return cls(Feasibility.INFEASIBLE, test_name, witness or {}, detail)

    @classmethod
    def feasible(
        cls,
        test_name: str,
        witness: dict | None = None,
        detail: str = "",
        schedule: Schedule | None = None,
    ) -> "Certificate":
        """A feasibility proof from a fired sufficient condition."""
        return cls(
            Feasibility.FEASIBLE, test_name, witness or {}, detail, schedule
        )

    @classmethod
    def abstain(cls, test_name: str, detail: str = "") -> "Certificate":
        """The test proves nothing on this instance (not a verdict)."""
        return cls(Feasibility.UNKNOWN, test_name, {}, detail)

    # -- queries -----------------------------------------------------------
    @property
    def decided(self) -> bool:
        """True iff this certificate settles the instance."""
        return self.verdict is not Feasibility.UNKNOWN

    @property
    def proves_infeasible(self) -> bool:
        """True for infeasibility proofs."""
        return self.verdict is Feasibility.INFEASIBLE

    @property
    def proves_feasible(self) -> bool:
        """True for feasibility proofs."""
        return self.verdict is Feasibility.FEASIBLE

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form (the witness schedule is elided, its existence
        flagged, so cascade reports stay one-line-per-test small)."""
        return {
            "test": self.test_name,
            "verdict": self.verdict.value,
            "witness": self.witness,
            "detail": self.detail,
            "has_schedule": self.schedule is not None,
        }

    def __str__(self) -> str:
        mark = self.verdict.value if self.decided else "abstain"
        tail = f": {self.detail}" if self.detail else ""
        return f"[{mark}] {self.test_name}{tail}"
