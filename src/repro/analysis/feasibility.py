"""Legacy necessary-condition API over :mod:`repro.analysis.necessary`.

Historically this module implemented the paper's ``r > 1`` filter and
the extra necessary conditions itself; the certificate-based subsystem
(:mod:`repro.analysis.necessary`) is now the single implementation and
this module keeps the original, check-list-shaped surface on top of it:

* :func:`passes_utilization_filter` — the paper's Table II predicate;
* :func:`demand_over_capacity_witness` — re-exported from ``necessary``;
* :func:`necessary_conditions` — the named pass/FAIL check list.

New code should call the certificate functions directly (they carry
machine-readable witnesses and compose into the ``screen`` cascade).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.necessary import (
    demand_over_capacity_witness,
    interval_load_certificate,
    utilization_certificate,
    utilization_exceeds,
    wcet_slack_certificate,
)
from repro.model.system import TaskSystem

__all__ = [
    "passes_utilization_filter",
    "NecessaryCheck",
    "necessary_conditions",
    "demand_over_capacity_witness",
]


def passes_utilization_filter(system: TaskSystem, m: int) -> bool:
    """The paper's filter: True iff ``r = U/m <= 1`` (may still be infeasible)."""
    return not utilization_exceeds(system.utilization_ratio(m))


@dataclass(frozen=True)
class NecessaryCheck:
    """One named necessary condition and its verdict."""

    name: str
    ok: bool
    detail: str

    def __str__(self) -> str:
        mark = "pass" if self.ok else "FAIL"
        return f"[{mark}] {self.name}: {self.detail}"


def necessary_conditions(system: TaskSystem, m: int) -> list[NecessaryCheck]:
    """All implemented necessary conditions, most basic first.

    Any failing check proves the instance infeasible on ``m`` identical
    processors; all passing proves nothing (the conditions are necessary,
    not sufficient).  Thin adapter over the certificate tests, keeping
    the historical check names and detail phrasing.
    """
    u = system.utilization
    r = system.utilization_ratio(m)
    util = utilization_certificate(system, m)
    checks = [
        NecessaryCheck(
            "utilization",
            not util.proves_infeasible,
            f"U = {u} = {float(u):.3f}, r = U/m = {float(r):.3f}",
        )
    ]

    wcet = wcet_slack_certificate(system, m)
    bad = [i for i, t in enumerate(system) if t.wcet > t.deadline]
    checks.append(
        NecessaryCheck(
            "wcet-within-deadline",
            not wcet.proves_infeasible,
            "every task has C <= D" if not bad else f"tasks {bad} have C > D",
        )
    )

    load = interval_load_certificate(system, m)
    checks.append(
        NecessaryCheck(
            "interval-demand",
            not load.proves_infeasible,
            "no over-demanded scan interval found"
            if not load.proves_infeasible
            else load.detail,
        )
    )
    return checks
