"""Necessary feasibility conditions on identical multiprocessors.

The paper uses exactly one filter: ``U <= m`` ("we do not filter out
problems which, obviously, cannot be solved because there are not enough
processors", and Table II counts the unsolved instances that the filter
*would* have caught, i.e. those with utilization ratio ``r > 1``).

This module provides that filter plus two strictly stronger necessary
conditions this reproduction adds (both are cheap and both are *necessary*,
so an instance failing any of them is provably infeasible — useful as a
solver pre-pass and for sanity-checking UNSAT answers):

* per-task ``C_i <= D_i`` — a job gets at most one unit per slot;
* interval demand: for any scan interval ``[a, b]`` of slots, the jobs
  whose windows lie fully inside it need at most ``m * (b - a + 1)`` units.
  Checked over all (window start, window end) pairs, which is where the
  bound is tight.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.model import intervals
from repro.model.system import TaskSystem

__all__ = [
    "passes_utilization_filter",
    "NecessaryCheck",
    "necessary_conditions",
    "demand_over_capacity_witness",
]


def passes_utilization_filter(system: TaskSystem, m: int) -> bool:
    """The paper's filter: True iff ``r = U/m <= 1`` (may still be infeasible)."""
    return system.utilization_ratio(m) <= 1


@dataclass(frozen=True)
class NecessaryCheck:
    """One named necessary condition and its verdict."""

    name: str
    ok: bool
    detail: str

    def __str__(self) -> str:
        mark = "pass" if self.ok else "FAIL"
        return f"[{mark}] {self.name}: {self.detail}"


def _window_spans(system: TaskSystem) -> list[tuple[int, int, int]]:
    """(start, end, wcet) scan-order spans of every window; wrapped windows
    contribute their two fragments' hull conservatively via both pieces."""
    spans = []
    T = system.hyperperiod
    for i, task in enumerate(system):
        if task.wcet == 0:
            continue
        for job in range(system.n_jobs(i)):
            r = intervals.job_release(task, job)
            end = r + task.deadline - 1
            if end < T:
                spans.append((r, end, task.wcet))
            else:
                # a wrapped window never fits inside a scan interval; skip
                # (the unwrapped windows already make the bound useful)
                continue
    return spans


def demand_over_capacity_witness(
    system: TaskSystem, m: int, max_pairs: int = 250_000
) -> tuple[int, int, int] | None:
    """A scan interval ``[a, b]`` whose enclosed demand exceeds ``m`` slots
    of capacity, or None.

    Returns ``(a, b, demand)`` for the first violated pair found.  The
    search enumerates (window start, window end) candidate pairs; when
    there are more than ``max_pairs`` it degrades to the full-hyperperiod
    check only (equivalent to ``U <= m``).
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    T = system.hyperperiod
    if system.total_demand() > m * T:
        return (0, T - 1, system.total_demand())
    spans = _window_spans(system)
    starts = sorted({s for s, _, _ in spans})
    ends = sorted({e for _, e, _ in spans})
    if len(starts) * len(ends) > max_pairs:
        return None
    for a in starts:
        # demand of windows fully inside [a, b], accumulated over b
        inside = [(e, c) for s, e, c in spans if s >= a]
        inside.sort()
        demand = 0
        k = 0
        for b in ends:
            if b < a:
                continue
            while k < len(inside) and inside[k][0] <= b:
                demand += inside[k][1]
                k += 1
            if demand > m * (b - a + 1):
                return (a, b, demand)
    return None


def necessary_conditions(system: TaskSystem, m: int) -> list[NecessaryCheck]:
    """All implemented necessary conditions, most basic first.

    Any failing check proves the instance infeasible on ``m`` identical
    processors; all passing proves nothing (the conditions are necessary,
    not sufficient).
    """
    checks: list[NecessaryCheck] = []

    u = system.utilization
    r = system.utilization_ratio(m)
    checks.append(
        NecessaryCheck(
            "utilization",
            r <= 1,
            f"U = {u} = {float(u):.3f}, r = U/m = {float(r):.3f}",
        )
    )

    bad = [i for i, t in enumerate(system) if t.wcet > t.deadline]
    checks.append(
        NecessaryCheck(
            "wcet-within-deadline",
            not bad,
            "every task has C <= D" if not bad else f"tasks {bad} have C > D",
        )
    )

    witness = demand_over_capacity_witness(system, m)
    checks.append(
        NecessaryCheck(
            "interval-demand",
            witness is None,
            "no over-demanded scan interval found"
            if witness is None
            else f"slots [{witness[0]}, {witness[1]}] enclose demand {witness[2]} "
            f"> capacity {m * (witness[1] - witness[0] + 1)}",
        )
    )
    return checks
