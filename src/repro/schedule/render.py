"""ASCII rendering: availability-interval charts (Figure 1) and Gantt tables.

:func:`render_intervals` reproduces the paper's Figure 1 — the pattern of
availability intervals of every task over one hyperperiod — as text:

    tau1  |##|##|##|##|##|##|       D1 = T1 = 2
    tau2  .####.####.####            O2 = 1, D2 = T2 = 4
    ...

:func:`render_gantt` prints a solved schedule, one row per processor.
"""

from __future__ import annotations

from repro.model import intervals
from repro.model.system import TaskSystem
from repro.schedule.schedule import IDLE, Schedule

__all__ = ["render_intervals", "render_gantt"]


def _ruler(T: int, cell: int, indent: int) -> str:
    """Slot-number ruler printed above charts."""
    parts = []
    for t in range(T):
        parts.append(str(t).rjust(cell))
    return " " * indent + "".join(parts)


def render_intervals(system: TaskSystem, mark: str = "#", gap: str = ".") -> str:
    """Figure 1: one row per task, ``mark`` on window slots, ``gap`` elsewhere.

    Window starts are drawn with ``[`` so adjacent windows stay readable
    (tau1 in the running example has back-to-back windows).
    """
    if len(mark) != 1 or len(gap) != 1:
        raise ValueError("mark and gap must be single characters")
    T = system.hyperperiod
    name_w = max(len(t.name or "") for t in system) + 2
    cell = max(2, len(str(T - 1)) + 1)
    lines = [f"hyperperiod T = {T}", _ruler(T, cell, name_w)]
    for i, task in enumerate(system):
        row = []
        for t in range(T):
            job = intervals.active_job(task, T, t)
            if job is None:
                ch = gap
            elif t == intervals.job_release(task, job):
                ch = "["
            else:
                ch = mark
            row.append(ch.rjust(cell))
        params = f"  O={task.offset} C={task.wcet} D={task.deadline} T={task.period}"
        lines.append((task.name or f"tau{i+1}").ljust(name_w) + "".join(row) + params)
    return "\n".join(lines)


def render_gantt(schedule: Schedule, idle: str = ".") -> str:
    """One row per processor; cells show 1-based task numbers (paper style)."""
    if len(idle) != 1:
        raise ValueError("idle must be a single character")
    system = schedule.system
    T = schedule.horizon
    cell = max(2, len(str(system.n)) + 1, len(str(T - 1)) + 1)
    name_w = len(f"P{schedule.m}") + 2
    lines = [_ruler(T, cell, name_w)]
    for j in range(schedule.m):
        row = []
        for t in range(T):
            e = schedule.entry(j, t)
            row.append((idle if e == IDLE else str(e + 1)).rjust(cell))
        lines.append(f"P{j + 1}".ljust(name_w) + "".join(row))
    return "\n".join(lines)
