"""Schedule substrate: cyclic schedule tables, validation, rendering, metrics.

A schedule is the paper's ``sigma : N -> {0,1,..,n}^m`` restricted to one
hyperperiod (Section II / Theorem 1): an ``m x T`` table whose entry
``(j, t)`` is the 0-based task index running on processor ``P_j`` in slot
``t``, or ``IDLE`` (-1).  The infinite schedule is the table repeated every
``T`` slots.
"""

from repro.schedule.schedule import IDLE, Schedule
from repro.schedule.validate import ValidationResult, Violation, validate
from repro.schedule.metrics import ScheduleMetrics, compute_metrics
from repro.schedule.render import render_gantt, render_intervals
from repro.schedule.io import schedule_from_dict, schedule_to_dict
from repro.schedule.segments import JobTrace, Segment, extract_traces

__all__ = [
    "JobTrace",
    "Segment",
    "extract_traces",
    "IDLE",
    "Schedule",
    "ValidationResult",
    "Violation",
    "validate",
    "ScheduleMetrics",
    "compute_metrics",
    "render_gantt",
    "render_intervals",
    "schedule_from_dict",
    "schedule_to_dict",
]
