"""Canonical JSON (de)serialization for systems, platforms and schedules.

One stable on-disk schema shared by the CLI, the experiment harness and
downstream users::

    system:    {"tasks": [[O, C, D, T], ...], "names": [...]?}
    platform:  {"kind": "identical", "m": 2}
             | {"kind": "uniform", "speeds": [2, 1]}
             | {"kind": "heterogeneous", "rates": [[...], ...]}
    schedule:  {"system": ..., "platform": ..., "table": [[...], ...]}
    instance:  {"tasks": ..., "m": 2}            (generator output), or
               {"tasks": ..., "platform": ...}

Everything round-trips exactly (integers only, no floats involved).
"""

from __future__ import annotations

import json
from typing import Any

from repro.model.platform import Platform
from repro.model.system import TaskSystem
from repro.schedule.schedule import Schedule

__all__ = [
    "system_to_dict",
    "system_from_dict",
    "platform_to_dict",
    "platform_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
    "load_instance",
    "dump_json",
]


def system_to_dict(system: TaskSystem) -> dict[str, Any]:
    """Serialize a task system (names kept only if any were customized)."""
    out: dict[str, Any] = {"tasks": [list(t.as_tuple()) for t in system]}
    names = [t.name for t in system]
    if names != [f"tau{i + 1}" for i in range(system.n)]:
        out["names"] = names
    return out


def system_from_dict(data: dict[str, Any]) -> TaskSystem:
    """Inverse of :func:`system_to_dict`."""
    if "tasks" not in data:
        raise ValueError("system JSON needs a 'tasks' list")
    return TaskSystem.from_tuples(data["tasks"], names=data.get("names"))


def platform_to_dict(platform: Platform) -> dict[str, Any]:
    """Serialize a platform."""
    if platform.kind == "identical":
        return {"kind": "identical", "m": platform.m}
    if platform.kind == "uniform":
        return {
            "kind": "uniform",
            "speeds": [platform.rate(0, j) for j in range(platform.m)],
        }
    return {
        "kind": "heterogeneous",
        "rates": platform.rate_matrix(platform.n_tasks).tolist(),
    }


def platform_from_dict(data: dict[str, Any]) -> Platform:
    """Inverse of :func:`platform_to_dict`."""
    kind = data.get("kind")
    if kind == "identical":
        return Platform.identical(int(data["m"]))
    if kind == "uniform":
        return Platform.uniform(data["speeds"])
    if kind == "heterogeneous":
        return Platform.heterogeneous(data["rates"])
    raise ValueError(f"unknown platform kind {kind!r}")


def schedule_to_dict(schedule: Schedule) -> dict[str, Any]:
    """Serialize a schedule with its system and platform (self-contained)."""
    return {
        "system": system_to_dict(schedule.system),
        "platform": platform_to_dict(schedule.platform),
        "table": schedule.table.tolist(),
    }


def schedule_from_dict(data: dict[str, Any]) -> Schedule:
    """Inverse of :func:`schedule_to_dict`.

    Also accepts the legacy flat form ``{"tasks": .., "m": .., "table": ..}``.
    """
    if "system" in data:
        system = system_from_dict(data["system"])
        platform = platform_from_dict(data["platform"])
    else:
        system = system_from_dict(data)
        platform = Platform.identical(int(data["m"]))
    return Schedule(system, platform, data["table"])


def load_instance(data: dict[str, Any]) -> tuple[TaskSystem, Platform]:
    """Parse an instance dict: a system plus either ``m`` or ``platform``."""
    system = system_from_dict(data)
    if "platform" in data:
        platform = platform_from_dict(data["platform"])
    elif "m" in data:
        platform = Platform.identical(int(data["m"]))
    else:
        raise ValueError("instance JSON needs 'm' or 'platform'")
    return system, platform


def dump_json(data: dict[str, Any]) -> str:
    """Consistent JSON formatting for all files this library writes."""
    return json.dumps(data, indent=2) + "\n"
