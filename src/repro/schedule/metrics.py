"""Schedule quality metrics: migrations, preemptions, processor load.

Global scheduling permits task- and job-level migration (paper Section I);
these metrics quantify how much a concrete schedule actually migrates,
which is useful when comparing solver outputs (the CSPs have no objective,
so different heuristics produce structurally different feasible schedules).

All metrics are computed per *job* over its availability window in window
order (release-first, following cyclic wrap), so cyclic schedules are
measured exactly like their unrolled steady state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model import intervals
from repro.schedule.schedule import IDLE, Schedule

__all__ = ["ScheduleMetrics", "compute_metrics"]


@dataclass(frozen=True)
class ScheduleMetrics:
    """Aggregated metrics of one cyclic schedule.

    Attributes
    ----------
    migrations:
        Number of times a job resumes on a different processor than the one
        it last executed on (job-level migration count per hyperperiod).
    preemptions:
        Number of times a job stops executing before completion and resumes
        later in its window (gaps between executed slots).
    busy_slots:
        Non-idle processor slots per hyperperiod.
    idle_slots:
        Idle processor slots per hyperperiod.
    processor_load:
        Fraction of busy slots per processor, length ``m``.
    jobs:
        Total jobs per hyperperiod.
    """

    migrations: int
    preemptions: int
    busy_slots: int
    idle_slots: int
    processor_load: tuple[float, ...]
    jobs: int

    @property
    def total_slots(self) -> int:
        return self.busy_slots + self.idle_slots

    @property
    def utilization_achieved(self) -> float:
        """Busy fraction of the whole platform."""
        return self.busy_slots / self.total_slots if self.total_slots else 0.0


def compute_metrics(schedule: Schedule) -> ScheduleMetrics:
    """Compute :class:`ScheduleMetrics` for a (preferably valid) schedule."""
    system = schedule.system
    T = schedule.horizon  # multiple of the hyperperiod
    table = schedule.table

    migrations = 0
    preemptions = 0
    jobs = 0
    for i in range(system.n):
        task = system[i]
        for job in range(T // task.period):
            jobs += 1
            slots = intervals.window_slots(task, T, job)
            # processors used, in window order; None where the job idles
            execs: list[int] = []
            gap_since_last = False
            last_proc: int | None = None
            for s in slots:
                col = table[:, s]
                procs = np.flatnonzero(col == i)
                if len(procs) == 0:
                    if last_proc is not None:
                        gap_since_last = True
                    continue
                j = int(procs[0])
                if last_proc is not None:
                    if gap_since_last:
                        preemptions += 1
                    if j != last_proc:
                        migrations += 1
                last_proc = j
                gap_since_last = False
                execs.append(j)

    busy = int((table != IDLE).sum())
    idle = table.size - busy
    load = tuple(float((table[j] != IDLE).mean()) for j in range(schedule.m))
    return ScheduleMetrics(
        migrations=migrations,
        preemptions=preemptions,
        busy_slots=busy,
        idle_slots=idle,
        processor_load=load,
        jobs=jobs,
    )
