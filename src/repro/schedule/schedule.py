"""The cyclic schedule table."""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import numpy as np

from repro.model.platform import Platform
from repro.model.system import TaskSystem

__all__ = ["IDLE", "Schedule"]

#: Entry marking an idle processor slot (the paper's value "0" in sigma and
#: "-1" in CSP2; we use -1 so task indices can stay 0-based).
IDLE: int = -1


class Schedule:
    """An ``m x T`` cyclic schedule for a task system on a platform.

    The table is validated for *shape and entry range* at construction;
    semantic validation (the paper's conditions C1-C4) lives in
    :func:`repro.schedule.validate.validate` so that invalid schedules can
    still be constructed, inspected and rendered while debugging solvers.
    """

    __slots__ = ("system", "platform", "table")

    def __init__(
        self,
        system: TaskSystem,
        platform: Platform,
        table: np.ndarray | Iterable[Iterable[int]],
    ) -> None:
        self.system = system
        self.platform = platform
        tab = np.array(table, dtype=np.int32, copy=True)
        if tab.ndim != 2:
            raise ValueError(f"schedule table must be 2-D, got shape {tab.shape}")
        m, T = tab.shape
        if m != platform.m:
            raise ValueError(f"table has {m} processor rows, platform has {platform.m}")
        if T == 0 or T % system.hyperperiod != 0:
            raise ValueError(
                f"table has {T} slots; must be a positive multiple of the "
                f"hyperperiod {system.hyperperiod} (a period-kT cyclic schedule "
                "is still cyclic — clone merging produces k > 1)"
            )
        if tab.min(initial=IDLE) < IDLE or tab.max(initial=IDLE) >= system.n:
            raise ValueError(
                f"table entries must be {IDLE} (idle) or task indices 0..{system.n - 1}"
            )
        tab.setflags(write=False)
        self.table = tab

    # -- constructors ---------------------------------------------------------
    @classmethod
    def empty(cls, system: TaskSystem, platform: Platform) -> "Schedule":
        """All-idle schedule."""
        return cls(
            system,
            platform,
            np.full((platform.m, system.hyperperiod), IDLE, dtype=np.int32),
        )

    @classmethod
    def from_assignment(
        cls,
        system: TaskSystem,
        platform: Platform,
        assignment: Mapping[tuple[int, int], int],
    ) -> "Schedule":
        """Build from a sparse ``{(processor, slot): task}`` mapping."""
        tab = np.full((platform.m, system.hyperperiod), IDLE, dtype=np.int32)
        for (j, t), i in assignment.items():
            tab[j, t] = i
        return cls(system, platform, tab)

    # -- accessors -------------------------------------------------------------
    @property
    def m(self) -> int:
        """Number of processors."""
        return int(self.table.shape[0])

    @property
    def horizon(self) -> int:
        """Cycle length (the hyperperiod ``T``)."""
        return int(self.table.shape[1])

    def entry(self, j: int, t: int) -> int:
        """Task on processor ``j`` at cyclic slot ``t`` (``IDLE`` if none).

        ``t`` may be any non-negative absolute slot; it is reduced mod T
        (Theorem 1's periodic extension)."""
        return int(self.table[j, t % self.horizon])

    def tasks_at(self, t: int) -> list[int]:
        """Sorted task indices running (on any processor) in slot ``t``."""
        col = self.table[:, t % self.horizon]
        return sorted(int(x) for x in col[col != IDLE])

    def processor_of(self, i: int, t: int) -> int | None:
        """Processor running task ``i`` at slot ``t``, or None."""
        js = np.flatnonzero(self.table[:, t % self.horizon] == i)
        if len(js) == 0:
            return None
        # C3 violations (task on several processors) are reported by the
        # validator; here we return the lowest processor.
        return int(js[0])

    def task_assignments(self, i: int) -> list[tuple[int, int]]:
        """All ``(processor, slot)`` pairs where task ``i`` runs, slot-major."""
        js, ts = np.nonzero(self.table == i)
        return sorted(zip((int(j) for j in js), (int(t) for t in ts)), key=lambda p: (p[1], p[0]))

    def busy_slots(self) -> int:
        """Total non-idle entries in the table."""
        return int((self.table != IDLE).sum())

    def unroll(self, cycles: int) -> np.ndarray:
        """The table repeated ``cycles`` times along the time axis."""
        if cycles < 1:
            raise ValueError(f"cycles must be >= 1, got {cycles}")
        return np.tile(self.table, (1, cycles))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return (
            self.system == other.system
            and self.platform == other.platform
            and bool(np.array_equal(self.table, other.table))
        )

    def __repr__(self) -> str:
        return f"Schedule(m={self.m}, T={self.horizon}, busy={self.busy_slots()})"
