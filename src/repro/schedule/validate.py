"""Semantic validation of cyclic schedules: the paper's conditions C1-C4.

Section III-C defines feasibility of an MGRTS schedule by four conditions:

* **C1** every unit of task ``i`` is placed inside one of its availability
  windows;
* **C2** each processor runs at most one task per slot — structurally
  guaranteed by the table representation (one entry per ``(j, t)``);
* **C3** a task runs on at most one processor per slot (no intra-task
  parallelism);
* **C4** each job receives *exactly* ``C_i`` units of execution within its
  window — on heterogeneous platforms, ``sum s_{i,j}`` over its slots
  (paper constraints (5)/(9)/(11)/(12)).

The validator reports *all* violations with precise coordinates rather than
failing fast, which is what you want when debugging a solver.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model import intervals
from repro.schedule.schedule import IDLE, Schedule

__all__ = ["Violation", "ValidationResult", "validate"]


@dataclass(frozen=True)
class Violation:
    """One broken constraint occurrence.

    ``kind`` is one of ``"C1"``, ``"C3"``, ``"C4"``.  ``task``/``job``/
    ``slot``/``processor`` locate it (fields not applicable are None).
    """

    kind: str
    message: str
    task: int | None = None
    job: int | None = None
    slot: int | None = None
    processor: int | None = None

    def __str__(self) -> str:
        return f"[{self.kind}] {self.message}"


@dataclass(frozen=True)
class ValidationResult:
    """Outcome of :func:`validate`."""

    violations: tuple[Violation, ...]

    @property
    def ok(self) -> bool:
        """True iff the schedule is feasible (C1-C4 all hold)."""
        return not self.violations

    def by_kind(self, kind: str) -> list[Violation]:
        """Violations of one kind."""
        return [v for v in self.violations if v.kind == kind]

    def raise_if_invalid(self) -> None:
        """Raise ``ValueError`` listing every violation (if any)."""
        if self.violations:
            lines = "\n".join(str(v) for v in self.violations)
            raise ValueError(f"infeasible schedule ({len(self.violations)} violations):\n{lines}")


def validate(schedule: Schedule) -> ValidationResult:
    """Check C1, C3 and C4 on a cyclic schedule (C2 holds by construction).

    Requires a constrained-deadline system (``D_i <= T_i`` for all ``i``) —
    arbitrary-deadline systems must be validated through their cloned form,
    exactly as they must be solved through it (paper Section VI-B).
    """
    system = schedule.system
    platform = schedule.platform
    if not system.is_constrained:
        raise ValueError(
            "validate() needs a constrained system; apply "
            "clone_for_arbitrary_deadlines() and validate the cloned schedule"
        )
    # the table horizon is a multiple of the hyperperiod; validate over the
    # full horizon so period-kT schedules are checked job by job
    T = schedule.horizon
    violations: list[Violation] = []

    # accumulated execution per (task, job): C4 checked against these
    received: list[list[int]] = [
        [0] * (T // system[i].period) for i in range(system.n)
    ]

    table = schedule.table
    for t in range(T):
        seen_at_t: dict[int, int] = {}
        for j in range(schedule.m):
            i = int(table[j, t])
            if i == IDLE:
                continue
            # C3: one processor per task per slot
            if i in seen_at_t:
                violations.append(
                    Violation(
                        "C3",
                        f"task {i} runs on processors {seen_at_t[i]} and {j} at slot {t}",
                        task=i,
                        slot=t,
                        processor=j,
                    )
                )
            else:
                seen_at_t[i] = j
            # C1: inside an availability window
            job = intervals.active_job(system[i], T, t)
            if job is None:
                violations.append(
                    Violation(
                        "C1",
                        f"task {i} scheduled at slot {t} outside any availability window",
                        task=i,
                        slot=t,
                        processor=j,
                    )
                )
                continue
            rate = platform.rate(i, j)
            if rate == 0:
                # heterogeneous s_ij = 0: P_j cannot serve tau_i.  This is a
                # domain violation of the encodings; report it under C4
                # since it corrupts the execution count.
                violations.append(
                    Violation(
                        "C4",
                        f"task {i} scheduled on processor {j} with rate 0 at slot {t}",
                        task=i,
                        job=job,
                        slot=t,
                        processor=j,
                    )
                )
            received[i][job] += rate

    # C4: exactly C_i units per job window
    for i in range(system.n):
        C = system[i].wcet
        for job, got in enumerate(received[i]):
            if got != C:
                violations.append(
                    Violation(
                        "C4",
                        f"job {job} of task {i} received {got} units, needs exactly {C}",
                        task=i,
                        job=job,
                    )
                )

    return ValidationResult(tuple(violations))
