"""Execution-segment extraction: schedules as per-job event traces.

A cyclic table answers "who runs at slot t"; downstream tooling (trace
viewers, WCRT measurement, migration accounting) wants the dual view:
for each *job*, the list of contiguous execution segments in window order.
This module extracts that trace, cyclically correct (wrapped windows
produce segments whose window order differs from scan order).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model import intervals
from repro.schedule.schedule import Schedule

__all__ = ["Segment", "JobTrace", "extract_traces"]


@dataclass(frozen=True)
class Segment:
    """A maximal run of consecutive window slots on one processor.

    ``window_pos`` is the 0-based offset of the segment's first unit
    within the job's availability window (so wrap-around is already
    normalized away); ``start_slot`` is the corresponding cyclic slot.
    """

    processor: int
    window_pos: int
    start_slot: int
    length: int


@dataclass(frozen=True)
class JobTrace:
    """All execution segments of one job, in window order."""

    task: int
    job: int
    release_slot: int
    segments: tuple[Segment, ...]

    @property
    def units(self) -> int:
        """Total execution received (== C_i for a feasible schedule)."""
        return sum(s.length for s in self.segments)

    @property
    def migrations(self) -> int:
        """Processor changes between consecutive segments."""
        return sum(
            1
            for a, b in zip(self.segments, self.segments[1:])
            if a.processor != b.processor
        )

    @property
    def preemptions(self) -> int:
        """Times the job stopped with work remaining and resumed later
        (a gap in window positions between consecutive segments)."""
        return sum(
            1
            for a, b in zip(self.segments, self.segments[1:])
            if b.window_pos > a.window_pos + a.length
        )

    @property
    def completion_pos(self) -> int | None:
        """Window position right after the last executed unit (None if the
        job never ran) — a response-time measure in window coordinates."""
        if not self.segments:
            return None
        last = self.segments[-1]
        return last.window_pos + last.length


def extract_traces(schedule: Schedule) -> list[JobTrace]:
    """Extract every job's execution trace from a cyclic schedule.

    Works for feasible *and* partial schedules (segments simply cover
    whatever units are present).  Segments are maximal runs of units that
    are consecutive in *window order* and stay on one processor; a run is
    broken by an idle window slot (preemption) or a processor change
    (migration).
    """
    system = schedule.system
    T = schedule.horizon
    traces: list[JobTrace] = []
    for i in range(system.n):
        task = system[i]
        for job in range(T // task.period):
            slots = intervals.window_slots(task, T, job)
            segments: list[Segment] = []
            cur: list | None = None  # [proc, window_pos, start_slot, length]
            last_ran_pos = None
            for pos, s in enumerate(slots):
                proc = schedule.processor_of(i, s)
                if proc is None:
                    if cur is not None:
                        segments.append(Segment(*cur))
                        cur = None
                    continue
                contiguous = last_ran_pos == pos - 1
                if cur is not None and cur[0] == proc and contiguous:
                    cur[3] += 1
                else:
                    if cur is not None:
                        segments.append(Segment(*cur))
                    cur = [proc, pos, s, 1]
                last_ran_pos = pos
            if cur is not None:
                segments.append(Segment(*cur))
            traces.append(
                JobTrace(
                    task=i,
                    job=job,
                    release_slot=intervals.job_release(task, job),
                    segments=tuple(segments),
                )
            )
    return traces
