"""The solver service wire protocol: JSONL envelopes, caps, cache keys.

One JSON object per line, both directions.  The server speaks first with
a ``hello`` line advertising the protocol version, the solver names it
can run, its budget caps and its admission window; after that the client
streams request lines and the server streams response lines, each tagged
with the request's ``id``, so responses may interleave freely with
requests (and with each other — completion order is not request order).

Request lines (client -> server)::

    {"id": <any>, "type": "solve", "problem": {Problem.to_dict...},
     "solver": "<SolverSpec string>", "options": {...}}
    {"id": <any>, "type": "stats"}
    {"id": <any>, "type": "shutdown"}

Response lines (server -> client)::

    {"id": ..., "type": "report", "key": "<cell key>", "cached": bool,
     "report": {SolveReport.to_dict...}}
    {"id": ..., "type": "stats", "stats": {...counters...}}
    {"id": ..., "type": "ok"}                       (shutdown ack)
    {"id": ..., "type": "error", "code": "...", "detail": "..."}

Error codes: ``busy`` (admission window full — resubmit later),
``bad-request`` (malformed line, bad problem payload, non-positive or
non-identical-platform request), ``unknown-solver`` (name does not parse
or resolve), ``internal`` (a server-side bug; the connection survives).

Per-request budgets ride the problem payload — ``time_limit`` (wall),
``node_limit`` (search nodes) and ``variable_limit`` (the memory guard)
— and are validated server-side, then clamped to the server's
:class:`ServiceCaps` by :func:`clamp_problem`: a missing wall budget
gets the server default, an over-cap budget is reduced, a non-positive
budget is rejected.  :func:`request_cell` maps the clamped request onto
the batch layer's content-addressed key space
(:func:`~repro.batch.cells.cell_key`), which is what lets the service
serve identical cells from the shared memo cache without re-solving.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Any

from repro.batch.cells import DEFAULT_VARIABLE_LIMIT, Cell, cell_key
from repro.solvers.problem import Problem
from repro.solvers.registry import is_solver_name, solver_info
from repro.solvers.spec import SolverSpec

__all__ = [
    "PROTOCOL",
    "ERR_BUSY",
    "ERR_BAD_REQUEST",
    "ERR_UNKNOWN_SOLVER",
    "ERR_INTERNAL",
    "ProtocolError",
    "ServiceCaps",
    "clamp_problem",
    "parse_solve_request",
    "request_cell",
    "encode",
    "hello_line",
    "report_line",
    "stats_line",
    "ok_line",
    "error_line",
]

#: protocol identifier sent in the hello line; bump on breaking changes
PROTOCOL = "repro-service/v1"

#: admission window full; the request was not enqueued — resubmit later
ERR_BUSY = "busy"
#: malformed or invalid request (bad JSON, bad payload, bad budgets)
ERR_BAD_REQUEST = "bad-request"
#: solver name does not parse or resolve in the registry
ERR_UNKNOWN_SOLVER = "unknown-solver"
#: server-side failure outside the supervised solve path
ERR_INTERNAL = "internal"


class ProtocolError(ValueError):
    """A request the server rejects with a structured error line."""

    def __init__(self, code: str, detail: str) -> None:
        super().__init__(detail)
        self.code = code
        self.detail = detail


@dataclass(frozen=True)
class ServiceCaps:
    """Server-side budget ceilings applied to every request.

    Attributes
    ----------
    max_time_limit:
        Hard wall-budget ceiling in seconds (the paper ran 30 s budgets;
        that is the default ceiling).
    default_time_limit:
        Wall budget granted to requests that carry none — the service
        never runs an unbounded search.
    max_node_limit:
        Ceiling on per-request node budgets; ``None`` leaves node
        budgets uncapped (a wall budget still applies).
    max_variable_limit:
        Ceiling on the memory-guard budget; requests carrying none get
        this value, so memory-bound encodings are always guarded.
    """

    max_time_limit: float = 30.0
    default_time_limit: float = 5.0
    max_node_limit: int | None = None
    max_variable_limit: int = DEFAULT_VARIABLE_LIMIT

    def to_dict(self) -> dict[str, Any]:
        """JSON form advertised in the hello line."""
        return {
            "max_time_limit": self.max_time_limit,
            "default_time_limit": self.default_time_limit,
            "max_node_limit": self.max_node_limit,
            "max_variable_limit": self.max_variable_limit,
        }


def clamp_problem(problem: Problem, caps: ServiceCaps) -> Problem:
    """``problem`` with its budgets validated and clamped to the caps.

    A missing wall budget becomes the server default; budgets above a
    ceiling are reduced to it; a non-positive budget is a
    ``bad-request`` (zero means "no work", which a client should not
    ask a server to pretend to do).  The returned problem is what the
    service actually solves *and* what its response reports, so clamping
    is always visible to the client.
    """
    time_limit = problem.time_limit
    if time_limit is None:
        time_limit = caps.default_time_limit
    elif time_limit <= 0:
        raise ProtocolError(
            ERR_BAD_REQUEST, f"time_limit must be > 0, got {time_limit}"
        )
    time_limit = min(time_limit, caps.max_time_limit)
    node_limit = problem.node_limit
    if node_limit is not None:
        if node_limit <= 0:
            raise ProtocolError(
                ERR_BAD_REQUEST, f"node_limit must be > 0, got {node_limit}"
            )
        if caps.max_node_limit is not None:
            node_limit = min(node_limit, caps.max_node_limit)
    variable_limit = problem.variable_limit
    if variable_limit is None:
        variable_limit = caps.max_variable_limit
    elif variable_limit <= 0:
        raise ProtocolError(
            ERR_BAD_REQUEST,
            f"variable_limit must be > 0, got {variable_limit}",
        )
    else:
        variable_limit = min(variable_limit, caps.max_variable_limit)
    return replace(
        problem,
        time_limit=time_limit,
        node_limit=node_limit,
        variable_limit=variable_limit,
    )


@dataclass(frozen=True)
class SolveRequest:
    """One admitted, validated, clamped solve request."""

    id: Any
    problem: Problem
    solver: str
    options: dict[str, Any]
    key: str


def parse_solve_request(
    entry: dict, caps: ServiceCaps
) -> SolveRequest:
    """Validate one decoded ``solve`` envelope into a :class:`SolveRequest`.

    Raises :class:`ProtocolError` (``bad-request`` / ``unknown-solver``)
    on anything the server should refuse: missing fields, a problem
    payload that does not decode, a solver name that does not resolve,
    options the solver does not accept, bad budgets, or a platform the
    service's cache-key space cannot address.
    """
    if "problem" not in entry:
        raise ProtocolError(ERR_BAD_REQUEST, "solve request has no 'problem'")
    solver = entry.get("solver")
    if not isinstance(solver, str) or not solver.strip():
        raise ProtocolError(
            ERR_BAD_REQUEST, "solve request needs a 'solver' name string"
        )
    if not is_solver_name(solver):
        raise ProtocolError(
            ERR_UNKNOWN_SOLVER, f"unknown solver {solver!r}"
        )
    spec = SolverSpec.parse(solver)
    options = entry.get("options") or {}
    if not isinstance(options, dict):
        raise ProtocolError(ERR_BAD_REQUEST, "'options' must be an object")
    unknown = sorted(set(options) - set(solver_info(spec).options))
    if unknown:
        raise ProtocolError(
            ERR_BAD_REQUEST,
            f"unknown option(s) {unknown} for solver {spec.canonical!r}",
        )
    try:
        problem = Problem.from_dict(entry["problem"])
    except ProtocolError:
        raise
    except Exception as exc:
        raise ProtocolError(
            ERR_BAD_REQUEST, f"bad problem payload: {exc}"
        ) from exc
    problem = clamp_problem(problem, caps)
    key, _cell = request_cell(problem, spec.canonical)
    return SolveRequest(
        id=entry.get("id"),
        problem=problem,
        solver=spec.canonical,
        options=dict(options),
        key=key,
    )


def request_cell(problem: Problem, solver: str) -> tuple[str, Cell]:
    """Map a clamped request onto the batch layer's cache-key space.

    The memo layer is addressed by :func:`~repro.batch.cells.cell_key`,
    which keys identical-platform cells by content (system, m, solver,
    budgets, seed) — request-scoped bookkeeping (``label``) is
    deliberately outside the key, so two clients asking the same
    question share one cache entry.  Non-identical platforms have no
    cell form yet and are refused as ``bad-request``.
    """
    if not problem.platform.is_identical:
        raise ProtocolError(
            ERR_BAD_REQUEST,
            "the solver service only accepts identical platforms "
            f"(got {problem.platform.kind})",
        )
    cell = Cell(
        tasks=tuple(t.as_tuple() for t in problem.system),
        m=problem.platform.m,
        solver=solver,
        time_limit=problem.time_limit,
        csp1_variable_limit=problem.variable_limit,
        seed=problem.seed,
        node_limit=problem.node_limit,
    )
    return cell_key(cell), cell


# -- envelope builders ------------------------------------------------------

def encode(doc: dict) -> str:
    """One compact JSONL line (newline included)."""
    return json.dumps(doc, separators=(",", ":")) + "\n"


def hello_line(
    solvers: list[str], caps: ServiceCaps, max_pending: int
) -> str:
    """The server's first line on every connection."""
    return encode(
        {
            "type": "hello",
            "protocol": PROTOCOL,
            "solvers": list(solvers),
            "caps": caps.to_dict(),
            "max_pending": max_pending,
        }
    )


def report_line(request_id: Any, key: str, report, cached: bool) -> str:
    """A completed solve: the full ``SolveReport`` document."""
    return encode(
        {
            "id": request_id,
            "type": "report",
            "key": key,
            "cached": cached,
            "report": report.to_dict(),
        }
    )


def stats_line(request_id: Any, stats: dict) -> str:
    """The server's counters, answered in-line (never queued)."""
    return encode({"id": request_id, "type": "stats", "stats": dict(stats)})


def ok_line(request_id: Any) -> str:
    """Plain acknowledgment (shutdown)."""
    return encode({"id": request_id, "type": "ok"})


def error_line(request_id: Any, code: str, detail: str) -> str:
    """A structured refusal; the connection stays open."""
    return encode(
        {"id": request_id, "type": "error", "code": code, "detail": detail}
    )
