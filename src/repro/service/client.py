"""Thin blocking client for the solver service.

One socket, line-buffered JSONL both ways.  :class:`ServiceClient` keeps
the bookkeeping small and honest: it generates request ids, matches
interleaved response lines back to requests, and exposes three levels of
API —

* :meth:`~ServiceClient.submit` / :meth:`~ServiceClient.recv` — raw
  pipelining for callers that manage their own windows;
* :meth:`~ServiceClient.solve` — one problem, blocking, returning the
  decoded :class:`~repro.solvers.problem.SolveReport` (or raising
  :class:`ServiceError` on a structured refusal);
* :meth:`~ServiceClient.solve_many` — a whole problem list pipelined
  under the server's advertised admission window, results returned in
  *submission* order regardless of completion order.

The client is deliberately synchronous: campaign drivers, the
``repro-mgrts submit`` subcommand and the tests all want call-and-wait
semantics; the asyncio complexity stays on the server side.
"""

from __future__ import annotations

import json
import socket
from typing import Any

from repro.service.protocol import PROTOCOL, encode

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A structured refusal (or a dead connection) from the service."""

    def __init__(self, code: str, detail: str) -> None:
        super().__init__(f"{code}: {detail}")
        self.code = code
        self.detail = detail


class ServiceClient:
    """A connected JSONL session with one solver daemon."""

    def __init__(self, rfile, wfile, sock: socket.socket | None = None) -> None:
        self._rfile = rfile
        self._wfile = wfile
        self._sock = sock
        self._next_id = 0
        #: responses read while waiting for a different id
        self._mailbox: dict[Any, dict] = {}
        #: the server's hello line (protocol, solvers, caps, max_pending)
        self.hello = self._read_hello()

    @classmethod
    def connect(
        cls, host: str, port: int, timeout: float | None = 60.0
    ) -> "ServiceClient":
        """Open a TCP session to a daemon and read its hello line."""
        sock = socket.create_connection((host, port), timeout=timeout)
        rfile = sock.makefile("r", encoding="utf-8", newline="\n")
        wfile = sock.makefile("w", encoding="utf-8", newline="\n")
        return cls(rfile, wfile, sock=sock)

    def _read_hello(self) -> dict:
        line = self._rfile.readline()
        if not line:
            raise ServiceError("closed", "server closed before hello")
        hello = json.loads(line)
        proto = hello.get("protocol")
        if hello.get("type") != "hello" or proto != PROTOCOL:
            raise ServiceError(
                "bad-protocol",
                f"expected {PROTOCOL} hello, got {proto!r}",
            )
        return hello

    @property
    def max_pending(self) -> int:
        """The server's advertised admission window."""
        return int(self.hello.get("max_pending", 1))

    @property
    def solvers(self) -> list[str]:
        """Solver names the server advertises."""
        return list(self.hello.get("solvers", []))

    def close(self) -> None:
        """Close the session (the server finishes in-flight work)."""
        try:
            self._wfile.close()
            self._rfile.close()
        finally:
            if self._sock is not None:
                self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- raw pipelining -----------------------------------------------------
    def _fresh_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def _write(self, doc: dict) -> None:
        self._wfile.write(encode(doc))
        self._wfile.flush()

    def submit(
        self,
        problem,
        solver: str = "csp2+dc",
        options: dict | None = None,
    ) -> int:
        """Send one solve request; returns its id (response comes later)."""
        request_id = self._fresh_id()
        self._write(
            {
                "id": request_id,
                "type": "solve",
                "problem": problem.to_dict(),
                "solver": solver,
                "options": options or {},
            }
        )
        return request_id

    def recv(self, request_id: Any) -> dict:
        """Block until the response for ``request_id`` arrives.

        Responses interleave in completion order; anything read for a
        different id is parked and handed out when *its* turn comes.
        """
        if request_id in self._mailbox:
            return self._mailbox.pop(request_id)
        while True:
            line = self._rfile.readline()
            if not line:
                raise ServiceError(
                    "closed", "server closed with responses outstanding"
                )
            entry = json.loads(line)
            if entry.get("id") == request_id:
                return entry
            self._mailbox[entry.get("id")] = entry

    @staticmethod
    def _unwrap(entry: dict):
        """A response envelope -> SolveReport (raises on error lines)."""
        from repro.solvers.problem import SolveReport

        if entry.get("type") == "error":
            raise ServiceError(
                entry.get("code", "error"), entry.get("detail", "")
            )
        if entry.get("type") != "report":
            raise ServiceError(
                "bad-protocol", f"unexpected response {entry.get('type')!r}"
            )
        report = SolveReport.from_dict(entry["report"])
        return report, bool(entry.get("cached")), entry.get("key")

    # -- blocking conveniences ----------------------------------------------
    def solve(
        self,
        problem,
        solver: str = "csp2+dc",
        options: dict | None = None,
    ):
        """Solve one problem; returns its :class:`SolveReport`."""
        report, _cached, _key = self._unwrap(
            self.recv(self.submit(problem, solver, options))
        )
        return report

    def solve_many(
        self,
        problems,
        solver: str = "csp2+dc",
        options: dict | None = None,
        window: int | None = None,
        on_response=None,
    ) -> list:
        """Pipeline a problem list; reports come back in submission order.

        ``window`` bounds how many requests are in flight at once and is
        clipped to the server's advertised admission window, so a
        well-behaved client never triggers ``busy`` back-pressure.
        ``on_response(index, report, cached)`` (if given) fires as each
        response lands, in completion order.
        """
        problems = list(problems)
        limit = self.max_pending if window is None else min(
            window, self.max_pending
        )
        limit = max(1, limit)
        out: list = [None] * len(problems)
        ids: dict[int, int] = {}  # request id -> problem index
        sent = 0
        received = 0
        while received < len(problems):
            while sent < len(problems) and len(ids) < limit:
                ids[self.submit(problems[sent], solver, options)] = sent
                sent += 1
            # drain one response (any id) to open a window slot; parked
            # lines from an interleaved recv() count too
            parked = [i for i in list(self._mailbox) if i in ids]
            if parked:
                entry = self._mailbox.pop(parked[0])
            else:
                line = self._rfile.readline()
                if not line:
                    raise ServiceError(
                        "closed", "server closed with responses outstanding"
                    )
                entry = json.loads(line)
            request_id = entry.get("id")
            if request_id not in ids:
                self._mailbox[request_id] = entry
                continue
            index = ids.pop(request_id)
            report, cached, _key = self._unwrap(entry)
            out[index] = report
            received += 1
            if on_response is not None:
                on_response(index, report, cached)
        return out

    def stats(self) -> dict:
        """The server's counters."""
        request_id = self._fresh_id()
        self._write({"id": request_id, "type": "stats"})
        entry = self.recv(request_id)
        if entry.get("type") != "stats":
            raise ServiceError(
                "bad-protocol", f"unexpected response {entry.get('type')!r}"
            )
        return entry["stats"]

    def shutdown(self) -> None:
        """Ask the server to stop (requires ``allow_shutdown``)."""
        request_id = self._fresh_id()
        self._write({"id": request_id, "type": "shutdown"})
        entry = self.recv(request_id)
        if entry.get("type") == "error":
            raise ServiceError(
                entry.get("code", "error"), entry.get("detail", "")
            )
