"""The asyncio solver daemon: JSONL over TCP (and stdio, for testing).

:class:`SolverService` is one server object, transport-agnostic at both
ends: *listening* happens over TCP (:meth:`~SolverService.serve_tcp`)
or the process's own stdin/stdout (:meth:`~SolverService.serve_stdio`),
and *executing* happens on the batch layer's
:class:`~repro.batch.transport.Transport` seam (by default a
single-item supervised :class:`~repro.batch.transport.LocalPoolTransport`
per request — one watched child each, so a crashing or hanging solve
faults that request, never the daemon).

Request lifecycle:

1. **admission** — a ``solve`` line is validated and clamped
   (:func:`~repro.service.protocol.parse_solve_request`); when the
   number of admitted-but-unfinished requests has reached
   ``max_pending`` the server answers a structured ``busy`` error
   instead — back-pressure is always a protocol message, never a
   dropped connection;
2. **memo** — the request's cell key is looked up in the shared
   :class:`~repro.batch.cache.ReportCache`; a hit is served without
   re-solving (the response says ``"cached": true``), with only the
   request-scoped ``label`` patched onto the cached report;
3. **execution** — a miss runs on the transport under a concurrency
   semaphore (``jobs`` solves in flight); a transport fault becomes a
   ``fault:*`` report, exactly as a campaign journals it;
4. **journal, then respond** — every completed request is appended to
   the crash-safe JSONL journal (flushed per line, torn tail trimmed on
   reopen) *before* its response line is written, so a daemon killed
   mid-reply never loses a solved result.

``stats`` requests are answered inline from the counters; ``shutdown``
(when enabled) acknowledges, drains in-flight solves, then stops the
server.  Responses carry the request's ``id`` and interleave in
completion order.
"""

from __future__ import annotations

import asyncio
import json
import threading
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

from repro.batch.cache import ReportCache
from repro.batch.journal import trim_torn_tail
from repro.batch.supervise import DEFAULT_GRACE
from repro.batch.transport import LocalPoolTransport, Transport, WorkItem
from repro.service.protocol import (
    ERR_BAD_REQUEST,
    ERR_BUSY,
    ERR_INTERNAL,
    ProtocolError,
    ServiceCaps,
    SolveRequest,
    error_line,
    hello_line,
    ok_line,
    parse_solve_request,
    report_line,
    stats_line,
)
from repro.solvers.problem import Problem, fault_report, solve_problem
from repro.solvers.registry import available_solvers

__all__ = ["ServiceConfig", "SolverService", "ServiceHandle"]


def _solve_request_worker(payload, attempt: int):
    """Transport worker: solve one service request in a watched child.

    The payload is plain JSON-shaped data (problem dict, solver name,
    options dict) so it pickles into supervised children and process
    pools alike; the returned :class:`~repro.solvers.problem.SolveReport`
    pickles back.
    """
    problem_dict, solver, options = payload
    problem = Problem.from_dict(problem_dict)
    return solve_problem(problem, solver, **options)


@dataclass(frozen=True)
class ServiceConfig:
    """Everything a :class:`SolverService` is configured by.

    Attributes
    ----------
    jobs:
        Solves allowed in flight at once (each runs in its own watched
        child under the default transport).
    max_pending:
        Admission window: admitted-but-unfinished solve requests across
        all connections; the next one is answered ``busy``.
    caps:
        Budget ceilings applied to every request
        (:class:`~repro.service.protocol.ServiceCaps`).
    cache_dir:
        Root of the shared memo layer; reports live under
        ``<cache_dir>/reports`` (a :class:`~repro.batch.cache.ReportCache`
        — separate from a campaign ``ResultCache`` root, whose entries
        have a different shape).  ``None`` disables the memo.
    journal:
        JSONL path appended to as requests complete (``{"key": ...,
        "report": ...}`` lines); ``None`` disables journaling.
    supervised:
        Run each solve in a watched child (fault classification, wall
        watchdog, optional rlimit).  Turning it off executes in-process
        — faster for tests, but a crashing solve takes the daemon down.
    retries:
        Extra supervised attempts before a request is answered
        ``fault:*``.
    memory_limit:
        Per-child ``RLIMIT_AS`` in bytes (supervised only).
    grace:
        Watchdog headroom past each request's wall budget.
    allow_shutdown:
        Whether a ``shutdown`` request stops the daemon (tests and
        single-user servers want it; shared deployments disable it).
    """

    jobs: int = 2
    max_pending: int = 64
    caps: ServiceCaps = field(default_factory=ServiceCaps)
    cache_dir: str | None = None
    journal: str | None = None
    supervised: bool = True
    retries: int = 1
    memory_limit: int | None = None
    grace: float = DEFAULT_GRACE
    allow_shutdown: bool = True


class SolverService:
    """The daemon: admission, memo, transport execution, journaling."""

    def __init__(
        self, config: ServiceConfig | None = None,
        transport: Transport | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        if self.config.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.config.jobs}")
        if self.config.max_pending < 1:
            raise ValueError(
                f"max_pending must be >= 1, got {self.config.max_pending}"
            )
        if transport is None:
            # one watched child per request: concurrency comes from the
            # service's own semaphore, so the transport itself is serial
            transport = LocalPoolTransport(
                jobs=1,
                supervised=self.config.supervised,
                retries=self.config.retries,
                memory_limit=self.config.memory_limit,
                grace=self.config.grace,
            )
        self.transport = transport
        self.cache = None
        if self.config.cache_dir is not None:
            self.cache = ReportCache(Path(self.config.cache_dir) / "reports")
        self._journal_fh = None
        self._journal_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self._counters = {
            "received": 0,   # request lines that parsed at all
            "served": 0,     # solve responses written (cached + computed)
            "computed": 0,   # solves actually executed on the transport
            "cached": 0,     # solves answered from the memo layer
            "faulted": 0,    # computed solves that ended fault:*
            "errors": 0,     # structured error lines (busy included)
            "busy": 0,       # admission-window refusals
        }
        self._pending = 0
        self._solvers = available_solvers()
        # event-loop state, bound in serve_*()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._sem: asyncio.Semaphore | None = None
        self._tasks: dict[int, asyncio.Task] = {}
        self._conn_tasks: dict[int, asyncio.Task] = {}

    # -- counters -----------------------------------------------------------
    def _bump(self, name: str, delta: int = 1) -> None:
        with self._counter_lock:
            self._counters[name] += delta

    def stats(self) -> dict[str, Any]:
        """A snapshot of the server's counters."""
        with self._counter_lock:
            snap = dict(self._counters)
        snap["in_flight"] = self._pending
        snap["max_pending"] = self.config.max_pending
        snap["jobs"] = self.config.jobs
        if self.cache is not None:
            snap["cache_entries"] = len(self.cache)
        return snap

    # -- blocking execution (runs in executor threads) ----------------------
    def _journal_report(self, key: str, report) -> None:
        if self._journal_fh is None:
            return
        line = json.dumps(
            {"key": key, "report": report.to_dict()}, separators=(",", ":")
        )
        with self._journal_lock:
            self._journal_fh.write(line + "\n")
            self._journal_fh.flush()

    def _execute(self, req: SolveRequest) -> str:
        """Answer one admitted solve request; returns the response line.

        Blocking — always called off the event loop.  The completed
        report is journaled before the line is handed back for sending.
        """
        if self.cache is not None:
            hit = self.cache.get(req.key)
            if hit is not None:
                # the memo key ignores request-scoped bookkeeping; patch
                # this request's own (clamped) problem back on so the
                # client sees its label and budgets echoed
                report = replace(hit, problem=req.problem, index=0)
                self._bump("served")
                self._bump("cached")
                self._journal_report(req.key, report)
                return report_line(req.id, req.key, report, cached=True)
        item = WorkItem(
            key=req.key,
            fn=_solve_request_worker,
            payload=(req.problem.to_dict(), req.solver, req.options),
            wall_limit=req.problem.time_limit,
        )
        results = list(self.transport.execute([item]))
        res = results[0]
        if res.fault is not None:
            report = fault_report(
                req.problem, req.solver, res.fault.kind, res.fault.detail,
                attempts=res.fault.attempts,
            )
            self._bump("faulted")
        else:
            report = res.value
            if self.cache is not None:
                # faults are execution accidents, not properties of the
                # cell — only real answers enter the shared memo
                self.cache.put(req.key, report)
        self._bump("served")
        self._bump("computed")
        self._journal_report(req.key, report)
        return report_line(req.id, req.key, report, cached=False)

    # -- async plumbing -----------------------------------------------------
    async def _send(self, writer, wlock: asyncio.Lock, line: str) -> None:
        async with wlock:
            writer.write(line.encode())
            await writer.drain()

    async def _solve_task(
        self, req: SolveRequest, writer, wlock: asyncio.Lock
    ) -> None:
        try:
            async with self._sem:
                line = await asyncio.get_running_loop().run_in_executor(
                    None, self._execute, req
                )
        except Exception as exc:  # a server bug, not a solve fault
            self._bump("errors")
            line = error_line(
                req.id, ERR_INTERNAL, f"{type(exc).__name__}: {exc}"
            )
        finally:
            self._pending -= 1
        try:
            await self._send(writer, wlock, line)
        except (ConnectionError, OSError):
            pass  # client went away; the journal already has the result

    async def _dispatch(
        self, entry: dict, writer, wlock: asyncio.Lock
    ) -> tuple[bool, asyncio.Task | None]:
        """Handle one decoded request line.

        Returns ``(keep_connection, spawned_solve_task_or_None)``.
        """
        request_id = entry.get("id")
        kind = entry.get("type")
        if kind == "solve":
            try:
                req = parse_solve_request(entry, self.config.caps)
            except ProtocolError as exc:
                self._bump("errors")
                await self._send(
                    writer, wlock, error_line(request_id, exc.code, exc.detail)
                )
                return True, None
            if self._pending >= self.config.max_pending:
                # back-pressure is a message, never a dropped connection
                self._bump("errors")
                self._bump("busy")
                await self._send(
                    writer, wlock,
                    error_line(
                        request_id, ERR_BUSY,
                        f"admission window full "
                        f"({self.config.max_pending} pending); resubmit",
                    ),
                )
                return True, None
            self._pending += 1
            task = asyncio.ensure_future(self._solve_task(req, writer, wlock))
            self._tasks[id(task)] = task
            task.add_done_callback(lambda t: self._tasks.pop(id(t), None))
            return True, task
        if kind == "stats":
            await self._send(writer, wlock, stats_line(request_id, self.stats()))
            return True, None
        if kind == "shutdown":
            if not self.config.allow_shutdown:
                self._bump("errors")
                await self._send(
                    writer, wlock,
                    error_line(
                        request_id, ERR_BAD_REQUEST,
                        "remote shutdown is disabled on this server",
                    ),
                )
                return True, None
            await self._send(writer, wlock, ok_line(request_id))
            self._stop.set()
            return False, None
        self._bump("errors")
        await self._send(
            writer, wlock,
            error_line(
                request_id, ERR_BAD_REQUEST,
                f"unknown request type {kind!r}",
            ),
        )
        return True, None

    async def _handle_conn(self, reader, writer) -> None:
        """One client connection: hello, then request lines until EOF."""
        wlock = asyncio.Lock()
        conn_tasks: list[asyncio.Task] = []
        try:
            await self._send(
                writer, wlock,
                hello_line(
                    self._solvers, self.config.caps, self.config.max_pending
                ),
            )
            while not self._stop.is_set():
                raw = await reader.readline()
                if not raw:
                    break  # EOF: client finished sending
                line = raw.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    if not isinstance(entry, dict):
                        raise ValueError("request line is not an object")
                except ValueError as exc:
                    self._bump("errors")
                    await self._send(
                        writer, wlock,
                        error_line(
                            None, ERR_BAD_REQUEST, f"bad request line: {exc}"
                        ),
                    )
                    continue
                self._bump("received")
                keep, task = await self._dispatch(entry, writer, wlock)
                if task is not None:
                    conn_tasks = [t for t in conn_tasks if not t.done()]
                    conn_tasks.append(task)
                if not keep:
                    break
            # EOF/shutdown: finish this connection's in-flight responses
            # before closing — pipelined clients are still reading
            if conn_tasks:
                await asyncio.gather(
                    *[t for t in conn_tasks if not t.done()],
                    return_exceptions=True,
                )
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass  # client went away mid-line; in-flight work completes
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, NotImplementedError):
                # pipe transports (stdio) have no close waiter
                pass

    def _bind_loop(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._sem = asyncio.Semaphore(self.config.jobs)

    def _open_journal(self) -> None:
        if self.config.journal is None:
            return
        path = Path(self.config.journal)
        path.parent.mkdir(parents=True, exist_ok=True)
        # append across daemon restarts; a crash's torn tail is trimmed
        # so the journal stays pure JSONL
        trim_torn_tail(path)
        self._journal_fh = open(path, "a")

    def _close_journal(self) -> None:
        if self._journal_fh is not None:
            self._journal_fh.close()
            self._journal_fh = None

    async def _drain(self) -> None:
        """Wait out in-flight solves, then cancel idle connections."""
        pending = [t for t in self._tasks.values() if not t.done()]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        conns = [t for t in self._conn_tasks.values() if not t.done()]
        for task in conns:
            task.cancel()
        if conns:
            await asyncio.gather(*conns, return_exceptions=True)

    async def serve_tcp(
        self, host: str = "127.0.0.1", port: int = 0, ready=None
    ) -> None:
        """Listen on TCP until a shutdown request or :meth:`request_stop`.

        ``port=0`` binds an ephemeral port; ``ready`` (if given) is
        called with the bound ``(host, port)`` once the socket listens —
        how tests and the CLI learn the address.
        """
        self._bind_loop()
        self._open_journal()

        async def handler(reader, writer):
            task = asyncio.current_task()
            self._conn_tasks[id(task)] = task
            try:
                await self._handle_conn(reader, writer)
            except asyncio.CancelledError:
                pass  # shutdown drain cancelled an idle connection
            finally:
                self._conn_tasks.pop(id(task), None)

        server = await asyncio.start_server(handler, host=host, port=port)
        try:
            addr = server.sockets[0].getsockname()
            if ready is not None:
                ready((addr[0], addr[1]))
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            await self._drain()
            self._close_journal()

    async def serve_stdio(self) -> None:
        """Serve one session over this process's stdin/stdout."""
        import sys

        self._bind_loop()
        self._open_journal()
        loop = self._loop
        reader = asyncio.StreamReader()
        await loop.connect_read_pipe(
            lambda: asyncio.StreamReaderProtocol(reader), sys.stdin
        )
        w_transport, w_protocol = await loop.connect_write_pipe(
            asyncio.streams.FlowControlMixin, sys.stdout
        )
        writer = asyncio.StreamWriter(w_transport, w_protocol, reader, loop)
        try:
            await self._handle_conn(reader, writer)
            pending = [t for t in self._tasks.values() if not t.done()]
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        finally:
            self._close_journal()

    def request_stop(self) -> None:
        """Ask a serving loop (possibly on another thread) to stop."""
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # the loop already finished: nothing left to stop


class ServiceHandle:
    """A TCP daemon on a background thread — the in-process test/bench rig.

    ``start()`` returns the bound ``(host, port)`` once the server
    listens; ``stop()`` shuts it down and joins the thread.  Usable as a
    context manager.
    """

    def __init__(
        self, config: ServiceConfig | None = None,
        transport: Transport | None = None,
        host: str = "127.0.0.1",
    ) -> None:
        self.service = SolverService(config, transport=transport)
        self.host = host
        self._thread: threading.Thread | None = None
        self._addr: tuple[str, int] | None = None
        self._ready = threading.Event()

    def _run(self) -> None:
        def on_ready(addr):
            self._addr = addr
            self._ready.set()

        try:
            asyncio.run(self.service.serve_tcp(self.host, 0, ready=on_ready))
        finally:
            self._ready.set()  # unblock start() even on a bind failure

    def start(self) -> tuple[str, int]:
        """Launch the daemon; returns its bound address."""
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._addr is None:
            raise RuntimeError("service failed to start")
        return self._addr

    def stop(self) -> None:
        """Stop the daemon and join its thread."""
        self.service.request_stop()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None

    def __enter__(self) -> "ServiceHandle":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
