"""The solver service: a network front door for the solving engine.

The paper's experiments (Section VI) are large matrices of independent
:class:`~repro.solvers.problem.Problem` cells — the exact workload the
ROADMAP wants served from a shared daemon instead of re-run locally.
This package is that daemon plus its wire protocol and client:

* :mod:`repro.service.protocol` — the JSONL envelope schema: request
  lines in (``solve`` / ``stats`` / ``shutdown``), response lines out
  (``report`` / ``stats`` / ``error``), server caps and per-request
  budget clamping, and the request -> cache-key mapping;
* :mod:`repro.service.server` — :class:`SolverService`: an asyncio
  JSONL-over-TCP (and stdio) daemon executing on the batch layer's
  :class:`~repro.batch.transport.Transport` seam, with bounded
  admission (structured ``busy`` errors, never dropped connections), a
  shared :class:`~repro.batch.cache.ReportCache` memo layer and a
  crash-safe request journal;
* :mod:`repro.service.client` — :class:`ServiceClient`: the thin
  blocking client behind ``repro-mgrts submit`` and the tests.

``repro-mgrts serve`` starts a daemon, ``repro-mgrts submit`` streams a
problem file through one, and ``repro-mgrts journal merge`` reassembles
sharded journals (service or campaign) into one canonical artifact.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.protocol import PROTOCOL, ProtocolError, ServiceCaps
from repro.service.server import ServiceConfig, ServiceHandle, SolverService

__all__ = [
    "PROTOCOL",
    "ProtocolError",
    "ServiceCaps",
    "ServiceClient",
    "ServiceError",
    "ServiceConfig",
    "ServiceHandle",
    "SolverService",
]
