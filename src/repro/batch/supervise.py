"""Supervised execution: one work unit, one disposable child, one verdict.

The process pool treats a dead worker as a catastrophe
(``BrokenProcessPool`` aborts everything in flight).  The paper's own
experiments say workers *will* die — CSP1 "runs out of memory on large
instances" — so campaigns need the opposite stance: a child process is
*expected* to be killable, and its death is a classifiable result, not
an exception.

:func:`run_supervised` runs ``fn(payload)`` in a dedicated child with

* a **wall-clock watchdog** — the parent waits on the result pipe *and*
  the process sentinel (``multiprocessing.connection.wait``), so a child
  that dies without reporting is noticed immediately and a child that
  hangs is terminated at the deadline;
* an optional **address-space rlimit** — ``RLIMIT_AS`` set in the child
  before any work, so a memory balloon dies with ``MemoryError`` (or a
  kernel kill) inside its own sandbox instead of taking the machine down;
* **exit classification** into a :class:`FaultRecord`: a clean return,
  a Python error (with traceback), a signal death (SIGKILL read as the
  OOM-killer's signature), or a watchdog timeout.

``fn`` must be a module-level callable and ``payload`` plain picklable
data (the R4 pickle-safety lint enforces both), exactly like the pool
and race primitives.
"""

from __future__ import annotations

import multiprocessing as mp
import signal
import time
import traceback
from collections.abc import Callable
from dataclasses import dataclass
from multiprocessing.connection import wait as _wait_connections
from typing import Any

from repro.batch.chaos import ChaosConfig, inject_worker_fault

__all__ = [
    "FAULT_CRASH",
    "FAULT_ERROR",
    "FAULT_OOM",
    "FAULT_TIMEOUT",
    "FaultRecord",
    "run_supervised",
]

#: fault kinds a supervised run classifies into
FAULT_ERROR = "error"      # the child raised; detail carries the traceback
FAULT_CRASH = "crash"      # the child died to a signal without reporting
FAULT_OOM = "oom"          # SIGKILL death or MemoryError: memory exhaustion
FAULT_TIMEOUT = "timeout"  # the watchdog deadline passed; child terminated

#: default seconds granted past the nominal budget before the watchdog
#: fires (covers model construction and interpreter startup)
DEFAULT_GRACE = 10.0


@dataclass(frozen=True)
class FaultRecord:
    """How one supervised run failed, as plain classifiable data.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_ERROR` / :data:`FAULT_CRASH` /
        :data:`FAULT_OOM` / :data:`FAULT_TIMEOUT`.
    detail:
        Human-readable cause: the child's traceback (``error``/``oom``
        via MemoryError), the fatal signal name (``crash``/``oom`` via
        SIGKILL), or the exceeded deadline (``timeout``).
    exitcode:
        The child's ``Process.exitcode`` (negative = killed by that
        signal; ``None`` when the child had to be force-killed).
    attempts:
        Filled in by the retrying caller: 1-based attempt count this
        record is the last of.
    """

    kind: str
    detail: str
    exitcode: int | None = None
    attempts: int = 1

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form (rides the journal inside fault records)."""
        return {
            "kind": self.kind,
            "detail": self.detail,
            "exitcode": self.exitcode,
            "attempts": self.attempts,
        }


def _signal_name(exitcode: int) -> str:
    """``-9`` -> ``"SIGKILL"`` (falls back to the raw number)."""
    try:
        return signal.Signals(-exitcode).name
    except ValueError:  # pragma: no cover - unknown signal number
        return f"signal {-exitcode}"


def _supervised_entry(
    conn,
    fn: Callable,
    payload,
    memory_limit: int | None,
    chaos: ChaosConfig | None,
    chaos_key: str | None,
) -> None:
    """Child target: sandbox, maybe inject chaos, run, report once.

    Reports ``("ok", result)`` or ``("error", traceback_text)`` on the
    pipe; a signal death reports nothing (that *is* the signal the
    parent classifies).  The rlimit is set before any allocation so an
    over-budget run fails inside the sandbox.
    """
    if memory_limit is not None:
        import resource

        soft, hard = resource.getrlimit(resource.RLIMIT_AS)
        resource.setrlimit(
            resource.RLIMIT_AS,
            (memory_limit, hard if 0 < hard < memory_limit else memory_limit),
        )
    try:
        if chaos is not None and chaos_key is not None:
            inject_worker_fault(chaos, chaos_key)
        result = fn(payload)
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc(limit=20)))
        except (MemoryError, OSError):  # pragma: no cover - truly starved
            pass
        return
    conn.send(("ok", result))


def _classify_death(exitcode: int | None) -> FaultRecord:
    """A child died without reporting: signal death or silent exit."""
    if exitcode is not None and exitcode < 0:
        name = _signal_name(exitcode)
        kind = FAULT_OOM if -exitcode == signal.SIGKILL else FAULT_CRASH
        detail = f"worker killed by {name} (exitcode {exitcode})"
        if kind == FAULT_OOM:
            detail += " — SIGKILL without a report is the OOM-killer's signature"
        return FaultRecord(kind=kind, detail=detail, exitcode=exitcode)
    return FaultRecord(
        kind=FAULT_CRASH,
        detail=f"worker exited without reporting (exitcode {exitcode})",
        exitcode=exitcode,
    )


def _reap(proc) -> None:
    """Terminate, then if needed kill, a still-running child."""
    if proc.is_alive():
        proc.terminate()
    proc.join(timeout=5.0)
    if proc.is_alive():  # pragma: no cover - terminate() failed
        proc.kill()
        proc.join(timeout=5.0)


def run_supervised(
    fn: Callable,
    payload,
    wall_limit: float | None = None,
    memory_limit: int | None = None,
    chaos: ChaosConfig | None = None,
    chaos_key: str | None = None,
) -> "tuple[Any, FaultRecord | None]":
    """Run ``fn(payload)`` in a watched child; classify how it ended.

    Parameters
    ----------
    fn:
        Module-level callable (pickled by qualified name into the child).
    payload:
        Plain picklable argument for ``fn``.
    wall_limit:
        Watchdog deadline in seconds (``None`` = wait for the sentinel
        forever — death is still detected, hangs are the caller's risk).
    memory_limit:
        ``RLIMIT_AS`` in bytes for the child, set before any work.
    chaos, chaos_key:
        Opt-in fault injection: the child calls
        :func:`~repro.batch.chaos.inject_worker_fault` with this key on
        entry.  ``None`` injects nothing.

    Returns
    -------
    (result, fault):
        Exactly one side is meaningful: ``fault is None`` and ``result``
        is ``fn``'s return value, or ``fault`` is the classified
        :class:`FaultRecord` and ``result`` is ``None``.
    """
    ctx = mp.get_context()
    parent, child = ctx.Pipe(duplex=False)
    proc = ctx.Process(
        target=_supervised_entry,
        args=(child, fn, payload, memory_limit, chaos, chaos_key),
        daemon=True,
    )
    proc.start()
    child.close()  # the child's handle lives in the child now
    deadline = None if wall_limit is None else time.monotonic() + wall_limit
    try:
        while True:
            timeout = None
            if deadline is not None:
                timeout = max(0.0, deadline - time.monotonic())
            ready = _wait_connections([parent, proc.sentinel], timeout=timeout)
            if parent in ready:
                try:
                    tag, value = parent.recv()
                except (EOFError, OSError):
                    # pipe closed without a message: treat as a death
                    proc.join()
                    return None, _classify_death(proc.exitcode)
                proc.join()
                if tag == "ok":
                    return value, None
                return None, _classify_fault_message(value, proc.exitcode)
            if proc.sentinel in ready:
                # dead without (yet) a message — drain the pipe once:
                # a child can send and exit before the parent polls
                if parent.poll(0.1):
                    continue
                proc.join()
                return None, _classify_death(proc.exitcode)
            # neither fired: the watchdog deadline passed
            _reap(proc)
            return None, FaultRecord(
                kind=FAULT_TIMEOUT,
                detail=(
                    f"worker exceeded the {wall_limit:.3f}s watchdog "
                    "deadline and was terminated"
                ),
                exitcode=proc.exitcode,
            )
    finally:
        _reap(proc)
        parent.close()


def _classify_fault_message(tb_text: str, exitcode: int | None) -> FaultRecord:
    """A child reported an error: Python failure, or OOM via MemoryError."""
    kind = FAULT_ERROR
    if "MemoryError" in tb_text:
        kind = FAULT_OOM
    return FaultRecord(kind=kind, detail=tb_text, exitcode=exitcode)
