"""Parallel batch solving: the (instance x solver) campaign engine.

The paper's experiments (Tables I-IV) are big matrices of independent
(instance, solver) runs — embarrassingly parallel, expensive, and painful
to lose to a crash at cell 4,987 of 5,000.  This package turns such
campaigns into first-class objects:

* :mod:`repro.batch.cells` — the picklable work unit and the single
  worker function (:func:`solve_cell`) every execution path shares;
* :mod:`repro.batch.cache` — a content-addressed on-disk cache so any
  cell ever solved under the same (system, solver, budget, seed) key is
  never solved again, across campaigns;
* :mod:`repro.batch.executor` — :func:`run_batch`: process-pool
  execution with one worker per ``--jobs``, streaming JSONL journaling,
  and crash-safe ``--resume``;
* :mod:`repro.batch.racing` — :func:`race`: the complementary
  primitive for the ``portfolio:`` meta-solver — several attempts at
  the *same* cell, first decisive answer wins, losers terminated;
* :mod:`repro.batch.supervise` — :func:`run_supervised`: one work unit
  in one disposable watched child, with wall watchdog, optional
  address-space rlimit and fault classification (the layer that makes
  ``run_batch`` campaigns *always complete*, journaling dead cells as
  ``fault:*`` records after bounded deterministic retries);
* :mod:`repro.batch.chaos` — :class:`ChaosConfig`: seeded deterministic
  fault injection (crash / hang / oom / error / torn journal writes)
  for testing all of the above without real hardware failures;
* :mod:`repro.batch.transport` — the :class:`Transport` execution seam:
  :class:`LocalPoolTransport` is the serial/pool/supervised local path
  ``run_batch`` always used, now pluggable so other consumers (the
  solver service in :mod:`repro.service`) run on the same machinery;
* :mod:`repro.batch.journal` — crash-safe JSONL journal primitives:
  :func:`load_journal` (torn-line tolerant, last-line-wins),
  :func:`trim_torn_tail` and :func:`merge_journals` (N shard journals
  -> one canonical-order journal).

``repro.experiments.runner.run_instances`` is a thin shim over this
layer (``jobs=1``, no cache) and every table/benchmark driver and the
``repro batch`` CLI route through it.
"""

from repro.batch.cache import ReportCache, ResultCache
from repro.batch.cells import Cell, cell_key, cells_for_matrix, solve_cell
from repro.batch.chaos import ChaosConfig, ChaosError
from repro.batch.executor import BatchReport, run_batch
from repro.batch.journal import (
    MergeReport,
    load_journal,
    merge_journals,
    trim_torn_tail,
)
from repro.batch.transport import (
    LocalPoolTransport,
    Transport,
    WorkItem,
    WorkResult,
)
from repro.batch.supervise import (
    FAULT_CRASH,
    FAULT_ERROR,
    FAULT_OOM,
    FAULT_TIMEOUT,
    FaultRecord,
    run_supervised,
)

__all__ = [
    "Cell",
    "cell_key",
    "cells_for_matrix",
    "solve_cell",
    "ResultCache",
    "ReportCache",
    "BatchReport",
    "load_journal",
    "trim_torn_tail",
    "merge_journals",
    "MergeReport",
    "run_batch",
    "Transport",
    "LocalPoolTransport",
    "WorkItem",
    "WorkResult",
    "ChaosConfig",
    "ChaosError",
    "FaultRecord",
    "run_supervised",
    "FAULT_CRASH",
    "FAULT_ERROR",
    "FAULT_OOM",
    "FAULT_TIMEOUT",
]
