"""Parallel batch solving: the (instance x solver) campaign engine.

The paper's experiments (Tables I-IV) are big matrices of independent
(instance, solver) runs — embarrassingly parallel, expensive, and painful
to lose to a crash at cell 4,987 of 5,000.  This package turns such
campaigns into first-class objects:

* :mod:`repro.batch.cells` — the picklable work unit and the single
  worker function (:func:`solve_cell`) every execution path shares;
* :mod:`repro.batch.cache` — a content-addressed on-disk cache so any
  cell ever solved under the same (system, solver, budget, seed) key is
  never solved again, across campaigns;
* :mod:`repro.batch.executor` — :func:`run_batch`: process-pool
  execution with one worker per ``--jobs``, streaming JSONL journaling,
  and crash-safe ``--resume``;
* :mod:`repro.batch.racing` — :func:`race`: the complementary
  primitive for the ``portfolio:`` meta-solver — several attempts at
  the *same* cell, first decisive answer wins, losers terminated;
* :mod:`repro.batch.supervise` — :func:`run_supervised`: one work unit
  in one disposable watched child, with wall watchdog, optional
  address-space rlimit and fault classification (the layer that makes
  ``run_batch`` campaigns *always complete*, journaling dead cells as
  ``fault:*`` records after bounded deterministic retries);
* :mod:`repro.batch.chaos` — :class:`ChaosConfig`: seeded deterministic
  fault injection (crash / hang / oom / error / torn journal writes)
  for testing all of the above without real hardware failures.

``repro.experiments.runner.run_instances`` is a thin shim over this
layer (``jobs=1``, no cache) and every table/benchmark driver and the
``repro batch`` CLI route through it.
"""

from repro.batch.cache import ResultCache
from repro.batch.cells import Cell, cell_key, cells_for_matrix, solve_cell
from repro.batch.chaos import ChaosConfig, ChaosError
from repro.batch.executor import BatchReport, load_journal, run_batch
from repro.batch.supervise import (
    FAULT_CRASH,
    FAULT_ERROR,
    FAULT_OOM,
    FAULT_TIMEOUT,
    FaultRecord,
    run_supervised,
)

__all__ = [
    "Cell",
    "cell_key",
    "cells_for_matrix",
    "solve_cell",
    "ResultCache",
    "BatchReport",
    "load_journal",
    "run_batch",
    "ChaosConfig",
    "ChaosError",
    "FaultRecord",
    "run_supervised",
    "FAULT_CRASH",
    "FAULT_ERROR",
    "FAULT_OOM",
    "FAULT_TIMEOUT",
]
