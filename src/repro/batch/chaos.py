"""Seeded, deterministic fault injection for the batch stack.

Fault tolerance that has never seen a fault is a hypothesis, not a
feature.  This module makes faults *reproducible test inputs*: a
:class:`ChaosConfig` carries a seed and an injection rate, and the
decision "does site S fault on key K?" is a pure function of
``(seed, site, key)`` — a sha256 draw, no RNG object, no wall clock, no
process state.  Two campaigns configured identically inject identical
faults in identical places, which is what lets the chaos acceptance
tests demand byte-identical journals and exact resume equivalence.

Fault kinds (drawn deterministically from the same hash):

* ``crash``      — the worker SIGABRTs itself on entry (the segfault
  shape: no exception, no report, just a corpse; SIGABRT rather than
  SIGKILL so the supervisor classifies it ``crash``, not OOM);
* ``hang``       — the worker sleeps past any reasonable budget (the
  supervisor's watchdog must reap it);
* ``oom``        — the worker balloons memory until the supervisor's
  address-space rlimit kills the allocation, or a built-in cap raises
  ``MemoryError`` (the cap keeps un-rlimited chaos runs from actually
  exhausting the host);
* ``error``      — the worker raises :class:`ChaosError` (an ordinary
  Python failure with a traceback);
* ``torn-write`` — the *journal* writes a truncated, newline-terminated
  duplicate of a record line before the real line (what a crash
  mid-``write`` leaves behind; resume must skip it).

Injection is strictly opt-in: every entry point takes
``chaos=None`` and does nothing without a config.  Worker-side faults
are drawn per *attempt* (the key is salted with the retry attempt), so
a cell that crashed on its first try may — deterministically — succeed
on its second, exercising the retry path rather than dooming the cell.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from dataclasses import dataclass
from typing import Any

__all__ = [
    "CHAOS_KINDS",
    "ChaosConfig",
    "ChaosError",
    "chaos_draw",
    "inject_worker_fault",
    "torn_write_prefix",
]

#: worker-side fault kinds, in draw order (torn-write is journal-side)
CHAOS_KINDS = ("crash", "hang", "oom", "error")

#: how long a "hang" sleeps (far past any test budget; the watchdog reaps)
_HANG_SECONDS = 3600.0

#: allocation step for the "oom" balloon (small enough to trip a tight
#: rlimit before the kernel notices, big enough to get there fast)
_BALLOON_STEP = 8 * 1024 * 1024

#: safety cap on the balloon: past this the fault raises MemoryError
#: itself, so chaos without an rlimit cannot actually exhaust the host
_BALLOON_CAP = 256 * 1024 * 1024


class ChaosError(RuntimeError):
    """The injected Python-level failure (the ``error`` fault kind)."""


@dataclass(frozen=True)
class ChaosConfig:
    """One chaos campaign's injection policy, fully determined by its fields.

    Attributes
    ----------
    seed:
        Draw seed; same seed + same keys = same faults, always.
    rate:
        Probability in ``[0, 1]`` that a given (site, key) faults.
    kinds:
        The fault kinds eligible for worker-side injection (subset of
        :data:`CHAOS_KINDS`); the journal-side ``torn-write`` fault is
        controlled by ``torn_writes``.
    torn_writes:
        Also inject torn duplicate lines into the journal at ``rate``.
    """

    seed: int = 0
    rate: float = 0.1
    kinds: tuple[str, ...] = CHAOS_KINDS
    torn_writes: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"chaos rate must be in [0, 1], got {self.rate}")
        if not self.kinds:
            raise ValueError("chaos needs at least one fault kind")
        for kind in self.kinds:
            if kind not in CHAOS_KINDS:
                raise ValueError(
                    f"unknown chaos kind {kind!r}; pick from {CHAOS_KINDS}"
                )

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form (campaign provenance headers)."""
        return {
            "seed": self.seed,
            "rate": self.rate,
            "kinds": list(self.kinds),
            "torn_writes": self.torn_writes,
        }


def chaos_draw(
    config: "ChaosConfig | None", site: str, key: str
) -> str | None:
    """The deterministic injection decision for one (site, key).

    Returns the fault kind to inject, or ``None``.  The draw hashes
    ``seed:site:key`` — a pure function, so the same configuration
    replays the same faults and the R1 determinism contract holds (no
    RNG state, no clock).
    """
    if config is None or config.rate <= 0.0:
        return None
    digest = hashlib.sha256(
        f"{config.seed}:{site}:{key}".encode()
    ).digest()
    # first 8 bytes -> uniform in [0, 1); next byte picks the kind
    u = int.from_bytes(digest[:8], "big") / 2**64
    if u >= config.rate:
        return None
    return config.kinds[digest[8] % len(config.kinds)]


def inject_worker_fault(
    config: "ChaosConfig | None", key: str
) -> None:
    """Maybe fault the *current process* per the chaos draw for ``key``.

    Called on worker entry (``site="worker"``).  ``crash``/``hang``/
    ``oom`` never return normally; ``error`` raises :class:`ChaosError`;
    a no-draw returns immediately.  Only ever call this in a supervised
    child — a ``crash`` draw kills the calling process with SIGABRT.
    """
    kind = chaos_draw(config, "worker", key)
    if kind is None:
        return
    if kind == "crash":
        import faulthandler

        faulthandler.disable()  # the abort is deliberate; no dump needed
        os.kill(os.getpid(), signal.SIGABRT)
    elif kind == "hang":
        time.sleep(_HANG_SECONDS)  # pragma: no cover - watchdog reaps first
        raise ChaosError(f"chaos hang outlived the watchdog for {key}")
    elif kind == "oom":
        balloon = []
        while len(balloon) * _BALLOON_STEP < _BALLOON_CAP:
            balloon.append(bytearray(_BALLOON_STEP))  # MemoryError under rlimit
        raise MemoryError(f"chaos balloon hit the {_BALLOON_CAP}-byte safety cap")
    else:
        raise ChaosError(f"chaos: injected failure for cell {key}")


def torn_write_prefix(
    config: "ChaosConfig | None", key: str, line: str
) -> str | None:
    """The torn duplicate to write *before* a journal line, if drawn.

    Returns roughly half of ``line`` (newline-terminated so subsequent
    lines stay parseable) — the debris a crash mid-write leaves behind.
    ``load_journal`` must skip it; resume must survive it.
    """
    if config is None or not config.torn_writes:
        return None
    if chaos_draw(config, "journal", key) is None:
        return None
    return line[: max(1, len(line) // 2)] + "\n"
