"""Picklable work units for the parallel batch layer.

A :class:`Cell` is one (instance, solver) run reduced to plain data:
task tuples, a processor count, a solver name and the per-cell budgets.
Cells cross process boundaries (``multiprocessing`` pickles them into the
workers) and double as cache keys — :func:`cell_key` hashes the canonical
JSON of everything that can influence the outcome, so two campaigns that
happen to generate the same system hit the same cache entry.

:func:`solve_cell` is the single worker function both the serial runner
and the process pool execute; keeping it here (module level, importable
by qualified name) is what makes it picklable.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Sequence
from dataclasses import dataclass, replace

from repro.model.platform import Platform
from repro.model.system import TaskSystem

__all__ = ["Cell", "cell_key", "cells_for_matrix", "solve_cell"]

#: default guard against generic-engine encodings that would not fit in
#: memory (mirrors ``run_instances``; the paper: CSP1 "runs out of memory
#: on 'large' instances", Table IV)
DEFAULT_VARIABLE_LIMIT = 2_000_000


@dataclass(frozen=True)
class Cell:
    """One (instance, solver) run as plain, picklable, hashable data.

    Attributes
    ----------
    tasks:
        The system as ``(O, C, D, T)`` rows (the canonical JSON order).
    m:
        Number of identical processors.
    solver:
        A :func:`repro.solvers.registry.create_solver` name.
    time_limit:
        Per-cell wall budget in seconds (model construction included).
    csp1_variable_limit:
        Per-cell memory budget: generic-engine encodings whose predicted
        variable count exceeds this are recorded as ``skipped-memory``
        without being built.
    seed:
        Solver seed (randomized strategies, e.g. ``csp1``); part of the
        cache key because it changes the search.
    instance_seed:
        Generator seed, recorded in the output for aggregation but *not*
        part of the cache key — the system content already is.
    node_limit:
        Optional per-cell search-node budget (service requests carry
        one); ``None`` (the campaign default) keeps the key payload
        byte-identical to historical keys, so existing caches stay warm.
    """

    tasks: tuple[tuple[int, int, int, int], ...]
    m: int
    solver: str
    time_limit: float
    csp1_variable_limit: int = DEFAULT_VARIABLE_LIMIT
    seed: int | None = None
    instance_seed: int | None = None
    node_limit: int | None = None

    @classmethod
    def from_instance(
        cls,
        instance,
        solver: str,
        time_limit: float,
        csp1_variable_limit: int = DEFAULT_VARIABLE_LIMIT,
        seed: int | None = None,
    ) -> "Cell":
        """Build a cell from a :class:`repro.generator.random_systems.Instance`."""
        return cls(
            tasks=tuple(t.as_tuple() for t in instance.system),
            m=instance.m,
            solver=solver,
            time_limit=time_limit,
            csp1_variable_limit=csp1_variable_limit,
            seed=seed,
            instance_seed=instance.seed,
        )

    def system(self) -> TaskSystem:
        """Reconstruct the task system."""
        return TaskSystem.from_tuples(self.tasks)


def cell_key(cell: Cell) -> str:
    """Content-addressed cache key: sha256 over the canonical cell JSON.

    Everything that can change the resulting record — system content,
    processor count, solver name, budgets, solver seed — is keyed;
    ``instance_seed`` (bookkeeping only) is not, so identical systems
    generated under different campaign seeds share cache entries.
    """
    doc = {
        "tasks": [list(t) for t in cell.tasks],
        "m": cell.m,
        "solver": cell.solver,
        "time_limit": cell.time_limit,
        "csp1_variable_limit": cell.csp1_variable_limit,
        "seed": cell.seed,
    }
    if cell.node_limit is not None:
        # keyed only when set: the default (None) payload stays
        # byte-identical to pre-node_limit keys, keeping old caches warm
        doc["node_limit"] = cell.node_limit
    payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


def cells_for_matrix(
    instances: Sequence,
    solvers: Sequence[str],
    time_limit: float,
    csp1_variable_limit: int = DEFAULT_VARIABLE_LIMIT,
    seed: int | None = None,
) -> list[Cell]:
    """The instance x solver matrix in canonical (instance-major) order.

    This is the order ``run_instances`` has always emitted records in;
    the executor restores it regardless of worker completion order.
    """
    return [
        Cell.from_instance(
            inst, name, time_limit,
            csp1_variable_limit=csp1_variable_limit, seed=seed,
        )
        for inst in instances
        for name in solvers
    ]


def solve_cell(cell: Cell, chaos=None, chaos_key: str | None = None):
    """Run one cell and return its :class:`~repro.experiments.runner.RunRecord`.

    A thin client of :func:`repro.solvers.problem.solve_problem` (the one
    engine every execution path shares), preserving the serial runner's
    exact semantics: the memory guard records ``skipped-memory`` before
    any model is built, model/encoding construction counts against the
    wall budget, and an ``unknown`` outcome (the paper's *overrun*) is
    charged the full budget.

    ``chaos`` opts this run into deterministic fault injection
    (:mod:`repro.batch.chaos`) keyed by ``chaos_key`` (default: the
    cell's content key) — only ever pass it in a supervised child, since
    an injected ``crash`` SIGKILLs the calling process.
    """
    from repro.experiments.runner import RunRecord
    from repro.generator.random_systems import Instance
    from repro.solvers.problem import Problem, solve_problem

    if chaos is not None:
        from repro.batch.chaos import inject_worker_fault

        inject_worker_fault(chaos, chaos_key or cell_key(cell))
    system = cell.system()
    instance = Instance(system=system, m=cell.m, seed=cell.instance_seed)
    problem = Problem(
        system=system,
        platform=Platform.identical(cell.m),
        time_limit=cell.time_limit,
        node_limit=cell.node_limit,
        seed=cell.seed,
        variable_limit=cell.csp1_variable_limit,
    )
    report = solve_problem(problem, cell.solver, check=False)
    return RunRecord(
        instance_seed=cell.instance_seed,
        n=system.n,
        m=cell.m,
        hyperperiod=system.hyperperiod,
        utilization_ratio=float(instance.utilization_ratio),
        solver=cell.solver,
        status=report.status_label,
        elapsed=report.elapsed,
        nodes=report.stats.nodes,
        decided_by=report.decided_by,
    )


def rekey_record(record, cell: Cell):
    """Patch a cached record's ``instance_seed`` to this campaign's seed.

    The cache key ignores ``instance_seed`` (same system content, same
    outcome), but aggregations group records by it, so a hit served to a
    different campaign must carry *that* campaign's seed.
    """
    if record.instance_seed == cell.instance_seed:
        return record
    return replace(record, instance_seed=cell.instance_seed)
