"""First-answer-wins process racing for the portfolio meta-solver.

The batch layer's pool (:mod:`repro.batch.executor`) runs *independent*
cells to completion; racing is the complementary primitive: run several
attempts at the *same* question concurrently, accept the first decisive
answer, and terminate the rest so their budget is not wasted.  Worker
processes (not threads) are essential — the solvers are CPU-bound pure
Python, and cancellation means ``Process.terminate()``, which threads
cannot do.

:func:`race` is solver-agnostic: entries are picklable payloads, the
worker is a module-level callable, and decisiveness is a caller-supplied
predicate over ``(entry index, result)``.  Results are reported through a
queue; an entry that crashes its worker is recorded as a
:class:`RaceError` value rather than poisoning the race.

Fault tolerance: the loop waits on every live member's *process
sentinel* alongside the result queue, so a member that dies without
reporting — SIGKILLed by the OOM killer, segfaulted, anything that
never reaches ``out.put`` — resolves to a :class:`RaceError`
immediately and the race keeps going with the survivors.  Without the
sentinels a no-``time_limit`` race would block on the queue forever the
first time a worker was killed.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _wait_connections

__all__ = ["RaceError", "RaceOutcome", "race"]

#: seconds allowed past the nominal budget for workers to self-report
#: (covers model-construction overhead before a member's own deadline arms)
GRACE = 10.0


@dataclass(frozen=True)
class RaceError:
    """A worker crash, carried as that entry's result value."""

    message: str


@dataclass
class RaceOutcome:
    """What a race produced.

    ``winner`` is the index of the first entry whose result satisfied the
    decisive predicate (None when no entry did before the deadline);
    ``results`` maps entry index -> result for every entry that finished;
    ``cancelled`` lists entries terminated while still running;
    ``not_started`` lists entries never launched (``jobs`` below the
    entry count and the race ended first).
    """

    winner: int | None
    results: dict[int, object] = field(default_factory=dict)
    cancelled: list[int] = field(default_factory=list)
    not_started: list[int] = field(default_factory=list)
    elapsed: float = 0.0


def _race_entry(worker: Callable, index: int, payload, out: "mp.Queue") -> None:
    """Process target: run one entry and report (index, result) once."""
    try:
        result = worker(payload)
    except BaseException as exc:  # report, don't die silently
        result = RaceError(f"{type(exc).__name__}: {exc}")
    out.put((index, result))


def race(
    payloads: Sequence,
    worker: Callable,
    decisive: Callable[[int, object], bool],
    jobs: int | None = None,
    time_limit: float | None = None,
    grace: float = GRACE,
) -> RaceOutcome:
    """Race ``worker(payload)`` over all payloads; first decisive wins.

    Parameters
    ----------
    payloads:
        One picklable payload per entry, started in order.
    worker:
        Module-level callable (picklable for spawn-based platforms).
    decisive:
        ``decisive(index, result) -> bool``; the first True ends the race
        and terminates every other live entry.
    jobs:
        Max concurrent processes (default: all entries at once).
    time_limit:
        Wall budget; workers that have not reported within
        ``time_limit + grace`` are terminated and listed as cancelled.
    grace:
        Seconds granted past ``time_limit`` for self-reporting (model
        construction happens before a member's own deadline arms).

    Returns
    -------
    RaceOutcome
        Winner index (or None), per-entry results, cancellations, wall.
        An entry whose process died without reporting carries a
        :class:`RaceError` result — never a hang, even without a
        ``time_limit``.
    """
    t0 = time.monotonic()
    n = len(payloads)
    if jobs is None or jobs > n:
        jobs = n
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    ctx = mp.get_context()
    out: mp.Queue = ctx.Queue()
    procs: dict[int, mp.process.BaseProcess] = {}
    next_index = 0
    outcome = RaceOutcome(winner=None)
    deadline = None if time_limit is None else t0 + time_limit + grace

    def launch_until_full() -> None:
        nonlocal next_index
        while next_index < n and len(procs) < jobs:
            p = ctx.Process(
                target=_race_entry,
                args=(worker, next_index, payloads[next_index], out),
                daemon=True,
            )
            p.start()
            procs[next_index] = p
            next_index += 1

    def handle(index: int, result) -> bool:
        """Record one entry's result; True when it decides the race."""
        proc = procs.pop(index, None)
        if proc is not None:
            proc.join()
        outcome.results[index] = result
        if decisive(index, result):
            outcome.winner = index
            return True
        return False

    try:
        launch_until_full()
        while procs and outcome.winner is None:
            timeout = None if deadline is None else deadline - time.monotonic()
            if timeout is not None and timeout <= 0:
                break  # budget exhausted: survivors get cancelled below
            # Wait on every live member's sentinel: a reporting worker
            # exits right after its put, and a killed worker *only*
            # exits — either way a sentinel fires, so the race can never
            # block forever on the queue (the old no-time_limit hang).
            _wait_connections(
                [p.sentinel for p in procs.values()], timeout=timeout
            )
            # drain everything already reported
            while True:
                try:
                    index, result = out.get_nowait()
                except queue_mod.Empty:
                    break
                if handle(index, result):
                    break
            if outcome.winner is not None:
                break
            # reap members that died without reporting: a clean exit has
            # already put, so give the feeder pipe a beat before calling
            # a silent death
            for index in [i for i, p in procs.items() if not p.is_alive()]:
                while index in procs and outcome.winner is None:
                    try:
                        got, result = out.get(timeout=0.25)
                    except queue_mod.Empty:
                        proc = procs[index]
                        proc.join()
                        handle(index, RaceError(
                            "worker died without reporting "
                            f"(exitcode {proc.exitcode})"
                        ))
                        break
                    handle(got, result)
                if outcome.winner is not None:
                    break
            launch_until_full()
    finally:
        for index, proc in procs.items():
            if proc.is_alive():
                proc.terminate()
            outcome.cancelled.append(index)
        for proc in procs.values():
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - terminate() failed
                proc.kill()
                proc.join(timeout=5.0)
        out.close()
        out.cancel_join_thread()
    outcome.not_started.extend(range(next_index, n))
    outcome.elapsed = time.monotonic() - t0
    return outcome
