"""First-answer-wins process racing for the portfolio meta-solver.

The batch layer's pool (:mod:`repro.batch.executor`) runs *independent*
cells to completion; racing is the complementary primitive: run several
attempts at the *same* question concurrently, accept the first decisive
answer, and terminate the rest so their budget is not wasted.  Worker
processes (not threads) are essential — the solvers are CPU-bound pure
Python, and cancellation means ``Process.terminate()``, which threads
cannot do.

:func:`race` is solver-agnostic: entries are picklable payloads, the
worker is a module-level callable, and decisiveness is a caller-supplied
predicate over ``(entry index, result)``.  Results are reported through a
queue; an entry that crashes its worker is recorded as a
:class:`RaceError` value rather than poisoning the race.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

__all__ = ["RaceError", "RaceOutcome", "race"]

#: seconds allowed past the nominal budget for workers to self-report
#: (covers model-construction overhead before a member's own deadline arms)
GRACE = 10.0


@dataclass(frozen=True)
class RaceError:
    """A worker crash, carried as that entry's result value."""

    message: str


@dataclass
class RaceOutcome:
    """What a race produced.

    ``winner`` is the index of the first entry whose result satisfied the
    decisive predicate (None when no entry did before the deadline);
    ``results`` maps entry index -> result for every entry that finished;
    ``cancelled`` lists entries terminated while still running;
    ``not_started`` lists entries never launched (``jobs`` below the
    entry count and the race ended first).
    """

    winner: int | None
    results: dict[int, object] = field(default_factory=dict)
    cancelled: list[int] = field(default_factory=list)
    not_started: list[int] = field(default_factory=list)
    elapsed: float = 0.0


def _race_entry(worker: Callable, index: int, payload, out: "mp.Queue") -> None:
    """Process target: run one entry and report (index, result) once."""
    try:
        result = worker(payload)
    except BaseException as exc:  # report, don't die silently
        result = RaceError(f"{type(exc).__name__}: {exc}")
    out.put((index, result))


def race(
    payloads: Sequence,
    worker: Callable,
    decisive: Callable[[int, object], bool],
    jobs: int | None = None,
    time_limit: float | None = None,
) -> RaceOutcome:
    """Race ``worker(payload)`` over all payloads; first decisive wins.

    Parameters
    ----------
    payloads:
        One picklable payload per entry, started in order.
    worker:
        Module-level callable (picklable for spawn-based platforms).
    decisive:
        ``decisive(index, result) -> bool``; the first True ends the race
        and terminates every other live entry.
    jobs:
        Max concurrent processes (default: all entries at once).
    time_limit:
        Wall budget; workers that have not reported within
        ``time_limit + GRACE`` are terminated and listed as cancelled.

    Returns
    -------
    RaceOutcome
        Winner index (or None), per-entry results, cancellations, wall.
    """
    t0 = time.monotonic()
    n = len(payloads)
    if jobs is None or jobs > n:
        jobs = n
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    ctx = mp.get_context()
    out: mp.Queue = ctx.Queue()
    procs: dict[int, mp.process.BaseProcess] = {}
    next_index = 0
    outcome = RaceOutcome(winner=None)
    deadline = None if time_limit is None else t0 + time_limit + GRACE

    def launch_until_full() -> None:
        nonlocal next_index
        while next_index < n and len(procs) < jobs:
            p = ctx.Process(
                target=_race_entry,
                args=(worker, next_index, payloads[next_index], out),
                daemon=True,
            )
            p.start()
            procs[next_index] = p
            next_index += 1

    try:
        launch_until_full()
        while procs:
            timeout = None if deadline is None else deadline - time.monotonic()
            if timeout is not None and timeout <= 0:
                break
            try:
                index, result = out.get(timeout=timeout)
            except queue_mod.Empty:
                break  # budget exhausted: survivors get cancelled below
            proc = procs.pop(index, None)
            if proc is not None:
                proc.join()
            outcome.results[index] = result
            if decisive(index, result):
                outcome.winner = index
                break
            launch_until_full()
    finally:
        for index, proc in procs.items():
            if proc.is_alive():
                proc.terminate()
            outcome.cancelled.append(index)
        for proc in procs.values():
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - terminate() failed
                proc.kill()
                proc.join(timeout=5.0)
        out.close()
        out.cancel_join_thread()
    outcome.not_started.extend(range(next_index, n))
    outcome.elapsed = time.monotonic() - t0
    return outcome
