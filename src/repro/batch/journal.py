"""Crash-safe JSONL journals: loading, torn-tail repair, shard merging.

Every long-running artifact in this codebase — campaign results, service
request logs — is journaled the same way: one JSON object per line with
a ``"key"`` field, appended and flushed as work completes.  The format
buys three properties this module makes explicit and testable:

* **torn-line tolerance** — a crash mid-write leaves at most one
  incomplete final line; readers skip it, and :func:`trim_torn_tail`
  cuts it before a journal is appended to again;
* **last-line-wins** — the same key may appear more than once (a resumed
  campaign re-recording a retried fault, overlapping shards); the
  *latest* occurrence is authoritative, because appends are ordered;
* **shard merging** — :func:`merge_journals` reassembles N shard
  journals (a campaign split across machines, a service's per-worker
  logs) into one canonical journal: keys in first-appearance order
  across the shards in the order given, content from each key's last
  occurrence, raw line text preserved byte-for-byte.

:func:`load_journal` is the campaign-specific reader ``run_batch`` uses
for ``--resume``; the merge machinery below is format-generic so the
solver service's ``{"key": ..., "report": ...}`` journals merge with the
same tool as campaign ``{"key": ..., "record": ...}`` journals.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "load_journal",
    "trim_torn_tail",
    "merge_journals",
    "MergeReport",
]


def load_journal(path: str | os.PathLike) -> dict[str, dict]:
    """Parse a results journal into ``{cell key: record dict}``.

    Tolerates a torn final line (the crash case journaling exists for) and
    skips any line that does not decode into a well-formed record — resume
    must never be the thing that fails a campaign.
    """
    from repro.experiments.runner import RunRecord

    out: dict[str, dict] = {}
    try:
        fh = open(path)
    except OSError:
        return out
    with fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                RunRecord(**entry["record"])  # shape check, raises TypeError
                out[entry["key"]] = entry["record"]
            except (ValueError, KeyError, TypeError):
                continue  # torn/corrupt/foreign line: recompute that cell
    return out


def trim_torn_tail(path: str | os.PathLike) -> bool:
    """Cut an incomplete final line off ``path`` before appending to it.

    A crash mid-write can leave a final line with no terminating newline;
    truncating back to the last complete line keeps the journal pure
    JSONL once new lines are appended after it.  Returns True iff bytes
    were removed.  A missing or empty file is left alone.
    """
    p = Path(path)
    try:
        if not p.exists() or p.stat().st_size == 0:
            return False
    except OSError:
        return False
    with open(p, "rb+") as tail:
        data = tail.read()
        if data.endswith(b"\n"):
            return False
        tail.truncate(data.rfind(b"\n") + 1)
    return True


@dataclass
class MergeReport:
    """Accounting for one :func:`merge_journals` pass."""

    #: shard paths read, in the order given
    shards: list = field(default_factory=list)
    #: total lines seen across all shards (torn/corrupt included)
    lines: int = 0
    #: unique keys written to the merged journal
    records: int = 0
    #: extra occurrences of already-seen keys (superseded by last-wins)
    duplicates: int = 0
    #: lines skipped as torn / corrupt / keyless
    torn: int = 0


def merge_journals(
    shards: list[str | os.PathLike],
    out: str | os.PathLike,
) -> MergeReport:
    """Combine N shard journals into one canonical-order journal.

    Keys are emitted in first-appearance order scanning the shards in
    the order given; each key's *last* occurrence anywhere supplies its
    line (last-line-wins, matching what a resume replay would honor).
    Winning lines are written back verbatim — byte-for-byte the text the
    producing process journaled — so merging never reserializes and a
    single-shard merge is an identity copy of its complete lines.

    Works on any ``{"key": ..., ...}`` JSONL (campaign ``record``
    journals and service ``report`` journals alike); torn, corrupt and
    keyless lines are counted and skipped, never copied.
    """
    report = MergeReport(shards=[str(s) for s in shards])
    order: list[str] = []
    winning: dict[str, str] = {}
    for shard in shards:
        try:
            fh = open(shard)
        except OSError:
            continue  # a missing shard merges as empty
        with fh:
            for raw in fh:
                line = raw.strip()
                if not line:
                    continue
                report.lines += 1
                try:
                    entry = json.loads(line)
                    key = entry["key"]
                except (ValueError, KeyError, TypeError):
                    report.torn += 1
                    continue
                if not isinstance(key, str):
                    report.torn += 1
                    continue
                if key in winning:
                    report.duplicates += 1
                else:
                    order.append(key)
                winning[key] = line
    report.records = len(order)
    out_path = Path(out)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    tmp = out_path.with_suffix(out_path.suffix + ".tmp")
    with open(tmp, "w") as fh:
        for key in order:
            fh.write(winning[key] + "\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, out_path)
    return report
