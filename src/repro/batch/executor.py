"""Process-pool executor with caching, journaling and crash-safe resume.

:func:`run_batch` is the one entry point: give it the cells of a campaign
and it returns their records in canonical cell order, no matter which of
three sources each record came from —

1. the campaign **journal** (``--resume``): a streaming JSONL file, one
   completed cell per line, appended and flushed as results arrive, so a
   killed campaign restarts exactly where it died (a torn final line is
   ignored);
2. the shared **cache** (``--cache-dir``): the content-addressed store of
   :mod:`repro.batch.cache`, which lets *different* campaigns (or a warm
   re-run) skip any cell ever solved under the same key;
3. fresh **computation**: remaining cells are deduplicated by key and run
   through :func:`~repro.batch.cells.solve_cell`, serially for ``jobs=1``
   (bit-compatible with the historical serial runner) or on a
   ``ProcessPoolExecutor`` with one worker per job.

Determinism: a cell's outcome depends only on its content (system, solver,
budgets, seed), never on scheduling, so ``jobs=N`` produces the same
statuses/node counts as ``jobs=1`` and the same record *order* — only the
wall-clock ``elapsed`` fields can differ between cold runs.  Cached or
resumed cells reproduce byte-identically.
"""

from __future__ import annotations

import json
import os
import time
from collections.abc import Callable, Sequence
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.batch.cache import ResultCache
from repro.batch.cells import Cell, cell_key, rekey_record, solve_cell

__all__ = ["BatchReport", "run_batch", "load_journal"]


@dataclass
class BatchReport:
    """Everything a campaign produced, plus where each record came from."""

    #: records in canonical cell order (instance-major, solver-minor)
    records: list = field(default_factory=list)
    #: cells answered from the resume journal
    resumed: int = 0
    #: cells answered from the content-addressed cache
    cache_hits: int = 0
    #: cells actually solved this run
    computed: int = 0
    #: wall-clock seconds for the whole batch
    elapsed: float = 0.0

    @property
    def total(self) -> int:
        """Number of cells in the campaign."""
        return len(self.records)


def load_journal(path: str | os.PathLike) -> dict[str, dict]:
    """Parse a results journal into ``{cell key: record dict}``.

    Tolerates a torn final line (the crash case journaling exists for) and
    skips any line that does not decode into a well-formed record — resume
    must never be the thing that fails a campaign.
    """
    from repro.experiments.runner import RunRecord

    out: dict[str, dict] = {}
    try:
        fh = open(path)
    except OSError:
        return out
    with fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                RunRecord(**entry["record"])  # shape check, raises TypeError
                out[entry["key"]] = entry["record"]
            except (ValueError, KeyError, TypeError):
                continue  # torn/corrupt/foreign line: recompute that cell
    return out


def run_batch(
    cells: Sequence[Cell],
    jobs: int = 1,
    cache: ResultCache | str | os.PathLike | None = None,
    journal: str | os.PathLike | None = None,
    resume: bool = False,
    progress: Callable[[int, int], None] | None = None,
) -> BatchReport:
    """Run a campaign of cells, in parallel, with caching and resume.

    Parameters
    ----------
    cells:
        The campaign, typically :func:`~repro.batch.cells.cells_for_matrix`.
    jobs:
        Worker processes; ``1`` runs in-process (no pool, no pickling).
    cache:
        A :class:`ResultCache` or a directory path for one; ``None``
        disables cross-campaign caching.
    journal:
        JSONL path streamed to as cells complete; with ``resume=True`` its
        existing complete lines are honored before anything is scheduled.
    resume:
        Re-read ``journal`` and skip cells already recorded there.
    progress:
        ``progress(done, total)`` callback, called as each cell resolves
        (from whichever source).

    Returns
    -------
    BatchReport
        Records in canonical order plus hit/compute accounting.
    """
    from repro.experiments.runner import RunRecord

    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if isinstance(cache, (str, os.PathLike)):
        cache = ResultCache(cache)
    t_start = time.monotonic()
    report = BatchReport(records=[None] * len(cells))
    keys = [cell_key(c) for c in cells]
    total = len(cells)
    done = 0

    def tick() -> None:
        if progress is not None:
            progress(done, total)

    # 1. resume from the journal's completed lines
    journaled: dict[str, dict] = {}
    if resume and journal is not None:
        journaled = load_journal(journal)
    for i, (cell, key) in enumerate(zip(cells, keys)):
        if key in journaled:
            record = RunRecord(**journaled[key])
            report.records[i] = rekey_record(record, cell)
            report.resumed += 1
            done += 1
            if cache is not None and key not in cache:
                cache.put(key, record)  # warm the shared cache too
            tick()

    journal_fh = None
    if journal is not None:
        path = Path(journal)
        path.parent.mkdir(parents=True, exist_ok=True)
        if resume and path.exists() and path.stat().st_size > 0:
            # a crash can leave a torn final line with no newline; cut it
            # so the finished journal contains only complete JSONL lines
            with open(path, "rb+") as tail:
                data = tail.read()
                if not data.endswith(b"\n"):
                    tail.truncate(data.rfind(b"\n") + 1)
        journal_fh = open(path, "a" if resume else "w")

    def record_done(i: int, key: str, record) -> None:
        nonlocal done
        rekeyed = rekey_record(record, cells[i])
        report.records[i] = rekeyed
        done += 1
        if journal_fh is not None:
            # journal the *rekeyed* record: the JSONL is this campaign's
            # output and must carry this campaign's instance seeds
            json.dump({"key": key, "record": asdict(rekeyed)}, journal_fh,
                      separators=(",", ":"))
            journal_fh.write("\n")
            journal_fh.flush()
        tick()

    try:
        # 2. serve what the shared cache already knows
        if cache is not None:
            for i, (cell, key) in enumerate(zip(cells, keys)):
                if report.records[i] is not None:
                    continue
                hit = cache.get(key)
                if hit is not None:
                    report.cache_hits += 1
                    record_done(i, key, hit)

        # 3. compute the rest, one task per *unique* key
        pending: dict[str, list[int]] = {}
        for i, key in enumerate(keys):
            if report.records[i] is None:
                pending.setdefault(key, []).append(i)

        def finish(key: str, record) -> None:
            if cache is not None:
                cache.put(key, record)
            for i in pending[key]:
                record_done(i, key, record)

        if pending and jobs == 1:
            for key, indices in pending.items():
                record = solve_cell(cells[indices[0]])
                report.computed += 1
                finish(key, record)
        elif pending:
            from concurrent.futures import ProcessPoolExecutor, as_completed

            with ProcessPoolExecutor(max_workers=jobs) as pool:
                futures = {
                    pool.submit(solve_cell, cells[indices[0]]): key
                    for key, indices in pending.items()
                }
                for fut in as_completed(futures):
                    report.computed += 1
                    finish(futures[fut], fut.result())
    finally:
        if journal_fh is not None:
            journal_fh.close()

    report.elapsed = time.monotonic() - t_start
    return report
