"""Campaign orchestration: caching, journaling, resume over a transport.

:func:`run_batch` is the one entry point: give it the cells of a campaign
and it returns their records in canonical cell order, no matter which of
three sources each record came from —

1. the campaign **journal** (``--resume``): a streaming JSONL file, one
   completed cell per line, appended and flushed as results arrive, so a
   killed campaign restarts exactly where it died (a torn final line is
   ignored);
2. the shared **cache** (``--cache-dir``): the content-addressed store of
   :mod:`repro.batch.cache`, which lets *different* campaigns (or a warm
   re-run) skip any cell ever solved under the same key;
3. fresh **computation**: remaining cells are deduplicated by key and
   handed to a :class:`~repro.batch.transport.Transport` — by default a
   :class:`~repro.batch.transport.LocalPoolTransport` reproducing the
   historical serial / process-pool / supervised strategies exactly.

Fault tolerance: a campaign *always completes*.  A cell whose execution
dies — worker SIGKILLed by the OOM killer, a hang past the watchdog, an
unhandled exception — is retried a bounded number of times (seeded
deterministic backoff) in supervised one-shot children
(:mod:`repro.batch.supervise`), then journaled as a ``fault:*`` record
like any other result.  The default pool path escalates failed cells to
the supervised path instead of letting ``BrokenProcessPool`` abort the
campaign; ``supervised=True`` (forced on whenever chaos injection is
configured) runs *every* computed cell in its own watched child with an
optional address-space rlimit.  All of that now lives behind the
transport seam, so other consumers (the solver service) inherit it.

Determinism: a cell's outcome depends only on its content (system, solver,
budgets, seed), never on scheduling, so ``jobs=N`` produces the same
statuses/node counts as ``jobs=1`` and the same record *order* — only the
wall-clock ``elapsed`` fields can differ between cold runs.  Cached or
resumed cells reproduce byte-identically.  Under chaos injection every
computed record is charged its full budget as ``elapsed`` (the way
overruns already are), so a chaos campaign's journal is byte-identical
across re-runs with the same seeds.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from pathlib import Path
from collections.abc import Callable, Sequence
from dataclasses import asdict, dataclass, field, replace

from repro.batch.cache import ResultCache
from repro.batch.cells import Cell, cell_key, rekey_record, solve_cell
from repro.batch.chaos import ChaosConfig, torn_write_prefix
from repro.batch.journal import load_journal, trim_torn_tail
from repro.batch.supervise import DEFAULT_GRACE, FaultRecord
from repro.batch.transport import LocalPoolTransport, Transport, WorkItem

__all__ = ["BatchReport", "run_batch", "load_journal"]


@dataclass
class BatchReport:
    """Everything a campaign produced, plus where each record came from."""

    #: records in canonical cell order (instance-major, solver-minor)
    records: list = field(default_factory=list)
    #: cells answered from the resume journal
    resumed: int = 0
    #: cells answered from the content-addressed cache
    cache_hits: int = 0
    #: cells actually solved this run
    computed: int = 0
    #: cells whose final record is a ``fault:*`` (retries exhausted)
    faults: int = 0
    #: cells that needed more than one execution attempt
    retried: int = 0
    #: wall-clock seconds for the whole batch
    elapsed: float = 0.0

    @property
    def total(self) -> int:
        """Number of cells in the campaign."""
        return len(self.records)


def _batch_worker(payload, attempt: int):
    """Transport worker: unpack one ``(cell, chaos, key)`` and solve it.

    The chaos key is salted with the attempt number, so injected faults
    are per-attempt draws — a cell that crashed once can
    (deterministically) succeed on retry.
    """
    cell, chaos, key = payload
    if chaos is None:
        return solve_cell(cell)
    return solve_cell(cell, chaos=chaos, chaos_key=f"{key}:{attempt}")


def _fault_run_record(cell: Cell, fault: FaultRecord):
    """The journal-able ``fault:*`` record for a cell that never answered.

    Charged the full wall budget (the paper's overrun convention) with
    deterministic content, so chaos journals replay byte-identically.
    """
    from repro.experiments.runner import RunRecord
    from repro.generator.random_systems import Instance

    system = cell.system()
    instance = Instance(system=system, m=cell.m, seed=cell.instance_seed)
    return RunRecord(
        instance_seed=cell.instance_seed,
        n=system.n,
        m=cell.m,
        hyperperiod=system.hyperperiod,
        utilization_ratio=float(instance.utilization_ratio),
        solver=cell.solver,
        status=f"fault:{fault.kind}",
        elapsed=cell.time_limit,
        nodes=0,
        decided_by=f"supervisor:{fault.kind}",
        fault=fault.to_dict(),
    )


def run_batch(
    cells: Sequence[Cell],
    jobs: int = 1,
    cache: ResultCache | str | os.PathLike | None = None,
    journal: str | os.PathLike | None = None,
    resume: bool = False,
    progress: Callable[[int, int], None] | None = None,
    supervised: bool = False,
    retries: int = 1,
    memory_limit: int | None = None,
    chaos: ChaosConfig | None = None,
    grace: float = DEFAULT_GRACE,
    backoff: float = 0.0,
    fault_resume: str = "skip",
    transport: Transport | None = None,
) -> BatchReport:
    """Run a campaign of cells, in parallel, with caching and resume.

    Parameters
    ----------
    cells:
        The campaign, typically :func:`~repro.batch.cells.cells_for_matrix`.
    jobs:
        Worker processes; ``1`` runs in-process (no pool, no pickling).
    cache:
        A :class:`ResultCache` or a directory path for one; ``None``
        disables cross-campaign caching.  Fault records never enter the
        cache — a fault is an execution accident, not a property of the
        cell.
    journal:
        JSONL path streamed to as cells complete; with ``resume=True`` its
        existing complete lines are honored before anything is scheduled.
    resume:
        Re-read ``journal`` and skip cells already recorded there.
    progress:
        ``progress(done, total)`` callback, called as each cell resolves
        (from whichever source).  A callback that raises is disabled with
        a warning — user code must never abort journaling mid-campaign.
    supervised:
        Run every computed cell in its own watched child process
        (watchdog + optional rlimit + fault classification).  Without it
        the pool fast path is used and only *failing* cells escalate to
        supervision.  Forced on whenever ``chaos`` is set.
    retries:
        Extra supervised attempts granted to a faulted cell before it is
        journaled as ``fault:*``.
    memory_limit:
        Per-child ``RLIMIT_AS`` in bytes (supervised executions only).
    chaos:
        Opt-in deterministic fault injection
        (:class:`~repro.batch.chaos.ChaosConfig`); implies supervision.
    grace:
        Watchdog headroom in seconds past each cell's ``time_limit``.
    backoff:
        Base seconds of the seeded exponential retry backoff (``0`` =
        retry immediately; the delay schedule is deterministic per key).
    fault_resume:
        What ``resume`` does with journaled ``fault:*`` cells: ``"skip"``
        serves them as-is, ``"retry"`` recomputes them.
    transport:
        Execution backend for computed cells.  ``None`` builds the
        :class:`~repro.batch.transport.LocalPoolTransport` implied by
        ``jobs``/``supervised``/``retries``/``memory_limit``/``grace``/
        ``backoff`` — the historical behavior; passing one explicitly
        overrides all of those execution knobs (caching, journaling and
        ordering are unaffected).

    Returns
    -------
    BatchReport
        Records in canonical order plus hit/compute/fault accounting.
    """
    from repro.experiments.runner import RunRecord

    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if fault_resume not in ("skip", "retry"):
        raise ValueError(
            f"fault_resume must be 'skip' or 'retry', got {fault_resume!r}"
        )
    if isinstance(cache, (str, os.PathLike)):
        cache = ResultCache(cache)
    use_supervised = supervised or chaos is not None
    t_start = time.monotonic()
    report = BatchReport(records=[None] * len(cells))
    keys = [cell_key(c) for c in cells]
    total = len(cells)
    done = 0
    callback = progress

    def tick() -> None:
        nonlocal callback
        if callback is None:
            return
        try:
            callback(done, total)
        except Exception as exc:
            # journaling and completion must survive user code: disable
            # the callback and finish the campaign
            callback = None
            warnings.warn(
                f"progress callback raised {type(exc).__name__}: {exc}; "
                "disabling progress reporting for the rest of the campaign",
                RuntimeWarning,
                stacklevel=2,
            )

    def is_fault(record) -> bool:
        return record.status.startswith("fault:")

    # 1. resume from the journal's completed lines
    journaled: dict[str, dict] = {}
    if resume and journal is not None:
        journaled = load_journal(journal)
    for i, (cell, key) in enumerate(zip(cells, keys)):
        if key not in journaled:
            continue
        record = RunRecord(**journaled[key])
        if is_fault(record) and fault_resume == "retry":
            continue  # policy: give crashed cells another campaign
        report.records[i] = rekey_record(record, cell)
        report.resumed += 1
        done += 1
        if cache is not None and key not in cache and not is_fault(record):
            cache.put(key, record)  # warm the shared cache too
        tick()

    journal_fh = None
    if journal is not None:
        path = Path(journal)
        path.parent.mkdir(parents=True, exist_ok=True)
        if resume:
            # a crash can leave a torn final line with no newline; cut it
            # so the finished journal contains only complete JSONL lines
            trim_torn_tail(path)
        journal_fh = open(path, "a" if resume else "w")

    def record_done(i: int, key: str, record) -> None:
        nonlocal done
        rekeyed = rekey_record(record, cells[i])
        report.records[i] = rekeyed
        done += 1
        if journal_fh is not None:
            # journal the *rekeyed* record: the JSONL is this campaign's
            # output and must carry this campaign's instance seeds
            line = json.dumps(
                {"key": key, "record": asdict(rekeyed)}, separators=(",", ":")
            )
            torn = torn_write_prefix(chaos, key, line)
            if torn is not None:
                # injected torn duplicate: the debris a crash mid-write
                # leaves; load_journal must skip it on resume
                journal_fh.write(torn)
            journal_fh.write(line + "\n")
            journal_fh.flush()
        tick()

    try:
        # 2. serve what the shared cache already knows
        if cache is not None:
            for i, (cell, key) in enumerate(zip(cells, keys)):
                if report.records[i] is not None:
                    continue
                hit = cache.get(key)
                if hit is not None:
                    report.cache_hits += 1
                    record_done(i, key, hit)

        # 3. compute the rest, one task per *unique* key
        pending: dict[str, list[int]] = {}
        for i, key in enumerate(keys):
            if report.records[i] is None:
                pending.setdefault(key, []).append(i)

        def finish(key: str, record, was_retried: bool = False) -> None:
            report.computed += 1
            if was_retried:
                report.retried += 1
            if is_fault(record):
                report.faults += 1
            elif cache is not None:
                cache.put(key, record)
            for i in pending[key]:
                record_done(i, key, record)

        if pending:
            if transport is None:
                transport = LocalPoolTransport(
                    jobs=jobs,
                    supervised=use_supervised,
                    retries=retries,
                    memory_limit=memory_limit,
                    grace=grace,
                    backoff=backoff,
                )
            items = [
                WorkItem(
                    key=key,
                    fn=_batch_worker,
                    payload=(cells[indices[0]], chaos, key),
                    wall_limit=cells[indices[0]].time_limit,
                )
                for key, indices in pending.items()
            ]
            for res in transport.execute(items):
                cell = cells[pending[res.key][0]]
                if res.fault is not None:
                    record = _fault_run_record(cell, res.fault)
                elif chaos is not None:
                    # chaos campaigns trade timing fidelity for
                    # determinism: charge the budget so re-runs journal
                    # byte-identically
                    record = replace(res.value, elapsed=cell.time_limit)
                else:
                    record = res.value
                finish(res.key, record, res.attempts > 1)
    finally:
        if journal_fh is not None:
            journal_fh.close()

    report.elapsed = time.monotonic() - t_start
    return report
