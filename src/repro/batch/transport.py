"""Pluggable execution transports: *how* keyed work units run.

:func:`~repro.batch.executor.run_batch` historically hard-wired three
execution strategies — in-process serial, a ``ProcessPoolExecutor`` with
escalation of failed cells, and supervised one-shot children with
bounded retries.  This module extracts that seam into a :class:`Transport`
protocol so other consumers (the solver service daemon in
:mod:`repro.service`) can run work on the exact same machinery without
going through campaign bookkeeping:

* a :class:`WorkItem` is one keyed execution request: a module-level
  worker ``fn``, a plain picklable ``payload``, and an optional wall
  budget the supervised watchdog enforces;
* a :class:`WorkResult` is how it ended: the worker's return value, or a
  classified :class:`~repro.batch.supervise.FaultRecord` once retries
  are exhausted, plus the attempt count;
* :class:`LocalPoolTransport` is today's local path, unchanged in
  behavior: serial / pool / supervised execution with deterministic
  seeded retry backoff and escalation of pool failures to supervision.

Workers are invoked as ``fn(payload, attempt)`` with a 0-based attempt
number so fault-injection hooks (chaos) can salt their draws per
attempt; workers that do not care simply ignore the second argument.
Both ``fn`` and ``payload`` cross process boundaries and must therefore
be module-level / plain data (the R4 pickle-safety contract).
"""

from __future__ import annotations

import hashlib
import time
from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass, replace
from typing import Any, Protocol, runtime_checkable

from repro.batch.supervise import DEFAULT_GRACE, FaultRecord, run_supervised

__all__ = [
    "WorkItem",
    "WorkResult",
    "Transport",
    "LocalPoolTransport",
    "backoff_delay",
]

#: deterministic seed salt for the retry-backoff jitter
_BACKOFF_SALT = "repro-batch-backoff"


def backoff_delay(backoff: float, key: str, attempt: int) -> float:
    """The seeded retry delay before ``attempt`` (1-based) of ``key``.

    Exponential base with a deterministic jitter drawn by hashing — no
    wall clock, no shared RNG state, so retry *decisions* replay
    byte-identically (the R1 determinism contract).
    """
    if backoff <= 0.0:
        return 0.0
    digest = hashlib.sha256(
        f"{_BACKOFF_SALT}:{key}:{attempt}".encode()
    ).digest()
    jitter = 0.5 + int.from_bytes(digest[:8], "big") / 2**64
    return backoff * (2 ** (attempt - 1)) * jitter


@dataclass(frozen=True)
class WorkItem:
    """One keyed execution request handed to a transport.

    Attributes
    ----------
    key:
        Stable identity of the work (a cell key, a request key); retry
        backoff is seeded by it and results echo it back.
    fn:
        Module-level worker invoked as ``fn(payload, attempt)``; must
        pickle by qualified name (R4).
    payload:
        Plain picklable argument for ``fn``.
    wall_limit:
        Nominal wall budget in seconds; supervised executions grant the
        watchdog this plus the transport's grace.  ``None`` = unbounded.
    """

    key: str
    fn: Callable
    payload: Any
    wall_limit: float | None = None


@dataclass
class WorkResult:
    """How one :class:`WorkItem` ended.

    Exactly one of ``value`` / ``fault`` is meaningful: ``fault is
    None`` and ``value`` is the worker's return, or ``fault`` is the
    classified record of the *last* failed attempt.  ``attempts`` counts
    every execution that happened (pool attempts included), so consumers
    derive "was retried" as ``attempts > 1``.
    """

    key: str
    value: Any = None
    fault: FaultRecord | None = None
    attempts: int = 1

    @property
    def ok(self) -> bool:
        """True iff the worker answered (possibly after retries)."""
        return self.fault is None


@runtime_checkable
class Transport(Protocol):
    """The execution seam: run keyed work, stream results as they finish.

    ``execute`` yields one :class:`WorkResult` per item, in whatever
    order executions complete; it must yield a result for *every* item
    (faults included) — a transport never drops work.
    """

    def execute(self, items: Sequence[WorkItem]) -> Iterator[WorkResult]:
        """Run every item; yield results as they complete."""
        ...  # pragma: no cover - protocol signature


def _call(fn: Callable, payload: Any, attempt: int) -> Any:
    """Pool worker shim: invoke ``fn(payload, attempt)`` (picklable)."""
    return fn(payload, attempt)


def _supervised_call(packed: tuple) -> Any:
    """Supervised-child shim: unpack ``(fn, payload, attempt)`` and run."""
    fn, payload, attempt = packed
    return fn(payload, attempt)


class LocalPoolTransport:
    """Today's local execution path behind the :class:`Transport` seam.

    Three strategies, selected exactly as ``run_batch`` always has:

    * ``supervised=True`` — every item runs in its own watched child
      (:func:`~repro.batch.supervise.run_supervised`) with bounded
      deterministic retries; ``jobs`` watcher threads wait in parallel;
    * ``jobs == 1`` — in-process execution (no pool, no pickling,
      bit-compatible with the historical serial runner); a raising item
      escalates to the supervised retry loop;
    * ``jobs > 1`` — a ``ProcessPoolExecutor`` fast path; any failed
      future (including a pool-breaking worker death) escalates to
      supervised one-shot children in original item order, so a batch
      *always completes*.
    """

    def __init__(
        self,
        jobs: int = 1,
        supervised: bool = False,
        retries: int = 1,
        memory_limit: int | None = None,
        grace: float = DEFAULT_GRACE,
        backoff: float = 0.0,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.jobs = jobs
        self.supervised = supervised
        self.retries = retries
        self.memory_limit = memory_limit
        self.grace = grace
        self.backoff = backoff

    # -- supervised path ----------------------------------------------------
    def _run_with_retries(self, item: WorkItem, base_attempts: int = 0) -> WorkResult:
        """One item in watched children until it answers or retries run out.

        ``base_attempts`` counts executions already burned elsewhere (a
        failed pool attempt); it rides into ``WorkResult.attempts`` but
        not into the fault record, whose ``attempts`` is the supervised
        loop's own count (the historical journal-visible convention).
        """
        wall = None if item.wall_limit is None else item.wall_limit + self.grace
        last_fault: FaultRecord | None = None
        for attempt in range(self.retries + 1):
            if attempt:
                delay = backoff_delay(self.backoff, item.key, attempt)
                if delay > 0.0:
                    time.sleep(delay)
            value, fault = run_supervised(
                _supervised_call,
                (item.fn, item.payload, attempt),
                wall_limit=wall,
                memory_limit=self.memory_limit,
            )
            if fault is None:
                return WorkResult(
                    key=item.key,
                    value=value,
                    attempts=base_attempts + attempt + 1,
                )
            last_fault = fault
        assert last_fault is not None
        return WorkResult(
            key=item.key,
            fault=replace(last_fault, attempts=self.retries + 1),
            attempts=base_attempts + self.retries + 1,
        )

    def _execute_supervised(
        self, items: Sequence[WorkItem], base_attempts: int = 0
    ) -> Iterator[WorkResult]:
        """Run these items in watched children, ``jobs`` wide."""
        if self.jobs == 1 or len(items) == 1:
            for item in items:
                yield self._run_with_retries(item, base_attempts)
            return
        from concurrent.futures import ThreadPoolExecutor, as_completed

        # threads only *wait* on supervised children; the work runs in
        # one watched process per attempt
        with ThreadPoolExecutor(max_workers=self.jobs) as waiters:
            tasks = [
                waiters.submit(self._run_with_retries, item, base_attempts)
                for item in items
            ]
            for fut in as_completed(tasks):
                yield fut.result()

    # -- in-process path ----------------------------------------------------
    def _execute_serial(self, items: Sequence[WorkItem]) -> Iterator[WorkResult]:
        for item in items:
            try:
                value = item.fn(item.payload, 0)
            except Exception:
                # escalate: retry in supervised children, classify there
                yield self._run_with_retries(item, base_attempts=1)
            else:
                yield WorkResult(key=item.key, value=value, attempts=1)

    # -- pool path ----------------------------------------------------------
    def _execute_pool(self, items: Sequence[WorkItem]) -> Iterator[WorkResult]:
        from concurrent.futures import ProcessPoolExecutor, as_completed

        escalate: set[int] = set()
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            futures = {
                pool.submit(_call, item.fn, item.payload, 0): item
                for item in items
            }
            for fut in as_completed(futures):
                item = futures[fut]
                try:
                    value = fut.result()
                except Exception:
                    # a worker exception or a broken pool (one SIGKILLed
                    # worker fails every in-flight future): never abort —
                    # escalate those items below
                    escalate.add(id(item))
                    continue
                yield WorkResult(key=item.key, value=value, attempts=1)
        if escalate:
            # recovery pass in original item order: pool-breakage
            # victims simply succeed here, repeat offenders classify
            yield from self._execute_supervised(
                [it for it in items if id(it) in escalate], base_attempts=1
            )

    def execute(self, items: Sequence[WorkItem]) -> Iterator[WorkResult]:
        """Run every item on the configured local strategy."""
        if not items:
            return
        if self.supervised:
            yield from self._execute_supervised(items)
        elif self.jobs == 1:
            yield from self._execute_serial(items)
        else:
            yield from self._execute_pool(items)
