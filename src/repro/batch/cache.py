"""Content-addressed on-disk caches for batch campaigns and the service.

Layout: one JSON file per entry under ``<root>/<key[:2]>/<key>.json``
(two-level fan-out keeps directories small on big campaigns).  Writes go
through a same-directory temp file + ``os.replace`` so a crash mid-write
can never leave a truncated entry — readers see either the old state or
the complete new one.

Caches are shared freely between concurrent workers and campaigns:
entries are immutable once written (content-addressed by
:func:`repro.batch.cells.cell_key`), so the only race is two processes
computing the same cell, and either's ``os.replace`` wins harmlessly.

Two value shapes share the machinery:

* :class:`ResultCache` — flat :class:`~repro.experiments.runner.RunRecord`
  dicts, the campaign memo ``run_batch`` consults;
* :class:`ReportCache` — full :class:`~repro.solvers.problem.SolveReport`
  documents (schedule table included), the solver service's shared memo
  layer.  Point it at a *different* root than a :class:`ResultCache` —
  both address by cell key, and the value shapes are incompatible.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import asdict
from pathlib import Path

__all__ = ["ResultCache", "ReportCache"]


class _JsonFileCache:
    """Shared layout + atomic-write + tolerant-read machinery.

    Subclasses define how a value becomes a JSON document
    (:meth:`_encode`) and back (:meth:`_decode`); everything about paths,
    atomicity and corruption tolerance lives here once.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _encode(self, value) -> dict:
        raise NotImplementedError  # pragma: no cover - abstract

    def _decode(self, doc: dict):
        raise NotImplementedError  # pragma: no cover - abstract

    def get(self, key: str):
        """The cached value, or None.

        Unreadable/corrupt entries (e.g. an out-of-band partial copy) are
        treated as misses, never errors — the work is simply recomputed.
        """
        path = self._path(key)
        try:
            with open(path) as fh:
                return self._decode(json.load(fh))
        except (OSError, ValueError, TypeError, KeyError):
            return None

    def put(self, key: str, value) -> None:
        """Atomically persist one value under its key."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(self._encode(value), fh, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        """Number of cached entries (walks the fan-out directories)."""
        return sum(1 for _ in self.root.glob("??/*.json"))


class ResultCache(_JsonFileCache):
    """Maps :func:`~repro.batch.cells.cell_key` hex digests to records."""

    def _encode(self, value) -> dict:
        return asdict(value)

    def _decode(self, doc: dict):
        from repro.experiments.runner import RunRecord

        return RunRecord(**doc)


class ReportCache(_JsonFileCache):
    """Maps cell keys to full :class:`~repro.solvers.problem.SolveReport` docs.

    The solver service's memo layer: a report round-trips through its
    own ``to_dict``/``from_dict`` (schedule table, stats and fault
    payloads included), so a warm request is answered byte-equivalently
    to the cold solve that produced it — only the request-scoped label
    gets patched by the server.
    """

    def _encode(self, value) -> dict:
        return value.to_dict()

    def _decode(self, doc: dict):
        from repro.solvers.problem import SolveReport

        return SolveReport.from_dict(doc)
