"""Content-addressed on-disk result cache for batch campaigns.

Layout: one JSON file per solved cell under ``<root>/<key[:2]>/<key>.json``
(two-level fan-out keeps directories small on big campaigns).  Writes go
through a same-directory temp file + ``os.replace`` so a crash mid-write
can never leave a truncated entry — readers see either the old state or
the complete new one.

The cache is shared freely between concurrent workers and campaigns:
entries are immutable once written (content-addressed by
:func:`repro.batch.cells.cell_key`), so the only race is two processes
computing the same cell, and either's ``os.replace`` wins harmlessly.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import asdict
from pathlib import Path

__all__ = ["ResultCache"]


class ResultCache:
    """Maps :func:`~repro.batch.cells.cell_key` hex digests to records."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str):
        """The cached :class:`~repro.experiments.runner.RunRecord`, or None.

        Unreadable/corrupt entries (e.g. an out-of-band partial copy) are
        treated as misses, never errors — the cell is simply recomputed.
        """
        from repro.experiments.runner import RunRecord

        path = self._path(key)
        try:
            with open(path) as fh:
                return RunRecord(**json.load(fh))
        except (OSError, ValueError, TypeError):
            return None

    def put(self, key: str, record) -> None:
        """Atomically persist one record under its key."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(asdict(record), fh, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        """Number of cached entries (walks the fan-out directories)."""
        return sum(1 for _ in self.root.glob("??/*.json"))
