"""repro — Global Multiprocessor Real-Time Scheduling as a CSP.

A full reproduction of Cucu-Grosjean & Buffet (ICPP 2009): periodic task
systems on identical/uniform/heterogeneous multiprocessors, solved exactly
by restating feasibility as a finite constraint satisfaction problem over
one hyperperiod.

Quickstart
----------
>>> import repro
>>> system = repro.TaskSystem.from_tuples([(0, 1, 2, 2), (1, 3, 4, 4), (0, 2, 2, 3)])
>>> result = repro.solve(system, m=2)
>>> result.is_feasible
True

See README.md for the quickstart, docs/ARCHITECTURE.md for the layer
map and design notes, and docs/SOLVERS.md for choosing a solver.
"""

from repro.model import (
    Platform,
    Task,
    TaskSystem,
    clone_for_arbitrary_deadlines,
)
from repro.schedule import (
    IDLE,
    Schedule,
    compute_metrics,
    render_gantt,
    render_intervals,
    validate,
)
from repro.solvers import (
    Feasibility,
    Problem,
    SolveReport,
    SolveResult,
    SolverSpec,
    available_solvers,
    create_solver,
    register_solver,
    solve,
    solve_iter,
)

__version__ = "0.1.0"

__all__ = [
    "Task",
    "TaskSystem",
    "Platform",
    "clone_for_arbitrary_deadlines",
    "IDLE",
    "Schedule",
    "validate",
    "render_gantt",
    "render_intervals",
    "compute_metrics",
    "Feasibility",
    "SolveResult",
    "SolveReport",
    "SolverSpec",
    "Problem",
    "solve",
    "solve_iter",
    "create_solver",
    "register_solver",
    "available_solvers",
    "__version__",
]
