"""Search over fixed-priority assignments (the paper's future-work item).

Three strategies of increasing cleverness:

* :func:`exhaustive_priority_search` — try all ``n!`` orders (exact but
  only viable for small ``n``; the paper names the ``n!`` space
  explicitly);
* :func:`heuristic_priority_search` — try the four heuristic orders
  (D-C first, per the paper's conjecture) and fall back to exhaustive;
* :func:`audsley_priority_search` — Audsley-style lowest-priority-first
  greedy.  NOTE: optimality of Audsley's OPA needs a schedulability test
  that is independent of the relative order of higher-priority tasks;
  exact simulation is *not* such a test on multiprocessors, so this is a
  polynomial heuristic here, not an exact procedure (documented
  limitation, interesting to benchmark against exhaustive).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations

from repro.baselines.priorities import global_fixed_priority
from repro.baselines.simulator import SimulationResult
from repro.model.system import TaskSystem
from repro.solvers.ordering import task_order
from repro.util.timer import Deadline

__all__ = [
    "PrioritySearchResult",
    "exhaustive_priority_search",
    "heuristic_priority_search",
    "audsley_priority_search",
]


@dataclass
class PrioritySearchResult:
    """Outcome of a priority-assignment search."""

    order: list[int] | None  # a schedulable priority order, if found
    simulation: SimulationResult | None
    orders_tried: int
    exhausted: bool  # True iff the whole candidate space was refuted

    @property
    def found(self) -> bool:
        return self.order is not None


def exhaustive_priority_search(
    system: TaskSystem,
    m: int,
    time_limit: float | None = None,
    max_cycles: int = 64,
) -> PrioritySearchResult:
    """Try every priority permutation until one is schedulable."""
    deadline = Deadline(time_limit)
    tried = 0
    for perm in permutations(range(system.n)):
        if deadline.expired():
            return PrioritySearchResult(None, None, tried, exhausted=False)
        tried += 1
        sim = global_fixed_priority(system, m, list(perm), max_cycles=max_cycles)
        if sim.schedulable:
            return PrioritySearchResult(list(perm), sim, tried, exhausted=False)
    return PrioritySearchResult(None, None, tried, exhausted=True)


def heuristic_priority_search(
    system: TaskSystem,
    m: int,
    time_limit: float | None = None,
    fall_back: bool = True,
    max_cycles: int = 64,
) -> PrioritySearchResult:
    """Try (D-C), (T-C), DM, RM and index orders first, then exhaustive."""
    deadline = Deadline(time_limit)
    tried = 0
    seen: set[tuple[int, ...]] = set()
    for heuristic in ("dc", "tc", "dm", "rm", None):
        order = tuple(task_order(system, heuristic))
        if order in seen:
            continue
        seen.add(order)
        if deadline.expired():
            return PrioritySearchResult(None, None, tried, exhausted=False)
        tried += 1
        sim = global_fixed_priority(system, m, list(order), max_cycles=max_cycles)
        if sim.schedulable:
            return PrioritySearchResult(list(order), sim, tried, exhausted=False)
    if not fall_back:
        return PrioritySearchResult(None, None, tried, exhausted=False)
    rest = exhaustive_priority_search(
        system, m, time_limit=deadline.remaining() if time_limit else None,
        max_cycles=max_cycles,
    )
    return PrioritySearchResult(
        rest.order, rest.simulation, tried + rest.orders_tried, rest.exhausted
    )


def audsley_priority_search(
    system: TaskSystem,
    m: int,
    max_cycles: int = 64,
) -> PrioritySearchResult:
    """Audsley-style greedy: assign the lowest priority level to some task
    that is schedulable there (with all unassigned tasks above it, in index
    order), then recurse on the rest.  Polynomial (O(n^2) simulations)."""
    remaining = list(range(system.n))
    suffix: list[int] = []  # lowest priorities, built back to front
    tried = 0
    while remaining:
        placed = False
        for candidate in remaining:
            others = [i for i in remaining if i != candidate]
            order = others + [candidate] + suffix
            tried += 1
            sim = global_fixed_priority(system, m, order, max_cycles=max_cycles)
            # candidate is safe at this level if *its own* jobs never miss;
            # full-order schedulability would be a stronger ask, but a miss
            # by a higher task can still be fixed by ordering `others`
            if sim.schedulable or (sim.missed is not None and sim.missed[0] != candidate):
                suffix.insert(0, candidate)
                remaining = others
                placed = True
                break
        if not placed:
            return PrioritySearchResult(None, None, tried, exhausted=False)
    final = global_fixed_priority(system, m, suffix, max_cycles=max_cycles)
    tried += 1
    if final.schedulable:
        return PrioritySearchResult(suffix, final, tried, exhausted=False)
    return PrioritySearchResult(None, None, tried, exhausted=False)
