"""Baseline schedulers: priority-driven simulation and priority assignment.

The paper has no algorithmic baseline (the CSPs *are* the contribution),
but its discussion section points at one: searching the ``n!`` priority
orderings for a feasible *global fixed-priority* schedule, seeded by the
(D-C) criterion.  This package builds that machinery:

* :mod:`repro.baselines.simulator` — an exact discrete-time simulator of
  global preemptive priority-driven scheduling on identical processors,
  with cycle detection so "no deadline miss, forever" is a proof, not a
  bounded observation;
* :mod:`repro.baselines.priorities` — global EDF and global fixed-priority
  policies (RM / DM / T-C / D-C orders);
* :mod:`repro.baselines.priority_search` — exhaustive, heuristic-seeded
  and Audsley-style searches over priority orderings.

Every schedulable verdict comes with an extracted cyclic
:class:`repro.schedule.Schedule`, so baseline results cross-check the CSP
solvers through the same validator: a priority-schedulable instance is
feasible, hence the CSPs must find it feasible too.
"""

from repro.baselines.simulator import SimulationResult, simulate_priority_policy
from repro.baselines.edf_exact import (
    EdfExactOutcome,
    EdfExactSolver,
    edf_exact_certificate,
    edf_exact_test,
)
from repro.baselines.priorities import (
    global_edf,
    global_fixed_priority,
    priority_order_from_heuristic,
)
from repro.baselines.priority_search import (
    PrioritySearchResult,
    audsley_priority_search,
    exhaustive_priority_search,
    heuristic_priority_search,
)
from repro.baselines.partitioned import (
    PartitionResult,
    exact_partition,
    first_fit_partition,
    uniprocessor_edf_feasible,
)

__all__ = [
    "EdfExactOutcome",
    "EdfExactSolver",
    "edf_exact_certificate",
    "edf_exact_test",
    "PartitionResult",
    "exact_partition",
    "first_fit_partition",
    "uniprocessor_edf_feasible",
    "SimulationResult",
    "simulate_priority_policy",
    "global_edf",
    "global_fixed_priority",
    "priority_order_from_heuristic",
    "PrioritySearchResult",
    "audsley_priority_search",
    "exhaustive_priority_search",
    "heuristic_priority_search",
]
