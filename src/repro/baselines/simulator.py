"""Exact discrete-time simulation of global priority-driven scheduling.

Model (matching the paper's Section II): at every slot the ``m`` highest
priority *active* jobs run, one processor each; jobs always execute their
full WCET (the paper's anomaly-avoidance convention); a deadline miss is a
job with remaining work at its absolute deadline.

Because a constrained-deadline system with a deterministic memoryless
policy has finitely many states per hyperperiod phase — each task carries
at most one incomplete job, so the state is the vector of remaining work —
the simulation either (a) misses a deadline, or (b) reaches two
hyperperiod-aligned instants ``kT`` and ``(k+1)T`` with equal state, from
which point the schedule repeats forever (the periodicity argument of the
paper's references [8]/[9]).  Both outcomes are decisive: the verdict
``schedulable`` is exact, never "looked fine for a while".

Identical processors only (priority-driven policies on heterogeneous
platforms need a task-to-processor matching rule, out of the paper's
scope).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.kernels.simulate import STATIC_EDF, STATIC_RANK, simulate_static
from repro.model.system import TaskSystem
from repro.model.platform import Platform
from repro.schedule.schedule import IDLE, Schedule

__all__ = ["SimulationResult", "simulate_priority_policy"]

#: priority key: (task_index, release_time, abs_deadline, remaining) -> sortable
PriorityKey = Callable[[int, int, int, int], tuple]

#: static-key declarations accepted by ``simulate_priority_policy``:
#: ``("edf", None)`` or ``("rank", Sequence[int])``
StaticKey = "tuple[str, Sequence[int] | None]"


@dataclass
class SimulationResult:
    """Outcome of one policy simulation.

    ``schedulable`` is True only when periodicity was established with no
    miss; False on a deadline miss; None if the cycle cap was hit first
    (did not converge — raise ``max_cycles``).
    """

    schedulable: bool | None
    missed: tuple[int, int, int] | None  # (task, release, deadline) of first miss
    cycles_simulated: int
    schedule: Schedule | None  # one cyclic period, when schedulable

    @property
    def verdict(self) -> str:
        if self.schedulable is None:
            return "inconclusive"
        return "schedulable" if self.schedulable else "miss"


def simulate_priority_policy(
    system: TaskSystem,
    m: int,
    priority: PriorityKey,
    max_cycles: int = 64,
    static_key: tuple | None = None,
) -> SimulationResult:
    """Simulate a global preemptive priority policy until decisive.

    Parameters
    ----------
    system:
        Constrained-deadline task system.
    m:
        Number of identical processors.
    priority:
        Key function over ``(task, release, deadline, remaining)``; *lower*
        sorts first (runs earlier).  Must be deterministic.
    max_cycles:
        Hyperperiods to simulate past the largest offset before giving up
        on convergence.
    static_key:
        Declares ``priority`` *static* (release-data-only), unlocking the
        block-stepping kernel (:mod:`repro.kernels.simulate`):
        ``("edf", None)`` for ``(abs_deadline, task)`` keys or
        ``("rank", ranks)`` for fixed task ranks.  The declaration must
        describe the same order ``priority`` computes — the results are
        byte-identical, only faster (pinned by the kernel parity suite).
        None (default) runs the slot-by-slot loop below.
    """
    if not system.is_constrained:
        raise ValueError("simulation requires constrained deadlines (clone first)")
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    if static_key is not None:
        kind, rank = static_key
        if kind not in (STATIC_EDF, STATIC_RANK):
            raise ValueError(f"unknown static_key kind {kind!r}")
        schedulable, missed, cycles, history = simulate_static(
            [t.offset for t in system],
            [t.period for t in system],
            [t.wcet for t in system],
            [t.deadline for t in system],
            system.hyperperiod,
            m,
            key=kind,
            rank=rank,
            max_cycles=max_cycles,
            idle=IDLE,
        )
        return SimulationResult(
            schedulable=schedulable,
            missed=missed,
            cycles_simulated=cycles,
            schedule=(
                Schedule(system, Platform.identical(m), history)
                if schedulable
                else None
            ),
        )
    T = system.hyperperiod
    n = system.n
    offsets = [t.offset for t in system]
    periods = [t.period for t in system]
    wcets = [t.wcet for t in system]
    deadlines = [t.deadline for t in system]
    o_max = max(offsets)

    # per task: the current job's (release, deadline, remaining); None = idle
    current: list[tuple[int, int, int] | None] = [None] * n
    # number of releases that already happened
    released_count = [0] * n

    # record one hyperperiod of schedule history so a cycle can be extracted
    history = np.full((m, T), IDLE, dtype=np.int32)
    prev_state: tuple | None = None
    start_cycle = (o_max + T - 1) // T  # first hyperperiod-aligned t >= o_max

    t = 0
    horizon = (start_cycle + max_cycles) * T
    while t <= horizon:
        # hyperperiod-aligned state check
        if t >= start_cycle * T and t % T == 0:
            state = tuple(
                (c[2], c[0] - t) if c is not None else None for c in current
            )
            if state == prev_state:
                sched = Schedule(system, Platform.identical(m), history)
                return SimulationResult(
                    schedulable=True,
                    missed=None,
                    cycles_simulated=t // T,
                    schedule=sched,
                )
            prev_state = state
        if t == horizon:
            break

        # releases at time t
        for i in range(n):
            k = released_count[i]
            rel = offsets[i] + k * periods[i]
            if rel == t:
                released_count[i] += 1
                if wcets[i] > 0:
                    # constrained deadlines: the previous job must be done
                    current[i] = (rel, rel + deadlines[i], wcets[i])

        # pick the m highest-priority active jobs
        active = [
            (priority(i, c[0], c[1], c[2]), i)
            for i, c in enumerate(current)
            if c is not None
        ]
        active.sort()
        running = [i for _, i in active[:m]]

        # record into the cyclic history buffer
        col = t % T
        history[:, col] = IDLE
        for slot_idx, i in enumerate(running):
            history[slot_idx, col] = i

        # execute one slot
        for i in running:
            rel, dl, rem = current[i]
            rem -= 1
            current[i] = None if rem == 0 else (rel, dl, rem)

        t += 1

        # deadline checks at time t (job must be complete by its deadline)
        for i in range(n):
            c = current[i]
            if c is not None and t >= c[1]:
                return SimulationResult(
                    schedulable=False,
                    missed=(i, c[0], c[1]),
                    cycles_simulated=t // T,
                    schedule=None,
                )

    return SimulationResult(
        schedulable=None, missed=None, cycles_simulated=max_cycles, schedule=None
    )
