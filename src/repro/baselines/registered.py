"""Baseline schedulers exposed through the solver registry.

The simulation baselines answer a *weaker* question than the CSP solvers:
"does this fixed priority policy meet every deadline?"  A schedulable
verdict implies feasibility (the extracted cyclic schedule validates
against C1-C4), but a deadline miss only disproves that one policy — so
these plugins report FEASIBLE or UNKNOWN, never INFEASIBLE, and carry
neither the ``proves_infeasibility`` nor the ``exact`` capability.

Registered names::

    edf              global earliest-deadline-first simulation
    fp[+rm|+dm|+tc|+dc]  global fixed-priority simulation; the suffix picks
                     the priority order (task-index order when absent)

Because they finish in simulation time (bounded by ``max_cycles``
hyperperiods, not by search), they make cheap portfolio members:
``portfolio:edf,csp2+dc`` answers EDF-schedulable instances at
simulation speed and falls back to the exact solver for the rest.
"""

from __future__ import annotations

import time

from repro.baselines.priorities import (
    global_edf,
    global_fixed_priority,
    priority_order_from_heuristic,
)
from repro.model.platform import Platform
from repro.model.system import TaskSystem
from repro.solvers.base import Feasibility, SolveResult, SolverStats
from repro.solvers.registry import register_solver

__all__ = ["PrioritySimulationSolver"]


class PrioritySimulationSolver:
    """Adapter: a priority-policy simulation with the solver calling convention.

    Parameters
    ----------
    policy:
        ``"edf"`` or ``"fp"``.
    heuristic:
        Priority order for ``fp`` (``rm``/``dm``/``tc``/``dc``; ``None``
        is task-index order).  Ignored by ``edf``.
    max_cycles:
        Hyperperiods to simulate before giving up on convergence.
    """

    def __init__(
        self,
        system: TaskSystem,
        platform: Platform,
        policy: str = "edf",
        heuristic: str | None = None,
        max_cycles: int = 64,
    ) -> None:
        if not platform.is_identical:
            raise ValueError(
                "priority-simulation baselines support identical platforms only"
            )
        if policy not in ("edf", "fp"):
            raise ValueError(f"unknown policy {policy!r}; expected 'edf' or 'fp'")
        self.system = system
        self.platform = platform
        self.policy = policy
        self.heuristic = heuristic
        self.max_cycles = max_cycles
        if policy == "edf":
            self.name = "edf"
        else:
            self.name = f"fp{'+' + heuristic if heuristic else ''}"

    def solve(
        self, time_limit: float | None = None, node_limit: int | None = None
    ) -> SolveResult:
        """Simulate the policy; FEASIBLE on schedulable, else UNKNOWN.

        ``time_limit``/``node_limit`` are accepted for interface parity;
        the simulation's own bound is ``max_cycles`` hyperperiods.
        """
        t0 = time.monotonic()
        if self.policy == "edf":
            sim = global_edf(self.system, self.platform.m, max_cycles=self.max_cycles)
        else:
            order = priority_order_from_heuristic(self.system, self.heuristic)
            sim = global_fixed_priority(
                self.system, self.platform.m, order, max_cycles=self.max_cycles
            )
        elapsed = time.monotonic() - t0
        feasible = sim.schedulable is True and sim.schedule is not None
        stats = SolverStats(
            nodes=sim.cycles_simulated,
            elapsed=elapsed,
            extra={"policy": self.name, "verdict": sim.verdict},
        )
        return SolveResult(
            status=Feasibility.FEASIBLE if feasible else Feasibility.UNKNOWN,
            schedule=sim.schedule if feasible else None,
            stats=stats,
            solver_name=self.name,
        )


@register_solver(
    "edf",
    description=(
        "Exact simulation of global preemptive EDF with cycle detection; "
        "schedulable means feasible, a miss only rules out EDF"
    ),
    paper_section="I (the paradigm the CSPs are compared against)",
    pick_when=(
        "A cheap first answer or portfolio member; a miss is NOT an "
        "infeasibility proof"
    ),
    capabilities=(),
    suffixes={},
    options=("max_cycles",),
    platforms=("identical",),
)
def _build_edf(system, platform, spec, seed, **options):
    """Registry factory: ``edf`` (global EDF simulation)."""
    return PrioritySimulationSolver(system, platform, policy="edf", **options)


@register_solver(
    "fp",
    description=(
        "Exact simulation of global fixed-priority scheduling; the suffix "
        "picks the priority order (task-index order when absent)"
    ),
    paper_section="VIII (priority-assignment future work)",
    pick_when=(
        "Checking how a classic priority policy does on an instance; a "
        "miss is NOT an infeasibility proof"
    ),
    capabilities=(),
    suffixes={
        "rm": "Fixed priorities in rate-monotonic order (smallest T first)",
        "dm": "Fixed priorities in deadline-monotonic order (smallest D first)",
        "tc": "Fixed priorities in smallest T-C order",
        "dc": "Fixed priorities in smallest D-C order (the paper's seed "
        "criterion for priority search)",
    },
    options=("max_cycles",),
    platforms=("identical",),
    hidden_suffixes=("t-c", "(t-c)", "d-c", "(d-c)", "none"),
)
def _build_fp(system, platform, spec, seed, **options):
    """Registry factory: ``fp[+heuristic]`` (suffix = priority order)."""
    if spec.suffix:
        from repro.solvers.ordering import heuristic_key

        heuristic_key(spec.suffix)  # validates / raises
    return PrioritySimulationSolver(
        system, platform, policy="fp", heuristic=spec.suffix, **options
    )
