"""Concrete priority policies: global EDF and global fixed-priority."""

from __future__ import annotations

from collections.abc import Sequence

from repro.baselines.simulator import SimulationResult, simulate_priority_policy
from repro.model.system import TaskSystem
from repro.solvers.ordering import task_order

__all__ = [
    "global_edf",
    "global_fixed_priority",
    "priority_order_from_heuristic",
]


def global_edf(system: TaskSystem, m: int, max_cycles: int = 64) -> SimulationResult:
    """Global preemptive EDF: earliest absolute deadline first.

    Job-level fixed priority; ties break by task index (deterministic).
    The key is static (release data only), so the simulation runs on the
    block-stepping kernel.
    """
    return simulate_priority_policy(
        system,
        m,
        priority=lambda i, rel, dl, rem: (dl, i),
        max_cycles=max_cycles,
        static_key=("edf", None),
    )


def global_fixed_priority(
    system: TaskSystem,
    m: int,
    priority_order: Sequence[int],
    max_cycles: int = 64,
) -> SimulationResult:
    """Global preemptive fixed-priority with an explicit task order.

    ``priority_order`` lists task indices from highest to lowest priority
    (a permutation of ``0..n-1``).
    """
    order = list(priority_order)
    if sorted(order) != list(range(system.n)):
        raise ValueError(
            f"priority_order must be a permutation of 0..{system.n - 1}, got {order}"
        )
    rank = [0] * system.n
    for pos, i in enumerate(order):
        rank[i] = pos
    # ranks are a permutation (unique), so (rank,) and (rank, i) sort
    # identically — the static declaration matches the callable's order
    return simulate_priority_policy(
        system,
        m,
        priority=lambda i, rel, dl, rem: (rank[i],),
        max_cycles=max_cycles,
        static_key=("rank", rank),
    )


def priority_order_from_heuristic(system: TaskSystem, heuristic: str | None) -> list[int]:
    """Task priority order induced by the paper's value heuristics.

    The discussion section suggests that the winning (D-C) value ordering
    "implies that an optimal priority assignment algorithm could be built
    starting from a first ordering based on a (D-C) criterion" — this is
    that ordering as a fixed-priority assignment.
    """
    return task_order(system, heuristic)
