"""Partitioned scheduling baseline (the paper's other paradigm, Section I).

The paper contrasts *global* scheduling (tasks and jobs migrate) with
*partitioned* scheduling (every job of a task runs on one fixed
processor); its related work [5] solves the partitioned case with
constraint programming.  This module provides the partitioned side so the
two paradigms can be compared on identical instances:

* per-processor feasibility is decided *exactly* by uniprocessor EDF
  simulation (EDF is optimal on one processor, and the simulator's
  periodicity detection makes the verdict a proof);
* :func:`first_fit_partition` is the classic utilization-ordered
  first-fit-decreasing heuristic;
* :func:`exact_partition` searches all task-to-processor assignments
  (set-partition enumeration with symmetry pruning), so "no partition
  exists" is also a proof.

Global scheduling dominates partitioned scheduling: some systems are
globally feasible but admit no partition (see
``examples/partitioned_vs_global.py``), while every partitioned schedule
is trivially a global one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.priorities import global_edf
from repro.model.system import TaskSystem
from repro.model.task import Task
from repro.util.timer import Deadline

__all__ = [
    "PartitionResult",
    "uniprocessor_edf_feasible",
    "first_fit_partition",
    "exact_partition",
]


@dataclass
class PartitionResult:
    """Outcome of a partitioning attempt.

    ``assignment[i]`` is the processor of task ``i``; None when no
    partition was found.  ``exact`` tells whether a negative answer is a
    proof (exhaustive search completed) or just the heuristic giving up.
    """

    assignment: list[int] | None
    exact: bool
    partitions_tried: int = 0

    @property
    def found(self) -> bool:
        return self.assignment is not None


def uniprocessor_edf_feasible(tasks: list[Task], max_cycles: int = 64) -> bool:
    """Exact uniprocessor feasibility via EDF simulation (EDF is optimal
    on one processor, so EDF-schedulable <=> feasible)."""
    if not tasks:
        return True
    sim = global_edf(TaskSystem(tasks), 1, max_cycles=max_cycles)
    if sim.schedulable is None:
        raise RuntimeError(
            "uniprocessor simulation did not converge; raise max_cycles"
        )
    return bool(sim.schedulable)


def first_fit_partition(
    system: TaskSystem, m: int, max_cycles: int = 64
) -> PartitionResult:
    """First-fit decreasing (by density) with the exact EDF bin test."""
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    order = sorted(
        range(system.n), key=lambda i: (system[i].density, i), reverse=True
    )
    bins: list[list[Task]] = [[] for _ in range(m)]
    assignment = [-1] * system.n
    tried = 0
    for i in order:
        placed = False
        for j in range(m):
            tried += 1
            if uniprocessor_edf_feasible(bins[j] + [system[i]], max_cycles):
                bins[j].append(system[i])
                assignment[i] = j
                placed = True
                break
        if not placed:
            return PartitionResult(None, exact=False, partitions_tried=tried)
    return PartitionResult(assignment, exact=True, partitions_tried=tried)


def exact_partition(
    system: TaskSystem,
    m: int,
    time_limit: float | None = None,
    max_cycles: int = 64,
) -> PartitionResult:
    """Exhaustive search over task partitions into ``<= m`` processors.

    Processors are identical, so assignments are enumerated in canonical
    form (task 0 on processor 0; each later task on a used processor or
    the next fresh one), cutting the ``m^n`` space by the symmetry factor.
    Infeasible bins prune their whole subtree.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    deadline = Deadline(time_limit)
    assignment = [-1] * system.n
    bins: list[list[Task]] = [[] for _ in range(m)]
    tried = 0
    timed_out = False

    def descend(i: int, used: int) -> list[int] | None:
        nonlocal tried, timed_out
        if timed_out or deadline.expired():
            timed_out = True
            return None
        if i == system.n:
            return assignment.copy()
        limit = min(used + 1, m)  # canonical: at most one fresh processor
        for j in range(limit):
            tried += 1
            bins[j].append(system[i])
            if uniprocessor_edf_feasible(bins[j], max_cycles):
                assignment[i] = j
                found = descend(i + 1, max(used, j + 1))
                if found is not None:
                    return found
            bins[j].pop()
            assignment[i] = -1
        return None

    found = descend(0, 0)
    return PartitionResult(
        found, exact=not timed_out, partitions_tried=tried
    )
