"""The exact global-EDF schedulability test (Goossens & Meumeu Yomsi).

PAPERS.md's *Exact Schedulability Test for global-EDF Scheduling of
Periodic Hard Real-Time Tasks on Identical Multiprocessors* observes
that deterministic global EDF on a periodic constrained-deadline system
is a finite-state process: at every hyperperiod-aligned instant the
whole future is determined by the vector of (remaining work, laxity to
absolute deadline) of the active jobs.  Exploring that state space —
hashing every configuration seen at the aligned instants — therefore
*decides* EDF-schedulability, with no simulation-horizon leap of faith:

* a **repeated configuration** with no deadline miss in between proves
  the schedule cycles forever — the repeating segment is extracted as a
  C1-C4-validating cyclic :class:`~repro.schedule.schedule.Schedule`;
* a **deadline miss** disproves EDF-schedulability outright, and the
  concrete miss configuration (which job, which deadline, what every
  task was carrying at that instant) is the counterexample.

This is deliberately a *second, independent decision procedure*: the
loop below shares no code with the CSP/SAT engines, the screening
cascade, or even :mod:`repro.baselines.simulator` (whose cycle check
only compares consecutive aligned states and gives up after
``max_cycles`` hyperperiods).  That independence is what makes it a
useful differential-testing oracle (:mod:`repro.difftest`) — and a
cheap portfolio member for EDF-shaped instances.

Mapping EDF-schedulability onto this library's *feasibility* question
(registered as solver ``edf-exact``) is asymmetric, and the registry
metadata says so:

* EDF-schedulable ⇒ FEASIBLE, witnessed by the validated cycle;
* an EDF miss on ``m == 1`` ⇒ INFEASIBLE — uniprocessor preemptive EDF
  is optimal (Dertouzos), so no schedule of any kind exists; the family
  carries :data:`~repro.solvers.registry.PROVES_INFEASIBILITY` for
  exactly this case;
* an EDF miss on ``m >= 2`` ⇒ UNKNOWN — global EDF is *not* optimal on
  multiprocessors, so the miss only rules out EDF itself; the miss
  configuration still travels in the result's stats for forensics.

Consequently ``edf-exact`` does **not** claim the ``exact`` capability:
it always terminates with a verdict about *EDF*, but not always about
feasibility.
"""

from __future__ import annotations

import time
from bisect import insort
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.analysis.certificates import Certificate
from repro.model.platform import Platform
from repro.model.system import TaskSystem
from repro.schedule.schedule import IDLE, Schedule
from repro.solvers.base import Feasibility, SolveResult, SolverStats
from repro.solvers.registry import PROVES_INFEASIBILITY, register_solver

__all__ = [
    "EdfExactOutcome",
    "edf_exact_test",
    "edf_exact_certificate",
    "EdfExactSolver",
]

#: outcome verdict strings of :func:`edf_exact_test`
EDF_SCHEDULABLE = "edf-schedulable"
EDF_MISS = "edf-miss"
EDF_OVERRUN = "overrun"


@dataclass(frozen=True)
class EdfExactOutcome:
    """What the state-space exploration decided.

    Attributes
    ----------
    verdict:
        ``"edf-schedulable"``, ``"edf-miss"``, or ``"overrun"`` (a
        caller-imposed time/node/configuration budget expired — never
        happens without one: the state space is finite).
    schedule:
        The repeating cyclic segment (``cycle_length`` hyperperiods
        long) when schedulable; None otherwise.
    cycle_start, cycle_length:
        Hyperperiod indices: the configuration first seen at hyperperiod
        ``cycle_start`` recurred at ``cycle_start + cycle_length``.
    miss:
        On a miss: ``{"task", "release", "deadline", "time",
        "configuration"}`` — the concrete counterexample configuration,
        with per-task ``[remaining, deadline - time]`` entries (None for
        tasks with no active job).
    slots, configurations:
        Exploration effort: simulated time slots and distinct aligned
        configurations hashed.
    """

    verdict: str
    schedule: Schedule | None
    cycle_start: int
    cycle_length: int
    miss: dict[str, Any] | None
    slots: int
    configurations: int

    @property
    def schedulable(self) -> bool | None:
        """True/False when decided, None on an ``overrun``."""
        if self.verdict == EDF_SCHEDULABLE:
            return True
        if self.verdict == EDF_MISS:
            return False
        return None


def edf_exact_test(
    system: TaskSystem,
    m: int,
    time_limit: float | None = None,
    node_limit: int | None = None,
    config_limit: int | None = None,
) -> EdfExactOutcome:
    """Decide global-EDF schedulability by exhaustive state exploration.

    Simulates deterministic global preemptive EDF (earliest absolute
    deadline first, ties by task index) slot by slot, hashing the system
    configuration at every hyperperiod-aligned instant past the largest
    offset.  Terminates on the first deadline miss or the first repeated
    configuration — one of which must occur, because a constrained-
    deadline system carries at most one active job per task and the
    per-task ``(remaining, deadline - t)`` pairs range over a finite set.

    Parameters
    ----------
    system:
        Constrained-deadline task system (clone arbitrary deadlines
        first, as every solver does).
    m:
        Number of identical processors.
    time_limit, node_limit, config_limit:
        Optional budgets (wall seconds / simulated slots / hashed
        configurations).  Exceeding one yields an ``overrun`` outcome;
        without budgets the test always decides.
    """
    if not system.is_constrained:
        raise ValueError(
            "edf_exact_test requires constrained deadlines (clone first)"
        )
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    T = system.hyperperiod
    n = system.n
    offsets = [t.offset for t in system]
    periods = [t.period for t in system]
    wcets = [t.wcet for t in system]
    deadlines = [t.deadline for t in system]
    # first hyperperiod-aligned instant at which the release pattern has
    # become fully periodic (every task has had its first release)
    start_cycle = (max(offsets) + T - 1) // T

    # per task: the active job's release / abs deadline / remaining work
    # (remaining 0 = no active job)
    release = [0] * n
    abs_dl = [0] * n
    remaining = [0] * n
    next_release = list(offsets)

    #: configuration -> hyperperiod index of its first occurrence
    seen: dict[tuple, int] = {}
    #: one m x T schedule block per simulated hyperperiod
    blocks: list[np.ndarray] = []
    #: active jobs sorted by (abs deadline, task) — EDF order, kept
    #: incrementally (insort on release, filter on completion)
    queue: list[tuple[int, int]] = []

    deadline_wall = None if time_limit is None else time.monotonic() + time_limit

    def configuration(t: int) -> tuple:
        return tuple(
            (remaining[i], abs_dl[i] - t) if remaining[i] else None
            for i in range(n)
        )

    def miss_payload(i: int, t: int) -> dict[str, Any]:
        return {
            "task": i,
            "release": release[i],
            "deadline": abs_dl[i],
            "remaining": remaining[i],
            "time": t,
            "m": m,
            "configuration": [
                [remaining[j], abs_dl[j] - t] if remaining[j] else None
                for j in range(n)
            ],
        }

    # Block stepping (see repro.kernels.simulate for the argument): the
    # EDF pick can only change at a release or a completion, and misses
    # and configuration hashes only happen at deadlines / aligned
    # instants, so the slot loop advances window-by-window — each window
    # runs to the next release / earliest active deadline / hyperperiod
    # boundary / node budget, with an inner staircase over completions.
    # Every observable (hash times, schedule blocks, miss time and
    # payload, slot counts) is byte-identical to the per-slot loop.
    t = 0
    while True:
        if t % T == 0:
            if t >= start_cycle * T:
                config = configuration(t)
                k = t // T
                first = seen.setdefault(config, k)
                if first != k:
                    table = np.hstack(blocks[first:k])
                    return EdfExactOutcome(
                        verdict=EDF_SCHEDULABLE,
                        schedule=Schedule(system, Platform.identical(m), table),
                        cycle_start=first,
                        cycle_length=k - first,
                        miss=None,
                        slots=t,
                        configurations=len(seen),
                    )
                if config_limit is not None and len(seen) > config_limit:
                    break
            if deadline_wall is not None and time.monotonic() >= deadline_wall:
                break
            blocks.append(np.full((m, T), IDLE, dtype=np.int32))
        if node_limit is not None and t >= node_limit:
            break

        # releases at time t (constrained deadlines: the previous job of a
        # task must have completed — or missed — before its next release)
        for i in range(n):
            if next_release[i] == t:
                next_release[i] += periods[i]
                if wcets[i] > 0:
                    release[i] = t
                    dl = t + deadlines[i]
                    abs_dl[i] = dl
                    remaining[i] = wcets[i]
                    insort(queue, (dl, i))

        # widest window with no release, no active deadline, no aligned
        # instant and no budget boundary strictly inside it
        w = T - t % T
        nr = min(next_release) - t
        if nr < w:
            w = nr
        if queue:  # deadline-sorted: the earliest deadline is the head
            d = queue[0][0] - t
            if d < w:
                w = d
        if node_limit is not None and node_limit - t < w:
            w = node_limit - t
        window_end = t + (w if w > 0 else 1)

        block = blocks[-1]
        while t < window_end:
            running = queue[:m]
            delta = window_end - t
            for _, i in running:
                r = remaining[i]
                if r < delta:
                    delta = r
            col = t % T
            for slot, (_, i) in enumerate(running):
                block[slot, col:col + delta] = i
            completed = False
            for _, i in running:
                left = remaining[i] - delta
                remaining[i] = left
                if not left:
                    completed = True
            t += delta
            if completed:
                queue = [e for e in queue if remaining[e[1]]]

        # deadline check: remaining work at (or past) the absolute
        # deadline — cannot fire strictly inside a window (every active
        # deadline is >= window_end), so first miss time and task match
        # the per-slot loop exactly
        for i in range(n):
            if remaining[i] and t >= abs_dl[i]:
                return EdfExactOutcome(
                    verdict=EDF_MISS,
                    schedule=None,
                    cycle_start=0,
                    cycle_length=0,
                    miss=miss_payload(i, t),
                    slots=t,
                    configurations=len(seen),
                )

    return EdfExactOutcome(
        verdict=EDF_OVERRUN,
        schedule=None,
        cycle_start=0,
        cycle_length=0,
        miss=None,
        slots=t,
        configurations=len(seen),
    )


def edf_exact_certificate(
    system: TaskSystem,
    m: int,
    time_limit: float | None = None,
    node_limit: int | None = None,
    config_limit: int | None = None,
) -> Certificate:
    """The exact EDF test as an analysis-style :class:`Certificate`.

    FEASIBLE carries the repeating cycle as its witness schedule;
    INFEASIBLE (``m == 1`` miss, by uniprocessor EDF optimality) carries
    the miss configuration; an ``m >= 2`` miss — or a budget overrun —
    abstains, with the miss configuration still recorded in the witness
    for the former.
    """
    outcome = edf_exact_test(
        system,
        m,
        time_limit=time_limit,
        node_limit=node_limit,
        config_limit=config_limit,
    )
    if outcome.verdict == EDF_SCHEDULABLE:
        return Certificate.feasible(
            "edf-exact:cycle",
            witness={
                "cycle_start": outcome.cycle_start,
                "cycle_length": outcome.cycle_length,
                "slots": outcome.slots,
                "configurations": outcome.configurations,
            },
            detail=(
                f"EDF cycles after {outcome.cycle_start + outcome.cycle_length}"
                f" hyperperiod(s) (cycle length {outcome.cycle_length}T, "
                f"{outcome.configurations} configuration(s) explored)"
            ),
            schedule=outcome.schedule,
        )
    if outcome.verdict == EDF_MISS and m == 1:
        miss = outcome.miss
        return Certificate.infeasible(
            "edf-exact:miss",
            witness=miss,
            detail=(
                f"uniprocessor EDF (optimal) misses: task {miss['task']} "
                f"job released at {miss['release']} still holds "
                f"{miss['remaining']} unit(s) at its deadline {miss['deadline']}"
            ),
        )
    if outcome.verdict == EDF_MISS:
        miss = outcome.miss
        return Certificate(
            Feasibility.UNKNOWN,
            "edf-exact:miss",
            witness=miss,
            detail=(
                f"global EDF on m={m} misses (task {miss['task']} at "
                f"t={miss['time']}); EDF is not optimal on multiprocessors, "
                "so this rules out EDF only, not feasibility"
            ),
        )
    return Certificate(
        Feasibility.UNKNOWN,
        "edf-exact:overrun",
        witness={"slots": outcome.slots, "configurations": outcome.configurations},
        detail=f"budget expired after {outcome.slots} slot(s)",
    )


class EdfExactSolver:
    """Adapter: the exact EDF test with the solver calling convention.

    ``solve`` maps the EDF verdict onto the feasibility question as
    documented in the module docstring and records the full exploration
    provenance (verdict, cycle/miss witness, configuration counts) in
    ``stats.extra["edf_exact"]``, so JSONL round-trips keep it.
    """

    name = "edf-exact"

    def __init__(
        self,
        system: TaskSystem,
        platform: Platform,
        config_limit: int | None = None,
    ) -> None:
        if not platform.is_identical:
            raise ValueError(
                "the exact EDF test argues about identical processors only"
            )
        if not system.is_constrained:
            raise ValueError(
                "edf-exact requires constrained deadlines (the solve front "
                "door clones arbitrary-deadline systems first)"
            )
        self.system = system
        self.platform = platform
        self.config_limit = config_limit

    def solve(
        self, time_limit: float | None = None, node_limit: int | None = None
    ) -> SolveResult:
        """Run the decision procedure; map its verdict onto feasibility."""
        t0 = time.monotonic()
        cert = edf_exact_certificate(
            self.system,
            self.platform.m,
            time_limit=time_limit,
            node_limit=node_limit,
            config_limit=self.config_limit,
        )
        witness = dict(cert.witness)
        stats = SolverStats(
            nodes=int(witness.get("slots", witness.get("time", 0)) or 0),
            elapsed=time.monotonic() - t0,
            extra={
                "edf_exact": {
                    "test": cert.test_name,
                    "verdict": cert.verdict.value,
                    "witness": witness,
                }
            },
        )
        return SolveResult(
            status=cert.verdict,
            schedule=cert.schedule,
            stats=stats,
            solver_name=self.name,
            decided_by=cert.test_name if cert.decided else None,
        )


@register_solver(
    "edf-exact",
    description=(
        "Exact global-EDF schedulability decision by configuration-hashed "
        "state-space exploration (Goossens & Meumeu Yomsi): FEASIBLE with "
        "a validated repeating cycle, INFEASIBLE on a uniprocessor miss "
        "(EDF is optimal there), UNKNOWN on a multiprocessor miss"
    ),
    paper_section="",
    pick_when=(
        "EDF-shaped instances, as a portfolio member, and as the "
        "independent oracle behind `repro-mgrts difftest`"
    ),
    capabilities=(PROVES_INFEASIBILITY,),
    suffixes={},
    options=("config_limit",),
    platforms=("identical",),
)
def _build_edf_exact(system, platform, spec, seed, **options):
    """Registry factory: ``edf-exact`` (the exact global-EDF oracle)."""
    return EdfExactSolver(system, platform, **options)
