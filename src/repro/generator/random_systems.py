"""Random problem generation (paper Section VII-A).

The paper's recipe:

* ``n > 2`` tasks, ``m in 1..(n-1)`` processors, maximum period ``Tmax``;
* per task the constraint ``0 <= C_i <= D_i <= T_i`` must hold, and the
  order in which the three dependent parameters are drawn shapes the
  distribution:

  - ``cdt``:     ``C ~ U(1..Tmax)``, ``D ~ U(C..Tmax)``, ``T ~ U(D..Tmax)``
    (favors large periods);
  - ``tdc``:     ``T ~ U(1..Tmax)``, ``D ~ U(1..T)``, ``C ~ U(1..D)``
    (favors short WCETs);
  - ``d-first`` (the paper's choice): ``D ~ U(1..Tmax)`` first, then
    ``C ~ U(1..D)`` and ``T ~ U(D..Tmax)`` — independent given ``D``.

* offsets: the paper leaves ``O_i`` unspecified beyond "independent of
  other parameters"; since only ``O_i mod T_i`` matters for the cyclic
  pattern (docs/ARCHITECTURE.md, "Design notes") we draw ``O ~ U(0..T-1)`` by default, with
  ``offsets="zero"`` for synchronous systems.

Instances are *not* filtered by utilization (the paper keeps ``r > 1``
instances on purpose — Table II counts how many can be pruned that way).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from fractions import Fraction

from repro.model.system import TaskSystem
from repro.model.task import Task

__all__ = [
    "GeneratorConfig",
    "Instance",
    "generate_task",
    "generate_system",
    "generate_instance",
    "generate_instances",
]

_ORDERS = ("d-first", "cdt", "tdc")
_OFFSETS = ("uniform", "zero")


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the random generator.

    ``m`` may be a fixed int, ``"uniform"`` (``U(1..n-1)``, the paper's
    generic choice) or ``"min"`` (``m = max(1, ceil(U))``, Table IV's rule
    making every instance pass the utilization filter).
    """

    n: int = 10
    tmax: int = 7
    m: int | str = 5
    order: str = "d-first"
    offsets: str = "uniform"

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"n must be >= 1, got {self.n}")
        if self.tmax < 1:
            raise ValueError(f"tmax must be >= 1, got {self.tmax}")
        if self.order not in _ORDERS:
            raise ValueError(f"order must be one of {_ORDERS}, got {self.order!r}")
        if self.offsets not in _OFFSETS:
            raise ValueError(f"offsets must be one of {_OFFSETS}, got {self.offsets!r}")
        if isinstance(self.m, str):
            if self.m not in ("uniform", "min"):
                raise ValueError(f"m must be an int, 'uniform' or 'min', got {self.m!r}")
        elif self.m < 1:
            raise ValueError(f"m must be >= 1, got {self.m}")


@dataclass(frozen=True)
class Instance:
    """One generated problem: a task system and a processor count."""

    system: TaskSystem
    m: int
    seed: int | None = None

    @property
    def utilization_ratio(self) -> Fraction:
        """``r = U / m`` (Table III's difficulty axis)."""
        return self.system.utilization_ratio(self.m)


def generate_task(rng: random.Random, tmax: int, order: str = "d-first") -> Task:
    """Draw one task (without offset; offset drawn by the system sampler)."""
    if order == "cdt":
        c = rng.randint(1, tmax)
        d = rng.randint(c, tmax)
        t = rng.randint(d, tmax)
    elif order == "tdc":
        t = rng.randint(1, tmax)
        d = rng.randint(1, t)
        c = rng.randint(1, d)
    elif order == "d-first":
        d = rng.randint(1, tmax)
        c = rng.randint(1, d)
        t = rng.randint(d, tmax)
    else:
        raise ValueError(f"order must be one of {_ORDERS}, got {order!r}")
    return Task(offset=0, wcet=c, deadline=d, period=t)


def generate_system(
    rng: random.Random,
    n: int,
    tmax: int,
    order: str = "d-first",
    offsets: str = "uniform",
) -> TaskSystem:
    """Draw a full task system."""
    tasks = []
    for _ in range(n):
        t = generate_task(rng, tmax, order)
        o = rng.randint(0, t.period - 1) if offsets == "uniform" else 0
        tasks.append(Task(o, t.wcet, t.deadline, t.period))
    return TaskSystem(tasks)


def generate_instance(config: GeneratorConfig, seed: int) -> Instance:
    """Draw one :class:`Instance` deterministically from ``seed``."""
    rng = random.Random(seed)
    system = generate_system(rng, config.n, config.tmax, config.order, config.offsets)
    if config.m == "uniform":
        m = rng.randint(1, max(1, config.n - 1))
    elif config.m == "min":
        m = system.min_processors
    else:
        m = config.m
    return Instance(system=system, m=m, seed=seed)


def generate_instances(config: GeneratorConfig, count: int, seed: int = 0) -> list[Instance]:
    """``count`` instances with derived per-instance seeds (reproducible)."""
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    base = random.Random(seed)
    return [generate_instance(config, base.randrange(2**62)) for _ in range(count)]
