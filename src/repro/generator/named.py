"""Named instances used throughout examples, tests and docs."""

from __future__ import annotations

from repro.model.platform import Platform
from repro.model.system import TaskSystem
from repro.util.math import lcm_all

__all__ = [
    "running_example",
    "running_example_platform",
    "saturated_pair",
    "harmonic_system",
]


def running_example() -> TaskSystem:
    """The paper's Example 1 (Figure 1): n=3, m=2, hyperperiod 12.

    ======  ===  ===  ===  ===
    task     O    C    D    T
    ======  ===  ===  ===  ===
    tau1     0    1    2    2
    tau2     1    3    4    4
    tau3     0    2    2    3
    ======  ===  ===  ===  ===
    """
    return TaskSystem.from_tuples([(0, 1, 2, 2), (1, 3, 4, 4), (0, 2, 2, 3)])


def running_example_platform() -> Platform:
    """The two identical processors of Example 1."""
    return Platform.identical(2)


def saturated_pair() -> TaskSystem:
    """Two tasks that exactly saturate one processor (U = 1) — feasible on
    m=1 only with perfect packing; a minimal stress case."""
    return TaskSystem.from_tuples([(0, 1, 2, 2), (0, 2, 4, 4)])


def harmonic_system(levels: int = 4, base: int = 2) -> TaskSystem:
    """Harmonic periods ``base, base^2, ..`` with C=1, D=T — the friendly
    workload family (harmonic RM is optimal on one processor)."""
    if levels < 1:
        raise ValueError(f"levels must be >= 1, got {levels}")
    tuples = []
    for k in range(1, levels + 1):
        period = base**k
        tuples.append((0, 1, period, period))
    return TaskSystem.from_tuples(tuples)
