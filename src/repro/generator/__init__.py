"""Workload generation: the paper's random instances plus named systems."""

from repro.generator.random_systems import (
    GeneratorConfig,
    Instance,
    generate_instance,
    generate_instances,
    generate_system,
    generate_task,
)
from repro.generator.named import (
    running_example,
    running_example_platform,
    saturated_pair,
    harmonic_system,
)

__all__ = [
    "GeneratorConfig",
    "Instance",
    "generate_instance",
    "generate_instances",
    "generate_system",
    "generate_task",
    "running_example",
    "running_example_platform",
    "saturated_pair",
    "harmonic_system",
]
