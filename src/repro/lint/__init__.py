"""Contract-aware static analysis for the repro codebase.

A small AST lint engine purpose-built for this repo's invariants — the
contracts generic linters cannot see: determinism of search (R1), the
propagator explain contract (R2), solver-registry coherence (R3),
pickle safety across process boundaries (R4), and trail safety of
search-time propagator state (R5).

Entry points: ``repro-mgrts lint`` (CLI), ``make lint``, the first
stage of ``scripts/ci.sh``, and :func:`repro.lint.engine.run_lint`
programmatically.  Rules register themselves via
:func:`repro.lint.engine.register_rule`, mirroring the solver registry
idiom; suppressions live in ``lint-baseline.txt``
(:mod:`repro.lint.baseline`) and every entry carries a justification.
"""

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.engine import (
    DEFAULT_TARGETS,
    LintContext,
    ModuleInfo,
    Rule,
    iter_rules,
    register_rule,
    rule_info,
    run_lint,
)
from repro.lint.report import Finding, LintError, LintReport

__all__ = [
    "Baseline",
    "BaselineEntry",
    "DEFAULT_TARGETS",
    "Finding",
    "LintContext",
    "LintError",
    "LintReport",
    "ModuleInfo",
    "Rule",
    "iter_rules",
    "register_rule",
    "rule_info",
    "run_lint",
]
