"""R2 — the propagator explain contract (PR 5's conflict-directed search).

A propagator that explains itself must do so *coherently*: the conflict
analyzer resolves both forced events (``explain_event``) and wipe-outs
(``explain_failure``) through the same propagator, so implementing one
without the other produces nogoods that mix real reasons with the coarse
decision-prefix fallback — sound, but silently much weaker, and exactly
the kind of asymmetry a reviewer misses.  Explanation literals are
``(var_index, value, sign)`` triples everywhere (:mod:`repro.csp.learning`
indexes them by that exact shape); any other tuple arity corrupts the
trail index.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.engine import LintContext, ModuleInfo, Rule, register_rule
from repro.lint.report import Finding

__all__ = ["ExplainPairRule", "LiteralShapeRule"]


def _methods(cls: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    return {
        stmt.name: stmt
        for stmt in cls.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


class _PropagatorRule(Rule):
    """Shared driver: run a per-class check over every Propagator subclass."""

    def check_module(self, ctx: LintContext, module: ModuleInfo) -> Iterator[Finding]:
        """Yield findings from :meth:`check_class` for this module's
        propagator classes (hierarchy resolved project-wide)."""
        for mod, cls, ancestors in ctx.propagator_classes():
            if mod is module:
                yield from self.check_class(module, cls, ancestors)

    def check_class(
        self, module: ModuleInfo, cls: ast.ClassDef, ancestors: list[ast.ClassDef]
    ) -> Iterator[Finding]:
        """Per-class hook; subclasses override."""
        return iter(())


@register_rule(
    "R2.explain-pair",
    family="explain-contract",
    description="propagator implements exactly one of explain_event/explain_failure",
    contract="csp/learning.py resolves events and failures through the same propagator",
)
class ExplainPairRule(_PropagatorRule):
    """A propagating class must define both explanations or neither."""

    def check_class(
        self, module: ModuleInfo, cls: ast.ClassDef, ancestors: list[ast.ClassDef]
    ) -> Iterator[Finding]:
        """Flag classes overriding on_event/propagate with a lone explain_*."""
        methods = _methods(cls)
        if "on_event" not in methods and "propagate" not in methods:
            return
        has_event = "explain_event" in methods
        has_failure = "explain_failure" in methods
        if has_event == has_failure:
            return
        present, missing = (
            ("explain_event", "explain_failure")
            if has_event
            else ("explain_failure", "explain_event")
        )
        yield self.finding(
            module,
            cls,
            f"{cls.name} implements {present} but not {missing}: a "
            "propagator explains both its forcings and its failures, or "
            "neither (lone halves silently degrade learned nogoods to "
            "the decision-prefix fallback)",
            symbol=cls.name,
        )


def _literal_tuples(fn: ast.FunctionDef) -> Iterator[ast.Tuple]:
    """Tuple literals in explanation-building positions.

    Positions that end up in the returned literal list: elements of a
    list display, elements of comprehensions, arguments to ``.append``,
    and a tuple returned directly.
    """
    for node in ast.walk(fn):
        if isinstance(node, ast.List):
            for elt in node.elts:
                if isinstance(elt, ast.Tuple):
                    yield elt
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            if isinstance(node.elt, ast.Tuple):
                yield node.elt
        elif isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "append"
                and len(node.args) == 1
                and isinstance(node.args[0], ast.Tuple)
            ):
                yield node.args[0]
        elif isinstance(node, ast.Return) and isinstance(node.value, ast.Tuple):
            yield node.value


@register_rule(
    "R2.literal-shape",
    family="explain-contract",
    description="explanation literal is not a (var, value, sign) 3-tuple",
    contract="learning.Trail.pos_of indexes literals by exactly that shape",
)
class LiteralShapeRule(_PropagatorRule):
    """Tuple literals built inside explain_* must have exactly 3 elements."""

    def check_class(
        self, module: ModuleInfo, cls: ast.ClassDef, ancestors: list[ast.ClassDef]
    ) -> Iterator[Finding]:
        """Flag mis-shaped tuple literals in explanation builders."""
        for name, fn in _methods(cls).items():
            if name not in ("explain_event", "explain_failure"):
                continue
            for tup in _literal_tuples(fn):
                if len(tup.elts) != 3:
                    yield self.finding(
                        module,
                        tup,
                        f"{cls.name}.{name} builds a {len(tup.elts)}-tuple "
                        "literal; explanation literals are (var_index, "
                        "value, sign) triples",
                        symbol=f"{cls.name}.{name}",
                    )
