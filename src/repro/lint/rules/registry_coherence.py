"""R3 — solver registry coherence, checked statically at the decorator.

The ``@register_solver`` declarations are the single source of truth for
solver capabilities, docs and option validation; PR 6 additionally made
capability coherence load-bearing (``portfolio.py`` rejects members
claiming ``EXACT`` without ``PROVES_INFEASIBILITY`` at construction).
Runtime catches those violations only when the bad family is actually
raced; this rule family catches them at commit time, from the AST:

* ``EXACT ⇒ PROVES_INFEASIBILITY`` (an incomplete solver must not claim
  completeness; the converse — ``edf-exact`` — is deliberate and fine);
* metadata hygiene: non-empty ``description``/``paper_section``;
* declared ``options`` match the factory: every option name the factory
  body reads must be declared, and without ``**kwargs`` every declared
  option must be a parameter;
* every module carrying a ``@register_solver`` is reachable: it must be
  listed in ``registry._BUILTIN_PLUGINS`` (lazy loading never imports an
  unlisted module, so its family would silently not exist);
* every registered base name appears in ``docs/SOLVERS.md`` (the static
  face of the ``scripts/solvers_md.py --check`` drift guard).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.lint.astutil import const_str, const_str_tuple, dotted_name
from repro.lint.engine import LintContext, ModuleInfo, Rule, register_rule
from repro.lint.report import Finding

__all__ = [
    "ExactImpliesProofRule",
    "RegistryMetadataRule",
    "OptionsSignatureRule",
    "PluginReachabilityRule",
    "DocsCoverageRule",
]

#: capability Name identifiers → capability strings (registry.py spelling)
_CAPABILITY_NAMES = {
    "PROVES_INFEASIBILITY": "proves_infeasibility",
    "EXACT": "exact",
}

#: the repo-relative registry module (``_BUILTIN_PLUGINS`` lives here)
REGISTRY_REL = "src/repro/solvers/registry.py"

#: the registry-generated document every base name must appear in
SOLVERS_MD_REL = "docs/SOLVERS.md"


@dataclass
class Registration:
    """One ``@register_solver(...)`` call, statically extracted."""

    module: ModuleInfo
    call: ast.Call
    factory: ast.FunctionDef | ast.AsyncFunctionDef | ast.ClassDef
    base: str | None
    #: resolved capability strings; ``unresolved`` counts entries we
    #: could not map statically (non-literal, unknown identifier)
    capabilities: set[str] = field(default_factory=set)
    unresolved: int = 0
    description: str | None = None
    has_description: bool = False
    paper_section: str | None = None
    has_paper_section: bool = False
    options: tuple[str, ...] | None = None


def _extract(module: ModuleInfo) -> list[Registration]:
    regs: list[Registration] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for deco in node.decorator_list:
            if not isinstance(deco, ast.Call):
                continue
            name = dotted_name(deco.func)
            if name is None or name.rsplit(".", 1)[-1] != "register_solver":
                continue
            reg = Registration(
                module=module,
                call=deco,
                factory=node,
                base=const_str(deco.args[0]) if deco.args else None,
            )
            for kw in deco.keywords:
                if kw.arg == "capabilities" and isinstance(kw.value, (ast.Tuple, ast.List)):
                    for elt in kw.value.elts:
                        if (s := const_str(elt)) is not None:
                            reg.capabilities.add(s)
                        elif isinstance(elt, ast.Name) and elt.id in _CAPABILITY_NAMES:
                            reg.capabilities.add(_CAPABILITY_NAMES[elt.id])
                        else:
                            reg.unresolved += 1
                elif kw.arg == "description":
                    reg.has_description = True
                    reg.description = const_str(kw.value)
                elif kw.arg == "paper_section":
                    reg.has_paper_section = True
                    reg.paper_section = const_str(kw.value)
                elif kw.arg == "options":
                    reg.options = const_str_tuple(kw.value)
            regs.append(reg)
    return regs


class _RegistrationRule(Rule):
    """Shared driver: run a per-registration check."""

    def check_module(self, ctx: LintContext, module: ModuleInfo) -> Iterator[Finding]:
        """Yield findings from :meth:`check_registration` for this module."""
        for reg in _extract(module):
            yield from self.check_registration(module, reg)

    def check_registration(
        self, module: ModuleInfo, reg: Registration
    ) -> Iterator[Finding]:
        """Per-registration hook; subclasses override."""
        return iter(())


@register_rule(
    "R3.exact-implies-proof",
    family="registry",
    description="EXACT capability claimed without PROVES_INFEASIBILITY",
    contract="portfolio.py rejects such members at construction (PR 6)",
)
class ExactImpliesProofRule(_RegistrationRule):
    """A complete search can always prove infeasibility; claim both."""

    def check_registration(
        self, module: ModuleInfo, reg: Registration
    ) -> Iterator[Finding]:
        """Flag EXACT-without-proof capability tuples."""
        if reg.unresolved:
            return  # cannot judge a partially-resolved tuple
        if "exact" in reg.capabilities and "proves_infeasibility" not in reg.capabilities:
            yield self.finding(
                module,
                reg.call,
                f"solver {reg.base!r} claims EXACT without "
                "PROVES_INFEASIBILITY: a complete search proves "
                "infeasibility by exhaustion — either add the capability "
                "or drop the completeness claim (portfolio.py enforces "
                "this at runtime; the converse, proof-without-EXACT, is "
                "legitimate — see edf-exact)",
                symbol=reg.base or "",
            )


@register_rule(
    "R3.registry-metadata",
    family="registry",
    description="empty description or paper_section in @register_solver",
    contract="docs/SOLVERS.md and the solvers CLI render this metadata verbatim",
)
class RegistryMetadataRule(_RegistrationRule):
    """Registry metadata must actually say something."""

    def check_registration(
        self, module: ModuleInfo, reg: Registration
    ) -> Iterator[Finding]:
        """Flag missing/empty description and paper_section strings."""
        if reg.description is not None and not reg.description.strip() or (
            not reg.has_description
        ):
            yield self.finding(
                module,
                reg.call,
                f"solver {reg.base!r} has an empty description; one line "
                "of 'what it is' drives docs/SOLVERS.md and the CLI",
                symbol=reg.base or "",
            )
        if not reg.has_paper_section or (
            reg.paper_section is not None and not reg.paper_section.strip()
        ):
            yield self.finding(
                module,
                reg.call,
                f"solver {reg.base!r} has an empty paper_section; say "
                "where the paper discusses it (or why it is out of "
                "scope) — baseline deliberate omissions with a "
                "justification",
                symbol=reg.base or "",
            )


def _factory_params(fn: ast.FunctionDef | ast.AsyncFunctionDef):
    """(names beyond the 4 positional, has **kwargs, kwargs param name)."""
    a = fn.args
    positional = [p.arg for p in a.posonlyargs + a.args]
    extra = positional[4:] + [p.arg for p in a.kwonlyargs]
    return extra, a.kwarg is not None, a.kwarg.arg if a.kwarg else None


def _option_reads(fn: ast.AST, kwargs_name: str) -> Iterator[tuple[str, ast.AST]]:
    """String keys the body reads out of the ``**options`` mapping."""
    for node in ast.walk(fn):
        if isinstance(node, ast.Subscript):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == kwargs_name
                and (key := const_str(node.slice)) is not None
            ):
                yield key, node
        elif isinstance(node, ast.Compare):
            if (
                len(node.ops) == 1
                and isinstance(node.ops[0], (ast.In, ast.NotIn))
                and isinstance(node.comparators[0], ast.Name)
                and node.comparators[0].id == kwargs_name
                and (key := const_str(node.left)) is not None
            ):
                yield key, node
        elif isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ("get", "pop", "setdefault")
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == kwargs_name
                and node.args
                and (key := const_str(node.args[0])) is not None
            ):
                yield key, node


@register_rule(
    "R3.options-signature",
    family="registry",
    description="declared options disagree with the factory signature/body",
    contract="create_solver validates kwargs against the declared tuple",
)
class OptionsSignatureRule(_RegistrationRule):
    """``options=(...)`` must cover what the factory accepts and reads."""

    def check_registration(
        self, module: ModuleInfo, reg: Registration
    ) -> Iterator[Finding]:
        """Flag undeclared parameters/reads and unreceivable declarations."""
        if reg.options is None or isinstance(reg.factory, ast.ClassDef):
            return
        declared = set(reg.options)
        extra, has_kwargs, kwargs_name = _factory_params(reg.factory)
        for name in extra:
            if name not in declared:
                yield self.finding(
                    module,
                    reg.factory,
                    f"factory parameter {name!r} is not in solver "
                    f"{reg.base!r}'s declared options {sorted(declared)}; "
                    "create_solver would reject it before the factory "
                    "ever sees it",
                    symbol=reg.base or "",
                )
        if not has_kwargs:
            for name in sorted(declared - set(extra)):
                yield self.finding(
                    module,
                    reg.call,
                    f"declared option {name!r} of solver {reg.base!r} is "
                    "not a factory parameter and the factory takes no "
                    "**options; the option would crash on use",
                    symbol=reg.base or "",
                )
        if kwargs_name:
            for key, node in _option_reads(reg.factory, kwargs_name):
                if key not in declared:
                    yield self.finding(
                        module,
                        node,
                        f"factory body reads option {key!r} which solver "
                        f"{reg.base!r} does not declare; create_solver "
                        "strips undeclared options, so this read can "
                        "never see a caller value",
                        symbol=reg.base or "",
                    )


def _registered_src_modules(ctx: LintContext) -> list[tuple[ModuleInfo, list[Registration]]]:
    out = []
    for module in ctx.modules:
        if module.dotted is None:
            continue
        regs = _extract(module)
        if regs:
            out.append((module, regs))
    return out


@register_rule(
    "R3.plugin-unreachable",
    family="registry",
    description="module registers a solver but is not in _BUILTIN_PLUGINS",
    contract="registry._load_builtins imports exactly that list, lazily",
)
class PluginReachabilityRule(Rule):
    """An unlisted plugin module's families silently don't exist."""

    def check_project(self, ctx: LintContext) -> Iterator[Finding]:
        """Cross-check registering modules against the lazy-import list."""
        registry = ctx.module(REGISTRY_REL)
        if registry is None:
            return  # partial run (fixtures, single file): nothing to check
        plugins: tuple[str, ...] | None = None
        for node in registry.tree.body:
            if isinstance(node, ast.Assign):
                for t in node.targets:
                    if isinstance(t, ast.Name) and t.id == "_BUILTIN_PLUGINS":
                        plugins = const_str_tuple(node.value)
        if plugins is None:
            yield self.finding(
                registry,
                1,
                "_BUILTIN_PLUGINS is no longer a literal tuple of module "
                "names; the plugin-reachability lint cannot check it",
                symbol="_BUILTIN_PLUGINS",
            )
            return
        for module, regs in _registered_src_modules(ctx):
            if module.rel == REGISTRY_REL or module.dotted in plugins:
                continue
            yield self.finding(
                module,
                regs[0].call,
                f"{module.dotted} registers solver(s) "
                f"{sorted({r.base for r in regs if r.base})} but is not "
                "listed in registry._BUILTIN_PLUGINS — lazy loading never "
                "imports it, so the family does not exist at runtime",
                symbol=regs[0].base or "",
            )


@register_rule(
    "R3.docs-coverage",
    family="registry",
    description="registered base name missing from docs/SOLVERS.md",
    contract="scripts/solvers_md.py --check guards full drift at runtime",
)
class DocsCoverageRule(Rule):
    """Every registered base name must appear in the generated solver docs."""

    def check_project(self, ctx: LintContext) -> Iterator[Finding]:
        """Substring-check each base name against docs/SOLVERS.md."""
        if ctx.module(REGISTRY_REL) is None:
            return  # partial run: repo-level docs check does not apply
        docs_path = ctx.root / SOLVERS_MD_REL
        if not docs_path.exists():
            return
        text = docs_path.read_text()
        for module, regs in _registered_src_modules(ctx):
            for reg in regs:
                if reg.base and reg.base not in text:
                    yield self.finding(
                        module,
                        reg.call,
                        f"solver {reg.base!r} does not appear in "
                        f"{SOLVERS_MD_REL}; regenerate it with "
                        "`python scripts/solvers_md.py --write`",
                        symbol=reg.base,
                    )
