"""R5 — trail safety: propagator state mutated during search must backtrack.

``on_event``/``propagate`` run inside the search; any ``self`` attribute
they mutate lives across backtracking unless it is trailed through the
:class:`~repro.csp.state.DomainState` helpers (``save``/``save_all``/the
inlined ``_undo`` form).  A forgotten trail is the nastiest propagator
bug there is — counters silently drift after the first backjump and the
solver starts pruning soundly-looking nonsense.

The contract is made *explicit and reviewable*: every propagator class
declares ``_trail_safe``, the tuple of attribute names it may mutate
during search — each either trailed (reversible counters, validity
masks) or deliberately not (monotone stamp guards, residual-support
caches that are sound when stale), with a comment at the declaration
saying which.  This rule then flags any search-time ``self`` mutation —
direct, subscripted, or through a local alias (``c = self._c; c[0] += 1``)
— of an attribute outside the declared set.

Additionally, ``on_event`` must never mutate *domains* (the module
docstring of :mod:`repro.csp.propagators` has always said so: all
pruning belongs in ``propagate``); calls to the ``DomainState`` domain
mutators from ``on_event`` are flagged directly.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.astutil import class_attr_str_tuple
from repro.lint.engine import LintContext, ModuleInfo, Rule, register_rule
from repro.lint.report import Finding

__all__ = ["UnregisteredMutationRule", "OnEventDomainWriteRule"]

#: the class-level declaration this family checks against
DECLARATION = "_trail_safe"

#: search-time methods whose ``self`` mutations are checked
SEARCH_METHODS = ("on_event", "propagate")

#: container methods that mutate their receiver
_MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "clear",
        "add",
        "discard",
        "update",
        "setdefault",
        "sort",
        "reverse",
    }
)

#: DomainState methods that mutate domains (forbidden from on_event)
_DOMAIN_MUTATORS = frozenset(
    {"assign", "remove_value", "intersect_mask", "remove_above", "remove_below"}
)


def _search_methods(cls: ast.ClassDef) -> Iterator[ast.FunctionDef]:
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name in SEARCH_METHODS:
            yield stmt


def _declared(cls: ast.ClassDef, ancestors: list[ast.ClassDef]) -> set[str]:
    out: set[str] = set()
    for c in [cls, *ancestors]:
        out.update(class_attr_str_tuple(c, DECLARATION) or ())
    return out


def _self_attr(node: ast.expr, self_name: str) -> str | None:
    """``self.X`` → ``X`` (else None)."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == self_name
    ):
        return node.attr
    return None


def _aliases(fn: ast.FunctionDef, self_name: str) -> dict[str, str]:
    """Local names bound to ``self.X`` (``c = self._c`` → ``{"c": "_c"}``)."""
    out: dict[str, str] = {}
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            attr = _self_attr(node.value, self_name)
            if isinstance(target, ast.Name) and attr is not None:
                out[target.id] = attr
    return out


def _mutated_attr(
    node: ast.expr, self_name: str, aliases: dict[str, str]
) -> str | None:
    """The ``self`` attribute a write target ultimately mutates, if any.

    Handles ``self.X``, ``self.X[...]``, ``alias`` and ``alias[...]``
    where ``alias = self.X`` earlier in the function.
    """
    if (attr := _self_attr(node, self_name)) is not None:
        return attr
    if isinstance(node, ast.Subscript):
        return _mutated_attr(node.value, self_name, aliases)
    if isinstance(node, ast.Name):
        return aliases.get(node.id)
    return None


@register_rule(
    "R5.unregistered-mutation",
    family="trail-safety",
    description="search-time self mutation outside the _trail_safe declaration",
    contract="counters must be trailed via DomainState.save/save_all (PR 3)",
)
class UnregisteredMutationRule(Rule):
    """on_event/propagate may only mutate declared ``_trail_safe`` attrs."""

    def check_module(self, ctx: LintContext, module: ModuleInfo) -> Iterator[Finding]:
        """Flag undeclared self mutations in search-time methods."""
        for mod, cls, ancestors in ctx.propagator_classes():
            if mod is not module:
                continue
            allowed = _declared(cls, ancestors)
            for fn in _search_methods(cls):
                self_name = fn.args.args[0].arg if fn.args.args else "self"
                aliases = _aliases(fn, self_name)
                yield from self._check_fn(module, cls, fn, self_name, aliases, allowed)

    def _check_fn(
        self,
        module: ModuleInfo,
        cls: ast.ClassDef,
        fn: ast.FunctionDef,
        self_name: str,
        aliases: dict[str, str],
        allowed: set[str],
    ) -> Iterator[Finding]:
        def flag(node: ast.AST, attr: str) -> Finding:
            return self.finding(
                module,
                node,
                f"{cls.name}.{fn.name} mutates self.{attr} which is not "
                f"declared in {cls.name}.{DECLARATION}: search-time state "
                "must be trailed (state.save/save_all, or the documented "
                "_undo inlining) and every mutated attribute declared — "
                "deliberately untrailed caches need a comment at the "
                "declaration",
                symbol=f"{cls.name}.{fn.name}",
            )

        for node in ast.walk(fn):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                # a plain local rebind (`c = self._c`) mutates nothing
                if isinstance(node, ast.Assign) and isinstance(target, ast.Name):
                    continue
                attr = _mutated_attr(target, self_name, aliases)
                if attr is not None and attr not in allowed:
                    yield flag(target, attr)
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATING_METHODS
            ):
                attr = _mutated_attr(node.func.value, self_name, aliases)
                if attr is not None and attr not in allowed:
                    yield flag(node, attr)


@register_rule(
    "R5.on-event-domain-write",
    family="trail-safety",
    description="on_event mutates domains (all pruning belongs in propagate)",
    contract="csp/propagators.py module docstring, step 3 of the recipe",
)
class OnEventDomainWriteRule(Rule):
    """``on_event`` is bookkeeping only; domain writes there corrupt the
    event log the engine is in the middle of draining."""

    def check_module(self, ctx: LintContext, module: ModuleInfo) -> Iterator[Finding]:
        """Flag DomainState domain-mutator calls inside on_event bodies."""
        for mod, cls, _ancestors in ctx.propagator_classes():
            if mod is not module:
                continue
            for fn in _search_methods(cls):
                if fn.name != "on_event":
                    continue
                params = [a.arg for a in fn.args.args]
                state_name = params[1] if len(params) > 1 else "state"
                for node in ast.walk(fn):
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in _DOMAIN_MUTATORS
                        and isinstance(node.func.value, ast.Name)
                        and node.func.value.id == state_name
                    ):
                        yield self.finding(
                            module,
                            node,
                            f"{cls.name}.on_event calls "
                            f"{state_name}.{node.func.attr}(...): on_event "
                            "must never mutate domains — update counters "
                            "and prune from propagate instead",
                            symbol=f"{cls.name}.on_event",
                        )
