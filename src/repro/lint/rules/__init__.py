"""Built-in rule families of the contract lint engine.

One module per family: :mod:`~repro.lint.rules.determinism` (R1),
:mod:`~repro.lint.rules.explain_contract` (R2),
:mod:`~repro.lint.rules.registry_coherence` (R3),
:mod:`~repro.lint.rules.pickle_safety` (R4) and
:mod:`~repro.lint.rules.trail_safety` (R5).  Modules are imported
lazily by :func:`repro.lint.engine._load_builtins`; importing one
registers its rules as a side effect of the ``@register_rule``
decorators.
"""
