"""R4 — batch/pickle safety: what crosses a process boundary must pickle.

The batch executor, the racing portfolio and the difftest runner all
ship work into ``multiprocessing`` workers.  Pickle cannot serialize
lambdas, closures, or functions defined inside another function — such a
callable works under ``jobs=1`` (in-process, no pickling) and then
explodes (or worse, silently falls back) the first time someone passes
``--jobs 4``.  The repo's convention is explicit: worker callables are
module-level (``batch.cells.solve_cell``, ``racing._race_entry``,
``portfolio._run_member``) and payloads are plain data.

Two checks:

* the *callable* position of a process primitive (``Process(target=…)``,
  pool ``submit``/``map``/``apply_async``, :func:`repro.batch.racing.race`'s
  ``worker``, :func:`repro.batch.supervise.run_supervised`'s ``fn``) must
  not be a lambda or a locally-defined function;
* the *payload* arguments of those same primitives must not contain
  lambdas anywhere (payloads are data, and data pickles).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.astutil import dotted_name
from repro.lint.engine import LintContext, ModuleInfo, Rule, register_rule
from repro.lint.report import Finding

__all__ = ["ProcessCallableRule", "ProcessPayloadRule"]

#: the dirs whose callables routinely cross process boundaries (the
#: service ships every solve into transport workers/supervised children)
PICKLE_SCOPE = (
    "src/repro/batch/",
    "src/repro/difftest/",
    "src/repro/solvers/portfolio.py",
    "src/repro/service/",
)

#: pool/executor methods whose first argument is pickled into a worker
_POOL_METHODS = frozenset(
    {"submit", "map", "apply_async", "apply", "starmap", "imap", "imap_unordered"}
)


def _process_calls(tree: ast.AST) -> Iterator[tuple[ast.Call, list[ast.expr], list[ast.expr]]]:
    """Yield ``(call, callable_positions, payload_positions)`` triples."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        simple = name.rsplit(".", 1)[-1] if name else None
        callables: list[ast.expr] = []
        payloads: list[ast.expr] = []
        if isinstance(node.func, ast.Attribute) and node.func.attr in _POOL_METHODS:
            if node.args:
                callables.append(node.args[0])
                payloads.extend(node.args[1:])
        elif simple == "Process":
            for kw in node.keywords:
                if kw.arg == "target":
                    callables.append(kw.value)
                elif kw.arg == "args":
                    payloads.append(kw.value)
        elif simple == "race":
            # race(payloads, worker, decisive=..., ...): worker is pickled
            # into each entry process; payloads too
            if len(node.args) >= 2:
                payloads.append(node.args[0])
                callables.append(node.args[1])
            for kw in node.keywords:
                if kw.arg == "worker":
                    callables.append(kw.value)
        elif simple == "run_supervised":
            # run_supervised(fn, payload, ...): fn is pickled into the
            # supervised child, payload rides along
            if node.args:
                callables.append(node.args[0])
                payloads.extend(node.args[1:2])
            for kw in node.keywords:
                if kw.arg == "fn":
                    callables.append(kw.value)
                elif kw.arg == "payload":
                    payloads.append(kw.value)
        if callables or payloads:
            yield node, callables, payloads


def _local_callables(tree: ast.Module) -> dict[int, set[str]]:
    """Per-function-node id: names bound to nested defs/lambdas inside it."""
    out: dict[int, set[str]] = {}
    for fn in ast.walk(tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        names: set[str] = set()
        for node in ast.walk(fn):
            if node is fn:
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names.add(node.name)
            elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
                for t in node.targets:
                    if isinstance(t, ast.Name):
                        names.add(t.id)
        out[id(fn)] = names
    return out


def _enclosing_function(tree: ast.Module, target: ast.AST):
    """The innermost function whose span contains ``target`` (or None)."""
    best = None
    for fn in ast.walk(tree):
        if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if fn.lineno <= target.lineno <= (fn.end_lineno or fn.lineno):
                if best is None or fn.lineno >= best.lineno:
                    best = fn
    return best


@register_rule(
    "R4.process-callable",
    family="pickle-safety",
    description="lambda or locally-defined callable shipped to a worker process",
    contract="worker callables must be module-level (picklable by qualified name)",
)
class ProcessCallableRule(Rule):
    """The callable handed to Process/pool/race must pickle by name."""

    scope = PICKLE_SCOPE

    def check_module(self, ctx: LintContext, module: ModuleInfo) -> Iterator[Finding]:
        """Flag lambdas/local defs in the callable slot of process calls."""
        locals_of = _local_callables(module.tree)
        for call, callables, _payloads in _process_calls(module.tree):
            for target in callables:
                if isinstance(target, ast.Lambda):
                    yield self.finding(
                        module,
                        target,
                        "lambda crosses a process boundary: pickle cannot "
                        "serialize it — use a module-level function",
                    )
                    continue
                if isinstance(target, ast.Name):
                    fn = _enclosing_function(module.tree, call)
                    if fn is not None and target.id in locals_of.get(id(fn), set()):
                        yield self.finding(
                            module,
                            target,
                            f"locally-defined callable {target.id!r} "
                            "crosses a process boundary: pickle cannot "
                            "serialize nested functions — move it to "
                            "module level",
                        )


@register_rule(
    "R4.process-payload",
    family="pickle-safety",
    description="lambda inside a payload shipped to a worker process",
    contract="batch cells and race payloads are plain, picklable data",
)
class ProcessPayloadRule(Rule):
    """Payload arguments of process primitives must contain no lambdas."""

    scope = PICKLE_SCOPE

    def check_module(self, ctx: LintContext, module: ModuleInfo) -> Iterator[Finding]:
        """Flag lambdas nested anywhere inside process-call payloads."""
        for _call, _callables, payloads in _process_calls(module.tree):
            for payload in payloads:
                for node in ast.walk(payload):
                    if isinstance(node, ast.Lambda):
                        yield self.finding(
                            module,
                            node,
                            "lambda inside a worker payload: payloads "
                            "must be plain picklable data (tuples, "
                            "dataclasses of primitives)",
                        )
