"""R1 — determinism: search decisions must be reproducible byte-for-byte.

The repo's determinism guarantees are load-bearing: the batch cache keys
results by content (same cell → same record), ``jobs=N`` must equal
``jobs=1``, and ``tests/test_engine_regression.py`` pins node counts on
a seeded grid.  Anything that injects ambient nondeterminism into
``csp/``, ``solvers/``, ``baselines/`` or ``batch/`` (whose retry and
chaos-injection decisions must replay byte-identically) breaks those
silently:

* an *unseeded* RNG (``random.Random()``) or the module-global
  ``random.*`` functions (shared, externally reseedable state);
* wall clocks (``time.time``/``perf_counter``) feeding anything but a
  budget — budgets use ``time.monotonic`` via
  :class:`repro.util.timer.Deadline`;
* iterating a ``set``/``frozenset`` where order can feed search order
  (set iteration order is unspecified across runs/processes).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.astutil import call_name
from repro.lint.engine import LintContext, ModuleInfo, Rule, register_rule
from repro.lint.report import Finding

__all__ = ["UnseededRandomRule", "ModuleRandomRule", "WallClockRule", "SetIterationRule"]

#: the dirs the determinism contract covers (search + solving + baselines,
#: plus the batch layer: retry/backoff decisions and chaos draws must
#: replay byte-identically for journal byte-identity and crash-safe
#: resume; plus the solver service, whose cache keys, journals and retry
#: decisions inherit the same contracts over the wire; plus the
#: vectorised kernels, whose results are pinned byte-identical to the
#: scalar paths they replace)
DETERMINISM_SCOPE = (
    "src/repro/csp/",
    "src/repro/solvers/",
    "src/repro/baselines/",
    "src/repro/batch/",
    "src/repro/service/",
    "src/repro/kernels/",
)

#: zero-argument constructors of *unseeded* RNGs
_UNSEEDED_CTORS = frozenset(
    {
        "random.Random",
        "np.random.default_rng",
        "numpy.random.default_rng",
        "np.random.RandomState",
        "numpy.random.RandomState",
    }
)

#: module-level sampling functions (all share one ambient global RNG)
_MODULE_RANDOM_FNS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "getrandbits",
        "triangular",
        "betavariate",
        "seed",
    }
)

#: wall/CPU clocks that are not valid inputs to any search decision
_WALL_CLOCKS = frozenset(
    {
        "time.time",
        "time.perf_counter",
        "time.process_time",
        "time.perf_counter_ns",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
    }
)


@register_rule(
    "R1.unseeded-random",
    family="determinism",
    description="RNG constructed without a seed in search/solver code",
    contract="batch cache keys and test_engine_regression.py pin seeded runs",
)
class UnseededRandomRule(Rule):
    """Flag ``random.Random()`` (and numpy equivalents) with no seed."""

    scope = DETERMINISM_SCOPE

    def check_module(self, ctx: LintContext, module: ModuleInfo) -> Iterator[Finding]:
        """Yield a finding per zero-argument RNG construction."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name in _UNSEEDED_CTORS and not node.args and not node.keywords:
                yield self.finding(
                    module,
                    node,
                    f"{name}() without a seed: searches must be "
                    "reproducible — thread a seed through (see "
                    "solvers/api.solve's seed parameter)",
                )


@register_rule(
    "R1.module-random",
    family="determinism",
    description="module-global random.* call (shared, reseedable state)",
    contract="solver randomness must flow through an owned, seeded Random",
)
class ModuleRandomRule(Rule):
    """Flag ``random.choice(...)``-style calls on the module-global RNG."""

    scope = DETERMINISM_SCOPE

    def check_module(self, ctx: LintContext, module: ModuleInfo) -> Iterator[Finding]:
        """Yield a finding per call through the ambient ``random`` module."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None:
                continue
            head, _, fn = name.rpartition(".")
            if head in ("random", "np.random", "numpy.random") and fn in _MODULE_RANDOM_FNS:
                if name in _UNSEEDED_CTORS:
                    continue  # the ctor rule owns that spelling
                yield self.finding(
                    module,
                    node,
                    f"{name}(...) uses the module-global RNG; construct "
                    "random.Random(seed) and call methods on it instead",
                )


@register_rule(
    "R1.wall-clock",
    family="determinism",
    description="wall clock read in search/solver code",
    contract="budgets poll time.monotonic via repro.util.timer.Deadline",
)
class WallClockRule(Rule):
    """Flag ``time.time()``/``perf_counter()``/``datetime.now()`` reads.

    ``time.monotonic`` is the sanctioned budget clock (what
    :class:`repro.util.timer.Deadline` wraps); the flagged clocks jump
    with NTP/suspend and invite time-dependent *decisions* rather than
    budgets.
    """

    scope = DETERMINISM_SCOPE

    def check_module(self, ctx: LintContext, module: ModuleInfo) -> Iterator[Finding]:
        """Yield a finding per flagged clock call."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if call_name(node) in _WALL_CLOCKS:
                yield self.finding(
                    module,
                    node,
                    f"{call_name(node)}() in solver code: use "
                    "time.monotonic() (or repro.util.timer.Deadline) for "
                    "budgets, and never let a clock feed a decision",
                )


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node)
        return name in ("set", "frozenset")
    return False


@register_rule(
    "R1.set-iteration",
    family="determinism",
    description="iteration directly over a set (unspecified order)",
    contract="anything feeding search order must iterate deterministically",
)
class SetIterationRule(Rule):
    """Flag ``for x in {…}`` / ``for x in set(…)`` (loops & comprehensions).

    Set iteration order is unspecified across interpreter runs — wrap
    the set in ``sorted(...)`` (which this rule never flags) or keep a
    list.
    """

    scope = DETERMINISM_SCOPE

    def check_module(self, ctx: LintContext, module: ModuleInfo) -> Iterator[Finding]:
        """Yield a finding per loop/comprehension iterating a set."""
        message = (
            "iterating a set: order is unspecified and can change the "
            "search — iterate sorted(...) or a list instead"
        )
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)) and _is_set_expr(node.iter):
                yield self.finding(module, node.iter, message)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    if _is_set_expr(gen.iter):
                        yield self.finding(module, gen.iter, message)
