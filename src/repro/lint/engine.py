"""The AST lint engine: parse once, run every registered rule, report.

Mirrors the solver registry idiom (:mod:`repro.solvers.registry`): rule
plugins register themselves under a stable id with :func:`register_rule`,
built-in rule modules are imported lazily on first use, and everything
downstream — ``repro-mgrts lint``, ``--list-rules``, the docs table —
derives from the same metadata.

The engine's job is mechanical: collect ``.py`` files, parse each into an
:class:`ast.Module` exactly once (a syntax error is a :class:`LintError`,
not a finding — the run cannot be trusted), wrap them in
:class:`ModuleInfo`, and drive the two rule hooks:

* ``check_module(ctx, module)`` — per file, scope-filtered; yields
  findings about that file;
* ``check_project(ctx)`` — once, after every file is parsed; for
  cross-module contracts (registry coherence, docs drift).

Scope: every rule declares path prefixes it applies to (default: all of
``src/repro``).  ``tests/lint_fixtures/`` is *always* in scope so the
checked-in bad examples demonstrably fire each rule without polluting
the repo-wide run (the default target is ``src/repro`` only).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath

from repro.lint.baseline import Baseline
from repro.lint.report import Finding, LintError, LintReport

__all__ = [
    "ModuleInfo",
    "LintContext",
    "Rule",
    "register_rule",
    "iter_rules",
    "rule_info",
    "run_lint",
    "DEFAULT_TARGETS",
]

#: what a bare ``repro-mgrts lint`` scans (repo-relative)
DEFAULT_TARGETS = ("src/repro", "scripts")

#: fixture directory that is in scope for *every* rule (see module docs)
FIXTURE_PREFIX = "tests/lint_fixtures/"


# ---------------------------------------------------------------------------
# parsed modules


@dataclass
class ModuleInfo:
    """One parsed source file plus the derived indexes rules share."""

    #: repo-relative posix path (the stable id used in findings/baselines)
    rel: str
    #: parsed tree (never reparsed; rules must not mutate it)
    tree: ast.Module
    #: raw source (for rules that need the text, e.g. justification scans)
    source: str
    #: ``(start, end, dotted symbol)`` spans of every class/function,
    #: innermost-last, for :meth:`symbol_at`
    _spans: list[tuple[int, int, str]] = field(default_factory=list)

    @classmethod
    def parse(cls, rel: str, source: str) -> "ModuleInfo":
        """Parse ``source``; raises :class:`LintError` on a syntax error."""
        try:
            tree = ast.parse(source, filename=rel)
        except SyntaxError as exc:
            raise LintError(f"cannot parse {rel}: {exc}") from None
        info = cls(rel=rel, tree=tree, source=source)
        info._index_spans()
        return info

    def _index_spans(self) -> None:
        def walk(node: ast.AST, prefix: str) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ):
                    name = f"{prefix}.{child.name}" if prefix else child.name
                    self._spans.append(
                        (child.lineno, child.end_lineno or child.lineno, name)
                    )
                    walk(child, name)
                else:
                    walk(child, prefix)

        walk(self.tree, "")

    def symbol_at(self, lineno: int) -> str:
        """Innermost enclosing ``Class.method`` symbol ("" at module level).

        Decorator lines sit *above* ``def``/``class`` and therefore
        resolve to the enclosing scope, which is what baseline entries
        want (a decorator finding anchors to the decorated thing's
        container, not the thing itself).
        """
        best = ""
        for start, end, name in self._spans:
            if start <= lineno <= end:
                best = name  # spans are appended outermost-first
        return best

    @property
    def dotted(self) -> str | None:
        """Import path for files under ``src/`` (None elsewhere)."""
        p = PurePosixPath(self.rel)
        if p.parts[:1] != ("src",) or p.suffix != ".py":
            return None
        parts = p.with_suffix("").parts[1:]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)


@dataclass
class LintContext:
    """Everything a rule may look at beyond its current module."""

    #: repo root (absolute); rules needing sibling artifacts
    #: (docs/SOLVERS.md, ...) resolve them against this
    root: Path
    #: every scanned module, in scan order
    modules: list[ModuleInfo] = field(default_factory=list)
    _prop_classes: list | None = field(default=None, repr=False)

    def module(self, rel: str) -> ModuleInfo | None:
        """The scanned module at this repo-relative path, if any."""
        for m in self.modules:
            if m.rel == rel:
                return m
        return None

    def propagator_classes(self) -> list:
        """Project-wide propagator hierarchy, resolved once per run.

        Rules call this instead of :func:`repro.lint.astutil.
        propagator_classes` directly: the resolution walks every scanned
        tree, so the per-(rule, module) hooks must share one result.
        """
        if self._prop_classes is None:
            from repro.lint.astutil import propagator_classes

            self._prop_classes = propagator_classes(self.modules)
        return self._prop_classes


# ---------------------------------------------------------------------------
# rule registry (the solver-registry idiom, applied to lint rules)


class Rule:
    """Base class for lint rules; subclasses implement the hooks.

    Registration (:func:`register_rule`) stamps the class with ``id``,
    ``family`` and ``description``.  ``scope`` is a tuple of repo-relative
    path prefixes the rule applies to; the engine additionally keeps
    ``tests/lint_fixtures/`` in scope for every rule.
    """

    #: stamped by :func:`register_rule`
    id: str = ""
    family: str = ""
    description: str = ""
    #: where the invariant comes from (module/PR that introduced it)
    contract: str = ""
    #: repo-relative path prefixes this rule applies to
    scope: tuple[str, ...] = ("src/repro/",)

    def applies_to(self, rel: str) -> bool:
        """Whether ``check_module`` runs on this file."""
        if rel.startswith(FIXTURE_PREFIX):
            return True
        return any(rel.startswith(prefix) for prefix in self.scope)

    def check_module(self, ctx: LintContext, module: ModuleInfo) -> Iterator[Finding]:
        """Per-module findings (default: none)."""
        return iter(())

    def check_project(self, ctx: LintContext) -> Iterator[Finding]:
        """Cross-module findings, run once after all parsing (default: none)."""
        return iter(())

    # -- helpers shared by every rule --------------------------------------
    def finding(
        self,
        module: ModuleInfo,
        node: ast.AST | int,
        message: str,
        symbol: str | None = None,
    ) -> Finding:
        """Build a finding anchored at ``node`` (or a bare line number)."""
        if isinstance(node, int):
            line, col = node, 0
        else:
            line, col = node.lineno, node.col_offset
        return Finding(
            rule=self.id,
            path=module.rel,
            line=line,
            col=col,
            message=message,
            symbol=module.symbol_at(line) if symbol is None else symbol,
        )


#: rule id -> rule class
_RULES: dict[str, type[Rule]] = {}

#: modules that register the built-in rule families; imported lazily so
#: ``import repro`` stays cheap (mirrors the solver registry)
_BUILTIN_RULE_MODULES = (
    "repro.lint.rules.determinism",
    "repro.lint.rules.explain_contract",
    "repro.lint.rules.registry_coherence",
    "repro.lint.rules.pickle_safety",
    "repro.lint.rules.trail_safety",
)
_loaded_builtins = False


def _load_builtins() -> None:
    global _loaded_builtins
    if not _loaded_builtins:
        _loaded_builtins = True
        import importlib

        for module in _BUILTIN_RULE_MODULES:
            importlib.import_module(module)


def register_rule(
    rule_id: str,
    *,
    family: str,
    description: str,
    contract: str = "",
):
    """Class decorator registering a :class:`Rule` under ``rule_id``.

    Ids follow ``Rn.kebab-name`` where ``Rn`` groups the family (R1
    determinism, R2 explain-contract, R3 registry, R4 pickle-safety,
    R5 trail-safety).  Re-registering an id replaces the entry (last one
    wins), which lets tests override a rule.
    """

    def decorator(cls: type[Rule]) -> type[Rule]:
        if not issubclass(cls, Rule):
            raise TypeError(f"{cls.__name__} must subclass Rule")
        if not description:
            raise ValueError(f"rule {rule_id!r} needs a description")
        cls.id = rule_id
        cls.family = family
        cls.description = description
        _RULES[rule_id] = cls
        return cls

    return decorator


def iter_rules() -> list[type[Rule]]:
    """Every registered rule class, sorted by id (stable listing)."""
    _load_builtins()
    return [_RULES[k] for k in sorted(_RULES)]


def rule_info(rule_id: str) -> type[Rule]:
    """Resolve an id to its rule class (``LintError`` when unknown)."""
    _load_builtins()
    try:
        return _RULES[rule_id]
    except KeyError:
        known = ", ".join(sorted(_RULES))
        raise LintError(f"unknown rule {rule_id!r}; known rules: {known}") from None


# ---------------------------------------------------------------------------
# the run


def _collect_files(root: Path, targets: Iterable[str]) -> list[Path]:
    files: list[Path] = []
    seen: set[Path] = set()
    for target in targets:
        path = (root / target) if not Path(target).is_absolute() else Path(target)
        if not path.exists():
            raise LintError(f"no such lint target: {target}")
        if path.is_dir():
            batch = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            batch = [path]
        else:
            raise LintError(f"not a python file or directory: {target}")
        for f in batch:
            r = f.resolve()
            if r not in seen:
                seen.add(r)
                files.append(f)
    return files


def run_lint(
    root: str | Path,
    targets: Iterable[str] | None = None,
    baseline: "str | Path | Baseline | None" = None,
    rules: Iterable[str] | None = None,
) -> LintReport:
    """Lint ``targets`` (repo-relative paths/dirs) under ``root``.

    Parameters
    ----------
    root:
        Repository root; findings carry paths relative to it.
    targets:
        Files or directories to scan; default :data:`DEFAULT_TARGETS`.
    baseline:
        A :class:`~repro.lint.baseline.Baseline`, a path to one, or
        ``None`` for the default ``<root>/lint-baseline.txt`` (missing
        file = empty baseline).  Matched findings are suppressed; stale
        entries become ``baseline.stale`` findings so the file cannot
        rot.
    rules:
        Rule ids to run (default: all registered rules).

    Raises
    ------
    LintError
        On anything that makes the run untrustworthy: a missing target,
        an unparseable file, a malformed baseline entry, an unknown rule.
    """
    root = Path(root).resolve()
    if isinstance(baseline, Baseline):
        base = baseline
    elif baseline is None:
        base = Baseline.load(root / "lint-baseline.txt", missing_ok=True)
    else:
        base = Baseline.load(Path(baseline), missing_ok=False)

    if rules is None:
        active = iter_rules()
    else:
        active = [rule_info(r) for r in rules]

    ctx = LintContext(root=root)
    for path in _collect_files(root, targets or DEFAULT_TARGETS):
        try:
            rel = path.resolve().relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        ctx.modules.append(ModuleInfo.parse(rel, path.read_text()))

    report = LintReport(rules=[r.id for r in active])
    report.files = [m.rel for m in ctx.modules]
    raw: list[Finding] = []
    for cls in active:
        rule = cls()
        for module in ctx.modules:
            if rule.applies_to(module.rel):
                raw.extend(rule.check_module(ctx, module))
        raw.extend(rule.check_project(ctx))

    scanned = set(report.files)
    for f in raw:
        if base.matches(f):
            report.suppressed.append(f)
        else:
            report.findings.append(f)
    report.findings.extend(base.stale_entries(scanned))
    return report.finalize()
