"""Baseline suppressions: known findings, each with a written justification.

The lint bar is "the repo lints clean"; a baseline entry is the narrow,
auditable escape hatch for a finding that is *deliberate* (e.g. the
``edf-exact`` oracle's empty ``paper_section`` — it reproduces related
work, not a section of this paper).  Every entry **must** carry an
inline ``#`` justification; an entry without one is a :class:`LintError`
(the run refuses to start), so a suppression can never be silent.

File format (default ``<repo>/lint-baseline.txt``)::

    # comment / blank lines are ignored
    <path>: <rule-id>: <symbol>  # justification (required)
    src/repro/baselines/edf_exact.py: R3.registry-paper-section: edf-exact  # oracle from related work

``symbol`` is the finding's anchor (enclosing ``Class.method``, or a
rule-chosen key such as a solver base name); ``*`` suppresses the rule
for the whole file.  Entries are matched against findings, never lines,
so ordinary edits don't invalidate them.

Staleness: an entry whose file was scanned but which matched nothing is
reported as a ``baseline.stale`` finding — the baseline cannot outlive
the violations it documents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.report import Finding, LintError

__all__ = ["Baseline", "BaselineEntry"]

#: rule id carried by stale-entry findings
STALE_RULE = "baseline.stale"


@dataclass
class BaselineEntry:
    """One suppression: ``(path, rule, symbol)`` plus its justification."""

    path: str
    rule: str
    symbol: str
    justification: str
    #: where the entry lives (for stale-entry findings)
    source: str
    line: int
    #: set when any finding matched this entry during the run
    used: bool = False

    def matches(self, finding: Finding) -> bool:
        """Whether this entry suppresses ``finding``."""
        if finding.path != self.path or finding.rule != self.rule:
            return False
        return self.symbol == "*" or self.symbol == finding.symbol


@dataclass
class Baseline:
    """A parsed suppression file (possibly empty)."""

    entries: list[BaselineEntry] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path, missing_ok: bool = False) -> "Baseline":
        """Parse a baseline file.

        ``missing_ok`` covers the default-path case (no baseline file =
        empty baseline); an *explicitly* named missing file is a
        :class:`LintError`.
        """
        if not path.exists():
            if missing_ok:
                return cls()
            raise LintError(f"baseline file not found: {path}")
        return cls.parse(path.read_text(), source=str(path))

    @classmethod
    def parse(cls, text: str, source: str = "<baseline>") -> "Baseline":
        """Parse baseline text; malformed entries raise :class:`LintError`."""
        entries: list[BaselineEntry] = []
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            entry_part, sep, justification = line.partition("#")
            justification = justification.strip()
            if not sep or not justification:
                raise LintError(
                    f"{source}:{lineno}: baseline entry has no justification "
                    "(every suppression needs an inline '# why' comment)"
                )
            fields = [p.strip() for p in entry_part.split(":", 2)]
            if len(fields) != 3 or not fields[0] or not fields[1]:
                raise LintError(
                    f"{source}:{lineno}: malformed baseline entry "
                    "(expected '<path>: <rule-id>: <symbol>  # justification')"
                )
            entries.append(
                BaselineEntry(
                    path=fields[0],
                    rule=fields[1],
                    symbol=fields[2],
                    justification=justification,
                    source=source,
                    line=lineno,
                )
            )
        return cls(entries=entries)

    def matches(self, finding: Finding) -> bool:
        """Whether any entry suppresses ``finding`` (marks the entry used)."""
        hit = False
        for entry in self.entries:
            if entry.matches(finding):
                entry.used = True
                hit = True
        return hit

    def stale_entries(self, scanned_paths: set[str]) -> list[Finding]:
        """``baseline.stale`` findings for unused entries of scanned files.

        Entries for files outside this run's targets are left alone — a
        partial lint (one file, a fixture) must not declare the rest of
        the baseline rotten.
        """
        out = []
        for entry in self.entries:
            if entry.used or entry.path not in scanned_paths:
                continue
            out.append(
                Finding(
                    rule=STALE_RULE,
                    path=entry.source,
                    line=entry.line,
                    col=0,
                    message=(
                        f"stale baseline entry: nothing in {entry.path} "
                        f"triggers {entry.rule} [{entry.symbol}] anymore — "
                        "delete the entry"
                    ),
                    symbol=entry.symbol,
                )
            )
        return out
