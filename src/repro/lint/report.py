"""Findings and reports: what a lint run produces and how it renders.

A :class:`Finding` is one contract violation at one source location; a
:class:`LintReport` is the deterministic, sorted collection of everything
one run surfaced, plus the bookkeeping (files scanned, rules run,
suppression counts) the text and JSON renderings need.  The JSON shape is
versioned and consumed by the ``repro-mgrts lint --json`` CLI contract
test, so extend it additively.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Finding", "LintReport", "LintError"]

#: bumped whenever the ``--json`` payload shape changes incompatibly
JSON_VERSION = 1


class LintError(Exception):
    """An engine failure (unparseable file, malformed baseline, bad path).

    Distinct from findings on purpose: findings mean "the *code under
    lint* breaks a contract" (CLI exit 1), a ``LintError`` means "the
    lint run itself could not be trusted" (CLI exit 2).
    """


@dataclass(frozen=True)
class Finding:
    """One contract violation at one source location.

    Attributes
    ----------
    rule:
        Rule id, ``FAMILY.check`` (e.g. ``"R1.module-random"``).
    path:
        Repo-relative posix path of the offending file.
    line, col:
        1-based line and 0-based column of the offending node.
    message:
        Human-readable statement of the violated contract.
    symbol:
        Stable anchor for baseline matching: the enclosing dotted
        ``Class.method`` (or a rule-chosen key like a solver base name);
        empty at module level.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    symbol: str = ""

    @property
    def baseline_key(self) -> tuple[str, str, str]:
        """The ``(path, rule, symbol)`` triple a baseline entry matches."""
        return (self.path, self.rule, self.symbol)

    def to_dict(self) -> dict:
        """JSON-ready dict (one element of the report's ``findings``)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "symbol": self.symbol,
        }

    def render(self) -> str:
        """The one-line text rendering: ``path:line:col: RULE message``."""
        where = f" [{self.symbol}]" if self.symbol else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}{where}"


def _sort_key(f: Finding) -> tuple:
    return (f.path, f.line, f.col, f.rule, f.message)


@dataclass
class LintReport:
    """Everything one lint run produced, deterministically ordered."""

    #: unsuppressed findings, sorted by (path, line, col, rule)
    findings: list[Finding] = field(default_factory=list)
    #: findings matched (and silenced) by a baseline entry
    suppressed: list[Finding] = field(default_factory=list)
    #: repo-relative paths of every file scanned
    files: list[str] = field(default_factory=list)
    #: ids of every rule that ran
    rules: list[str] = field(default_factory=list)

    def finalize(self) -> "LintReport":
        """Sort everything into the canonical order (idempotent)."""
        self.findings.sort(key=_sort_key)
        self.suppressed.sort(key=_sort_key)
        self.files.sort()
        self.rules.sort()
        return self

    @property
    def ok(self) -> bool:
        """True iff no unbaselined finding survived."""
        return not self.findings

    def to_dict(self) -> dict:
        """The versioned ``--json`` payload."""
        return {
            "version": JSON_VERSION,
            "ok": self.ok,
            "files_scanned": len(self.files),
            "rules_run": self.rules,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": len(self.suppressed),
        }

    def render_text(self) -> str:
        """The human rendering: one line per finding, then a summary."""
        lines = [f.render() for f in self.findings]
        noun = "finding" if len(self.findings) == 1 else "findings"
        tail = f" ({len(self.suppressed)} baselined)" if self.suppressed else ""
        summary = (
            f"{len(self.findings)} {noun} in {len(self.files)} file(s), "
            f"{len(self.rules)} rule(s){tail}"
        )
        if self.ok:
            summary = (
                f"clean: {len(self.files)} file(s), "
                f"{len(self.rules)} rule(s){tail}"
            )
        lines.append(summary)
        return "\n".join(lines)
