"""Small AST helpers shared by the lint rules.

Everything here is *syntactic*: dotted-name rendering, literal
extraction, and the project-wide propagator class hierarchy resolved by
simple name.  No imports of the code under lint ever happen — the engine
must be able to lint a broken working tree.
"""

from __future__ import annotations

import ast

__all__ = [
    "dotted_name",
    "call_name",
    "const_str",
    "const_str_tuple",
    "class_attr_str_tuple",
    "propagator_classes",
]


def dotted_name(node: ast.expr) -> str | None:
    """Render a ``Name``/``Attribute`` chain as ``a.b.c`` (else None)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str | None:
    """The dotted name a call is made through (``random.Random``, ...)."""
    return dotted_name(node.func)


def const_str(node: ast.expr | None) -> str | None:
    """The value of a string-literal node (implicit concatenation folds
    into one ``Constant`` at parse time); None for anything else."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def const_str_tuple(node: ast.expr | None) -> tuple[str, ...] | None:
    """The value of a literal tuple/list of strings; None otherwise."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    out = []
    for elt in node.elts:
        s = const_str(elt)
        if s is None:
            return None
        out.append(s)
    return tuple(out)


def class_attr_str_tuple(cls: ast.ClassDef, name: str) -> tuple[str, ...] | None:
    """A class-level ``name = ("a", "b")`` declaration's value, if any."""
    for stmt in cls.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for t in targets:
            if isinstance(t, ast.Name) and t.id == name:
                return const_str_tuple(value)
    return None


def _base_names(cls: ast.ClassDef) -> list[str]:
    out = []
    for base in cls.bases:
        name = dotted_name(base)
        if name:
            out.append(name.rsplit(".", 1)[-1])
    return out


def propagator_classes(modules) -> list[tuple[object, ast.ClassDef, list[ast.ClassDef]]]:
    """Every class transitively subclassing a class named ``Propagator``.

    Resolution is by *simple name* across all scanned modules — exactly
    right for this repo (one ``Propagator``; fixture files ship their own
    stub so they stay self-contained).  Returns
    ``(module, classdef, project_ancestors)`` triples; the root
    ``Propagator`` class itself is included (its hooks are checked like
    any other's).
    """
    by_name: dict[str, tuple[object, ast.ClassDef]] = {}
    for module in modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                by_name.setdefault(node.name, (module, node))

    is_prop: dict[str, bool] = {"Propagator": "Propagator" in by_name}
    changed = True
    while changed:
        changed = False
        for name, (_m, cls) in by_name.items():
            if is_prop.get(name):
                continue
            if name == "Propagator" or any(
                is_prop.get(b) or b == "Propagator" for b in _base_names(cls)
            ):
                is_prop[name] = True
                changed = True

    def ancestors(cls: ast.ClassDef) -> list[ast.ClassDef]:
        out: list[ast.ClassDef] = []
        queue = list(_base_names(cls))
        seen: set[str] = set()
        while queue:
            b = queue.pop()
            if b in seen or b not in by_name:
                continue
            seen.add(b)
            parent = by_name[b][1]
            out.append(parent)
            queue.extend(_base_names(parent))
        return out

    return [
        (module, cls, ancestors(cls))
        for name, (module, cls) in sorted(by_name.items())
        if is_prop.get(name)
    ]
