"""Constraint propagators.

Each propagator exposes the variables it watches (``vars``) and a
``propagate(state) -> bool`` method that prunes domains towards (at least)
bounds/value consistency and returns ``False`` on wipe-out.  Propagators are
*stateless* across calls — they recompute from the current domains — which
makes them trivially correct under backtracking at the cost of O(k) work
per call; the CSP1/CSP2 constraint arities here are small enough that this
is the right trade (docs/ARCHITECTURE.md, "Design notes").

The set of propagators is exactly what the paper's encodings need:

================  ============================================  ==========
propagator         paper constraint                              encoding
================  ============================================  ==========
AtMostOneTrue      (3) one task per processor-slot,              CSP1
                   (4) one processor per task-slot
ExactSumBool       (5) exactly C_i units per window              CSP1
WeightedExactSum   (11) heterogeneous variant                    CSP1-het
CountEq            (9) exactly C_i slots equal to i              CSP2
WeightedCountEq    (12) heterogeneous variant                    CSP2-het
AllDifferentExc    (8) processors differ unless idle             CSP2
NonDecreasing      (10)/(13) symmetry breaking                   CSP2
Table              (generic; used by tests/extensions)           --
================  ============================================  ==========
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.csp.core import Variable
from repro.csp.state import DomainState

__all__ = [
    "Propagator",
    "AtMostOneTrue",
    "ExactSumBool",
    "WeightedExactSumBool",
    "CountEq",
    "WeightedCountEq",
    "AllDifferentExceptValue",
    "NonDecreasing",
    "Table",
]

_TRUE = 0b10  # singleton {1} mask of a boolean variable
_FALSE = 0b01  # singleton {0}


def _check_bools(vars: Sequence[Variable]) -> tuple[Variable, ...]:
    vs = tuple(vars)
    for v in vs:
        if v.offset != 0 or v.initial_mask & ~0b11:
            raise ValueError(f"{v.name} is not a boolean variable")
    return vs


class Propagator:
    """Base class; subclasses set ``vars`` and implement ``propagate``."""

    __slots__ = ("vars",)

    vars: tuple[Variable, ...]

    def propagate(self, state: DomainState) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:
        names = ",".join(v.name for v in self.vars[:4])
        more = "" if len(self.vars) <= 4 else f",..{len(self.vars)}"
        return f"{type(self).__name__}({names}{more})"


class AtMostOneTrue(Propagator):
    """At most one of the boolean variables is 1 (paper (3)/(4))."""

    __slots__ = ()

    def __init__(self, bools: Sequence[Variable]) -> None:
        self.vars = _check_bools(bools)

    def propagate(self, state: DomainState) -> bool:
        masks = state.masks
        first_true: Variable | None = None
        for v in self.vars:
            if masks[v.index] == _TRUE:
                if first_true is not None:
                    return False
                first_true = v
        if first_true is None:
            return True
        for v in self.vars:
            if v is not first_true and masks[v.index] != _FALSE:
                if not state.assign(v, 0):
                    return False
        return True


class ExactSumBool(Propagator):
    """Exactly ``total`` of the booleans are 1 (paper (5))."""

    __slots__ = ("total",)

    def __init__(self, bools: Sequence[Variable], total: int) -> None:
        self.vars = _check_bools(bools)
        if total < 0:
            raise ValueError(f"total must be >= 0, got {total}")
        self.total = total

    def propagate(self, state: DomainState) -> bool:
        masks = state.masks
        ones = 0
        free: list[Variable] = []
        for v in self.vars:
            m = masks[v.index]
            if m == _TRUE:
                ones += 1
            elif m != _FALSE:
                free.append(v)
        if ones > self.total or ones + len(free) < self.total:
            return False
        if ones == self.total:
            for v in free:
                if not state.assign(v, 0):
                    return False
        elif ones + len(free) == self.total:
            for v in free:
                if not state.assign(v, 1):
                    return False
        return True


class WeightedExactSumBool(Propagator):
    """``sum c_k b_k == total`` with ``c_k >= 1`` (paper (11)).

    Zero-rate pairs must be excluded by the encoding (their variable's
    domain is {0} in the paper; here they are simply not created).
    """

    __slots__ = ("coefs", "total")

    def __init__(
        self, bools: Sequence[Variable], coefs: Sequence[int], total: int
    ) -> None:
        self.vars = _check_bools(bools)
        self.coefs = tuple(int(c) for c in coefs)
        if len(self.coefs) != len(self.vars):
            raise ValueError("one coefficient per variable required")
        if any(c < 1 for c in self.coefs):
            raise ValueError(f"coefficients must be >= 1, got {self.coefs}")
        if total < 0:
            raise ValueError(f"total must be >= 0, got {total}")
        self.total = total

    def propagate(self, state: DomainState) -> bool:
        # iterate to an internal fixpoint: assigning one variable tightens
        # the bounds for the others within the same call
        masks = state.masks
        while True:
            lb = 0
            free: list[tuple[Variable, int]] = []
            free_sum = 0
            for v, c in zip(self.vars, self.coefs):
                m = masks[v.index]
                if m == _TRUE:
                    lb += c
                elif m != _FALSE:
                    free.append((v, c))
                    free_sum += c
            if lb > self.total or lb + free_sum < self.total:
                return False
            changed = False
            for v, c in free:
                if lb + c > self.total:
                    # taking v would overshoot
                    if not state.assign(v, 0):
                        return False
                    changed = True
                elif lb + free_sum - c < self.total:
                    # dropping v would undershoot
                    if not state.assign(v, 1):
                        return False
                    changed = True
            if not changed:
                return True


class CountEq(Propagator):
    """Exactly ``total`` variables take ``value`` (paper (9))."""

    __slots__ = ("value", "total")

    def __init__(self, vars: Sequence[Variable], value: int, total: int) -> None:
        self.vars = tuple(vars)
        if not self.vars:
            raise ValueError("CountEq over no variables")
        if total < 0:
            raise ValueError(f"total must be >= 0, got {total}")
        self.value = value
        self.total = total

    def propagate(self, state: DomainState) -> bool:
        value = self.value
        fixed = 0
        candidates: list[Variable] = []
        for v in self.vars:
            b = value - v.offset
            if b < 0:
                continue
            m = state.masks[v.index]
            bit = 1 << b
            if not m & bit:
                continue
            if m == bit:
                fixed += 1
            else:
                candidates.append(v)
        if fixed > self.total or fixed + len(candidates) < self.total:
            return False
        if fixed == self.total:
            for v in candidates:
                if not state.remove_value(v, value):
                    return False
        elif fixed + len(candidates) == self.total:
            for v in candidates:
                if not state.assign(v, value):
                    return False
        return True


class WeightedCountEq(Propagator):
    """``sum_k c_k [x_k == value] == total`` with ``c_k >= 1`` (paper (12))."""

    __slots__ = ("coefs", "value", "total")

    def __init__(
        self,
        vars: Sequence[Variable],
        coefs: Sequence[int],
        value: int,
        total: int,
    ) -> None:
        self.vars = tuple(vars)
        self.coefs = tuple(int(c) for c in coefs)
        if len(self.coefs) != len(self.vars):
            raise ValueError("one coefficient per variable required")
        if any(c < 1 for c in self.coefs):
            raise ValueError(f"coefficients must be >= 1, got {self.coefs}")
        if total < 0:
            raise ValueError(f"total must be >= 0, got {total}")
        self.value = value
        self.total = total

    def propagate(self, state: DomainState) -> bool:
        # internal fixpoint, same reasoning as WeightedExactSumBool
        value = self.value
        while True:
            lb = 0
            free: list[tuple[Variable, int]] = []
            free_sum = 0
            for v, c in zip(self.vars, self.coefs):
                b = value - v.offset
                if b < 0:
                    continue
                m = state.masks[v.index]
                bit = 1 << b
                if not m & bit:
                    continue
                if m == bit:
                    lb += c
                else:
                    free.append((v, c))
                    free_sum += c
            if lb > self.total or lb + free_sum < self.total:
                return False
            changed = False
            for v, c in free:
                if lb + c > self.total:
                    if not state.remove_value(v, value):
                        return False
                    changed = True
                elif lb + free_sum - c < self.total:
                    if not state.assign(v, value):
                        return False
                    changed = True
            if not changed:
                return True


class AllDifferentExceptValue(Propagator):
    """Assigned values are pairwise distinct, except ``except_value``
    which any number of variables may share (paper (8): two processors
    never run the same task unless both are idle).

    ``except_value=None`` gives plain value-consistency alldifferent.
    """

    __slots__ = ("except_value",)

    def __init__(self, vars: Sequence[Variable], except_value: int | None) -> None:
        self.vars = tuple(vars)
        if len(self.vars) < 2:
            raise ValueError("AllDifferent needs at least two variables")
        self.except_value = except_value

    def propagate(self, state: DomainState) -> bool:
        taken: set[int] = set()
        unassigned: list[Variable] = []
        for v in self.vars:
            m = state.masks[v.index]
            if m & (m - 1):
                unassigned.append(v)
                continue
            val = v.offset + m.bit_length() - 1
            if val == self.except_value:
                continue
            if val in taken:
                return False
            taken.add(val)
        if not taken:
            return True
        for v in unassigned:
            for val in taken:
                if not state.remove_value(v, val):
                    return False
        return True


class NonDecreasing(Propagator):
    """``x_1 <= x_2 <= .. <= x_k`` via bounds propagation (paper (10)/(13)).

    Used for symmetry breaking across (groups of) identical processors;
    the CSP2 encoding ranks the idle value *above* every task id so the
    plain ordering matches the paper's "tasks ascending, idles last".
    """

    __slots__ = ()

    def __init__(self, vars: Sequence[Variable]) -> None:
        self.vars = tuple(vars)
        if len(self.vars) < 2:
            raise ValueError("NonDecreasing needs at least two variables")

    def propagate(self, state: DomainState) -> bool:
        vs = self.vars
        # forward pass: lower bounds ripple right
        for a, b in zip(vs, vs[1:]):
            if not state.remove_below(b, state.min_value(a)):
                return False
        # backward pass: upper bounds ripple left
        for a, b in zip(reversed(vs[:-1]), reversed(vs)):
            if not state.remove_above(a, state.max_value(b)):
                return False
        return True


class Table(Propagator):
    """Positive table constraint: the value tuple must be one of ``tuples``.

    Straightforward generalized-arc-consistent filtering by support
    counting; provided for extensions and as a brute-force oracle in tests.
    """

    __slots__ = ("tuples",)

    def __init__(self, vars: Sequence[Variable], tuples: Iterable[Sequence[int]]) -> None:
        self.vars = tuple(vars)
        if not self.vars:
            raise ValueError("Table over no variables")
        tups = tuple(tuple(t) for t in tuples)
        if any(len(t) != len(self.vars) for t in tups):
            raise ValueError("every tuple must match the variable count")
        self.tuples = tups

    def propagate(self, state: DomainState) -> bool:
        supported: list[set[int]] = [set() for _ in self.vars]
        for tup in self.tuples:
            if all(state.contains(v, val) for v, val in zip(self.vars, tup)):
                for s, val in zip(supported, tup):
                    s.add(val)
        for v, support in zip(self.vars, supported):
            if not support:
                return False
            mask = 0
            for val in support:
                mask |= 1 << (val - v.offset)
            if not state.intersect_mask(v, mask):
                return False
        return True
