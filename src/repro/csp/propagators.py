"""Constraint propagators — incremental, event-typed, entailment-aware.

Each propagator exposes the variables it watches and a
``propagate(state)`` method that prunes domains towards (at least)
bounds/value consistency.  ``propagate`` returns one of

* :data:`PROP_FAIL` (``0``, falsy) — wipe-out, the subtree is dead;
* :data:`PROP_OK` (``1``) — pruned to a local fixpoint, stay active;
* :data:`PROP_ENTAILED` (``2``) — the constraint now holds for *every*
  remaining assignment; the engine deactivates the propagator for the
  rest of the subtree (and the trail reactivates it on backtrack).

Truthiness is preserved on purpose: legacy ``True``/``False`` returns
still mean OK/FAIL, so external propagators keep working unchanged.

Unlike the first-generation engine — whose propagators were *stateless*
and rescanned all ``k`` variables on every call — the counting
propagators here own **reversible counters** (fixed/free tallies,
weighted lower bounds, validity bitmasks) that the engine keeps current
through :meth:`Propagator.on_event` deltas: O(1) bookkeeping per domain
change, O(1) bound checks on wake, and an O(k) pruning scan only on the
rare wake that actually prunes (which then usually entails).  Counters
are trailed through :meth:`DomainState.save` /
:meth:`DomainState.save_all`, so backtracking restores them together
with the domains.

Writing an incremental propagator
---------------------------------
1. Declare ``priority`` (0 = cheap counter checks, drained first;
   1 = linear passes; 2 = expensive, e.g. table filtering) and a
   ``wake_on`` event mask (or override :meth:`Propagator.watches` for
   per-variable masks) from :data:`~repro.csp.state.EVT_REMOVE` /
   ``EVT_BOUNDS`` / ``EVT_ASSIGN``.
2. Initialize the counters from the current domains in ``reset(state)``
   (the engine calls it once per search; after any out-of-engine domain
   mutation, call it yourself before ``propagate``).
3. In ``on_event(state, idx, old_mask, new_mask)``, update the counters
   from the delta.  Trail them first, at most once per node::

       if self._stamp != state.stamp:
           self._stamp = state.stamp
           state.save_all(self._c)

   (The built-in propagators inline the equivalent private-attribute
   form ``state._undo.append((c, None, tuple(c)))`` because this runs
   once per event on the hottest path; external propagators should use
   the public ``stamp`` + ``save_all`` spelling above.)  ``on_event``
   must **never** mutate domains; all pruning belongs in ``propagate``.  Return ``False`` when
   the updated counters prove the wake would be a no-op (no failure, no
   pruning, no entailment possible) and the engine skips the enqueue;
   any other return value schedules ``propagate`` as usual.
4. Declare every attribute ``on_event``/``propagate`` mutates in the
   class-level ``_trail_safe`` tuple — the statically checked record of
   which search-time state is trailed (or deliberately not, with a
   comment saying why that is sound, as for :class:`Table`'s residual
   caches and the ``_stamp`` guards).  ``repro-mgrts lint`` flags any
   search-time mutation outside the declared set
   (``R5.unregistered-mutation``).
5. Only report :data:`PROP_ENTAILED` when no future domain change could
   make the constraint prune or fail again in this subtree — a
   too-eager entailment silently weakens propagation.

Explaining propagations (conflict-directed search)
--------------------------------------------------
When the solver runs with learning enabled (see
:mod:`repro.csp.learning`), propagators may additionally *explain*
themselves.  A literal is a ``(var_index, value, sign)`` triple —
``sign=True`` means "the variable is assigned ``value``", ``sign=False``
means "``value`` was removed".

* :meth:`Propagator.explain_event` ``(state, trail, pos)`` returns a
  list of literals, **all true strictly before event position** ``pos``,
  whose conjunction forced the event this propagator recorded at ``pos``
  (``state.events[pos]``); literals that have been true since the root
  may be included or dropped freely (they carry no information).  Return
  ``None`` to decline: the analyzer then falls back to the sound
  decision-prefix reason (every event is a deterministic consequence of
  the decisions above it), which is always correct but maximally coarse.
* :meth:`Propagator.explain_failure` ``(state, trail)`` returns literals
  (all currently true) whose conjunction is sufficient for the wipe-out
  this propagator just reported, or ``None`` for the same fallback.

The hot counting/table propagators implement both for real —
:class:`AtMostOneTrue` blames the TRUE variable, the exact-sum family
blames the TRUE set (overshoot) or the FALSE set (undershoot), and
:class:`Table` blames the removals that invalidated the supports — so
learned nogoods stay short and reusable instead of degenerating into
full decision prefixes.

The set of propagators is exactly what the paper's encodings need:

================  ============================================  ==========
propagator         paper constraint                              encoding
================  ============================================  ==========
AtMostOneTrue      (3) one task per processor-slot,              CSP1
                   (4) one processor per task-slot
ExactSumBool       (5) exactly C_i units per window              CSP1
WeightedExactSum   (11) heterogeneous variant                    CSP1-het
CountEq            (9) exactly C_i slots equal to i              CSP2
WeightedCountEq    (12) heterogeneous variant                    CSP2-het
AllDifferentExc    (8) processors differ unless idle             CSP2
NonDecreasing      (10)/(13) symmetry breaking                   CSP2
Table              (generic; used by tests/extensions)           --
================  ============================================  ==========
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.csp.core import Variable
from repro.csp.state import EVT_ANY, EVT_ASSIGN, EVT_BOUNDS, EVT_REMOVE, DomainState
from repro.util.bitset import values_from_mask

__all__ = [
    "Propagator",
    "PROP_FAIL",
    "PROP_OK",
    "PROP_ENTAILED",
    "INCREMENTAL_ARITY_THRESHOLD",
    "AtMostOneTrue",
    "ExactSumBool",
    "WeightedExactSumBool",
    "CountEq",
    "WeightedCountEq",
    "AllDifferentExceptValue",
    "NonDecreasing",
    "Table",
]

#: propagate() verdict: domain wipe-out (falsy, like the legacy ``False``)
PROP_FAIL = 0
#: propagate() verdict: local fixpoint reached, constraint stays active
PROP_OK = 1
#: propagate() verdict: satisfied for every remaining assignment —
#: the engine deactivates the propagator until backtracking
PROP_ENTAILED = 2

#: arity at which the counting propagators switch from tally-on-wake to
#: delta-fed counters.  Below it a fresh O(k) tally on the (filtered,
#: deduplicated) wakes is cheaper than per-event counter bookkeeping —
#: CSP1's at-most-one rows sit well under this; CSP2's per-window count
#: constraints sit well over it.  Instances expose the decision as the
#: writable ``incremental`` attribute.
INCREMENTAL_ARITY_THRESHOLD = 8

_TRUE = 0b10  # singleton {1} mask of a boolean variable
_FALSE = 0b01  # singleton {0}
_BOTH = 0b11  # undecided boolean


def _check_bools(vars: Sequence[Variable]) -> tuple[Variable, ...]:
    vs = tuple(vars)
    for v in vs:
        if v.offset != 0 or v.initial_mask & ~_BOTH:
            raise ValueError(f"{v.name} is not a boolean variable")
    return vs


def _check_unique(vars: tuple[Variable, ...], who: str) -> None:
    if len({v.index for v in vars}) != len(vars):
        raise ValueError(f"{who} does not support duplicate variables")


class Propagator:
    """Base class; subclasses set ``vars`` and implement ``propagate``.

    Class attributes ``priority`` (queue tier) and ``wake_on`` (event
    subscription mask) drive the engine's scheduling; stateful
    subclasses additionally implement ``reset`` and ``on_event`` (see
    the module docstring for the full contract).
    """

    __slots__ = ("vars",)

    vars: tuple[Variable, ...]
    #: queue tier: 0 = cheapest (drained first), 2 = most expensive
    priority = 1
    #: event types that wake this propagator (see ``watches``)
    wake_on = EVT_ANY
    #: True when ``on_event`` is a pure wake filter — it updates no
    #: counters, so its only effect is deciding whether to enqueue.
    #: The dispatch loop then skips the call entirely while the
    #: propagator is already queued (the outcome cannot matter), which
    #: keeps filter cost proportional to *enqueue attempts* rather than
    #: raw event volume.  Stateful ``on_event`` hooks (counter deltas)
    #: must leave this False: they need to see every event.
    stateless_filter = False
    #: attributes ``on_event``/``propagate`` may mutate: each is either
    #: trailed (state.save/save_all or the inlined ``_undo`` form) or
    #: deliberately untrailed with a comment at the subclass declaration
    #: saying why that is sound.  Checked statically by the lint rule
    #: R5.unregistered-mutation.
    _trail_safe: tuple[str, ...] = ()

    def watches(self) -> list[tuple[Variable, int, int | None]]:
        """``(variable, wake_mask, relevance)`` subscriptions; default:
        every variable with the class-level ``wake_on`` mask.

        ``relevance`` is an optional value bitmask (in the variable's
        local bit positions): when set, the engine only wakes the
        propagator for events that remove one of those values or assign
        the variable to one of them — the dispatch-level form of "I only
        care about value ``v``".  ``None`` means every matching event is
        relevant."""
        return [(v, self.wake_on, None) for v in self.vars]

    def reset(self, state: DomainState) -> None:
        """(Re)initialize owned counters from the current domains.

        The engine calls this once at the start of every search run;
        stateless propagators inherit the no-op."""

    def propagate(self, state: DomainState) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def explain_event(self, state: DomainState, trail, pos: int):
        """Literals (true strictly before ``pos``) that forced the event
        this propagator recorded at ``state.events[pos]``.

        Default ``None``: the conflict analyzer falls back to the sound
        decision-prefix reason.  See the module docstring for the full
        contract."""
        return None

    def explain_failure(self, state: DomainState, trail):
        """Literals (currently true) sufficient for the wipe-out this
        propagator just reported; ``None`` for the decision-prefix
        fallback."""
        return None

    def __repr__(self) -> str:
        names = ",".join(v.name for v in self.vars[:4])
        more = "" if len(self.vars) <= 4 else f",..{len(self.vars)}"
        return f"{type(self).__name__}({names}{more})"


class AtMostOneTrue(Propagator):
    """At most one of the boolean variables is 1 (paper (3)/(4)).

    Counters: ``[n_true, n_undecided]``; wakes on ASSIGN only (boolean
    domains have no other transition)."""

    __slots__ = ("incremental", "_c", "_stamp")

    priority = 0
    wake_on = EVT_ASSIGN
    # _c is trailed via the inlined _undo form; _stamp is a monotone
    # once-per-node guard that is sound without trailing
    _trail_safe = ("_c", "_stamp")

    def __init__(self, bools: Sequence[Variable]) -> None:
        self.vars = _check_bools(bools)
        self.incremental = len(self.vars) >= INCREMENTAL_ARITY_THRESHOLD
        self._c: list[int] | None = None
        self._stamp = -1

    def _tally(self, state: DomainState) -> list[int]:
        masks = state.masks
        n_true = n_und = 0
        for v in self.vars:
            m = masks[v.index]
            if m == _TRUE:
                n_true += 1
            elif m == _BOTH:
                n_und += 1
        return [n_true, n_und]

    def reset(self, state: DomainState) -> None:
        """Count TRUE / undecided booleans from the current domains."""
        self._c = self._tally(state)
        self._stamp = -1

    def on_event(self, state: DomainState, idx: int, old: int, new: int):
        """A watched boolean was assigned: retally in O(1)."""
        c = self._c
        if self._stamp != state._stamp:  # trail the counters once per node
            self._stamp = state._stamp
            state._undo.append((c, None, tuple(c)))
        if new == _TRUE:
            c[0] += 1
            c[1] -= 1
            return None  # a new TRUE always forces, fails or entails
        c[1] -= 1
        if c[0] == 0 and c[1] > 1:
            return False  # nothing to do while no var is TRUE
        return None

    def explain_event(self, state: DomainState, trail, pos: int):
        """A forced 0 is explained by the variable that was TRUE."""
        idx, _old, new, _ev = state.events[pos]
        if new != _FALSE:
            return None
        pos_of = trail.pos_of
        for v in self.vars:
            if v.index == idx:
                continue
            if v.initial_mask == _TRUE:
                return []  # forced by a root-fixed TRUE: a root fact
            p = pos_of.get((v.index, 1, True))
            if p is not None and p < pos:
                return [(v.index, 1, True)]
        return None

    def explain_failure(self, state: DomainState, trail):
        """Two TRUE variables violate at-most-one: blame them."""
        out = []
        masks = state.masks
        for v in self.vars:
            if masks[v.index] == _TRUE and v.initial_mask != _TRUE:
                out.append((v.index, 1, True))
        return out

    def propagate(self, state: DomainState) -> int:
        """O(1) verdict; an O(k) forcing scan only when one var is TRUE."""
        n_true, n_und = self._c if self.incremental else self._tally(state)
        if n_true > 1:
            return PROP_FAIL
        if n_true == 0:
            # 0/1 undecided vars cannot violate at-most-one anymore
            return PROP_ENTAILED if n_und <= 1 else PROP_OK
        if n_und:
            masks = state.masks
            for v in self.vars:
                if masks[v.index] == _BOTH:
                    state.assign(v, 0)
        return PROP_ENTAILED


class ExactSumBool(Propagator):
    """Exactly ``total`` of the booleans are 1 (paper (5)).

    Counters: ``[n_true, n_undecided]``; wakes on ASSIGN only."""

    __slots__ = ("total", "incremental", "_c", "_stamp")

    priority = 0
    wake_on = EVT_ASSIGN
    # _c is trailed via the inlined _undo form; _stamp is a monotone
    # once-per-node guard that is sound without trailing
    _trail_safe = ("_c", "_stamp")

    def __init__(self, bools: Sequence[Variable], total: int) -> None:
        self.vars = _check_bools(bools)
        if total < 0:
            raise ValueError(f"total must be >= 0, got {total}")
        self.total = total
        self.incremental = len(self.vars) >= INCREMENTAL_ARITY_THRESHOLD
        self._c: list[int] | None = None
        self._stamp = -1

    def _tally(self, state: DomainState) -> list[int]:
        masks = state.masks
        ones = und = 0
        for v in self.vars:
            m = masks[v.index]
            if m == _TRUE:
                ones += 1
            elif m == _BOTH:
                und += 1
        return [ones, und]

    def reset(self, state: DomainState) -> None:
        """Count TRUE / undecided booleans from the current domains."""
        self._c = self._tally(state)
        self._stamp = -1

    def batch_row(self):
        """Export this row for the batched counting kernel
        (:mod:`repro.kernels.fixpoint`): ``(kind, slots, cells, total,
        cmax)`` with one ``(var_index, value_bit, coefficient)`` cell
        per boolean."""
        return ("bool", 2, [(v.index, _TRUE, 1) for v in self.vars], self.total, 1)

    def on_event(self, state: DomainState, idx: int, old: int, new: int):
        """A watched boolean was assigned: retally in O(1)."""
        c = self._c
        if self._stamp != state._stamp:  # trail the counters once per node
            self._stamp = state._stamp
            state._undo.append((c, None, tuple(c)))
        if new == _TRUE:
            c[0] += 1
        c[1] -= 1
        if c[0] < self.total < c[0] + c[1]:
            return False  # strictly between the bounds: no forcing yet
        return None

    def explain_event(self, state: DomainState, trail, pos: int):
        """A forced 0 is explained by the TRUE set (the sum saturated);
        a forced 1 by the FALSE set (the remaining candidates got tight).
        Root-fixed variables carry no event and are dropped (root facts)."""
        idx, _old, new, _ev = state.events[pos]
        if new == _FALSE:
            val = 1  # saturated: blame every variable assigned 1 earlier
        elif new == _TRUE:
            val = 0  # tight: blame every variable assigned 0 earlier
        else:
            return None
        pos_of = trail.pos_of
        out = []
        for v in self.vars:
            if v.index == idx:
                continue
            p = pos_of.get((v.index, val, True))
            if p is not None and p < pos:
                out.append((v.index, val, True))
        return out

    def explain_failure(self, state: DomainState, trail):
        """Overshoot blames the TRUE set, undershoot the FALSE set."""
        masks = state.masks
        ones = falses = 0
        for v in self.vars:
            m = masks[v.index]
            if m == _TRUE:
                ones += 1
            elif m == _FALSE:
                falses += 1
        if ones > self.total:
            val = 1
        elif len(self.vars) - falses < self.total:
            val = 0
        else:
            return None
        want = _TRUE if val else _FALSE
        pos_of = trail.pos_of
        return [
            (v.index, val, True)
            for v in self.vars
            if masks[v.index] == want and (v.index, val, True) in pos_of
        ]

    def propagate(self, state: DomainState) -> int:
        """O(1) bound checks; an O(k) forcing scan only when saturated
        or tight (after which the constraint is entailed)."""
        ones, und = self._c if self.incremental else self._tally(state)
        total = self.total
        if ones > total or ones + und < total:
            return PROP_FAIL
        if und == 0:
            return PROP_ENTAILED
        if ones == total:  # saturated: every undecided var must be 0
            masks = state.masks
            for v in self.vars:
                if masks[v.index] == _BOTH:
                    state.assign(v, 0)
            return PROP_ENTAILED
        if ones + und == total:  # tight: every undecided var must be 1
            masks = state.masks
            for v in self.vars:
                if masks[v.index] == _BOTH:
                    state.assign(v, 1)
            return PROP_ENTAILED
        return PROP_OK


class WeightedExactSumBool(Propagator):
    """``sum c_k b_k == total`` with ``c_k >= 1`` (paper (11)).

    Zero-rate pairs must be excluded by the encoding (their variable's
    domain is {0} in the paper; here they are simply not created).

    Counters: ``[lb, free_sum, free_count]`` where ``lb`` is the sum of
    coefficients of TRUE variables and ``free_*`` aggregate the
    undecided ones.  A static max-coefficient test skips the O(k)
    pruning scan whenever no individual variable can overshoot or be
    required, which is the common wake."""

    __slots__ = ("coefs", "total", "incremental", "_coef_of", "_cmax", "_c", "_stamp")

    priority = 0
    wake_on = EVT_ASSIGN
    # _c is trailed via the inlined _undo form; _stamp is a monotone
    # once-per-node guard that is sound without trailing
    _trail_safe = ("_c", "_stamp")

    def __init__(
        self, bools: Sequence[Variable], coefs: Sequence[int], total: int
    ) -> None:
        self.vars = _check_bools(bools)
        _check_unique(self.vars, "WeightedExactSumBool")
        self.coefs = tuple(int(c) for c in coefs)
        if len(self.coefs) != len(self.vars):
            raise ValueError("one coefficient per variable required")
        if any(c < 1 for c in self.coefs):
            raise ValueError(f"coefficients must be >= 1, got {self.coefs}")
        if total < 0:
            raise ValueError(f"total must be >= 0, got {total}")
        self.total = total
        self.incremental = len(self.vars) >= INCREMENTAL_ARITY_THRESHOLD
        self._coef_of = {v.index: c for v, c in zip(self.vars, self.coefs)}
        self._cmax = max(self.coefs)
        self._c: list[int] | None = None
        self._stamp = -1

    def _tally(self, state: DomainState) -> list[int]:
        masks = state.masks
        lb = free_sum = free_count = 0
        for v, c in zip(self.vars, self.coefs):
            m = masks[v.index]
            if m == _TRUE:
                lb += c
            elif m == _BOTH:
                free_sum += c
                free_count += 1
        return [lb, free_sum, free_count]

    def reset(self, state: DomainState) -> None:
        """Tally the weighted lower bound and free aggregates."""
        self._c = self._tally(state)
        self._stamp = -1

    def batch_row(self):
        """Export this row for the batched counting kernel: cells carry
        each boolean's coefficient, plus the static ``cmax`` filter."""
        cells = [(v.index, _TRUE, c) for v, c in zip(self.vars, self.coefs)]
        return ("bool", 3, cells, self.total, self._cmax)

    def on_event(self, state: DomainState, idx: int, old: int, new: int):
        """A watched boolean was assigned: move its coefficient."""
        c = self._c
        if self._stamp != state._stamp:  # trail the counters once per node
            self._stamp = state._stamp
            state._undo.append((c, None, tuple(c)))
        coef = self._coef_of[idx]
        if new == _TRUE:
            c[0] += coef
        c[1] -= coef
        c[2] -= 1
        lb = c[0]
        total = self.total
        if c[2] and self._cmax <= total - lb and self._cmax <= lb + c[1] - total:
            return False  # no variable can be forced either way yet
        return None

    def explain_event(self, state: DomainState, trail, pos: int):
        """A forced 0 is explained by the TRUE set (its coefficient sum
        leaves no room); a forced 1 by the FALSE set (without this
        variable the reachable sum falls short)."""
        idx, _old, new, _ev = state.events[pos]
        if new == _FALSE:
            val = 1
        elif new == _TRUE:
            val = 0
        else:
            return None
        pos_of = trail.pos_of
        out = []
        for v in self.vars:
            if v.index == idx:
                continue
            p = pos_of.get((v.index, val, True))
            if p is not None and p < pos:
                out.append((v.index, val, True))
        return out

    def explain_failure(self, state: DomainState, trail):
        """Overshoot blames the TRUE set, undershoot the FALSE set
        (recomputed from the masks: a scan may fail mid-update)."""
        masks = state.masks
        lb = false_sum = 0
        for v, c in zip(self.vars, self.coefs):
            m = masks[v.index]
            if m == _TRUE:
                lb += c
            elif m == _FALSE:
                false_sum += c
        if lb > self.total:
            val = 1
            want = _TRUE
        elif sum(self.coefs) - false_sum < self.total:
            val = 0
            want = _FALSE
        else:
            return None
        pos_of = trail.pos_of
        return [
            (v.index, val, True)
            for v in self.vars
            if masks[v.index] == want and (v.index, val, True) in pos_of
        ]

    def propagate(self, state: DomainState) -> int:
        """O(1) bound checks; the per-variable scan runs only when some
        coefficient could overshoot ``total`` or be required to reach it."""
        lb, free_sum, free_count = (
            self._c if self.incremental else self._tally(state)
        )
        total = self.total
        if lb > total or lb + free_sum < total:
            return PROP_FAIL
        if free_count == 0:
            return PROP_ENTAILED
        if self._cmax <= total - lb and self._cmax <= lb + free_sum - total:
            return PROP_OK  # no single variable can be forced either way
        # pruning scan + local fixpoint over the free variables; counters
        # are tracked locally — the engine's event dispatch updates
        # self._c afterwards, so writing them back here would double-count
        masks = state.masks
        free = [
            (v, c) for v, c in zip(self.vars, self.coefs) if masks[v.index] == _BOTH
        ]
        while True:
            changed = False
            for v, c in free:
                if masks[v.index] != _BOTH:
                    continue
                if lb + c > total:  # taking v would overshoot
                    state.assign(v, 0)
                    free_sum -= c
                    free_count -= 1
                    changed = True
                elif lb + free_sum - c < total:  # dropping v would undershoot
                    state.assign(v, 1)
                    lb += c
                    free_sum -= c
                    free_count -= 1
                    changed = True
            if lb > total or lb + free_sum < total:
                return PROP_FAIL
            if not changed:
                return PROP_ENTAILED if free_count == 0 else PROP_OK


class CountEq(Propagator):
    """Exactly ``total`` variables take ``value`` (paper (9)).

    Counters: ``[n_fixed, n_candidates]`` — variables assigned to
    ``value`` vs. unassigned variables whose domain still contains it.
    Only variables whose initial domain contains ``value`` are watched,
    and the wake filter is REMOVE (every event carries it; the
    ``on_event`` delta test is a pair of bit probes)."""

    __slots__ = (
        "value",
        "total",
        "incremental",
        "_bits",
        "_watched",
        "_scan",
        "_c",
        "_stamp",
    )

    priority = 0
    wake_on = EVT_REMOVE
    # _c is trailed via the inlined _undo form; _stamp is a monotone
    # once-per-node guard that is sound without trailing
    _trail_safe = ("_c", "_stamp")

    def __init__(self, vars: Sequence[Variable], value: int, total: int) -> None:
        self.vars = tuple(vars)
        if not self.vars:
            raise ValueError("CountEq over no variables")
        if total < 0:
            raise ValueError(f"total must be >= 0, got {total}")
        self.value = value
        self.total = total
        # only variables that can ever take `value` matter (occurrences kept)
        self._bits: dict[int, int] = {}
        self._watched: tuple[Variable, ...] = tuple(
            v for v in self.vars if self._can_take(v)
        )
        # (var, bit) pairs in watch order: the forcing scans walk this
        # instead of paying a dict lookup per variable per call
        self._scan: tuple[tuple[Variable, int], ...] = tuple(
            (v, self._bits[v.index]) for v in self._watched
        )
        self.incremental = len(self._watched) >= INCREMENTAL_ARITY_THRESHOLD
        self._c: list[int] | None = None
        self._stamp = -1

    def _can_take(self, v: Variable) -> bool:
        b = self.value - v.offset
        if b < 0 or not v.initial_mask >> b & 1:
            return False
        self._bits[v.index] = 1 << b
        return True

    def watches(self) -> list[tuple[Variable, int, int | None]]:
        """Subscribe only the variables that can ever take ``value``,
        and only for events that touch its bit (or assign to it)."""
        return [(v, EVT_REMOVE, self._bits[v.index]) for v in self._watched]

    def _tally(self, state: DomainState) -> list[int]:
        masks = state.masks
        fixed = cand = 0
        for v, bit in self._scan:
            m = masks[v.index]
            if m & bit:
                if m == bit:
                    fixed += 1
                else:
                    cand += 1
        return [fixed, cand]

    def reset(self, state: DomainState) -> None:
        """Tally fixed / candidate variables from the current domains."""
        self._c = self._tally(state)
        self._stamp = -1

    def batch_row(self):
        """Export this row for the batched counting kernel: one cell per
        *occurrence* in the watch list (a variable listed twice counts
        twice, exactly like :meth:`_tally`); the kernel merges the
        occurrences into one per-event update with the summed weight."""
        cells = [(v.index, self._bits[v.index], 1) for v in self._watched]
        return ("count", 2, cells, self.total, 1)

    def on_event(self, state: DomainState, idx: int, old: int, new: int):
        """Classify the delta with two bit probes; O(1)."""
        bit = self._bits[idx]
        if not old & bit:
            return False  # `value` was already gone — nothing we track changed
        if new == bit:  # candidate became fixed to `value`
            c = self._c
            if self._stamp != state._stamp:
                self._stamp = state._stamp
                state._undo.append((c, None, tuple(c)))
            c[0] += 1
            c[1] -= 1
        elif not new & bit:  # candidate lost `value`
            c = self._c
            if self._stamp != state._stamp:
                self._stamp = state._stamp
                state._undo.append((c, None, tuple(c)))
            c[1] -= 1
        else:
            return False  # still an open candidate: nothing we track changed
        c = self._c
        if c[0] < self.total < c[0] + c[1]:
            return False  # strictly between the bounds: no forcing yet
        return None

    def explain_event(self, state: DomainState, trail, pos: int):
        """A var forced *to* ``value`` is explained by the set that lost
        it (the count got tight); a var that lost ``value`` by the set
        fixed to it (the count saturated)."""
        idx, _old, new, _ev = state.events[pos]
        bit = self._bits.get(idx)
        if bit is None:
            return None
        pos_of = trail.pos_of
        out = []
        if new == bit:  # tight: blame every watched var that lost `value`
            lost = (self.value, False)
            for v in self._watched:
                if v.index == idx:
                    continue
                p = pos_of.get((v.index,) + lost)
                if p is not None and p < pos:
                    out.append((v.index,) + lost)
            return out
        if not new & bit:  # saturated: blame the vars fixed to `value`
            fixed = (self.value, True)
            for v in self._watched:
                if v.index == idx:
                    continue
                p = pos_of.get((v.index,) + fixed)
                if p is not None and p < pos:
                    out.append((v.index,) + fixed)
            return out
        return None

    def explain_failure(self, state: DomainState, trail):
        """Overshoot blames the fixed set, undershoot the lost set."""
        masks = state.masks
        bits = self._bits
        pos_of = trail.pos_of
        n_fixed = cand = 0
        for v in self._watched:
            m = masks[v.index]
            bit = bits[v.index]
            if m == bit:
                n_fixed += 1
            elif m & bit:
                cand += 1
        if n_fixed > self.total:
            want = lambda m, bit: m == bit  # noqa: E731 - tiny local pred
            tail = (self.value, True)
        elif n_fixed + cand < self.total:
            want = lambda m, bit: not m & bit  # noqa: E731
            tail = (self.value, False)
        else:
            return None
        return [
            (v.index,) + tail
            for v in self._watched
            if want(masks[v.index], bits[v.index])
            and ((v.index,) + tail) in pos_of
        ]

    def propagate(self, state: DomainState) -> int:
        """O(1) bound checks; one O(k) forcing scan when saturated or
        tight, after which the count is decided and the constraint
        entailed."""
        fixed, cand = self._c if self.incremental else self._tally(state)
        total = self.total
        if fixed > total or fixed + cand < total:
            return PROP_FAIL
        if cand == 0:
            return PROP_ENTAILED
        value = self.value
        masks = state.masks
        # `cand` counts the candidates the scans below will touch; the
        # scans stop once all of them are handled (removals only mutate
        # the candidate itself, so the count stays exact mid-scan)
        if fixed == total:  # saturated: no candidate may take `value`
            for v, bit in self._scan:
                m = masks[v.index]
                if m & bit and m != bit:
                    if not state.remove_value(v, value):
                        return PROP_FAIL
                    cand -= 1
                    if not cand:
                        break
            return PROP_ENTAILED
        if fixed + cand == total:  # tight: every candidate must take it
            for v, bit in self._scan:
                m = masks[v.index]
                if m & bit and m != bit:
                    if not state.assign(v, value):
                        return PROP_FAIL
                    cand -= 1
                    if not cand:
                        break
            return PROP_ENTAILED
        return PROP_OK


class WeightedCountEq(Propagator):
    """``sum_k c_k [x_k == value] == total`` with ``c_k >= 1`` (paper (12)).

    Counters: ``[lb, free_sum, free_count]`` over the variables that can
    still take ``value`` (``lb`` sums the coefficients of those fixed to
    it), with the same static max-coefficient scan filter as
    :class:`WeightedExactSumBool`."""

    __slots__ = (
        "coefs",
        "value",
        "total",
        "incremental",
        "_bits",
        "_coef_of",
        "_watched",
        "_cmax",
        "_c",
        "_stamp",
    )

    priority = 0
    wake_on = EVT_REMOVE
    # _c is trailed via the inlined _undo form; _stamp is a monotone
    # once-per-node guard that is sound without trailing
    _trail_safe = ("_c", "_stamp")

    def __init__(
        self,
        vars: Sequence[Variable],
        coefs: Sequence[int],
        value: int,
        total: int,
    ) -> None:
        self.vars = tuple(vars)
        _check_unique(self.vars, "WeightedCountEq")
        self.coefs = tuple(int(c) for c in coefs)
        if len(self.coefs) != len(self.vars):
            raise ValueError("one coefficient per variable required")
        if any(c < 1 for c in self.coefs):
            raise ValueError(f"coefficients must be >= 1, got {self.coefs}")
        if total < 0:
            raise ValueError(f"total must be >= 0, got {total}")
        self.value = value
        self.total = total
        self._bits: dict[int, int] = {}
        watched = []
        coef_of = {}
        for v, c in zip(self.vars, self.coefs):
            b = value - v.offset
            if b >= 0 and v.initial_mask >> b & 1:
                self._bits[v.index] = 1 << b
                coef_of[v.index] = c
                watched.append(v)
        self._watched: tuple[Variable, ...] = tuple(watched)
        self._coef_of = coef_of
        self._cmax = max(coef_of.values(), default=0)
        self.incremental = len(self._watched) >= INCREMENTAL_ARITY_THRESHOLD
        self._c: list[int] | None = None
        self._stamp = -1

    def watches(self) -> list[tuple[Variable, int, int | None]]:
        """Subscribe only the variables that can ever take ``value``,
        and only for events that touch its bit (or assign to it)."""
        return [(v, EVT_REMOVE, self._bits[v.index]) for v in self._watched]

    def _tally(self, state: DomainState) -> list[int]:
        masks = state.masks
        bits = self._bits
        coef_of = self._coef_of
        lb = free_sum = free_count = 0
        for v in self._watched:
            m = masks[v.index]
            bit = bits[v.index]
            if m & bit:
                if m == bit:
                    lb += coef_of[v.index]
                else:
                    free_sum += coef_of[v.index]
                    free_count += 1
        return [lb, free_sum, free_count]

    def reset(self, state: DomainState) -> None:
        """Tally the weighted fixed / free aggregates."""
        self._c = self._tally(state)
        self._stamp = -1

    def batch_row(self):
        """Export this row for the batched counting kernel: cells carry
        each watched variable's coefficient and value bit, plus the
        static ``cmax`` filter (watched variables are unique here)."""
        cells = [
            (v.index, self._bits[v.index], self._coef_of[v.index])
            for v in self._watched
        ]
        return ("count", 3, cells, self.total, self._cmax)

    def on_event(self, state: DomainState, idx: int, old: int, new: int):
        """Classify the delta with two bit probes; O(1)."""
        bit = self._bits[idx]
        if not old & bit:
            return False
        if new == bit:
            c = self._c
            if self._stamp != state._stamp:
                self._stamp = state._stamp
                state._undo.append((c, None, tuple(c)))
            coef = self._coef_of[idx]
            c[0] += coef
            c[1] -= coef
            c[2] -= 1
        elif not new & bit:
            c = self._c
            if self._stamp != state._stamp:
                self._stamp = state._stamp
                state._undo.append((c, None, tuple(c)))
            c[1] -= self._coef_of[idx]
            c[2] -= 1
        else:
            return False  # still an open candidate: nothing we track changed
        lb = c[0]
        total = self.total
        if c[2] and self._cmax <= total - lb and self._cmax <= lb + c[1] - total:
            return False  # no variable can be forced either way yet
        return None

    def explain_event(self, state: DomainState, trail, pos: int):
        """Same shape as :meth:`CountEq.explain_event`: tight forcings
        blame the lost set, saturated removals the fixed set."""
        idx, _old, new, _ev = state.events[pos]
        bit = self._bits.get(idx)
        if bit is None:
            return None
        pos_of = trail.pos_of
        tail = (self.value, False) if new == bit else (
            (self.value, True) if not new & bit else None
        )
        if tail is None:
            return None
        out = []
        for v in self._watched:
            if v.index == idx:
                continue
            lit = (v.index,) + tail
            p = pos_of.get(lit)
            if p is not None and p < pos:
                out.append(lit)
        return out

    def explain_failure(self, state: DomainState, trail):
        """Overshoot blames the fixed set, undershoot the lost set."""
        masks = state.masks
        bits = self._bits
        coef_of = self._coef_of
        lb = lost_sum = 0
        for v in self._watched:
            m = masks[v.index]
            bit = bits[v.index]
            if m == bit:
                lb += coef_of[v.index]
            elif not m & bit:
                lost_sum += coef_of[v.index]
        allsum = sum(coef_of.values())
        if lb > self.total:
            keep = lambda m, bit: m == bit  # noqa: E731 - tiny local pred
            tail = (self.value, True)
        elif allsum - lost_sum < self.total:
            keep = lambda m, bit: not m & bit  # noqa: E731
            tail = (self.value, False)
        else:
            return None
        pos_of = trail.pos_of
        return [
            (v.index,) + tail
            for v in self._watched
            if keep(masks[v.index], bits[v.index])
            and ((v.index,) + tail) in pos_of
        ]

    def propagate(self, state: DomainState) -> int:
        """O(1) bound checks; per-variable scan + local fixpoint only
        when some coefficient could overshoot or be required."""
        lb, free_sum, free_count = (
            self._c if self.incremental else self._tally(state)
        )
        total = self.total
        if lb > total or lb + free_sum < total:
            return PROP_FAIL
        if free_count == 0:
            return PROP_ENTAILED
        if self._cmax <= total - lb and self._cmax <= lb + free_sum - total:
            return PROP_OK
        value = self.value
        masks = state.masks
        bits = self._bits
        free = []
        for v in self._watched:
            m = masks[v.index]
            bit = bits[v.index]
            if m & bit and m != bit:
                free.append((v, self._coef_of[v.index], bit))
        # local fixpoint; self._c is updated by the engine's event dispatch
        while True:
            changed = False
            for v, c, bit in free:
                m = masks[v.index]
                if not m & bit or m == bit:
                    continue
                if lb + c > total:  # taking `value` would overshoot
                    if not state.remove_value(v, value):
                        return PROP_FAIL
                    free_sum -= c
                    free_count -= 1
                    changed = True
                elif lb + free_sum - c < total:  # dropping it would undershoot
                    if not state.assign(v, value):
                        return PROP_FAIL
                    lb += c
                    free_sum -= c
                    free_count -= 1
                    changed = True
            if lb > total or lb + free_sum < total:
                return PROP_FAIL
            if not changed:
                return PROP_ENTAILED if free_count == 0 else PROP_OK


class AllDifferentExceptValue(Propagator):
    """Assigned values are pairwise distinct, except ``except_value``
    which any number of variables may share (paper (8): two processors
    never run the same task unless both are idle).

    ``except_value=None`` gives plain value-consistency alldifferent.

    Stateless by design — its pruning depends only on which variables
    are *assigned*, so it subscribes to ASSIGN events alone (interior
    removals and bounds moves never re-run it), skips wakes for
    assignments *to* the exception value (they never extend the taken
    set — in CSP2 that is every idle slot), and reports entailment once
    at most one variable remains open."""

    __slots__ = ("except_value", "_except_bits", "_same_off")

    priority = 1
    wake_on = EVT_ASSIGN
    stateless_filter = True  # on_event reads, never writes

    def __init__(self, vars: Sequence[Variable], except_value: int | None) -> None:
        self.vars = tuple(vars)
        if len(self.vars) < 2:
            raise ValueError("AllDifferent needs at least two variables")
        # all vars sharing one offset (the common case: CSP2 slot vars
        # range over the same task ids) lets the pruning pass build the
        # taken-value kill mask once instead of once per open variable
        offs = {v.offset for v in self.vars}
        self._same_off = offs.pop() if len(offs) == 1 else None
        self.except_value = except_value
        #: var index -> singleton mask of the exception value (0 if unreachable)
        self._except_bits: dict[int, int] = {}
        if except_value is not None:
            for v in self.vars:
                b = except_value - v.offset
                self._except_bits[v.index] = 1 << b if b >= 0 else 0

    def on_event(self, state: DomainState, idx: int, old: int, new: int):
        """Skip the wake when a variable was assigned the exception
        value: the taken set (and hence any pruning) is unchanged."""
        if new == self._except_bits.get(idx, 0):
            return False
        return None

    def explain_event(self, state: DomainState, trail, pos: int):
        """Each removed value is blamed on the variable assigned to it."""
        idx, old, new, _ev = state.events[pos]
        removed = old & ~new
        offset = state.model.variables[idx].offset
        pos_of = trail.pos_of
        out = []
        while removed:
            low = removed & -removed
            removed ^= low
            val = offset + low.bit_length() - 1
            found = None
            for x in self.vars:
                if x.index == idx:
                    continue
                p = pos_of.get((x.index, val, True))
                if p is not None and p < pos:
                    found = (x.index, val, True)
                    break
            if found is None:
                return None  # taker not on the trail (root-fixed): punt
            out.append(found)
        return out

    def explain_failure(self, state: DomainState, trail):
        """Blame the two variables assigned the same (non-idle) value."""
        masks = state.masks
        seen: dict[int, Variable] = {}
        for v in self.vars:
            m = masks[v.index]
            if m & (m - 1):
                continue
            val = v.offset + m.bit_length() - 1
            if val == self.except_value:
                continue
            if val in seen:
                pos_of = trail.pos_of
                return [
                    (x.index, val, True)
                    for x in (seen[val], v)
                    if (x.index, val, True) in pos_of
                ]
            seen[val] = v
        return None

    def propagate(self, state: DomainState) -> int:
        """Value consistency over the assigned variables."""
        taken: set[int] = set()
        unassigned: list[Variable] = []
        masks = state.masks
        for v in self.vars:
            m = masks[v.index]
            if m & (m - 1):
                unassigned.append(v)
                continue
            val = v.offset + m.bit_length() - 1
            if val == self.except_value:
                continue
            if val in taken:
                return PROP_FAIL
            taken.add(val)
        pruned = False
        if taken:
            before = len(state.events)
            same_off = self._same_off
            if same_off is not None:
                # shared offset: one kill mask covers every open var
                kill = 0
                for val in taken:
                    kill |= 1 << (val - same_off)
                keep = ~kill
                for v in unassigned:
                    if not state.intersect_mask(v, keep):
                        return PROP_FAIL
            else:
                for v in unassigned:
                    off = v.offset
                    kill = 0
                    for val in taken:
                        b = val - off
                        if b >= 0:
                            kill |= 1 << b
                    # all taken values leave in one event (delta-batched
                    # so watchers fire once per variable, not per value)
                    if kill and not state.intersect_mask(v, ~kill):
                        return PROP_FAIL
            pruned = len(state.events) != before
        if pruned:
            # a removal may have assigned a variable; its ASSIGN event
            # re-wakes us, and entailment is decided on that clean call
            return PROP_OK
        return PROP_ENTAILED if len(unassigned) <= 1 else PROP_OK


class NonDecreasing(Propagator):
    """``x_1 <= x_2 <= .. <= x_k`` via bounds propagation (paper (10)/(13)).

    Used for symmetry breaking across (groups of) identical processors;
    the CSP2 encoding ranks the idle value *above* every task id so the
    plain ordering matches the paper's "tasks ascending, idles last".

    Stateless; subscribes to BOUNDS events only (interior removals can
    never change its pruning) and reports entailment once every adjacent
    pair satisfies ``max(x_i) <= min(x_{i+1})``."""

    __slots__ = ("_chain_pos", "_fwd", "_bwd", "_nbr")

    priority = 1
    wake_on = EVT_BOUNDS
    stateless_filter = True  # on_event reads, never writes

    def __init__(self, vars: Sequence[Variable]) -> None:
        self.vars = tuple(vars)
        if len(self.vars) < 2:
            raise ValueError("NonDecreasing needs at least two variables")
        self._chain_pos = {v.index: i for i, v in enumerate(self.vars)}
        # the two ripple orders, precomputed (propagate is hot; slicing
        # the chain on every call shows up in engine profiles)
        self._fwd = self.vars[1:]
        self._bwd = self.vars[-2::-1]
        # needy-wake filter table: chain neighbours of each variable as
        # ``idx -> (right_index, right_delta, left_index, left_delta)``
        # with offsets pre-folded into the deltas (-1 = no neighbour).
        # A repeated variable would alias two chain positions, so the
        # table stays empty (filter disabled) in that degenerate case.
        self._nbr: dict[int, tuple[int, int, int, int]] = {}
        if len(self._chain_pos) == len(self.vars):
            for i, v in enumerate(self.vars):
                r = self.vars[i + 1] if i + 1 < len(self.vars) else None
                left = self.vars[i - 1] if i else None
                self._nbr[v.index] = (
                    r.index if r is not None else -1,
                    v.offset - r.offset if r is not None else 0,
                    left.index if left is not None else -1,
                    left.offset - v.offset if left is not None else 0,
                )

    def on_event(self, state: DomainState, idx: int, old: int, new: int):
        """Skip the wake when no ripple can fire.

        A bounds event on ``x_i`` only disturbs the pairs ``(i-1, i)``
        and ``(i, i+1)``; if the right neighbour's lower bound already
        sits at or above ours and the left neighbour's upper bound at or
        below ours, :meth:`propagate` would change no domain — so the
        wake is dropped.  (Entailment detection is merely deferred: the
        constraint stays subscribed and later events re-run the check.)
        Any pair made inconsistent by an *earlier* event already holds a
        queue slot, so dropping this wake never loses a ripple."""
        nbr = self._nbr.get(idx)
        if nbr is None:
            return None  # duplicated chain var: never filter
        r_idx, r_delta, l_idx, l_delta = nbr
        masks = state.masks
        if r_idx >= 0:
            m = masks[r_idx]
            # right lower bound below ours? (offsets folded into delta)
            if (m & -m).bit_length() < (new & -new).bit_length() + r_delta:
                return None  # right lower bound must rise
        if l_idx >= 0:
            # left upper bound above ours?
            if masks[l_idx].bit_length() + l_delta > new.bit_length():
                return None  # left upper bound must drop
        return False

    def _neighbour_removals(self, neigh: Variable, trail, pos: int):
        """Every recorded removal on ``neigh`` before ``pos`` — enough to
        pin its bound, hence the ripple it caused."""
        pos_of = trail.pos_of
        out = []
        for val in values_from_mask(neigh.initial_mask, neigh.offset):
            lit = (neigh.index, val, False)
            p = pos_of.get(lit)
            if p is not None and p < pos:
                out.append(lit)
        return out

    def explain_event(self, state: DomainState, trail, pos: int):
        """A raised lower bound is blamed on the left neighbour's
        removals, a lowered upper bound on the right neighbour's (the
        bound ripples come from exactly one side per event)."""
        idx, old, new, _ev = state.events[pos]
        i = self._chain_pos.get(idx)
        if i is None:
            return None
        min_moved = (old & -old) != (new & -new)
        if min_moved and i > 0:
            neigh = self.vars[i - 1]
        elif not min_moved and i + 1 < len(self.vars):
            neigh = self.vars[i + 1]
        else:
            return None
        return self._neighbour_removals(neigh, trail, pos)

    def explain_failure(self, state: DomainState, trail):
        """A wiped-out ripple is blamed on both neighbours' removals."""
        masks = state.masks
        vs = self.vars
        # find a crossing pair: max(left) > max possible of right chain
        for i in range(len(vs) - 1):
            a, b = vs[i], vs[i + 1]
            lo_a = a.offset + ((masks[a.index] & -masks[a.index]).bit_length() - 1)
            hi_b = b.offset + masks[b.index].bit_length() - 1
            if lo_a > hi_b:
                inf = float("inf")
                return self._neighbour_removals(
                    a, trail, inf
                ) + self._neighbour_removals(b, trail, inf)
        return None

    def propagate(self, state: DomainState) -> int:
        """Ripple lower bounds right, upper bounds left.

        Bounds are read straight off the masks (lowest/highest set bit);
        the final pass checks ``max(x_i) <= min(x_{i+1})`` pairwise for
        entailment."""
        vs = self.vars
        masks = state.masks
        # forward pass: lower bounds ripple right
        m = masks[vs[0].index]
        lo = vs[0].offset + ((m & -m).bit_length() - 1)
        for b in self._fwd:
            if not state.remove_below(b, lo):
                return PROP_FAIL
            m = masks[b.index]
            lo = b.offset + ((m & -m).bit_length() - 1)
        # backward pass: upper bounds ripple left
        hi = vs[-1].offset + masks[vs[-1].index].bit_length() - 1
        for a in self._bwd:
            if not state.remove_above(a, hi):
                return PROP_FAIL
            hi = a.offset + masks[a.index].bit_length() - 1
        # entailed once the chains of bounds can no longer cross
        prev_max = None
        for v in vs:
            m = masks[v.index]
            if prev_max is not None and prev_max > v.offset + (
                (m & -m).bit_length() - 1
            ):
                return PROP_OK
            prev_max = v.offset + m.bit_length() - 1
        return PROP_ENTAILED


class Table(Propagator):
    """Positive table constraint: the value tuple must be one of ``tuples``.

    Generalized-arc-consistent filtering in the style of simple tabular
    reduction: a trailed **validity bitmask** over tuple indices is
    narrowed incrementally — ``on_event`` ANDs out the tuples that
    mention a removed value (via per-(position, value) support masks
    precomputed at construction) — and the pruning scan keeps a value
    iff it still has a valid support, consulting a **residual support**
    (the last tuple index that worked, an O(1) recheck) before paying
    for a mask intersection.  Residues are deliberately not trailed:
    a stale residue is a hint that misses, never an unsound keep."""

    __slots__ = (
        "tuples",
        "_supports",
        "_positions",
        "_mentioned_lits",
        "_residue",
        "_valid",
        "_stamp",
    )

    priority = 2
    wake_on = EVT_REMOVE
    # _valid is trailed via state.save; _residue is a deliberately
    # untrailed residual-support cache (stale entries miss, never keep
    # unsoundly); _stamp is a monotone once-per-node guard
    _trail_safe = ("_valid", "_residue", "_stamp")

    def __init__(self, vars: Sequence[Variable], tuples: Iterable[Sequence[int]]) -> None:
        self.vars = tuple(vars)
        if not self.vars:
            raise ValueError("Table over no variables")
        tups = tuple(tuple(t) for t in tuples)
        if any(len(t) != len(self.vars) for t in tups):
            raise ValueError("every tuple must match the variable count")
        self.tuples = tups
        # support mask per (position, value): which tuples mention it
        self._supports: list[dict[int, int]] = [{} for _ in self.vars]
        for ti, tup in enumerate(tups):
            bit = 1 << ti
            for p, val in enumerate(tup):
                sup = self._supports[p]
                sup[val] = sup.get(val, 0) | bit
        # positions of each distinct variable (a var may appear twice)
        self._positions: dict[int, list[int]] = {}
        for p, v in enumerate(self.vars):
            self._positions.setdefault(v.index, []).append(p)
        # removal-literal candidates for explanations, one per distinct
        # (variable, mentioned value) pair — static after construction
        mentioned: list[tuple[int, int, bool]] = []
        seen_vars: set[int] = set()
        for v in self.vars:
            if v.index in seen_vars:
                continue
            seen_vars.add(v.index)
            vals: set[int] = set()
            for q in self._positions[v.index]:
                vals.update(self._supports[q])
            mentioned.extend((v.index, val, False) for val in vals)
        self._mentioned_lits = tuple(mentioned)
        self._residue: dict[tuple[int, int], int] = {}
        self._valid: list[int] | None = None
        self._stamp = -1

    def watches(self) -> list[tuple[Variable, int, int | None]]:
        """Each distinct variable once (duplicates share one watcher),
        relevant only to the values its tuples actually mention."""
        rel_of: dict[int, int] = {}
        order: list[Variable] = []
        for p, v in enumerate(self.vars):
            if v.index not in rel_of:
                rel_of[v.index] = 0
                order.append(v)
            for val in self._supports[p]:
                b = val - v.offset
                if b >= 0:
                    rel_of[v.index] |= 1 << b
        return [(v, EVT_REMOVE, rel_of[v.index]) for v in order]

    def reset(self, state: DomainState) -> None:
        """Recompute the validity mask from the current domains."""
        valid = (1 << len(self.tuples)) - 1
        for p, v in enumerate(self.vars):
            union = 0
            sup = self._supports[p]
            for val in state.values(v):
                union |= sup.get(val, 0)
            valid &= union
        self._valid = [valid]
        self._stamp = -1

    def on_event(self, state: DomainState, idx: int, old: int, new: int) -> None:
        """Invalidate every tuple that mentions a removed value."""
        removed = old & ~new
        offset = None
        kill = 0
        for p in self._positions[idx]:
            sup = self._supports[p]
            if offset is None:
                offset = self.vars[p].offset
            m = removed
            while m:
                low = m & -m
                m ^= low
                kill |= sup.get(offset + low.bit_length() - 1, 0)
        valid = self._valid[0]
        if kill & valid:
            if self._stamp != state._stamp:
                self._stamp = state._stamp
                state.save(self._valid, 0)
            self._valid[0] = valid & ~kill

    def _removal_reason(self, trail, limit):
        """Removal literals (before ``limit``) of mentioned values: the
        validity mask — and hence any pruning or wipe-out — is a pure
        function of which mentioned values have been removed."""
        pos_of = trail.pos_of
        out = []
        for lit in self._mentioned_lits:
            p = pos_of.get(lit)
            if p is not None and p < limit:
                out.append(lit)
        return out

    def explain_event(self, state: DomainState, trail, pos: int):
        """Blame every earlier removal of a mentioned value (they fixed
        the validity mask that left the pruned values supportless)."""
        return self._removal_reason(trail, pos)

    def explain_failure(self, state: DomainState, trail):
        """Blame the removals that invalidated the last tuples."""
        return self._removal_reason(trail, float("inf"))

    def propagate(self, state: DomainState) -> int:
        """Keep exactly the values with a valid supporting tuple."""
        valid = self._valid[0]
        if valid == 0:
            return PROP_FAIL
        residue = self._residue
        all_assigned = True
        for p, v in enumerate(self.vars):
            sup = self._supports[p]
            offset = v.offset
            dm = state.masks[v.index]
            keep = 0
            m = dm
            while m:
                low = m & -m
                m ^= low
                val = offset + low.bit_length() - 1
                r = residue.get((p, val))
                if r is not None and valid >> r & 1:
                    keep |= low
                    continue
                s = sup.get(val, 0) & valid
                if s:
                    residue[(p, val)] = (s & -s).bit_length() - 1
                    keep |= low
            if keep == 0:
                return PROP_FAIL
            if keep != dm and not state.intersect_mask(v, keep):
                return PROP_FAIL
            if keep & (keep - 1):
                all_assigned = False
        return PROP_ENTAILED if all_assigned else PROP_OK
