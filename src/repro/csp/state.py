"""Trail-based domain state for backtracking search.

Current domains live in a flat ``list[int]`` of bitmasks indexed by
variable index.  Every mutation pushes ``(index, old_mask)`` onto a trail;
:meth:`DomainState.push_level` / :meth:`pop_level` bracket decision levels
so the search undoes exactly the changes of a failed subtree — O(#changes),
never a full copy.

The state also keeps a *changed* log that the propagation engine drains to
schedule watching propagators (event-driven propagation).
"""

from __future__ import annotations

from repro.csp.core import Model, Variable

__all__ = ["DomainState"]


class DomainState:
    """Mutable domains of one search over a :class:`Model`."""

    __slots__ = ("model", "masks", "_trail", "_levels", "changed")

    def __init__(self, model: Model) -> None:
        self.model = model
        self.masks: list[int] = [v.initial_mask for v in model.variables]
        self._trail: list[tuple[int, int]] = []
        self._levels: list[int] = []
        #: variable indices whose domain changed since last drained
        self.changed: list[int] = []

    # -- queries ------------------------------------------------------------
    def mask(self, var: Variable) -> int:
        """Current domain bitmask (relative to ``var.offset``)."""
        return self.masks[var.index]

    def size(self, var: Variable) -> int:
        """Current domain size."""
        return self.masks[var.index].bit_count()

    def is_assigned(self, var: Variable) -> bool:
        """True iff the domain is a singleton."""
        m = self.masks[var.index]
        return m != 0 and (m & (m - 1)) == 0

    def value(self, var: Variable) -> int:
        """The assigned value; raises if unassigned."""
        m = self.masks[var.index]
        if m == 0 or m & (m - 1):
            raise ValueError(f"{var.name} is not assigned (mask={bin(m)})")
        return var.offset + m.bit_length() - 1

    def contains(self, var: Variable, value: int) -> bool:
        """True iff ``value`` is still in the domain."""
        b = value - var.offset
        return b >= 0 and bool(self.masks[var.index] >> b & 1)

    def min_value(self, var: Variable) -> int:
        """Smallest value in the domain."""
        m = self.masks[var.index]
        if not m:
            raise ValueError(f"{var.name} has an empty domain")
        return var.offset + ((m & -m).bit_length() - 1)

    def max_value(self, var: Variable) -> int:
        """Largest value in the domain."""
        m = self.masks[var.index]
        if not m:
            raise ValueError(f"{var.name} has an empty domain")
        return var.offset + m.bit_length() - 1

    def values(self, var: Variable) -> list[int]:
        """Current domain as a sorted list."""
        out = []
        m, base = self.masks[var.index], var.offset
        while m:
            low = m & -m
            out.append(base + low.bit_length() - 1)
            m ^= low
        return out

    def solution(self) -> dict[Variable, int]:
        """Mapping of every variable to its value (all must be assigned)."""
        return {v: self.value(v) for v in self.model.variables}

    # -- mutations ------------------------------------------------------------
    def _set_mask(self, idx: int, new_mask: int) -> None:
        self._trail.append((idx, self.masks[idx]))
        self.masks[idx] = new_mask
        self.changed.append(idx)

    def assign(self, var: Variable, value: int) -> bool:
        """Reduce the domain to ``{value}``; False if value not in domain."""
        b = value - var.offset
        if b < 0:
            return False
        bit = 1 << b
        old = self.masks[var.index]
        if not old & bit:
            return False
        if old != bit:
            self._set_mask(var.index, bit)
        return True

    def remove_value(self, var: Variable, value: int) -> bool:
        """Remove one value; False if this empties the domain."""
        b = value - var.offset
        if b < 0:
            return True  # value was never in the domain
        bit = 1 << b
        old = self.masks[var.index]
        if not old & bit:
            return True
        new = old & ~bit
        if new == 0:
            return False
        self._set_mask(var.index, new)
        return True

    def intersect_mask(self, var: Variable, mask: int) -> bool:
        """Keep only values whose bits are set in ``mask`` (same offset);
        False if the domain becomes empty."""
        old = self.masks[var.index]
        new = old & mask
        if new == old:
            return True
        if new == 0:
            return False
        self._set_mask(var.index, new)
        return True

    def remove_above(self, var: Variable, bound: int) -> bool:
        """Remove every value > bound; False if the domain empties."""
        b = bound - var.offset
        if b < 0:
            return False
        return self.intersect_mask(var, (1 << (b + 1)) - 1)

    def remove_below(self, var: Variable, bound: int) -> bool:
        """Remove every value < bound; False if the domain empties."""
        b = bound - var.offset
        if b <= 0:
            return True
        return self.intersect_mask(var, ~((1 << b) - 1))

    # -- trail ---------------------------------------------------------------
    @property
    def level(self) -> int:
        """Current decision depth."""
        return len(self._levels)

    def push_level(self) -> None:
        """Open a new decision level."""
        self._levels.append(len(self._trail))

    def pop_level(self) -> None:
        """Undo every change made since the matching :meth:`push_level`."""
        if not self._levels:
            raise RuntimeError("pop_level without matching push_level")
        mark = self._levels.pop()
        masks = self.masks
        trail = self._trail
        while len(trail) > mark:
            idx, old = trail.pop()
            masks[idx] = old
        self.changed.clear()

    def drain_changed(self) -> list[int]:
        """Return and clear the changed-variable log."""
        out = self.changed
        self.changed = []
        return out
