"""Trail-based domain state with a typed, level-aware event log.

Current domains live in a flat ``list[int]`` of bitmasks indexed by
variable index.  Every mutation pushes a generic undo record onto a
trail; :meth:`DomainState.push_level` / :meth:`pop_level` bracket decision
levels so the search undoes exactly the changes of a failed subtree —
O(#changes), never a full copy.

Two things make the state *event-driven*:

**Typed events.**  Every domain mutation appends ``(index, old_mask,
new_mask, event_mask)`` to :attr:`DomainState.events`, where
``event_mask`` is an OR of

* :data:`EVT_REMOVE` — at least one value left the domain (set on every
  event, since domains only ever shrink);
* :data:`EVT_BOUNDS` — the domain minimum or maximum moved;
* :data:`EVT_ASSIGN` — the domain became a singleton.

The propagation engine drains the log and wakes only propagators
subscribed to a matching event type (``Propagator.watches()``), handing
them the exact ``old/new`` masks so incremental propagators can update
their counters from the delta in O(1) instead of rescanning.

The log is **level-aware**: ``push_level`` records the event mark along
with the trail mark, and ``pop_level`` truncates only the events
recorded inside the popped level.  Events recorded *before* the push —
pending but not yet drained — survive the pop, so no wake is ever lost
to backtracking.

**A generic trail.**  Undo records are ``(container, key, old_value)``
triples restored as ``container[key] = old_value``.  Domain masks use it
with ``container is self.masks``; propagators use :meth:`save` (or the
once-per-node :meth:`save_all`) to give their *owned* counters — fixed/
free counts, entailment flags, validity bitmasks — exactly the same
backtracking guarantee as the domains themselves.  :attr:`stamp` is a
never-reused id of the current search node, letting a propagator trail a
counter snapshot at most once per node.

**An implication trail (opt-in).**  Constructed with
``record_causes=True``, the state additionally records *who wrote each
event*: :attr:`causes` is a list parallel to :attr:`events` whose entry
for event ``p`` is the value :attr:`cause` held when the mutation was
made — the engine sets it to the running propagator's id before calling
``propagate`` (:data:`CAUSE_DECISION` marks search decisions and any
other out-of-engine writer; learned-nogood forcings use ``-2 - nogood_id``,
see :mod:`repro.csp.learning`).  The conflict analyzer walks this trail
backwards to resolve a failure into the literals that caused it.  The
list is level-truncated together with the events, and the default
(``record_causes=False``) leaves :attr:`causes` as ``None`` so the
non-learning hot path pays one predictable branch per event and nothing
more.
"""

from __future__ import annotations

from repro.csp.core import Model, Variable
from repro.util.bitset import values_from_mask

__all__ = [
    "DomainState",
    "EVT_REMOVE",
    "EVT_BOUNDS",
    "EVT_ASSIGN",
    "EVT_ANY",
    "CAUSE_DECISION",
]

#: :attr:`DomainState.cause` value for events written by a search
#: decision (or any writer outside the propagation engine)
CAUSE_DECISION = -1

#: event type: one or more values were removed (set on every event)
EVT_REMOVE = 0b001
#: event type: the domain minimum or maximum changed
EVT_BOUNDS = 0b010
#: event type: the domain collapsed to a singleton
EVT_ASSIGN = 0b100
#: subscribe-to-everything wake mask
EVT_ANY = EVT_REMOVE | EVT_BOUNDS | EVT_ASSIGN

#: event mask of a collapse to singleton (a bound always moves too;
#: wipe-outs are refused before any event is recorded)
_EV_SINGLETON = EVT_REMOVE | EVT_BOUNDS | EVT_ASSIGN


class DomainState:
    """Mutable domains of one search over a :class:`Model`."""

    __slots__ = (
        "model",
        "masks",
        "events",
        "causes",
        "cause",
        "dispatched",
        "shadow",
        "_undo",
        "_levels",
        "_stamp",
    )

    #: domain bitmasks must stay below this for the int64 shadow mirror
    SHADOW_MASK_LIMIT = 1 << 62

    def __init__(self, model: Model, record_causes: bool = False) -> None:
        self.model = model
        self.masks: list[int] = [v.initial_mask for v in model.variables]
        #: typed change log consumed by the engine:
        #: ``(var_index, old_mask, new_mask, event_mask)`` tuples.  The
        #: list is level-truncated on backtrack, so consumers read it
        #: through the :attr:`dispatched` cursor rather than draining it.
        self.events: list[tuple[int, int, int, int]] = []
        #: implication trail: ``causes[p]`` is who wrote ``events[p]``
        #: (a propagator id, :data:`CAUSE_DECISION`, or ``-2 - nogood_id``);
        #: ``None`` unless constructed with ``record_causes=True``
        self.causes: list[int] | None = [] if record_causes else None
        #: id the next recorded event is attributed to (the engine sets it
        #: around each propagator run; meaningless when ``causes`` is None)
        self.cause = CAUSE_DECISION
        #: cursor into :attr:`events`: entries below it have been handed
        #: to the engine already (clamped by :meth:`pop_level`)
        self.dispatched = 0
        #: optional int64 numpy mirror of :attr:`masks` for vectorised
        #: heuristics; ``None`` until :meth:`attach_shadow`.  The engine
        #: updates it while dispatching events (every mutation records
        #: exactly one event) and :meth:`pop_level` restores it from the
        #: event log, so it is current whenever the log is drained.
        self.shadow = None
        #: generic undo log of ``(container, key, old_value)`` records
        #: for propagator-owned state (key ``None`` = whole-list snapshot).
        #: Domain masks have no separate trail: every mutation records
        #: exactly one event carrying ``old_mask``, so :meth:`pop_level`
        #: restores masks from the level's event slice.
        self._undo: list[tuple] = []
        #: per open level: (undo mark, event mark)
        self._levels: list[tuple[int, int]] = []
        #: never-reused id of the current search node (see :attr:`stamp`)
        self._stamp = 0

    # -- queries ------------------------------------------------------------
    def mask(self, var: Variable) -> int:
        """Current domain bitmask (relative to ``var.offset``)."""
        return self.masks[var.index]

    def size(self, var: Variable) -> int:
        """Current domain size."""
        return self.masks[var.index].bit_count()

    def is_assigned(self, var: Variable) -> bool:
        """True iff the domain is a singleton."""
        m = self.masks[var.index]
        return m != 0 and (m & (m - 1)) == 0

    def value(self, var: Variable) -> int:
        """The assigned value; raises if unassigned."""
        m = self.masks[var.index]
        if m == 0 or m & (m - 1):
            raise ValueError(f"{var.name} is not assigned (mask={bin(m)})")
        return var.offset + m.bit_length() - 1

    def contains(self, var: Variable, value: int) -> bool:
        """True iff ``value`` is still in the domain."""
        b = value - var.offset
        return b >= 0 and bool(self.masks[var.index] >> b & 1)

    def min_value(self, var: Variable) -> int:
        """Smallest value in the domain."""
        m = self.masks[var.index]
        if not m:
            raise ValueError(f"{var.name} has an empty domain")
        return var.offset + ((m & -m).bit_length() - 1)

    def max_value(self, var: Variable) -> int:
        """Largest value in the domain."""
        m = self.masks[var.index]
        if not m:
            raise ValueError(f"{var.name} has an empty domain")
        return var.offset + m.bit_length() - 1

    def values(self, var: Variable) -> list[int]:
        """Current domain as a sorted list."""
        return values_from_mask(self.masks[var.index], var.offset)

    def solution(self) -> dict[Variable, int]:
        """Mapping of every variable to its value (all must be assigned)."""
        return {v: self.value(v) for v in self.model.variables}

    # -- mutations ------------------------------------------------------------
    # The mutators record the undo and the typed event inline (these are
    # the hottest writes in the engine; assign's event mask is constant).

    def assign(self, var: Variable, value: int) -> bool:
        """Reduce the domain to ``{value}``; False if value not in domain."""
        b = value - var.offset
        if b < 0:
            return False
        bit = 1 << b
        idx = var.index
        masks = self.masks
        old = masks[idx]
        if not old & bit:
            return False
        if old != bit:
            self.events.append((idx, old, bit, _EV_SINGLETON))
            if self.causes is not None:
                self.causes.append(self.cause)
            masks[idx] = bit
        return True

    def remove_value(self, var: Variable, value: int) -> bool:
        """Remove one value; False if this empties the domain."""
        b = value - var.offset
        if b < 0:
            return True  # value was never in the domain
        bit = 1 << b
        idx = var.index
        masks = self.masks
        old = masks[idx]
        if not old & bit:
            return True
        new = old & ~bit
        if new == 0:
            return False
        if not new & (new - 1):
            ev = _EV_SINGLETON
        elif bit == old & -old or new < bit:  # dropped the min or the max
            ev = EVT_REMOVE | EVT_BOUNDS
        else:
            ev = EVT_REMOVE
        self.events.append((idx, old, new, ev))
        if self.causes is not None:
            self.causes.append(self.cause)
        masks[idx] = new
        return True

    def intersect_mask(self, var: Variable, mask: int) -> bool:
        """Keep only values whose bits are set in ``mask`` (same offset);
        False if the domain becomes empty."""
        idx = var.index
        masks = self.masks
        old = masks[idx]
        new = old & mask
        if new == old:
            return True
        if new == 0:
            return False
        if not new & (new - 1):
            ev = _EV_SINGLETON
        elif old & -old != new & -new or old.bit_length() != new.bit_length():
            ev = EVT_REMOVE | EVT_BOUNDS
        else:
            ev = EVT_REMOVE
        self.events.append((idx, old, new, ev))
        if self.causes is not None:
            self.causes.append(self.cause)
        masks[idx] = new
        return True

    def remove_above(self, var: Variable, bound: int) -> bool:
        """Remove every value > bound; False if the domain empties."""
        b = bound - var.offset
        if b < 0:
            return False
        return self.intersect_mask(var, (1 << (b + 1)) - 1)

    def remove_below(self, var: Variable, bound: int) -> bool:
        """Remove every value < bound; False if the domain empties."""
        b = bound - var.offset
        if b <= 0:
            return True
        return self.intersect_mask(var, ~((1 << b) - 1))

    # -- generic trail (propagator-owned reversible data) ---------------------
    @property
    def stamp(self) -> int:
        """Never-reused identifier of the current search node.

        Increases on every :meth:`push_level` and is never reused after a
        pop, so ``my_stamp != state.stamp`` is a safe "have I trailed my
        counters at this node yet?" test for propagators."""
        return self._stamp

    def refresh_stamp(self) -> None:
        """Give the current node a fresh stamp.

        The learning search calls this after a conflict-driven backjump:
        the assertion (and its propagation) happens at the surviving
        level *without* a new ``push_level``, and a propagator that last
        trailed its counters inside the popped subtree would otherwise
        see a matching stamp and skip re-trailing — leaving the new
        deltas unprotected against the next pop."""
        self._stamp += 1

    def save(self, container, key) -> None:
        """Trail one slot of any mutable container so :meth:`pop_level`
        restores it: the undo replays ``container[key] = old_value``."""
        self._undo.append((container, key, container[key]))

    def save_all(self, container: list) -> None:
        """Trail a (small) list wholesale in one undo record — the idiom
        for a propagator snapshotting its counters once per node.  The
        record's key is ``None`` and the undo replays a slice assign."""
        self._undo.append((container, None, tuple(container)))

    def attach_shadow(self, np_module) -> bool:
        """Mirror the domain masks in an int64 numpy array.

        Refused (returns False, :attr:`shadow` stays None) when any
        current mask would overflow the sign-safe int64 range — domains
        here are tiny, but the guard keeps arbitrary models sound.
        """
        limit = self.SHADOW_MASK_LIMIT
        for m in self.masks:
            if m >= limit:
                self.shadow = None
                return False
        self.shadow = np_module.array(self.masks, dtype=np_module.int64)
        return True

    # -- trail ---------------------------------------------------------------
    @property
    def level(self) -> int:
        """Current decision depth."""
        return len(self._levels)

    def push_level(self) -> None:
        """Open a new decision level."""
        self._levels.append((len(self._undo), len(self.events)))
        self._stamp += 1

    def pop_level(self) -> None:
        """Undo every change made since the matching :meth:`push_level`.

        Domain masks *and* any propagator-owned slots trailed via
        :meth:`save` / :meth:`save_all` are restored; events recorded
        inside the popped level are discarded, while events recorded
        before the push (pending, not yet drained) survive."""
        if not self._levels:
            raise RuntimeError("pop_level without matching push_level")
        undo_mark, event_mark = self._levels.pop()
        masks = self.masks
        shadow = self.shadow
        events = self.events
        if len(events) > event_mark:
            # LIFO replay leaves the oldest (correct) mask in place,
            # including for mutations whose events were never dispatched
            if shadow is None:
                for idx, old, _new, _ev in reversed(events[event_mark:]):
                    masks[idx] = old
            else:
                for idx, old, _new, _ev in reversed(events[event_mark:]):
                    masks[idx] = old
                    shadow[idx] = old
            del events[event_mark:]
        undo = self._undo
        if len(undo) > undo_mark:
            for container, key, old in reversed(undo[undo_mark:]):
                if key is None:  # wholesale list snapshot (save_all)
                    container[:] = old
                else:
                    container[key] = old
            del undo[undo_mark:]
        if self.causes is not None:
            del self.causes[event_mark:]
        if self.dispatched > event_mark:
            self.dispatched = event_mark

    def make_trail_ops(self):
        """Bind ``(push, pop)`` closures over this state's trail.

        Semantically identical to :meth:`push_level` / :meth:`pop_level`
        but with every structure captured as a default argument, so the
        once-per-node calls skip the attribute-load prologue (the search
        makes ~2 of these per node explored; the method-call overhead is
        measurable on small instances).  For paired use by the search
        loop only: the unmatched-pop guard is dropped (an unmatched pop
        raises ``IndexError`` from the list instead of ``RuntimeError``).

        Bindings snapshot :attr:`shadow` and :attr:`causes`, so call
        this *after* :meth:`attach_shadow` / trail attachment."""
        state = self
        levels = self._levels

        def push(
            append=levels.append,
            undo=self._undo,
            events=self.events,
            state=state,
        ) -> None:
            append((len(undo), len(events)))
            state._stamp += 1

        def pop(
            take=levels.pop,
            masks=self.masks,
            events=self.events,
            undo=self._undo,
            shadow=self.shadow,
            causes=self.causes,
            state=state,
        ) -> None:
            undo_mark, event_mark = take()
            if len(events) > event_mark:
                if shadow is None:
                    for idx, old, _new, _ev in reversed(events[event_mark:]):
                        masks[idx] = old
                else:
                    for idx, old, _new, _ev in reversed(events[event_mark:]):
                        masks[idx] = old
                        shadow[idx] = old
                del events[event_mark:]
            if len(undo) > undo_mark:
                for container, key, old in reversed(undo[undo_mark:]):
                    if key is None:  # wholesale list snapshot (save_all)
                        container[:] = old
                    else:
                        container[key] = old
                del undo[undo_mark:]
            if causes is not None:
                del causes[event_mark:]
            if state.dispatched > event_mark:
                state.dispatched = event_mark

        return push, pop

    def drain_events(self) -> list[tuple[int, int, int, int]]:
        """Return the not-yet-consumed events and advance the cursor."""
        out = self.events[self.dispatched:]
        self.dispatched = len(self.events)
        return out

    def drain_changed(self) -> list[int]:
        """Return and consume the changed-variable log (indices only).

        Compatibility surface over :meth:`drain_events` for callers that
        only need *which* variables moved, not the typed deltas."""
        return [e[0] for e in self.drain_events()]
