"""Systematic (backtracking) search over a CSP model.

Depth-first d-way branching exactly as sketched in the paper's Section
III-B: pick an unassigned variable (variable-ordering heuristic), try its
values in heuristic order, propagate constraints to a fixpoint after every
assignment, backtrack on wipe-out.  The search is *complete*: it terminates
with SAT (a solution), UNSAT (exhausted the space) or UNKNOWN (hit the
time/node budget, the paper's "overrun").

Propagation is **incremental and event-driven** (see
:mod:`repro.csp.state` and :mod:`repro.csp.propagators`):

* every domain mutation is a typed event (ASSIGN / BOUNDS / REMOVE) and
  propagators subscribe per variable *and* per event type, so e.g. a
  symmetry chain only wakes when a bound moves;
* before a woken propagator runs, its ``on_event`` hook is fed the exact
  domain delta so owned counters stay current in O(1) per change;
* the propagation queue is priority-tiered — cheap counter-check
  propagators (tier 0) drain before linear passes (tier 1) before
  table filtering (tier 2) — which keeps expensive propagators from
  running against half-settled domains;
* a propagator that reports entailment (:data:`~repro.csp.propagators.
  PROP_ENTAILED`) is deactivated for the rest of the subtree; the
  deactivation lives on the trail, so backtracking reactivates it.

**Conflict-directed search** (``Solver(learn=True)``) replaces the
chronological value iteration with CDCL-style learning built on
:mod:`repro.csp.learning`:

* the state records an implication trail (which propagator, decision or
  nogood caused every domain event);
* on conflict, 1-UIP analysis resolves the failing propagator's
  explanation back to an *asserting nogood*, the search backjumps
  straight to the nogood's second-deepest level (skipping the levels the
  conflict never depended on), and the nogood store immediately forces
  the UIP's negation there — refuted regions are never re-explored, so
  there are no explicit "remaining values" to iterate;
* learned nogoods propagate through two watched literals per nogood and
  are forgotten lowest-activity-first when the bounded store fills
  (short nogoods and nogoods locked as live reasons always survive);
* with ``restart_nodes``, the store **persists across the geometric
  restarts** — the frontier of learned refutations carries over, so a
  restart no longer throws away everything the previous run derived;
* termination does not depend on retention: every conflict strictly
  grows the trail at the backjump level (the classic CDCL argument), so
  the search is complete even with aggressive forgetting, and UNSAT is
  reported exactly when a conflict is analyzed back to the root.

Learning is opt-in: the default configuration runs the chronological
search below, byte-identical to the pre-learning engine.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field, fields
from enum import Enum

from repro.csp.core import Model, Variable
from repro.csp.heuristics import (
    SearchContext,
    make_value_order_phase_saving,
    value_order_ascending,
    var_order_input,
    var_order_input_vec,
    var_order_min_domain,
    var_order_min_domain_vec,
)
from repro.csp.learning import (
    NogoodStore,
    Trail,
    analyze_conflict,
    apply_negation,
)
from repro.csp.propagators import PROP_ENTAILED
from repro.csp.state import CAUSE_DECISION, EVT_ANY, EVT_ASSIGN, DomainState
from repro.kernels import numpy_or_none
from repro.kernels.fixpoint import CountingKernel
from repro.util.timer import Deadline

_EVT_ASSIGN = EVT_ASSIGN  # module-local alias, bound once for the hot loop

__all__ = ["Status", "SearchStats", "SolveOutcome", "Solver", "PROPAGATION_ENGINE"]

#: engine flavor tag, recorded by benchmarks (the pre-refactor engine
#: rescanned every propagator's whole scope on each wake)
PROPAGATION_ENGINE = "incremental-events"

#: number of propagation-queue tiers (Propagator.priority is clamped into it)
_N_TIERS = 3


class Status(Enum):
    """Search outcome."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"  # budget exhausted before an answer (paper: overrun)


@dataclass
class SearchStats:
    """Counters of one solve run."""

    nodes: int = 0          # value-assignment attempts
    fails: int = 0          # attempts refuted by propagation
    propagations: int = 0   # propagator executions
    events: int = 0         # typed domain-change events dispatched
    entailments: int = 0    # propagators deactivated as entailed
    solutions: int = 0
    max_depth: int = 0
    restarts: int = 0       # geometric restarts taken (restart_nodes mode)
    conflicts: int = 0      # conflicts analyzed (learning search only)
    learned: int = 0        # nogoods learned
    forgotten: int = 0      # nogoods dropped by store reduction
    backjumps: int = 0      # non-chronological jumps (> 1 level)
    max_backjump: int = 0   # deepest jump, in levels skipped
    elapsed: float = 0.0


#: restart-merge groups: every SearchStats field must appear in exactly
#: one, so a future counter cannot silently be dropped by the restart
#: wrapper (see :func:`_merge_restart_stats`)
_MERGE_SUM = (
    "nodes", "fails", "propagations", "events", "entailments",
    "conflicts", "learned", "forgotten", "backjumps",
)
_MERGE_MAX = ("max_depth", "max_backjump")
_MERGE_OWNED = ("solutions", "restarts", "elapsed")


def _merge_restart_stats(total: SearchStats, run: SearchStats) -> None:
    """Accumulate one restart attempt's counters into the running total.

    Additive counters sum, high-water marks take the max, and the
    wrapper-owned fields (``solutions``/``restarts``/``elapsed``) are
    left to the caller.  Guarded: a ``SearchStats`` field not covered by
    exactly one merge group raises immediately, so pre-restart attempts
    can never silently drop a counter again.
    """
    names = {f.name for f in fields(SearchStats)}
    covered = set(_MERGE_SUM) | set(_MERGE_MAX) | set(_MERGE_OWNED)
    if names != covered:
        raise AssertionError(
            f"SearchStats fields not covered by the restart merge: "
            f"{sorted(names ^ covered)}"
        )
    for name in _MERGE_SUM:
        setattr(total, name, getattr(total, name) + getattr(run, name))
    for name in _MERGE_MAX:
        setattr(total, name, max(getattr(total, name), getattr(run, name)))


@dataclass
class SolveOutcome:
    """Result of :meth:`Solver.solve` / :meth:`Solver.solve_all`."""

    status: Status
    solution: dict[Variable, int] | None
    stats: SearchStats
    solutions: list[dict[Variable, int]] = field(default_factory=list)

    @property
    def is_sat(self) -> bool:
        return self.status is Status.SAT

    def value(self, var: Variable) -> int:
        """Value of ``var`` in the (first) solution."""
        if self.solution is None:
            raise ValueError(f"no solution available (status={self.status.name})")
        return self.solution[var]


class _Timeout(Exception):
    """Internal: budget expired inside the propagation fixpoint."""


class Solver:
    """Backtracking solver for a :class:`Model`.

    Parameters
    ----------
    model:
        The CSP to solve.
    var_order:
        Variable-ordering heuristic ``(state, ctx) -> Variable | None``;
        default: min-domain (fail-first).
    value_order:
        Value-ordering heuristic ``(state, var) -> list[int]``;
        default: ascending.
    seed:
        When given, a ``random.Random(seed)`` is exposed to heuristics via
        the search context (random tie-breaking / orders).  The search is
        fully deterministic for a fixed seed.
    restart_nodes:
        When set, the search restarts from the root after this many nodes,
        doubling the cutoff each time (geometric restarts, the classic
        companion of randomized heuristics in solvers like Choco).  The
        procedure stays complete: UNSAT is only reported when a run
        exhausts the space *without* hitting its cutoff, and the growing
        cutoff guarantees some run eventually does.  Pointless without a
        randomized heuristic (every run would explore the same prefix) —
        unless learning is on, where the persistent nogood store makes
        every run after a restart strictly better informed.
    learn:
        Opt into conflict-directed search: implication-trail recording,
        1-UIP nogood learning, conflict-driven backjumping, and a
        bounded watched-literal nogood store (see the module docstring).
        Default off — the default configuration is byte-identical to the
        chronological engine.
    nogood_limit:
        Soft capacity of the learned-nogood store (learning only);
        exceeding it forgets the lowest-activity half.
    phase_saving:
        Wrap the value order so each variable retries the value it last
        held first (adaptive value ordering; most useful with learning
        or restarts).
    vectorize:
        ``None`` (auto, the default) batches the counting propagators'
        tier-0 rows through :class:`repro.kernels.fixpoint.
        CountingKernel` and, when numpy is available, mirrors the
        domains in an int64 shadow array that vectorises the stock
        input/min-domain variable orders.  ``False`` forces the legacy
        per-propagator path; ``True`` insists on the kernels (still
        falling back to the scalar reset sweep if numpy is masked).
        Search decisions are byte-identical either way (pinned by
        ``tests/test_engine_regression.py``); the learning engine
        always runs unbatched — nogood bookkeeping is order-sensitive.
    """

    def __init__(
        self,
        model: Model,
        var_order=None,
        value_order=None,
        seed: int | None = None,
        restart_nodes: int | None = None,
        learn: bool = False,
        nogood_limit: int = 10_000,
        phase_saving: bool = False,
        vectorize: bool | None = None,
    ) -> None:
        self.model = model
        self.var_order = var_order or var_order_min_domain
        self.value_order = value_order or value_order_ascending
        self.vectorize = vectorize
        if restart_nodes is not None and restart_nodes < 1:
            raise ValueError(f"restart_nodes must be >= 1, got {restart_nodes}")
        self.restart_nodes = restart_nodes
        self.learn = bool(learn)
        if nogood_limit < 1:
            raise ValueError(f"nogood_limit must be >= 1, got {nogood_limit}")
        self.nogood_limit = nogood_limit
        self._store: NogoodStore | None = None
        self.ctx = SearchContext(
            degrees=model.degrees(),
            rng=None if seed is None else random.Random(seed),
        )
        if phase_saving:
            self.ctx.phases = {}
            self.value_order = make_value_order_phase_saving(
                self.value_order, self.ctx.phases
            )
        # Event-driven propagation wiring, built once per Solver: for
        # every variable, a per-event-class jump table.  An event's mask
        # is always one of REMOVE (1), REMOVE|BOUNDS (3) or
        # REMOVE|BOUNDS|ASSIGN (7), so ``self._watchers[idx][mask]`` is
        # the pre-filtered tuple of ``(pid, on_event-or-None, relevance,
        # dedup)`` subscriptions to wake — no per-entry wake-mask test
        # in the hot dispatch loop.  ``dedup`` marks stateless wake
        # filters whose call is skipped while the propagator is queued.
        self._props = list(model.constraints)
        raw: list[list[tuple]] = [[] for _ in model.variables]
        self._tiers: list[int] = []
        # Counting rows move out of the watcher lists into the batched
        # kernel (vectorize=None/True, non-learning): their per-event
        # bookkeeping runs inline in _fixpoint instead of through
        # on_event calls.  Only tier-0 rows qualify — the inline tables
        # enqueue straight onto q0.
        batching = self.learn is False and vectorize is not False
        batched_props: list[tuple[int, object]] = []
        self._batched = [False] * len(self._props)
        for pid, prop in enumerate(self._props):
            tier = min(_N_TIERS - 1, max(0, getattr(prop, "priority", 1)))
            self._tiers.append(tier)
            if batching and tier == 0 and hasattr(prop, "batch_row"):
                self._batched[pid] = True
                batched_props.append((pid, prop))
                continue
            handler = getattr(prop, "on_event", None)
            if handler is not None and not getattr(prop, "incremental", True):
                handler = None  # tally-on-wake mode: no delta bookkeeping
            dedup = handler is not None and getattr(
                prop, "stateless_filter", False
            )
            watches = getattr(prop, "watches", None)
            entries = (
                watches() if watches is not None
                else [(v, EVT_ANY, None) for v in prop.vars]
            )
            for entry in entries:
                if len(entry) == 2:  # legacy (var, wake_mask) subscription
                    var, wake_mask = entry
                    relevance = None
                else:
                    var, wake_mask, relevance = entry
                raw[var.index].append((pid, wake_mask, handler, relevance, dedup))
        self._kernel = CountingKernel.build(batched_props, len(model.variables))
        self._ktab = (
            self._kernel.table if self._kernel is not None
            else [{}] * len(model.variables)
        )
        self._kmask = (
            self._kernel.bitmask if self._kernel is not None
            else [0] * len(model.variables)
        )
        self._prop_fns = [p.propagate for p in self._props]
        if batching and self.var_order is var_order_min_domain:
            self.var_order = var_order_min_domain_vec
        #: input order keeps a per-descent scan hint instead of a numpy
        #: sweep: with chronological branching the first-open index only
        #: moves forward within a descent and pop_level's mask restore
        #: re-opens exactly the branch variable, so the search can set
        #: ``ctx.first_unassigned_hint`` to the branch index + 1 before
        #: each selection — O(1) amortized, no shadow writes needed
        self._hint_input = self.var_order is var_order_input
        #: attach the numpy shadow mirror only when a vectorised var
        #: order will actually read it (the deterministic min-domain
        #: sweep; the randomized tie-break path defers to scalar)
        self._use_shadow = (
            self.var_order is var_order_min_domain_vec and self.ctx.rng is None
        ) or self.var_order is var_order_input_vec
        self._watchers: list[tuple] = [
            tuple(
                tuple(
                    (pid, handler, relevance, dedup)
                    for pid, wake_mask, handler, relevance, dedup in entries
                    if wake_mask & event_class
                )
                if event_class in (1, 3, 7)
                else ()
                for event_class in range(8)
            )
            for entries in raw
        ]
        self._queues: tuple[deque[int], ...] = tuple(
            deque() for _ in range(_N_TIERS)
        )
        self._on_queue = [False] * len(self._props)
        #: per-propagator liveness; entailment flips a slot to False with
        #: a trail record, so backtracking reactivates the propagator
        self._active = [True] * len(self._props)
        self._deadline: Deadline | None = None
        self._prop_budget_check = 0
        self._cutoff_hit = False
        self.stats = SearchStats()

    # -- propagation -----------------------------------------------------------
    def _enqueue_all(self) -> None:
        queues = self._queues
        tiers = self._tiers
        on_queue = self._on_queue
        for pid, is_active in enumerate(self._active):
            if is_active and not on_queue[pid]:
                on_queue[pid] = True
                queues[tiers[pid]].append(pid)

    def _reset_queue(self, state: DomainState) -> None:
        on_queue = self._on_queue
        for queue in self._queues:
            while queue:
                on_queue[queue.popleft()] = False
        # undispatched events belong to the failed/abandoned level; the
        # caller's pop_level truncates them (root-level callers return)

    def _reset_propagators(self, state: DomainState) -> None:
        """Fresh run: reactivate everything, rebuild owned counters.

        Batched counting rows are excluded from the per-propagator
        resets: the kernel recomputes all their aggregates in one pass
        over the stacked row matrix (and re-points each ``_c`` at the
        kernel-owned list)."""
        active = self._active
        for pid in range(len(active)):
            active[pid] = True
        self._reset_queue(state)
        batched = self._batched
        for pid, prop in enumerate(self._props):
            if batched[pid]:
                continue
            reset = getattr(prop, "reset", None)
            if reset is not None:
                reset(state)
        if self._kernel is not None:
            self._kernel.reset(state)

    def _make_fixpoint(self, state: DomainState):
        """Build this search's fixpoint runner: dispatch pending events
        and run woken propagators to a fixpoint; the returned closure
        yields False on conflict.

        The runner is rebuilt once per search and binds every hot
        reference as a default argument, so each of the tens of
        thousands of per-node calls starts with C-speed local setup
        instead of an attribute-load prologue (on small instances that
        prologue dominated the whole fixpoint).

        Event dispatch (inlined in the closure — this is the hottest
        loop in the repo): for every typed event, each watching
        propagator whose wake mask matches gets its ``on_event``
        counter update exactly once (queued or not), then is enqueued
        on its priority tier.  Deactivated (entailed) propagators are
        skipped entirely — their counters are trail-consistent with the
        domains at entailment time, see propagators.py.  Queue tiers
        drain cheapest-first: a tier-1 propagator only runs when tier 0
        is empty, tier 2 when 0 and 1 are.

        Batched counting rows (see :mod:`repro.kernels.fixpoint`) are
        handled inline right here: each event's removed/assigned bits
        index the kernel's per-variable buckets, the shared aggregates
        are updated (with the same once-per-node undo snapshot the
        scalar hooks take) and the row is enqueued only when its bounds
        say propagation could act — the exact condition under which the
        scalar ``on_event`` would not have returned False.  A row whose
        bounds become *unsatisfiable* fails the fixpoint immediately:
        its ``propagate`` is guaranteed to return FAIL later this node
        (within a node ``c0`` only grows and ``c0 + c1`` only shrinks),
        so the short-circuit changes no pinned statistic.  Queue order
        and propagation counts can differ from the unbatched engine,
        but the per-node fixpoint is confluent (all propagators are
        monotone and contracting), so failures, final domains and hence
        every search decision are byte-identical."""
        queues = self._queues
        deadline = self._deadline

        def fixpoint(
            *,
            solver=self,
            state=state,
            q0=queues[0],
            q1=queues[1],
            q2=queues[2],
            prop_fns=self._prop_fns,
            active=self._active,
            on_queue=self._on_queue,
            watchers=self._watchers,
            queues=queues,
            tiers=self._tiers,
            stats=self.stats,
            events=state.events,
            ktab=self._ktab,
            kmask=self._kmask,
            undo=state._undo,
            shadow=state.shadow,
            reset_queue=self._reset_queue,
            # an unlimited deadline can never expire: skip its poll counter
            timed=deadline is not None and deadline._end is not None,
            deadline=deadline,
        ) -> bool:
            node_stamp = state._stamp
            while True:
                # -- dispatch everything that happened since the last pop
                i = state.dispatched
                n = len(events)
                if i < n:
                    stats.events += n - i
                    while i < n:
                        idx, old, new, event_mask = events[i]
                        i += 1
                        if shadow is not None:
                            shadow[idx] = new
                        for pid, handler, relevance, dedup in watchers[idx][event_mask]:
                            if not active[pid]:
                                continue
                            if relevance is not None and not (
                                relevance & (old ^ new)
                                or event_mask & _EVT_ASSIGN and relevance & new
                            ):
                                continue  # event can't affect this propagator
                            if handler is not None:
                                if dedup and on_queue[pid]:
                                    continue  # pure filter + already queued
                                if handler(state, idx, old, new) is False:
                                    continue  # counters updated; wake a no-op
                            if not on_queue[pid]:
                                on_queue[pid] = True
                                queues[tiers[pid]].append(pid)
                        # counting-row buckets: the event's removed bits jump
                        # straight to the rows losing a candidate, the
                        # assigned bit to the rows gaining a fixed one —
                        # entries are (pid, c, st, total, coef, w3, cmax).
                        # A row driven impossible (c0 > total or c0+c1 <
                        # total) fails the node right here: its propagate is
                        # guaranteed to return FAIL this fixpoint (the
                        # aggregates only march further past the bound
                        # within a node), so skipping the remaining drain
                        # and the O(row) scan changes no search decision.
                        km = kmask[idx]
                        if km:
                            kt = ktab[idx]
                            removed = old & ~new & km
                            while removed:
                                b = removed & -removed
                                removed -= b
                                for pid, c, st, total, coef, w3, cmax in kt[b]:
                                    if not active[pid]:
                                        continue
                                    if st[0] != node_stamp:
                                        st[0] = node_stamp
                                        undo.append((c, None, tuple(c)))
                                    c[1] -= coef
                                    if w3:  # 3-slot weighted row
                                        c[2] -= 1
                                        lb = c[0]
                                        fs = c[1]
                                        if lb + fs < total:
                                            reset_queue(state)
                                            state.dispatched = i
                                            return False
                                        if (
                                            c[2]
                                            and cmax <= total - lb
                                            and cmax <= lb + fs - total
                                        ):
                                            continue
                                    else:
                                        s0 = c[0]
                                        if s0 + c[1] < total:
                                            reset_queue(state)
                                            state.dispatched = i
                                            return False
                                        if s0 < total < s0 + c[1]:
                                            continue
                                    if not on_queue[pid]:
                                        on_queue[pid] = True
                                        q0.append(pid)
                            if event_mask == 7 and new & km:
                                # candidate became fixed
                                for pid, c, st, total, coef, w3, cmax in kt[new]:
                                    if not active[pid]:
                                        continue
                                    if st[0] != node_stamp:
                                        st[0] = node_stamp
                                        undo.append((c, None, tuple(c)))
                                    c[0] += coef
                                    c[1] -= coef
                                    if w3:  # 3-slot weighted row
                                        c[2] -= 1
                                        lb = c[0]
                                        if lb > total:
                                            reset_queue(state)
                                            state.dispatched = i
                                            return False
                                        if (
                                            c[2]
                                            and cmax <= total - lb
                                            and cmax <= lb + c[1] - total
                                        ):
                                            continue
                                    else:
                                        if c[0] > total:
                                            reset_queue(state)
                                            state.dispatched = i
                                            return False
                                        if c[0] < total < c[0] + c[1]:
                                            continue
                                    if not on_queue[pid]:
                                        on_queue[pid] = True
                                        q0.append(pid)
                    state.dispatched = i
                # -- run the cheapest woken propagator
                if q0:
                    pid = q0.popleft()
                elif q1:
                    pid = q1.popleft()
                elif q2:
                    pid = q2.popleft()
                else:
                    return True
                on_queue[pid] = False
                if not active[pid]:
                    continue
                stats.propagations += 1
                if timed:
                    solver._prop_budget_check += 1
                    if solver._prop_budget_check >= 1024:
                        solver._prop_budget_check = 0
                        if deadline.expired():
                            reset_queue(state)
                            raise _Timeout
                verdict = prop_fns[pid](state)
                if not verdict:
                    reset_queue(state)
                    return False
                if verdict == PROP_ENTAILED:
                    undo.append((active, pid, True))  # state.save, inlined
                    active[pid] = False
                    stats.entailments += 1

        return fixpoint

    # -- search -------------------------------------------------------------------
    def solve(
        self,
        time_limit: float | None = None,
        node_limit: int | None = None,
    ) -> SolveOutcome:
        """Find one solution (or prove none exists, or run out of budget)."""
        if self.learn:
            # one store per solve, shared by every restart attempt: the
            # learned refutations survive the geometric restarts
            self._store = NogoodStore(self.nogood_limit)
        if self.restart_nodes is None:
            return self._search(time_limit, node_limit, max_solutions=1)
        return self._solve_with_restarts(time_limit, node_limit)

    def _solve_with_restarts(
        self, time_limit: float | None, node_limit: int | None
    ) -> SolveOutcome:
        """Geometric-restart wrapper around :meth:`_search`."""
        deadline = Deadline(time_limit)
        cutoff = self.restart_nodes
        total = SearchStats()
        while True:
            remaining_nodes = None
            if node_limit is not None:
                remaining_nodes = node_limit - total.nodes
                if remaining_nodes <= 0:
                    total.elapsed = deadline.elapsed()
                    return SolveOutcome(Status.UNKNOWN, None, total)
            run_budget = deadline.remaining() if time_limit is not None else None
            self._cutoff_hit = False
            out = self._search(
                run_budget, remaining_nodes, max_solutions=1, node_cutoff=cutoff
            )
            _merge_restart_stats(total, out.stats)
            total.solutions = out.stats.solutions
            total.elapsed = deadline.elapsed()
            if out.status is not Status.UNKNOWN or not self._cutoff_hit:
                # decided, or a *real* budget exhaustion — final either way
                out.stats = total
                return out
            total.restarts += 1
            cutoff *= 2  # restart with a doubled cutoff (keeps completeness)

    def solve_all(
        self,
        max_solutions: int | None = None,
        time_limit: float | None = None,
        node_limit: int | None = None,
    ) -> SolveOutcome:
        """Enumerate solutions (up to ``max_solutions``).

        Status is SAT if at least one solution was found *and* either the
        cap was reached or the space was exhausted; UNSAT when exhausted
        with none; UNKNOWN on budget exhaustion (solutions found so far are
        still reported).  Incompatible with restarts (re-running from the
        root would revisit solutions).
        """
        if self.restart_nodes is not None:
            raise ValueError("solve_all cannot be combined with restart_nodes")
        if self.learn:
            raise ValueError(
                "solve_all cannot be combined with learn=True (backjumping "
                "abandons the value iterators enumeration relies on)"
            )
        cap = max_solutions if max_solutions is not None else float("inf")
        return self._search(time_limit, node_limit, max_solutions=cap)

    def _search(
        self,
        time_limit: float | None,
        node_limit: int | None,
        max_solutions: float,
        node_cutoff: int | None = None,
    ) -> SolveOutcome:
        if self.learn:
            if max_solutions > 1:
                raise ValueError("the learning search finds one solution")
            return self._search_learning(time_limit, node_limit, node_cutoff)
        self.stats = SearchStats()
        stats = self.stats
        state = DomainState(self.model)
        if self._use_shadow:
            np = numpy_or_none()
            if np is not None:
                state.attach_shadow(np)
        self._reset_propagators(state)
        self._deadline = deadline = Deadline(time_limit)
        solutions: list[dict[Variable, int]] = []

        def outcome(status: Status) -> SolveOutcome:
            stats.elapsed = deadline.elapsed()
            stats.solutions = len(solutions)
            return SolveOutcome(
                status=status,
                solution=solutions[0] if solutions else None,
                stats=stats,
                solutions=solutions,
            )

        # root propagation
        fixpoint = self._make_fixpoint(state)
        push_level, pop_level = state.make_trail_ops()
        self._enqueue_all()
        try:
            if not fixpoint():
                return outcome(Status.UNSAT)
        except _Timeout:
            return outcome(Status.UNKNOWN)

        ctx = self.ctx
        hint_input = self._hint_input
        if hint_input:
            ctx.first_unassigned_hint = 0
        first = self.var_order(state, ctx)
        if first is None:
            solutions.append(state.solution())
            return outcome(Status.SAT)

        stack: list[tuple[Variable, object]] = [
            (first, iter(self.value_order(state, first)))
        ]
        check_time = time_limit is not None
        check_nodes = node_limit is not None
        check_cutoff = node_cutoff is not None
        phases = self.ctx.phases
        while stack:
            if (check_time and deadline.expired()) or (
                check_nodes and stats.nodes >= node_limit
            ):
                return outcome(Status.UNKNOWN)
            if check_cutoff and stats.nodes >= node_cutoff:
                self._cutoff_hit = True
                return outcome(Status.UNKNOWN)
            var, it = stack[-1]
            val = next(it, None)
            if val is None:
                # every value of this entry failed: unwind to the parent
                stack.pop()
                if stack:
                    pop_level()
                continue
            stats.nodes += 1
            if len(stack) > stats.max_depth:
                stats.max_depth = len(stack)
            if phases is not None:
                phases[var.index] = val
            push_level()
            try:
                ok = state.assign(var, val) and fixpoint()
            except _Timeout:
                return outcome(Status.UNKNOWN)
            if not ok:
                stats.fails += 1
                pop_level()
                continue
            if hint_input:
                # everything before the branch variable is assigned, and
                # so (now) is the branch variable itself: input-order
                # selection never needs to rescan the assigned prefix
                ctx.first_unassigned_hint = var.index + 1
            nxt = self.var_order(state, ctx)
            if nxt is None:
                solutions.append(state.solution())
                if len(solutions) >= max_solutions:
                    return outcome(Status.SAT)
                pop_level()  # keep enumerating from this entry
                continue
            stack.append((nxt, iter(self.value_order(state, nxt))))

        # space exhausted
        return outcome(Status.SAT if solutions else Status.UNSAT)

    # -- conflict-directed search ---------------------------------------------
    def _fixpoint_learning(self, state: DomainState, trail: Trail, store):
        """The learning twin of :meth:`_fixpoint`.

        Same event dispatch and priority-tiered queue, with three
        additions: every propagator run is bracketed by
        :attr:`DomainState.cause` so its events land on the implication
        trail; newly-true literals (drained through the trail's log) are
        unit-propagated through the nogood store *before* any propagator
        runs (watched-literal checks are the cheapest tier of all); and
        a failure is returned as its conflict reason — ``(literals,
        failing_pid)`` where ``literals`` is the propagator's
        explanation, the violated nogood's literals, or ``None`` for
        "use the decision-prefix fallback".  Returns ``None`` at a
        conflict-free fixpoint."""
        q0, q1, q2 = self._queues
        props = self._props
        active = self._active
        on_queue = self._on_queue
        watchers = self._watchers
        queues = self._queues
        tiers = self._tiers
        stats = self.stats
        events = state.events
        log = trail.log
        while True:
            # -- dispatch everything that happened since the last pop
            i = state.dispatched
            n = len(events)
            if i < n:
                stats.events += n - i
                while i < n:
                    idx, old, new, event_mask = events[i]
                    i += 1
                    for pid, handler, relevance, dedup in watchers[idx][event_mask]:
                        if not active[pid]:
                            continue
                        if relevance is not None and not (
                            relevance & (old ^ new)
                            or event_mask & _EVT_ASSIGN and relevance & new
                        ):
                            continue
                        if handler is not None:
                            if dedup and on_queue[pid]:
                                continue  # pure filter + already queued
                            if handler(state, idx, old, new) is False:
                                continue
                        if not on_queue[pid]:
                            on_queue[pid] = True
                            queues[tiers[pid]].append(pid)
                state.dispatched = i
            # -- unit-propagate learned nogoods on newly-true literals
            trail.sync()
            if store.seen < len(log):
                lit = log[store.seen]
                store.seen += 1
                violated = store.on_true(lit, state)
                if violated is not None:
                    store.bump(violated)  # it conflicted: keep it around
                    self._reset_queue(state)
                    return (list(violated.lits), None)
                continue
            # -- run the cheapest woken propagator
            if q0:
                pid = q0.popleft()
            elif q1:
                pid = q1.popleft()
            elif q2:
                pid = q2.popleft()
            else:
                return None
            on_queue[pid] = False
            if not active[pid]:
                continue
            stats.propagations += 1
            self._prop_budget_check += 1
            if self._prop_budget_check >= 1024:
                self._prop_budget_check = 0
                if self._deadline is not None and self._deadline.expired():
                    self._reset_queue(state)
                    raise _Timeout
            state.cause = pid
            verdict = props[pid].propagate(state)
            state.cause = CAUSE_DECISION
            if not verdict:
                self._reset_queue(state)
                trail.sync()  # index the failing run's partial pruning
                return (props[pid].explain_failure(state, trail), pid)
            if verdict == PROP_ENTAILED:
                state.save(active, pid)
                active[pid] = False
                stats.entailments += 1

    def _search_learning(
        self,
        time_limit: float | None,
        node_limit: int | None,
        node_cutoff: int | None = None,
    ) -> SolveOutcome:
        """Conflict-directed search: decide, propagate, learn, backjump.

        CDCL-style control loop — there is no per-node value iterator:
        a refuted decision is captured by the learned asserting nogood,
        whose forced UIP negation (applied right after the backjump)
        plays the role of the "next value" while also pruning every
        other subtree the conflict did not depend on.  Completeness
        follows from the assertion step strictly growing the trail at
        the backjump level; UNSAT is reported when a conflict resolves
        to the root."""
        self.stats = stats = SearchStats()
        state = DomainState(self.model, record_causes=True)
        self._reset_propagators(state)
        self._deadline = deadline = Deadline(time_limit)
        trail = Trail(state)
        store = self._store
        if store is None:  # direct _search calls (tests); solve() presets it
            store = self._store = NogoodStore(self.nogood_limit)
        store.seen = 0
        ctx = self.ctx
        if ctx.weights is None:
            ctx.weights = [0.0] * len(self.model.variables)
        props = self._props
        decisions: list[tuple[int, int, bool]] = []  # canonical literal/level
        solutions: list[dict[Variable, int]] = []

        def outcome(status: Status) -> SolveOutcome:
            stats.elapsed = deadline.elapsed()
            stats.solutions = len(solutions)
            return SolveOutcome(
                status=status,
                solution=solutions[0] if solutions else None,
                stats=stats,
                solutions=solutions,
            )

        # unary nogoods from a previous restart run are root facts of this
        # one: re-assert them before the root fixpoint
        for ng in store.by_id.values():
            if len(ng.lits) == 1:
                state.cause = -2 - ng.id
                ok = apply_negation(state, ng.lits[0])
                state.cause = CAUSE_DECISION
                if not ok:
                    return outcome(Status.UNSAT)

        self._enqueue_all()
        try:
            conflict = self._fixpoint_learning(state, trail, store)
        except _Timeout:
            return outcome(Status.UNKNOWN)
        if conflict is not None:
            return outcome(Status.UNSAT)

        check_time = time_limit is not None
        check_nodes = node_limit is not None
        check_cutoff = node_cutoff is not None
        phases = ctx.phases
        while True:
            if (check_time and deadline.expired()) or (
                check_nodes and stats.nodes >= node_limit
            ):
                return outcome(Status.UNKNOWN)
            if check_cutoff and stats.nodes >= node_cutoff:
                self._cutoff_hit = True
                return outcome(Status.UNKNOWN)
            var = self.var_order(state, ctx)
            if var is None:
                solutions.append(state.solution())
                return outcome(Status.SAT)
            val = self.value_order(state, var)[0]
            stats.nodes += 1
            if len(decisions) + 1 > stats.max_depth:
                stats.max_depth = len(decisions) + 1
            if phases is not None:
                phases[var.index] = val
            state.push_level()
            trail.push_mark()
            decisions.append((var.index, val, True))
            state.cause = CAUSE_DECISION
            if not state.assign(var, val):
                # no iterator to fall back on here (the chronological
                # twin just tries the next value): a first value outside
                # the domain violates the value-order contract and would
                # spin this loop forever — fail loudly instead
                raise ValueError(
                    f"value_order returned {val}, which is not in the "
                    f"domain of {var.name}"
                )
            try:
                conflict = self._fixpoint_learning(state, trail, store)
            except _Timeout:
                return outcome(Status.UNKNOWN)
            while conflict is not None:
                stats.fails += 1
                stats.conflicts += 1
                lits, pid = conflict
                # adaptive-heuristic feedback: weigh the failing
                # constraint's variables, remember the culprit decision
                if pid is not None:
                    weights = ctx.weights
                    for v in props[pid].vars:
                        weights[v.index] += 1.0
                if decisions:
                    culprit = decisions[-1][0]
                    lc = ctx.last_conflicts
                    if culprit in lc:
                        lc.remove(culprit)
                    lc.insert(0, culprit)
                    del lc[2:]
                if not decisions:
                    return outcome(Status.UNSAT)
                store.decay()
                if lits is None:
                    lits = list(decisions)  # decision-prefix fallback
                trail.sync()
                result = analyze_conflict(
                    lits, state, trail, props, store, decisions
                )
                if result is None:
                    return outcome(Status.UNSAT)
                nogood, uip, backjump_level = result
                jumped = len(decisions) - backjump_level
                if jumped > 1:
                    stats.backjumps += 1
                    if jumped > stats.max_backjump:
                        stats.max_backjump = jumped
                # nogood forcings recorded inside the levels about to be
                # popped must be re-examined after the jump: unwinding
                # makes no literal newly true, so the watched-literal
                # scheme alone would never re-derive them
                if backjump_level < len(trail.marks):
                    mark = trail.marks[backjump_level]
                    recheck = sorted(
                        {-2 - c for c in state.causes[mark:] if c <= -2}
                    )
                else:
                    recheck = ()
                while state.level > backjump_level:
                    state.pop_level()
                state.refresh_stamp()  # post-backjump deltas must re-trail
                del decisions[backjump_level:]
                trail.pop_marks(backjump_level)
                trail.truncate()
                if store.seen > len(trail.log):
                    store.seen = len(trail.log)
                ng = store.add(
                    [uip] + [l for l in nogood if l != uip], state, trail
                )
                stats.learned += 1
                if len(store) > store.capacity:
                    stats.forgotten += store.reduce(state)
                # assert the UIP's negation at the backjump level; the
                # strict domain reduction here is what guarantees progress
                state.cause = -2 - ng.id
                ok = apply_negation(state, uip)
                state.cause = CAUSE_DECISION
                if not ok:
                    store.bump(ng)  # asserting it already conflicts
                    conflict = (list(ng.lits), None)
                    continue
                # re-derive the forcings the backjump undid (see above)
                for nid in recheck:
                    old = store.by_id.get(nid)
                    if old is None or old is ng:
                        continue
                    violated = store.reexamine(old, state)
                    if violated is not None:
                        store.bump(violated)
                        conflict = (list(violated.lits), None)
                        break
                else:
                    try:
                        conflict = self._fixpoint_learning(
                            state, trail, store
                        )
                    except _Timeout:
                        return outcome(Status.UNKNOWN)
