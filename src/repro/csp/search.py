"""Systematic (backtracking) search over a CSP model.

Depth-first d-way branching exactly as sketched in the paper's Section
III-B: pick an unassigned variable (variable-ordering heuristic), try its
values in heuristic order, propagate constraints to a fixpoint after every
assignment, backtrack on wipe-out.  The search is *complete*: it terminates
with SAT (a solution), UNSAT (exhausted the space) or UNKNOWN (hit the
time/node budget, the paper's "overrun").
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from enum import Enum

from repro.csp.core import Model, Variable
from repro.csp.heuristics import (
    SearchContext,
    value_order_ascending,
    var_order_min_domain,
)
from repro.csp.state import DomainState
from repro.util.timer import Deadline

__all__ = ["Status", "SearchStats", "SolveOutcome", "Solver"]


class Status(Enum):
    """Search outcome."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"  # budget exhausted before an answer (paper: overrun)


@dataclass
class SearchStats:
    """Counters of one solve run."""

    nodes: int = 0          # value-assignment attempts
    fails: int = 0          # attempts refuted by propagation
    propagations: int = 0   # propagator executions
    solutions: int = 0
    max_depth: int = 0
    restarts: int = 0       # geometric restarts taken (restart_nodes mode)
    elapsed: float = 0.0


@dataclass
class SolveOutcome:
    """Result of :meth:`Solver.solve` / :meth:`Solver.solve_all`."""

    status: Status
    solution: dict[Variable, int] | None
    stats: SearchStats
    solutions: list[dict[Variable, int]] = field(default_factory=list)

    @property
    def is_sat(self) -> bool:
        return self.status is Status.SAT

    def value(self, var: Variable) -> int:
        """Value of ``var`` in the (first) solution."""
        if self.solution is None:
            raise ValueError(f"no solution available (status={self.status.name})")
        return self.solution[var]


class _Timeout(Exception):
    """Internal: budget expired inside the propagation fixpoint."""


class Solver:
    """Backtracking solver for a :class:`Model`.

    Parameters
    ----------
    model:
        The CSP to solve.
    var_order:
        Variable-ordering heuristic ``(state, ctx) -> Variable | None``;
        default: min-domain (fail-first).
    value_order:
        Value-ordering heuristic ``(state, var) -> list[int]``;
        default: ascending.
    seed:
        When given, a ``random.Random(seed)`` is exposed to heuristics via
        the search context (random tie-breaking / orders).  The search is
        fully deterministic for a fixed seed.
    restart_nodes:
        When set, the search restarts from the root after this many nodes,
        doubling the cutoff each time (geometric restarts, the classic
        companion of randomized heuristics in solvers like Choco).  The
        procedure stays complete: UNSAT is only reported when a run
        exhausts the space *without* hitting its cutoff, and the growing
        cutoff guarantees some run eventually does.  Pointless without a
        randomized heuristic (every run would explore the same prefix).
    """

    def __init__(
        self,
        model: Model,
        var_order=None,
        value_order=None,
        seed: int | None = None,
        restart_nodes: int | None = None,
    ) -> None:
        self.model = model
        self.var_order = var_order or var_order_min_domain
        self.value_order = value_order or value_order_ascending
        if restart_nodes is not None and restart_nodes < 1:
            raise ValueError(f"restart_nodes must be >= 1, got {restart_nodes}")
        self.restart_nodes = restart_nodes
        self.ctx = SearchContext(
            degrees=model.degrees(),
            rng=None if seed is None else random.Random(seed),
        )
        # event-driven propagation wiring
        self._props = list(model.constraints)
        self._watchers: list[list[int]] = [[] for _ in model.variables]
        for pid, prop in enumerate(self._props):
            for v in prop.vars:
                self._watchers[v.index].append(pid)
        self._queue: deque[int] = deque()
        self._on_queue = [False] * len(self._props)
        self._deadline: Deadline | None = None
        self._prop_budget_check = 0
        self._cutoff_hit = False
        self.stats = SearchStats()

    # -- propagation -----------------------------------------------------------
    def _enqueue_watchers(self, state: DomainState) -> None:
        for idx in state.drain_changed():
            for pid in self._watchers[idx]:
                if not self._on_queue[pid]:
                    self._on_queue[pid] = True
                    self._queue.append(pid)

    def _enqueue_all(self) -> None:
        for pid in range(len(self._props)):
            if not self._on_queue[pid]:
                self._on_queue[pid] = True
                self._queue.append(pid)

    def _reset_queue(self, state: DomainState) -> None:
        while self._queue:
            self._on_queue[self._queue.popleft()] = False
        state.changed.clear()

    def _fixpoint(self, state: DomainState) -> bool:
        """Run queued propagators to a fixpoint; False on conflict."""
        queue = self._queue
        props = self._props
        on_queue = self._on_queue
        self._enqueue_watchers(state)
        while queue:
            pid = queue.popleft()
            on_queue[pid] = False
            self.stats.propagations += 1
            self._prop_budget_check += 1
            if self._prop_budget_check >= 1024:
                self._prop_budget_check = 0
                if self._deadline is not None and self._deadline.expired():
                    self._reset_queue(state)
                    raise _Timeout
            if not props[pid].propagate(state):
                self._reset_queue(state)
                return False
            self._enqueue_watchers(state)
        return True

    # -- search -------------------------------------------------------------------
    def solve(
        self,
        time_limit: float | None = None,
        node_limit: int | None = None,
    ) -> SolveOutcome:
        """Find one solution (or prove none exists, or run out of budget)."""
        if self.restart_nodes is None:
            return self._search(time_limit, node_limit, max_solutions=1)
        return self._solve_with_restarts(time_limit, node_limit)

    def _solve_with_restarts(
        self, time_limit: float | None, node_limit: int | None
    ) -> SolveOutcome:
        """Geometric-restart wrapper around :meth:`_search`."""
        deadline = Deadline(time_limit)
        cutoff = self.restart_nodes
        total = SearchStats()
        while True:
            remaining_nodes = None
            if node_limit is not None:
                remaining_nodes = node_limit - total.nodes
                if remaining_nodes <= 0:
                    total.elapsed = deadline.elapsed()
                    return SolveOutcome(Status.UNKNOWN, None, total)
            run_budget = deadline.remaining() if time_limit is not None else None
            self._cutoff_hit = False
            out = self._search(
                run_budget, remaining_nodes, max_solutions=1, node_cutoff=cutoff
            )
            total.nodes += out.stats.nodes
            total.fails += out.stats.fails
            total.propagations += out.stats.propagations
            total.max_depth = max(total.max_depth, out.stats.max_depth)
            total.solutions = out.stats.solutions
            total.elapsed = deadline.elapsed()
            if out.status is not Status.UNKNOWN or not self._cutoff_hit:
                # decided, or a *real* budget exhaustion — final either way
                out.stats = total
                return out
            total.restarts += 1
            cutoff *= 2  # restart with a doubled cutoff (keeps completeness)

    def solve_all(
        self,
        max_solutions: int | None = None,
        time_limit: float | None = None,
        node_limit: int | None = None,
    ) -> SolveOutcome:
        """Enumerate solutions (up to ``max_solutions``).

        Status is SAT if at least one solution was found *and* either the
        cap was reached or the space was exhausted; UNSAT when exhausted
        with none; UNKNOWN on budget exhaustion (solutions found so far are
        still reported).  Incompatible with restarts (re-running from the
        root would revisit solutions).
        """
        if self.restart_nodes is not None:
            raise ValueError("solve_all cannot be combined with restart_nodes")
        cap = max_solutions if max_solutions is not None else float("inf")
        return self._search(time_limit, node_limit, max_solutions=cap)

    def _search(
        self,
        time_limit: float | None,
        node_limit: int | None,
        max_solutions: float,
        node_cutoff: int | None = None,
    ) -> SolveOutcome:
        self.stats = SearchStats()
        stats = self.stats
        state = DomainState(self.model)
        self._deadline = deadline = Deadline(time_limit)
        solutions: list[dict[Variable, int]] = []

        def outcome(status: Status) -> SolveOutcome:
            stats.elapsed = deadline.elapsed()
            stats.solutions = len(solutions)
            return SolveOutcome(
                status=status,
                solution=solutions[0] if solutions else None,
                stats=stats,
                solutions=solutions,
            )

        # root propagation
        self._enqueue_all()
        try:
            if not self._fixpoint(state):
                return outcome(Status.UNSAT)
        except _Timeout:
            return outcome(Status.UNKNOWN)

        first = self.var_order(state, self.ctx)
        if first is None:
            solutions.append(state.solution())
            return outcome(Status.SAT)

        stack: list[tuple[Variable, object]] = [
            (first, iter(self.value_order(state, first)))
        ]
        while stack:
            if deadline.expired() or (
                node_limit is not None and stats.nodes >= node_limit
            ):
                return outcome(Status.UNKNOWN)
            if node_cutoff is not None and stats.nodes >= node_cutoff:
                self._cutoff_hit = True
                return outcome(Status.UNKNOWN)
            var, it = stack[-1]
            val = next(it, None)
            if val is None:
                # every value of this entry failed: unwind to the parent
                stack.pop()
                if stack:
                    state.pop_level()
                continue
            stats.nodes += 1
            if len(stack) > stats.max_depth:
                stats.max_depth = len(stack)
            state.push_level()
            try:
                ok = state.assign(var, val) and self._fixpoint(state)
            except _Timeout:
                return outcome(Status.UNKNOWN)
            if not ok:
                stats.fails += 1
                state.pop_level()
                continue
            nxt = self.var_order(state, self.ctx)
            if nxt is None:
                solutions.append(state.solution())
                if len(solutions) >= max_solutions:
                    return outcome(Status.SAT)
                state.pop_level()  # keep enumerating from this entry
                continue
            stack.append((nxt, iter(self.value_order(state, nxt))))

        # space exhausted
        return outcome(Status.SAT if solutions else Status.UNSAT)
